/// \file sec8_policies.cpp
/// \brief §8 future work: "explore the quality of AST under various task
///        assignment and scheduling policies."
///
/// Part 1 swaps the list scheduler's selection policy (EDF → FIFO →
/// static laxity) and re-runs the Figure-5 comparison.  Part 2 executes
/// the plans with the discrete-event runtime simulator under preemptive
/// vs. non-preemptive EDF dispatching.
#include <iostream>
#include <memory>

#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "experiment/cli.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/runtime_sim.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_policies");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_adapt(1.25),
  };

  // Part 1: offline selection policies.
  std::vector<SweepResult> results;
  struct Policy {
    const char* label;
    SelectionPolicy selection;
  };
  for (const Policy policy : {Policy{"EDF selection (paper)", SelectionPolicy::Edf},
                              Policy{"FIFO selection", SelectionPolicy::Fifo},
                              Policy{"static-laxity selection",
                                     SelectionPolicy::StaticLaxity}}) {
    BatchConfig batch;
    batch.samples = args.figure.samples;
    batch.seed = args.figure.seed;
    RunContext context;
    context.scheduler.selection = policy.selection;
    results.push_back(sweep_strategies(std::string("Scheduling policy — ") + policy.label,
                                       paper_workload(ExecSpreadScenario::MDET),
                                       strategies, args.figure.sizes, batch, context));
  }
  print_results(results);
  args.write_csv(results);

  // Part 2: runtime dispatching (simulator), N = 2 where windows are tight.
  std::cout << "Runtime dispatching (MDET, N=2, mean max lateness over "
            << args.figure.samples << " graphs, WCET execution)\n";
  TextTable table;
  table.set_header({"dispatcher", "PURE", "ADAPT"});
  const auto ccne = make_ccne();
  for (const bool preemptive : {false, true}) {
    std::vector<double> row;
    for (const bool adapt : {false, true}) {
      RunningStats stats;
      for (int sample = 0; sample < args.figure.samples; ++sample) {
        Pcg32 rng(seed_for(args.figure.seed, {0, static_cast<std::uint64_t>(sample)}),
                  static_cast<std::uint64_t>(sample));
        const TaskGraph graph =
            generate_random_graph(paper_workload(ExecSpreadScenario::MDET), rng);
        Machine machine;
        machine.n_procs = 2;
        const auto metric = adapt ? std::unique_ptr<SliceMetric>(make_adapt(2, 1.25))
                                  : std::unique_ptr<SliceMetric>(make_pure());
        const DeadlineAssignment assignment =
            distribute_deadlines(graph, *metric, *ccne);
        const Schedule plan = list_schedule(graph, assignment, machine);
        RuntimeOptions runtime;
        runtime.preemptive = preemptive;
        Pcg32 sim_rng(seed_for(args.figure.seed, {1, static_cast<std::uint64_t>(sample)}),
                      static_cast<std::uint64_t>(sample));
        stats.add(simulate_runtime(graph, assignment, plan, machine, runtime, sim_rng)
                      .lateness.max_lateness);
      }
      row.push_back(stats.mean());
    }
    table.add_row(preemptive ? "preemptive EDF" : "non-preemptive EDF (paper)", row, 1);
  }
  table.render(std::cout);
  return 0;
}
