/// \file laxity_objective.cpp
/// \brief Objective mismatch under relaxed locality: BST optimizes the
///        *pre-scheduling minimum laxity*, but the quantity that matters is
///        the *post-scheduling maximum lateness* (§4.1 distinguishes the
///        two).  This bench measures both for every metric at a small and a
///        large system size.
///
/// Expected: PURE wins the laxity objective at every size (it is the
/// maximin-laxity distribution along its critical path), yet loses the
/// lateness objective to ADAPT on small systems — with unknown
/// assignments, maximizing laxity is the wrong proxy, which is the
/// paper's core argument for adaptive surpluses.
#include <iostream>

#include "experiment/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "laxity_objective");

  const std::vector<Strategy> strategies{
      strategy_norm(EstimatorKind::CCNE),
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };

  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;
  const RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);

  std::cout << "Objective mismatch (MDET, " << batch.samples
            << " graphs): pre-scheduling min laxity vs post-scheduling max lateness\n\n";
  TextTable table;
  table.set_header({"strategy", "min laxity N=2", "max lateness N=2",
                    "min laxity N=16", "max lateness N=16"});
  for (const Strategy& strategy : strategies) {
    const CellStats small = run_cell(workload, strategy, 2, batch);
    const CellStats large = run_cell(workload, strategy, 16, batch);
    table.add_row({strategy.label, format_fixed(small.min_laxity.mean, 1),
                   format_fixed(small.max_lateness.mean, 1),
                   format_fixed(large.min_laxity.mean, 1),
                   format_fixed(large.max_lateness.mean, 1)});
  }
  table.render(std::cout);
  std::cout << "\nLarger min laxity does not imply better lateness when the\n"
               "assignment is unknown — the paper's case for ADAPT.\n";
  return 0;
}
