/// \file fig3_thres_surplus.cpp
/// \brief Reproduces Figure 3: the THRES metric under surplus factors
///        Δ ∈ {1, 2, 4}.
///
/// Expected shape (paper §7): larger Δ wins on small systems (extra slack
/// shields long subtasks from processor contention) but is detrimental on
/// large systems (Δ = 4 saturates far above Δ = 1); no single Δ is best
/// everywhere — the motivation for ADAPT.
#include <iostream>

#include "experiment/cli.hpp"

int main(int argc, char** argv) {
  const feast::BenchArgs args =
      feast::parse_bench_args(argc, argv, "fig3_thres_surplus");
  const auto results = feast::figure3_thres_surplus(args.figure);
  feast::print_results(results);
  args.write_csv(results);
  return 0;
}
