/// \file sec8_information.cpp
/// \brief The value of assignment information: how much of the gap between
///        relaxed-locality distribution (CCNE estimates) and an oracle with
///        the final assignment can iterative redistribution recover?
///
/// Rows per system size:
///   1 round  — the paper's setting (estimate, distribute once);
///   2/4 rounds — feed the resulting assignment back into distribution;
/// for PURE and ADAPT.  This quantifies the circular-dependency cost the
/// paper's introduction describes.
#include <iostream>
#include <vector>

#include "core/metrics.hpp"
#include "experiment/cli.hpp"
#include "sched/iterative.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace feast;

namespace {

struct Variant {
  std::string label;
  bool adapt = false;
  int rounds = 1;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_information");

  const std::vector<Variant> variants{
      {"PURE, 1 round (paper)", false, 1},
      {"PURE, 2 rounds", false, 2},
      {"PURE, 4 rounds", false, 4},
      {"ADAPT, 1 round (paper)", true, 1},
      {"ADAPT, 2 rounds", true, 2},
      {"ADAPT, 4 rounds", true, 4},
  };

  const auto ccne = make_ccne();
  const RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);

  std::cout << "Value of assignment information (MDET, mean max lateness over "
            << args.figure.samples << " graphs)\n";
  TextTable table;
  std::vector<std::string> header{"variant \\ procs"};
  for (const int n : args.figure.sizes) header.push_back(std::to_string(n));
  table.set_header(std::move(header));

  for (const Variant& variant : variants) {
    std::vector<double> row;
    for (const int n_procs : args.figure.sizes) {
      RunningStats stats;
      for (int sample = 0; sample < args.figure.samples; ++sample) {
        Pcg32 rng(seed_for(args.figure.seed, {0, static_cast<std::uint64_t>(sample)}),
                  static_cast<std::uint64_t>(sample));
        const TaskGraph graph = generate_random_graph(workload, rng);

        Machine machine;
        machine.n_procs = n_procs;
        IterativeOptions options;
        options.max_rounds = variant.rounds;
        options.stop_when_stalled = false;

        const auto metric = variant.adapt
                                ? std::unique_ptr<SliceMetric>(make_adapt(n_procs, 1.25))
                                : std::unique_ptr<SliceMetric>(make_pure());
        const IterativeResult result =
            iterate_distribution(graph, *metric, *ccne, machine, options);
        stats.add(result.lateness.max_lateness);
      }
      row.push_back(stats.mean());
    }
    table.add_row(variant.label, row, 1);
  }
  table.render(std::cout);
  return 0;
}
