/// \file sec8_structured.cpp
/// \brief §8 future-work experiment: AST on commonly-encountered task-graph
///        structures — in-tree, out-tree and fork-join — instead of random
///        graphs.
#include <iostream>

#include "experiment/cli.hpp"
#include "taskgraph/shapes.hpp"
#include "util/rng.hpp"

using namespace feast;

namespace {

GraphFactory shape_factory(const std::string& kind) {
  return [kind](std::size_t sample, std::uint64_t seed) {
    Pcg32 rng(seed, /*stream=*/sample);
    ShapeConfig config;  // MET 20, MDET spread, OLR 1.5, CCR 1.0
    if (kind == "in-tree") return make_in_tree(/*depth=*/5, /*branching=*/2, config, rng);
    if (kind == "out-tree") return make_out_tree(5, 2, config, rng);
    if (kind == "fork-join") return make_fork_join(/*stages=*/3, /*width=*/5,
                                                   /*branch_length=*/2, config, rng);
    return make_chain(40, config, rng);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_structured");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_norm(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };
  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;

  std::vector<SweepResult> results;
  for (const std::string kind : {"in-tree", "out-tree", "fork-join"}) {
    results.push_back(sweep_custom("Sec. 8 structured graphs — " + kind + " (31–46 subtasks)",
                                   shape_factory(kind), strategies, args.figure.sizes,
                                   batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
