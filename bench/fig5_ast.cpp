/// \file fig5_ast.cpp
/// \brief Reproduces Figure 5: maximum task lateness for PURE, THRES and
///        ADAPT across system sizes and the three execution-time-spread
///        scenarios.
///
/// Expected shape (paper §7): ADAPT clearly beats THRES and PURE on small
/// systems (up to ~2x), converges to PURE as the system grows, and for
/// HDET saturates slightly worse than PURE beyond ~10 processors.
#include <iostream>

#include "campaign/cache.hpp"
#include "experiment/cli.hpp"

int main(int argc, char** argv) {
  const feast::BenchArgs args = feast::parse_bench_args(argc, argv, "fig5_ast");
  if (args.cache_dir) feast::install_global_cell_cache(*args.cache_dir);
  const auto results = feast::figure5_ast(args.figure);
  feast::print_results(results);
  args.write_csv(results);
  return 0;
}
