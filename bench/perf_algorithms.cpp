/// \file perf_algorithms.cpp
/// \brief Google-benchmark microbenchmarks of the core algorithms,
///        validating §8's complexity claim: AST's distribution runs in
///        O(n^3) for n subtasks (the exact hop-indexed DP), and the list
///        scheduler stays near-quadratic.
///
/// Run with --benchmark_filter=... as usual; the asymptotic fit is printed
/// by google-benchmark's complexity reporting (BigO).
#include <benchmark/benchmark.h>

#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "experiment/figures.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/algorithms.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace feast;

/// A random graph with ~n subtasks, depth scaled with sqrt(n) so both the
/// width and the path length grow with the size.
TaskGraph sized_graph(int n, std::uint64_t seed) {
  RandomGraphConfig config = paper_workload(ExecSpreadScenario::MDET);
  config.min_subtasks = n;
  config.max_subtasks = n;
  const int depth = std::max(3, static_cast<int>(std::sqrt(static_cast<double>(n)) * 1.4));
  config.min_depth = depth;
  config.max_depth = depth;
  Pcg32 rng(seed);
  return generate_random_graph(config, rng);
}

void BM_DistributePure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 1);
  const auto ccne = make_ccne();
  for (auto _ : state) {
    auto metric = make_pure();
    benchmark::DoNotOptimize(distribute_deadlines(graph, *metric, *ccne));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DistributePure)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_DistributeAdapt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 2);
  const auto ccne = make_ccne();
  for (auto _ : state) {
    auto metric = make_adapt(8, 1.25);
    benchmark::DoNotOptimize(distribute_deadlines(graph, *metric, *ccne));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DistributeAdapt)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_DistributeCcaa(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 3);
  const auto ccaa = make_ccaa();
  for (auto _ : state) {
    auto metric = make_pure();
    benchmark::DoNotOptimize(distribute_deadlines(graph, *metric, *ccaa));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DistributeCcaa)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_ListSchedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 4);
  auto metric = make_pure();
  const auto ccne = make_ccne();
  const DeadlineAssignment asg = distribute_deadlines(graph, *metric, *ccne);
  Machine machine;
  machine.n_procs = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(graph, asg, machine));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_ListScheduleSharedBus(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 5);
  auto metric = make_pure();
  const auto ccne = make_ccne();
  const DeadlineAssignment asg = distribute_deadlines(graph, *metric, *ccne);
  Machine machine;
  machine.n_procs = 8;
  machine.contention = CommContention::SharedBus;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list_schedule(graph, asg, machine));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ListScheduleSharedBus)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_GenerateGraph(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sized_graph(n, seed++));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GenerateGraph)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_LongestPath(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TaskGraph graph = sized_graph(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(longest_path_length(graph, computation_cost));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LongestPath)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_FullPaperRun(benchmark::State& state) {
  // One complete experiment run at the paper's workload scale: generate,
  // distribute with ADAPT, schedule on 8 processors.
  std::uint64_t seed = 100;
  const auto ccne = make_ccne();
  Machine machine;
  machine.n_procs = 8;
  for (auto _ : state) {
    Pcg32 rng(seed++);
    const TaskGraph graph =
        generate_random_graph(paper_workload(ExecSpreadScenario::MDET), rng);
    auto metric = make_adapt(8, 1.25);
    const DeadlineAssignment asg = distribute_deadlines(graph, *metric, *ccne);
    benchmark::DoNotOptimize(list_schedule(graph, asg, machine));
  }
}
BENCHMARK(BM_FullPaperRun);

}  // namespace

BENCHMARK_MAIN();
