/// \file sec8_olr.cpp
/// \brief Sensitivity of the paper's conclusions to the overall laxity
///        ratio: the §5.2 workload fixes OLR = 1.5; this sweep tightens
///        and loosens the end-to-end deadlines and checks whether the
///        ADAPT-vs-PURE picture changes.
#include <iostream>

#include "experiment/cli.hpp"
#include "util/strings.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_olr");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };
  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;

  std::vector<SweepResult> results;
  for (const double olr : {1.1, 1.25, 1.5, 2.0}) {
    RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);
    workload.olr = olr;
    results.push_back(sweep_strategies("OLR sensitivity — OLR = " + format_compact(olr, 2),
                                       workload, strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
