/// \file sec8_met.cpp
/// \brief §8 complementary experiment: AST under larger and smaller mean
///        subtask execution times (MET ∈ {10, 20, 40}).
///
/// The paper reports that AST scales well with MET under ADAPT; the
/// absolute lateness scales with the workload but the strategy ordering is
/// preserved.  CCR is held at 1.0, so message sizes scale with MET.
#include <iostream>

#include "experiment/cli.hpp"
#include "util/strings.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_met");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };
  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;

  std::vector<SweepResult> results;
  for (const double met : {10.0, 20.0, 40.0}) {
    RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);
    workload.mean_exec_time = met;
    results.push_back(sweep_strategies(
        "Sec. 8 MET sweep — MET = " + format_compact(met, 1) + " time units", workload,
        strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
