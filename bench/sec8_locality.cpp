/// \file sec8_locality.cpp
/// \brief Locality-strictness sweep: from fully relaxed (0% pinned, the
///        paper's setting) to fully strict (100% pinned) task assignments.
///
/// Motivated by §1: real systems pin only the subtasks tied to physical
/// resources (sensors/actuators).  Random pinning removes the scheduler's
/// freedom to co-locate communicating subtasks, so lateness degrades as
/// strictness grows; the question is whether AST's advantage survives.
#include <iostream>

#include "experiment/cli.hpp"
#include "util/strings.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_locality");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_pure(EstimatorKind::CCAA),
      strategy_adapt(1.25),
  };

  std::vector<SweepResult> results;
  for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    BatchConfig batch;
    batch.samples = args.figure.samples;
    batch.seed = args.figure.seed;
    batch.pinned_fraction = fraction;
    results.push_back(sweep_strategies(
        "Locality sweep — " + format_compact(fraction * 100.0, 0) + "% of subtasks pinned (MDET)",
        paper_workload(ExecSpreadScenario::MDET), strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
