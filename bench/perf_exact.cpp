/// \file perf_exact.cpp
/// \brief Throughput gate for the exact branch-and-bound oracle.
///
/// Solves a seeded batch of oracle-sized instances (the gap sweeps'
/// workload: 8-12 subtasks, 2-3 processors) and reports search throughput
/// in nodes/sec plus the proven-optimal rate within the node budget.
/// Emits BENCH_exact.json; gate with --require-nodes N and/or
/// --require-proven R (e.g. 0.95) to fail the build when a search change
/// slows the oracle or degrades its ability to close instances.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exact/exact.hpp"
#include "sched/machine.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace feast;

TaskGraph oracle_instance(std::uint64_t seed) {
  RandomGraphConfig config;
  config.min_subtasks = 8;
  config.max_subtasks = 12;
  config.min_depth = 3;
  config.max_depth = 5;
  config.ccr = 1.0;
  config.olr = 1.5;
  Pcg32 rng(seed);
  return generate_random_graph(config, rng);
}

}  // namespace

int main(int argc, char** argv) {
  int samples = 96;
  std::uint64_t budget = 250000;
  double require_nodes = 0.0;
  double require_proven = 0.0;
  std::string out_path = "BENCH_exact.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "perf_exact: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") samples = std::stoi(next());
    else if (arg == "--budget") budget = std::stoull(next());
    else if (arg == "--require-nodes") require_nodes = std::stod(next());
    else if (arg == "--require-proven") require_proven = std::stod(next());
    else if (arg == "--out") out_path = next();
    else if (arg == "--quick") samples = 24;
    else {
      std::cerr << "usage: perf_exact [--samples N] [--budget N]"
                   " [--require-nodes N] [--require-proven R] [--out FILE]"
                   " [--quick]\n";
      return 2;
    }
  }

  std::cout << "perf_exact: solving " << samples
            << " oracle-sized instances on 2 and 3 processors (budget " << budget
            << " nodes)...\n";

  std::uint64_t total_nodes = 0;
  std::uint64_t total_pruned = 0;
  std::size_t solves = 0;
  std::size_t proven = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const int procs : {2, 3}) {
    Machine machine;
    machine.n_procs = procs;
    for (int s = 0; s < samples; ++s) {
      const TaskGraph graph = oracle_instance(
          seed_for(42, {static_cast<std::uint64_t>(procs),
                        static_cast<std::uint64_t>(s)}));
      exact::ExactOptions options;
      options.node_budget = budget;
      const exact::ExactResult result = exact::solve_exact(graph, machine, options);
      total_nodes += result.nodes;
      total_pruned += result.pruned_bound + result.pruned_dominated;
      ++solves;
      if (result.proven) ++proven;
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const double nodes_per_sec =
      wall_ms > 0.0 ? static_cast<double>(total_nodes) / (wall_ms / 1000.0) : 0.0;
  const double proven_rate =
      solves > 0 ? static_cast<double>(proven) / static_cast<double>(solves) : 0.0;

  std::cout << "solves:    " << solves << " (" << proven << " proven, rate "
            << proven_rate << ")\n"
            << "search:    " << total_nodes << " nodes, " << total_pruned
            << " pruned\n"
            << "wall:      " << wall_ms << " ms (" << nodes_per_sec
            << " nodes/s)\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"exact\",\n"
      << "  \"samples\": " << solves << ",\n"
      << "  \"node_budget\": " << budget << ",\n"
      << "  \"proven\": " << proven << ",\n"
      << "  \"proven_rate\": " << proven_rate << ",\n"
      << "  \"total_nodes\": " << total_nodes << ",\n"
      << "  \"total_pruned\": " << total_pruned << ",\n"
      << "  \"nodes_per_sec\": " << nodes_per_sec << ",\n"
      << "  \"wall_ms\": " << wall_ms << "\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  bool ok = true;
  if (require_nodes > 0.0 && nodes_per_sec < require_nodes) {
    std::cerr << "perf_exact: " << nodes_per_sec << " nodes/s is below the required "
              << require_nodes << "\n";
    ok = false;
  }
  if (require_proven > 0.0 && proven_rate < require_proven) {
    std::cerr << "perf_exact: proven rate " << proven_rate
              << " is below the required " << require_proven << "\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
