/// \file sec8_parallelism.cpp
/// \brief §8 complementary experiment: AST vs. BST for task graphs with
///        varying degrees of parallelism.
///
/// The paper reports (full data in tech report [15]) that AST "scales very
/// well" with graph parallelism when the ADAPT metric is used.  We vary the
/// graph depth at a fixed subtask count: shallow graphs are wide (high ξ),
/// deep graphs are narrow (low ξ).
#include <iostream>

#include "experiment/cli.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_parallelism");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };
  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;

  std::vector<SweepResult> results;
  struct DepthRange {
    const char* label;
    int min_depth;
    int max_depth;
  };
  for (const DepthRange range : {DepthRange{"wide graphs (depth 4-6, high parallelism)", 4, 6},
                                 DepthRange{"paper graphs (depth 8-12)", 8, 12},
                                 DepthRange{"deep graphs (depth 16-20, low parallelism)", 16, 20}}) {
    RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);
    workload.min_depth = range.min_depth;
    workload.max_depth = range.max_depth;
    results.push_back(sweep_strategies(std::string("Sec. 8 parallelism sweep — ") + range.label,
                                       workload, strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
