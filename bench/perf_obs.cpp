/// \file perf_obs.cpp
/// \brief Overhead gate for the observability subsystem.
///
/// The list scheduler is permanently instrumented (spans + counters in
/// sched/list_scheduler.cpp), so the cost of that instrumentation with
/// *no sink installed* must stay in the noise.  This bench times the same
/// fig2-sized batch as perf_scheduler on both cores and compares the
/// fast/reference speedup against the same absolute floors CI applies to
/// perf_scheduler (--require / --require-cf).  The reference core is
/// uninstrumented, so the speedup is a machine-normalized measure of the
/// instrumented fast core: if disabled-sink instrumentation cost real
/// time, the instrumented binary could not clear the floors the
/// uninstrumented PR 2 core was gated with.
///
/// The enabled-sink costs (aggregating sink, and capture_events for
/// Chrome traces) are measured in-binary — same machine, same run — and
/// optionally gated with --max-enabled-overhead-pct.  The committed
/// BENCH_scheduler.json baseline is read for the speedup-ratio report in
/// BENCH_obs.json; gating on it (--gate-baseline, margin
/// --max-overhead-pct) is only meaningful when the baseline was recorded
/// on the same machine — cross-machine speedups differ far more than any
/// instrumentation overhead (docs/OBSERVABILITY.md shows the measured
/// same-machine comparison).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "obs/obs.hpp"
#include "sched/batch.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/generator.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace feast;

struct Sample {
  TaskGraph graph;
  DeadlineAssignment assignment;
};

std::vector<Sample> make_batch(int samples, std::uint64_t seed) {
  const auto metric = make_pure();
  const auto estimator = make_ccne();
  std::vector<Sample> batch;
  batch.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    Pcg32 rng(seed_for(seed, {static_cast<std::uint64_t>(i)}));
    RandomGraphConfig config;  // fig2 defaults: 40-60 subtasks, MDET
    Sample sample;
    sample.graph = generate_random_graph(config, rng);
    sample.assignment = distribute_deadlines(sample.graph, *metric, *estimator);
    batch.push_back(std::move(sample));
  }
  return batch;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// Keeps the makespan checksums observable so the scheduling loops can't
/// be optimized away.
volatile double g_checksum_sink = 0.0;

/// Best-of-\p reps time for one core over the whole batch.
template <typename ScheduleOne>
double time_core(int reps, const ScheduleOne& schedule_one) {
  double best = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    g_checksum_sink = schedule_one();
    best = std::min(best, ms_since(t0));
  }
  return best;
}

struct CoreTimes {
  double ref_ms = 0.0;        ///< Reference core (uninstrumented).
  double fast_disabled_ms = 0.0;  ///< Fast core, no sink installed.
  double fast_enabled_ms = 0.0;   ///< Fast core, aggregating sink.
  double fast_capture_ms = 0.0;   ///< Fast core, event-capturing sink.

  double speedup() const {
    return fast_disabled_ms > 0.0 ? ref_ms / fast_disabled_ms : 0.0;
  }
  double enabled_overhead_pct() const {
    return fast_disabled_ms > 0.0
               ? (fast_enabled_ms / fast_disabled_ms - 1.0) * 100.0
               : 0.0;
  }
  double capture_overhead_pct() const {
    return fast_disabled_ms > 0.0
               ? (fast_capture_ms / fast_disabled_ms - 1.0) * 100.0
               : 0.0;
  }
};

CoreTimes time_batch(const std::vector<Sample>& batch, const Machine& machine,
                     const SchedulerOptions& options, int reps) {
  CoreTimes times;

  times.ref_ms = time_core(reps, [&] {
    double checksum = 0.0;
    for (const Sample& sample : batch) {
      checksum +=
          list_schedule_ref(sample.graph, sample.assignment, machine, options)
              .makespan();
    }
    return checksum;
  });

  // Same entry point perf_scheduler times: the batch scheduler in its
  // steady state (topologies built and selection caches filled on the
  // first rep; best-of-reps takes the warm passes).
  std::vector<const TaskGraph*> graphs;
  std::vector<const DeadlineAssignment*> assignments;
  for (const Sample& sample : batch) {
    graphs.push_back(&sample.graph);
    assignments.push_back(&sample.assignment);
  }
  BatchScheduler batch_sched;
  const auto run_fast = [&] {
    double checksum = 0.0;
    batch_sched.run(graphs.data(), assignments.data(), graphs.size(), machine,
                    options, [&checksum](std::size_t, const Schedule& schedule) {
                      checksum += schedule.makespan();
                    });
    return checksum;
  };

  if (obs::active() != nullptr) {
    std::cerr << "perf_obs: a sink is already installed; timings would lie\n";
    std::exit(1);
  }
  times.fast_disabled_ms = time_core(reps, run_fast);

  {
    obs::Sink sink;
    obs::ScopedSink scoped(sink);
    times.fast_enabled_ms = time_core(reps, run_fast);
  }
  {
    obs::Sink sink(/*capture_events=*/true);
    obs::ScopedSink scoped(sink);
    times.fast_capture_ms = time_core(reps, run_fast);
  }
  return times;
}

/// Reads shared_bus/contention_free speedups from a BENCH_scheduler.json.
bool read_baseline(const std::string& path, double& cf_speedup,
                   double& bus_speedup) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const JsonValue root = parse_json(text.str());
    const JsonValue* cf = root.find("contention_free");
    const JsonValue* bus = root.find("shared_bus");
    if (cf == nullptr || bus == nullptr) return false;
    const JsonValue* cf_s = cf->find("speedup");
    const JsonValue* bus_s = bus->find("speedup");
    if (cf_s == nullptr || bus_s == nullptr) return false;
    cf_speedup = cf_s->number;
    bus_speedup = bus_s->number;
    return true;
  } catch (const std::exception& e) {
    std::cerr << "perf_obs: cannot parse " << path << ": " << e.what() << "\n";
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  int samples = 128;
  int reps = 5;
  int procs = 8;
  double require = 0.0;     ///< Shared-bus speedup floor (0 = off).
  double require_cf = 0.0;  ///< Contention-free speedup floor (0 = off).
  double max_enabled_overhead_pct = 0.0;  ///< Enabled-sink ceiling (0 = off).
  double max_overhead_pct = 3.0;          ///< Baseline-ratio margin.
  bool gate_baseline = false;
  std::string baseline_path = "BENCH_scheduler.json";
  std::string out_path = "BENCH_obs.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "perf_obs: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") samples = std::stoi(next());
    else if (arg == "--reps") reps = std::stoi(next());
    else if (arg == "--procs") procs = std::stoi(next());
    else if (arg == "--require") require = std::stod(next());
    else if (arg == "--require-cf") require_cf = std::stod(next());
    else if (arg == "--max-enabled-overhead-pct")
      max_enabled_overhead_pct = std::stod(next());
    else if (arg == "--max-overhead-pct") max_overhead_pct = std::stod(next());
    else if (arg == "--gate-baseline") gate_baseline = true;
    else if (arg == "--baseline") baseline_path = next();
    else if (arg == "--out") out_path = next();
    else if (arg == "--quick") { samples = 32; reps = 3; }
    else {
      std::cerr << "usage: perf_obs [--samples N] [--reps N] [--procs N]"
                   " [--require X] [--require-cf Y]"
                   " [--max-enabled-overhead-pct X]"
                   " [--gate-baseline] [--max-overhead-pct X]"
                   " [--baseline FILE] [--out FILE] [--quick]\n";
      return 2;
    }
  }

  std::cout << "perf_obs: generating " << samples << " fig2-sized graphs...\n";
  const std::vector<Sample> batch = make_batch(samples, 42);

  Machine machine;
  machine.n_procs = procs;
  SchedulerOptions options;  // paper defaults: time-driven, EDF, gap-search

  std::cout << "timing contention-free batch (best of " << reps << ")...\n";
  const CoreTimes free_t = time_batch(batch, machine, options, reps);
  machine.contention = CommContention::SharedBus;
  std::cout << "timing shared-bus batch...\n";
  const CoreTimes bus_t = time_batch(batch, machine, options, reps);

  const auto show = [](const char* label, const CoreTimes& t) {
    std::cout << label << ": ref " << t.ref_ms << " ms, fast "
              << t.fast_disabled_ms << " ms (speedup " << t.speedup()
              << "x); sink enabled " << t.fast_enabled_ms << " ms (+"
              << t.enabled_overhead_pct() << "%), capturing " << t.fast_capture_ms
              << " ms (+" << t.capture_overhead_pct() << "%)\n";
  };
  show("contention-free", free_t);
  show("shared-bus     ", bus_t);

  double baseline_cf = 0.0;
  double baseline_bus = 0.0;
  const bool have_baseline = read_baseline(baseline_path, baseline_cf, baseline_bus);

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"obs\",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"procs\": " << procs << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"max_overhead_pct\": " << max_overhead_pct << ",\n"
      << "  \"baseline\": {\"path\": \"" << baseline_path
      << "\", \"found\": " << (have_baseline ? "true" : "false")
      << ", \"contention_free_speedup\": " << baseline_cf
      << ", \"shared_bus_speedup\": " << baseline_bus << "},\n"
      << "  \"contention_free\": {\"ref_ms\": " << free_t.ref_ms
      << ", \"fast_disabled_ms\": " << free_t.fast_disabled_ms
      << ", \"fast_enabled_ms\": " << free_t.fast_enabled_ms
      << ", \"fast_capture_ms\": " << free_t.fast_capture_ms
      << ", \"speedup\": " << free_t.speedup()
      << ", \"enabled_overhead_pct\": " << free_t.enabled_overhead_pct() << "},\n"
      << "  \"shared_bus\": {\"ref_ms\": " << bus_t.ref_ms
      << ", \"fast_disabled_ms\": " << bus_t.fast_disabled_ms
      << ", \"fast_enabled_ms\": " << bus_t.fast_enabled_ms
      << ", \"fast_capture_ms\": " << bus_t.fast_capture_ms
      << ", \"speedup\": " << bus_t.speedup()
      << ", \"enabled_overhead_pct\": " << bus_t.enabled_overhead_pct() << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";

  bool ok = true;

  // Primary gate: the instrumented fast core (sinks disabled) must clear
  // the same absolute machine-normalized speedup floors CI applies to
  // perf_scheduler.  Disabled-sink overhead would push it below them.
  if (require > 0.0 && bus_t.speedup() < require) {
    std::cerr << "perf_obs: shared-bus speedup " << bus_t.speedup()
              << "x is below the required " << require << "x\n";
    ok = false;
  }
  if (require_cf > 0.0 && free_t.speedup() < require_cf) {
    std::cerr << "perf_obs: contention-free speedup " << free_t.speedup()
              << "x is below the required " << require_cf << "x\n";
    ok = false;
  }

  // Enabled-sink gate: measured in this binary, so same machine and run.
  const auto gate_enabled = [&](const char* label, const CoreTimes& t) {
    if (max_enabled_overhead_pct <= 0.0) return;
    if (t.enabled_overhead_pct() > max_enabled_overhead_pct) {
      std::cerr << "perf_obs: " << label << " enabled-sink overhead "
                << t.enabled_overhead_pct() << "% exceeds the allowed "
                << max_enabled_overhead_pct << "%\n";
      ok = false;
    }
  };
  gate_enabled("contention-free", free_t);
  gate_enabled("shared-bus", bus_t);

  // Baseline ratio: reported always, gated only on request (the baseline
  // must come from the same machine for the ratio to mean anything).
  if (have_baseline) {
    const double floor = 1.0 - max_overhead_pct / 100.0;
    const auto compare = [&](const char* label, double current, double baseline) {
      if (baseline <= 0.0) return;
      const double ratio = current / baseline;
      std::cout << label << " speedup " << current << "x vs baseline " << baseline
                << "x (ratio " << ratio << ")\n";
      if (gate_baseline && ratio < floor) {
        std::cerr << "perf_obs: " << label
                  << " speedup regressed beyond the allowed " << max_overhead_pct
                  << "% of the baseline\n";
        ok = false;
      }
    };
    compare("contention-free", free_t.speedup(), baseline_cf);
    compare("shared-bus", bus_t.speedup(), baseline_bus);
  } else {
    std::cout << "perf_obs: no baseline at " << baseline_path
              << "; ratio report skipped\n";
  }
  return ok ? 0 : 1;
}
