/// \file sec8_bus.cpp
/// \brief §8 future-work experiment: contention-based communication — the
///        paper's delay model vs. a fully serialized shared bus with
///        deadline-ordered slot allocation.
#include <iostream>

#include "experiment/cli.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_bus");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_pure(EstimatorKind::CCAA),
      strategy_adapt(1.25),
  };

  std::vector<SweepResult> results;
  for (const CommContention contention :
       {CommContention::ContentionFree, CommContention::PointToPointLinks,
        CommContention::SharedBus}) {
    BatchConfig batch;
    batch.samples = args.figure.samples;
    batch.seed = args.figure.seed;
    batch.contention = contention;
    results.push_back(sweep_strategies(
        std::string("Sec. 8 bus model — ") + to_string(contention) + " (MDET)",
        paper_workload(ExecSpreadScenario::MDET), strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
