/// \file fig2_bst.cpp
/// \brief Reproduces Figure 2: maximum task lateness for the BST metrics
///        (PURE, NORM) under both communication-cost estimation strategies
///        (CCNE, CCAA), across system sizes and execution-time spreads.
///
/// Expected shape (paper §6): lateness decreases roughly linearly with
/// system size and then saturates; CCNE beats CCAA throughout; PURE
/// saturates far better than NORM, and NORM's deficit grows with the
/// execution-time spread (worst for HDET).
#include <iostream>

#include "campaign/cache.hpp"
#include "experiment/cli.hpp"

int main(int argc, char** argv) {
  const feast::BenchArgs args = feast::parse_bench_args(argc, argv, "fig2_bst");
  if (args.cache_dir) feast::install_global_cell_cache(*args.cache_dir);
  const auto results = feast::figure2_bst(args.figure);
  feast::print_results(results);
  args.write_csv(results);
  return 0;
}
