/// \file sec8_heterogeneous.cpp
/// \brief §8 future work: AST on a heterogeneous multiprocessor.
///
/// Processor speeds alternate between fast and slow while the *mean* speed
/// stays 1, so the total capacity matches the homogeneous baseline and
/// differences come purely from heterogeneity.  Deadline distribution
/// cannot know the speeds (it runs before assignment), which makes this a
/// stress test of the relaxed-locality premise.
#include <iostream>
#include <vector>

#include "experiment/cli.hpp"
#include "util/strings.hpp"

using namespace feast;

namespace {

/// Alternating fast/slow speeds with mean 1: {1+s, 1-s, 1+s, ...}
/// (harmonic pairing keeps total capacity constant across the sweep).
std::vector<double> alternating_speeds(int n_procs, double spread) {
  std::vector<double> speeds(static_cast<std::size_t>(n_procs));
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    speeds[i] = i % 2 == 0 ? 1.0 + spread : 1.0 - spread;
  }
  return speeds;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_heterogeneous");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };

  std::vector<SweepResult> results;
  for (const double spread : {0.0, 0.25, 0.5}) {
    BatchConfig batch;
    batch.samples = args.figure.samples;
    batch.seed = args.figure.seed;
    // The sweep framework owns machine construction per size; speeds are
    // injected through the machine-shaping hook.
    batch.shape_machine = [spread](Machine& machine) {
      machine.speeds = alternating_speeds(machine.n_procs, spread);
    };
    results.push_back(sweep_strategies(
        "Sec. 8 heterogeneity — speeds 1±" + format_compact(spread, 2) + " (MDET)",
        paper_workload(ExecSpreadScenario::MDET), strategies, args.figure.sizes,
        batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
