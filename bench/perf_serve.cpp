/// \file perf_serve.cpp
/// \brief Throughput/latency gate for the serve daemon.
///
/// Starts an in-process daemon on an ephemeral loopback port, then hammers
/// it from concurrent client threads with /v1/cell requests cycling over a
/// small campaign's cells.  The first pass over each cell costs a real
/// worker subprocess; every later request rides the dedup/memo path — so
/// the run measures both the dispatch pipeline and the reactor's
/// request-handling ceiling, and reports the dedup hit rate that makes the
/// difference.
///
/// A second phase measures the remote-dispatch path: a remote-only daemon
/// (workers = 0) served by a real `feastc worker` loop, with one scripted
/// worker that leases a cell and dies holding it — so the numbers include
/// the lease-expiry requeue a worker kill costs.  Emits BENCH_serve.json
/// (both phases: cells/sec, p50/p95/p99 latency, dedup hit rate, requeue
/// count) for the CI artifact shelf.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/remote_worker.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace {

using namespace feast;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string spec_text(int sizes) {
  std::string text =
      "name = perf-serve\n"
      "samples = 3\n"
      "seed = 4242\n"
      "strategies = pure, ud\n"
      "sizes = ";
  for (int i = 0; i < sizes; ++i) {
    if (i != 0) text += ", ";
    text += std::to_string(2 + 2 * i);
  }
  text += "\n";
  return text;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  int clients = 4;
  int requests = 64;  // Per client.
  int workers = 2;
  int sizes = 2;  // Cells = 2 strategies × sizes.
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients" && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (arg == "--requests" && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--sizes" && i + 1 < argc) {
      sizes = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: perf_serve [--clients N] [--requests N]"
                   " [--workers N] [--sizes N] [--out FILE]\n";
      return 2;
    }
  }
  if (clients < 1 || requests < 1 || workers < 1 || sizes < 1) {
    std::cerr << "perf_serve: all counts must be >= 1\n";
    return 2;
  }

  const fs::path scratch =
      fs::temp_directory_path() /
      ("feast-perf-serve-" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(scratch, ec);

  serve::ServeOptions options;
  options.work_dir = (scratch / "work").string();
  options.cache_dir = (scratch / "cache").string();
  options.feastc_path = FEAST_FEASTC_PATH;
  options.workers = workers;
  options.max_queue = 1024;
  options.max_connections = 1024;
  serve::Server server(std::move(options));
  server.start();
  std::thread reactor([&server] { server.run(); });
  const std::uint16_t port = server.port();

  const std::string spec = spec_text(sizes);
  const int cells = 2 * sizes;
  std::mutex merge_mu;
  std::vector<double> latencies_ms;
  std::uint64_t failures = 0;

  const auto started = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(requests));
      std::uint64_t local_failures = 0;
      const std::string client_name = "bench-" + std::to_string(c);
      for (int r = 0; r < requests; ++r) {
        const std::string body = "{\"spec\": \"" + json_escape(spec) +
                                 "\", \"cell\": " +
                                 std::to_string((c + r) % cells) + "}";
        const auto t0 = Clock::now();
        const serve::HttpReply reply = serve::http_request(
            "127.0.0.1", port, "POST", "/v1/cell", body, client_name, 300.0);
        const auto t1 = Clock::now();
        if (reply.ok() && reply.status == 200) {
          local.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        } else {
          ++local_failures;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      failures += local_failures;
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - started).count();

  const serve::ServeStatsSnapshot stats = server.stats();
  server.request_stop();
  reactor.join();
  fs::remove_all(scratch, ec);

  // ----------------------------------------------------------- remote phase
  // The same hammering against a remote-only daemon (workers = 0) served by
  // a real `feastc worker` loop over loopback.  One scripted worker leases a
  // cell first and dies holding it, so the measured numbers include the
  // lease-expiry requeue a SIGKILLed peer costs the fabric.
  const fs::path remote_scratch =
      fs::temp_directory_path() /
      ("feast-perf-serve-remote-" + std::to_string(::getpid()));
  fs::remove_all(remote_scratch, ec);

  serve::ServeOptions remote_options;
  remote_options.work_dir = (remote_scratch / "work").string();
  remote_options.cache_dir = (remote_scratch / "cache").string();
  remote_options.feastc_path = FEAST_FEASTC_PATH;
  remote_options.workers = 0;
  remote_options.max_queue = 1024;
  remote_options.max_connections = 1024;
  remote_options.lease_timeout_s = 1.0;
  remote_options.heartbeat_timeout_s = 30.0;
  serve::Server remote_server(std::move(remote_options));
  remote_server.start();
  std::thread remote_reactor([&remote_server] { remote_server.run(); });
  const std::uint16_t remote_port = remote_server.port();

  std::string ghost_id;
  {
    const serve::HttpReply reply = serve::http_request(
        "127.0.0.1", remote_port, "POST", "/v1/worker/register",
        "{\"name\": \"bench-ghost\"}", "", 30.0);
    if (reply.status == 200) {
      const JsonValue root = parse_json(reply.body);
      if (const JsonValue* id = root.find("worker")) ghost_id = id->string;
    }
  }
  std::thread ghost_feeder([&] {
    serve::http_request("127.0.0.1", remote_port, "POST", "/v1/cell",
                        "{\"spec\": \"" + json_escape(spec) +
                            "\", \"cell\": 0}",
                        "bench-feeder", 300.0);
  });
  // Wait for the ghost's lease grant before the healthy worker exists, so
  // the kill provably abandons a held lease.
  for (int i = 0; i < 2000 && !ghost_id.empty(); ++i) {
    const serve::HttpReply reply = serve::http_request(
        "127.0.0.1", remote_port, "POST", "/v1/worker/lease",
        "{\"worker\": \"" + ghost_id + "\"}", "", 30.0);
    if (reply.status == 200 &&
        reply.body.find("\"lease\"") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::atomic<bool> worker_stop{false};
  serve::RemoteWorkerStats worker_stats;
  serve::RemoteWorkerOptions worker_options;
  worker_options.port = remote_port;
  worker_options.name = "bench-remote-w0";
  worker_options.work_dir = (remote_scratch / "worker").string();
  worker_options.no_cache = true;
  worker_options.feastc_path = FEAST_FEASTC_PATH;
  worker_options.poll_ms = 5;
  std::thread worker_thread([&] {
    serve::run_remote_worker(worker_options, &worker_stop, &worker_stats);
  });

  std::vector<double> remote_latencies_ms;
  std::uint64_t remote_failures = 0;
  const auto remote_started = Clock::now();
  std::vector<std::thread> remote_threads;
  remote_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    remote_threads.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(static_cast<std::size_t>(requests));
      std::uint64_t local_failures = 0;
      const std::string client_name = "bench-remote-" + std::to_string(c);
      for (int r = 0; r < requests; ++r) {
        const std::string body = "{\"spec\": \"" + json_escape(spec) +
                                 "\", \"cell\": " +
                                 std::to_string((c + r) % cells) + "}";
        const auto t0 = Clock::now();
        const serve::HttpReply reply =
            serve::http_request("127.0.0.1", remote_port, "POST", "/v1/cell",
                                body, client_name, 300.0);
        const auto t1 = Clock::now();
        if (reply.ok() && reply.status == 200) {
          local.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        } else {
          ++local_failures;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      remote_latencies_ms.insert(remote_latencies_ms.end(), local.begin(),
                                 local.end());
      remote_failures += local_failures;
    });
  }
  for (std::thread& t : remote_threads) t.join();
  ghost_feeder.join();
  const double remote_wall_s =
      std::chrono::duration<double>(Clock::now() - remote_started).count();

  const serve::ServeStatsSnapshot remote_stats = remote_server.stats();
  worker_stop.store(true);
  worker_thread.join();
  remote_server.request_stop();
  remote_reactor.join();
  fs::remove_all(remote_scratch, ec);

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const std::uint64_t ok = latencies_ms.size();
  const double cells_per_sec =
      wall_s > 0.0 ? static_cast<double>(ok) / wall_s : 0.0;
  const double p50 = percentile(latencies_ms, 0.50);
  const double p95 = percentile(latencies_ms, 0.95);
  const double p99 = percentile(latencies_ms, 0.99);
  const double dedup_rate =
      stats.requests > 0
          ? static_cast<double>(stats.dedup_hits) /
                static_cast<double>(stats.requests)
          : 0.0;

  std::sort(remote_latencies_ms.begin(), remote_latencies_ms.end());
  const std::uint64_t remote_ok = remote_latencies_ms.size();
  const double remote_cells_per_sec =
      remote_wall_s > 0.0 ? static_cast<double>(remote_ok) / remote_wall_s
                          : 0.0;
  const double remote_p50 = percentile(remote_latencies_ms, 0.50);
  const double remote_p95 = percentile(remote_latencies_ms, 0.95);
  const double remote_p99 = percentile(remote_latencies_ms, 0.99);

  char buffer[2048];
  std::snprintf(
      buffer, sizeof buffer,
      "{\n"
      "  \"bench\": \"serve\",\n"
      "  \"clients\": %d,\n"
      "  \"requests_per_client\": %d,\n"
      "  \"cells\": %d,\n"
      "  \"workers\": %d,\n"
      "  \"ok\": %llu,\n"
      "  \"failures\": %llu,\n"
      "  \"wall_s\": %.6f,\n"
      "  \"cells_per_sec\": %.3f,\n"
      "  \"p50_ms\": %.4f,\n"
      "  \"p95_ms\": %.4f,\n"
      "  \"p99_ms\": %.4f,\n"
      "  \"dispatched\": %llu,\n"
      "  \"dedup_hits\": %llu,\n"
      "  \"cache_hits\": %llu,\n"
      "  \"dedup_hit_rate\": %.4f,\n"
      "  \"remote\": {\n"
      "    \"ok\": %llu,\n"
      "    \"failures\": %llu,\n"
      "    \"wall_s\": %.6f,\n"
      "    \"cells_per_sec\": %.3f,\n"
      "    \"p50_ms\": %.4f,\n"
      "    \"p95_ms\": %.4f,\n"
      "    \"p99_ms\": %.4f,\n"
      "    \"dispatched\": %llu,\n"
      "    \"requeued\": %llu,\n"
      "    \"workers_lost\": %llu,\n"
      "    \"worker_cells_ok\": %llu\n"
      "  }\n"
      "}\n",
      clients, requests, cells, workers,
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(failures), wall_s, cells_per_sec, p50,
      p95, p99, static_cast<unsigned long long>(stats.dispatched),
      static_cast<unsigned long long>(stats.dedup_hits),
      static_cast<unsigned long long>(stats.cache_hits), dedup_rate,
      static_cast<unsigned long long>(remote_ok),
      static_cast<unsigned long long>(remote_failures), remote_wall_s,
      remote_cells_per_sec, remote_p50, remote_p95, remote_p99,
      static_cast<unsigned long long>(remote_stats.dispatched),
      static_cast<unsigned long long>(remote_stats.requeued),
      static_cast<unsigned long long>(remote_stats.workers_lost),
      static_cast<unsigned long long>(worker_stats.cells_ok));

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << buffer;
  out.close();
  std::cout << buffer;

  if (failures != 0 || remote_failures != 0) {
    std::cerr << "FAIL: " << (failures + remote_failures)
              << " requests did not complete\n";
    return 1;
  }
  if (remote_stats.workers_lost < 1 || remote_stats.requeued < 1) {
    std::cerr << "FAIL: the scripted worker kill produced no requeue\n";
    return 1;
  }
  return 0;
}
