/// \file sec8_ccr.cpp
/// \brief §8 complementary experiment: AST under varying communication-to-
///        computation cost ratios (CCR ∈ {0.25, 0.5, 1, 2, 4}).
///
/// Also contrasts the CCNE and CCAA estimators as communication grows:
/// the slack CCAA burns on message windows scales with CCR, so its deficit
/// against CCNE should widen.
#include <iostream>

#include "experiment/cli.hpp"
#include "util/strings.hpp"

using namespace feast;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "sec8_ccr");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_pure(EstimatorKind::CCAA),
      strategy_adapt(1.25),
  };
  BatchConfig batch;
  batch.samples = args.figure.samples;
  batch.seed = args.figure.seed;

  std::vector<SweepResult> results;
  for (const double ccr : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);
    workload.ccr = ccr;
    results.push_back(sweep_strategies("Sec. 8 CCR sweep — CCR = " + format_compact(ccr, 2),
                                       workload, strategies, args.figure.sizes, batch));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
