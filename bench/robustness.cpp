/// \file robustness.cpp
/// \brief Runtime-robustness experiment: §4.1 motivates the maximum task
///        lateness as "an indicator on how far from infeasibility the
///        schedule is and how much additional background workload the
///        schedule can handle".  This bench tests that claim directly:
///        offline plans produced by PURE and ADAPT are executed by the
///        discrete-event runtime simulator under growing background load
///        (and under execution-time overruns), and we measure how often
///        windows are actually missed.
///
/// Expectation: the strategy with the more negative offline max lateness
/// (ADAPT on small systems) should tolerate more disturbance before its
/// miss rate takes off.
#include <iostream>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "experiment/cli.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/runtime_sim.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace feast;

namespace {

struct Cell {
  double mean_max_lateness = 0.0;
  double miss_fraction = 0.0;  ///< Runs where at least one window was missed.
};

Cell run_cell(bool adapt, int n_procs, const RuntimeOptions& runtime, int samples,
              std::uint64_t seed) {
  RunningStats lateness;
  int missed_runs = 0;
  const auto ccne = make_ccne();
  const RandomGraphConfig workload = paper_workload(ExecSpreadScenario::MDET);

  for (int sample = 0; sample < samples; ++sample) {
    Pcg32 graph_rng(seed_for(seed, {0, static_cast<std::uint64_t>(sample)}),
                    static_cast<std::uint64_t>(sample));
    const TaskGraph graph = generate_random_graph(workload, graph_rng);

    Machine machine;
    machine.n_procs = n_procs;
    const auto metric = adapt ? std::unique_ptr<SliceMetric>(make_adapt(n_procs, 1.25))
                              : std::unique_ptr<SliceMetric>(make_pure());
    const DeadlineAssignment assignment = distribute_deadlines(graph, *metric, *ccne);
    const Schedule plan = list_schedule(graph, assignment, machine);

    Pcg32 sim_rng(seed_for(seed, {1, static_cast<std::uint64_t>(sample)}),
                  static_cast<std::uint64_t>(sample));
    const RuntimeResult result =
        simulate_runtime(graph, assignment, plan, machine, runtime, sim_rng);
    lateness.add(result.lateness.max_lateness);
    if (!result.lateness.feasible()) ++missed_runs;
  }
  return Cell{lateness.mean(),
              static_cast<double>(missed_runs) / static_cast<double>(samples)};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "robustness");
  const int samples = args.figure.samples;

  std::cout << "Runtime robustness (MDET, N=2, " << samples
            << " graphs; 'miss' = fraction of runs with any missed window)\n\n";

  // Sweep 1: background utilization at WCET execution.
  {
    TextTable table;
    table.set_header({"background util", "PURE max-lateness", "PURE miss",
                      "ADAPT max-lateness", "ADAPT miss"});
    for (const double util : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      RuntimeOptions runtime;
      runtime.background_utilization = util;
      // Heavy jobs: each one blocks the processor for 2-3 subtask lengths,
      // so the non-preemptive blocking actually stresses the windows.
      runtime.background_service = 50.0;
      const Cell pure = run_cell(false, 2, runtime, samples, args.figure.seed);
      const Cell adapt = run_cell(true, 2, runtime, samples, args.figure.seed);
      table.add_row({format_compact(util, 2), format_fixed(pure.mean_max_lateness, 1),
                     format_fixed(pure.miss_fraction * 100.0, 0) + "%",
                     format_fixed(adapt.mean_max_lateness, 1),
                     format_fixed(adapt.miss_fraction * 100.0, 0) + "%"});
    }
    table.render(std::cout);
    std::cout << "\n";
  }

  // Sweep 2: execution-time overruns, no background load.
  {
    TextTable table;
    table.set_header({"overrun factor", "PURE max-lateness", "PURE miss",
                      "ADAPT max-lateness", "ADAPT miss"});
    for (const double factor : {1.0, 1.1, 1.25, 1.5, 2.0}) {
      RuntimeOptions runtime;
      runtime.exec_scale_min = factor;
      runtime.exec_scale_max = factor;
      const Cell pure = run_cell(false, 2, runtime, samples, args.figure.seed);
      const Cell adapt = run_cell(true, 2, runtime, samples, args.figure.seed);
      table.add_row({format_compact(factor, 2), format_fixed(pure.mean_max_lateness, 1),
                     format_fixed(pure.miss_fraction * 100.0, 0) + "%",
                     format_fixed(adapt.mean_max_lateness, 1),
                     format_fixed(adapt.miss_fraction * 100.0, 0) + "%"});
    }
    table.render(std::cout);
  }
  return 0;
}
