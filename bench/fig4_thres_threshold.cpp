/// \file fig4_thres_threshold.cpp
/// \brief Reproduces Figure 4: the THRES metric under execution-time
///        thresholds c_thres ∈ {0.75, 1.0, 1.25} × MET (Δ = 1).
///
/// Expected shape (paper §7): performance improves slightly as the
/// threshold rises, but varying the threshold ±25% around MET moves the
/// result only a few percent — the threshold choice is far less critical
/// than the surplus factor.
#include <iostream>

#include "experiment/cli.hpp"

int main(int argc, char** argv) {
  const feast::BenchArgs args =
      feast::parse_bench_args(argc, argv, "fig4_thres_threshold");
  const auto results = feast::figure4_thres_threshold(args.figure);
  feast::print_results(results);
  args.write_csv(results);
  return 0;
}
