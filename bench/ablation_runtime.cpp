/// \file ablation_runtime.cpp
/// \brief Ablation of the run-time-model choices DESIGN.md calls out:
///        time-driven vs. eager releases, gap-search vs. queue-at-end
///        processor placement, and the respect-interior-bounds slicing
///        extension.
#include <iostream>

#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "experiment/cli.hpp"

using namespace feast;

namespace {

/// ADAPT under the FEAST extension that forbids window overlaps across
/// precedence-related subtasks in different sliced paths.
Strategy strategy_adapt_interior_bounds() {
  return Strategy{"ADAPT(interior-bounds)", [](int n_procs) {
                    SlicingOptions options;
                    options.respect_interior_bounds = true;
                    return make_slicing_distributor(make_adapt(n_procs, 1.25),
                                                    make_ccne(), options);
                  }};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv, "ablation_runtime");

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_adapt(1.25),
      strategy_adapt_interior_bounds(),
  };

  struct Variant {
    const char* label;
    ReleasePolicy release;
    ProcessorPolicy processor;
  };
  std::vector<SweepResult> results;
  for (const Variant variant :
       {Variant{"time-driven + gap-search (paper model)", ReleasePolicy::TimeDriven,
                ProcessorPolicy::GapSearch},
        Variant{"time-driven + queue-at-end", ReleasePolicy::TimeDriven,
                ProcessorPolicy::QueueAtEnd},
        Variant{"eager + gap-search", ReleasePolicy::Eager, ProcessorPolicy::GapSearch}}) {
    BatchConfig batch;
    batch.samples = args.figure.samples;
    batch.seed = args.figure.seed;
    RunContext context;
    context.scheduler.release_policy = variant.release;
    context.scheduler.processor_policy = variant.processor;
    results.push_back(sweep_strategies(std::string("Run-time ablation — ") + variant.label,
                                       paper_workload(ExecSpreadScenario::MDET),
                                       strategies, args.figure.sizes, batch, context));
  }
  print_results(results);
  args.write_csv(results);
  return 0;
}
