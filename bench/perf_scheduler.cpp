/// \file perf_scheduler.cpp
/// \brief Single-thread throughput of the optimized list-scheduler core
///        against the retained reference implementation.
///
/// The workload is a figure-2-sized batch: 128 random task graphs (paper
/// defaults: 40-60 subtasks, depth 8-12, MDET spread) with PURE/CCNE
/// deadline windows, scheduled back to back on one machine shape — the
/// exact shape of one experiment cell, which is what the optimized core
/// was built for.  Both cores schedule the identical batch; the reference
/// core pays its per-run allocations, the optimized core reuses one
/// SchedulerScratch arena.  Traces are verified equal outside the timed
/// region, and makespans are checksummed inside it to keep the compiler
/// honest.
///
/// The optimized side runs through BatchScheduler — the batch entry point
/// the experiment pipeline itself uses — so per-graph topology preparation
/// amortizes across reps exactly as it does across samples of a sweep, and
/// the steady state performs zero heap allocation.  Emits
/// BENCH_scheduler.json.  Two gates, both enforced by CI:
/// `--require X` checks the shared-bus speedup — the configuration that
/// exercises the full optimized machinery (BusTimeline tail-hint /
/// binary-search gap queries on a timeline that actually grows) — and
/// `--require-cf Y` is the contention-free regression floor, where the
/// bus machinery is idle and the win comes from the arena + indexed ready
/// queue alone.  Measured speedups rise with the processor count (more
/// candidate processors per placement, longer bus timelines); see
/// docs/SCHEDULER.md for the measured table.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "sched/batch.hpp"
#include "sched/kernels/kernels.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/trace.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace feast;

struct Sample {
  TaskGraph graph;
  DeadlineAssignment assignment;
};

std::vector<Sample> make_batch(int samples, std::uint64_t seed) {
  const auto metric = make_pure();
  const auto estimator = make_ccne();
  std::vector<Sample> batch;
  batch.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    Pcg32 rng(seed_for(seed, {static_cast<std::uint64_t>(i)}));
    RandomGraphConfig config;  // fig2 defaults: 40-60 subtasks, MDET
    Sample sample;
    sample.graph = generate_random_graph(config, rng);
    sample.assignment = distribute_deadlines(sample.graph, *metric, *estimator);
    batch.push_back(std::move(sample));
  }
  return batch;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

struct Timing {
  double ref_ms = 0.0;
  double fast_ms = 0.0;
  double checksum_ref = 0.0;
  double checksum_fast = 0.0;

  double speedup() const { return fast_ms > 0.0 ? ref_ms / fast_ms : 0.0; }
};

/// Best-of-\p reps batch time for both cores on one machine shape.
Timing time_batch(const std::vector<Sample>& batch, const Machine& machine,
                  const SchedulerOptions& options, int reps) {
  Timing timing;
  timing.ref_ms = 1e300;
  timing.fast_ms = 1e300;

  std::vector<const TaskGraph*> graphs;
  std::vector<const DeadlineAssignment*> assignments;
  for (const Sample& sample : batch) {
    graphs.push_back(&sample.graph);
    assignments.push_back(&sample.assignment);
  }
  BatchScheduler batch_sched;

  // Correctness gate first (untimed): the batch path must agree with the
  // reference core on every sample or the comparison is meaningless.
  batch_sched.run(graphs.data(), assignments.data(), graphs.size(), machine,
                  options, [&](std::size_t i, const Schedule& fast) {
                    const Schedule ref = list_schedule_ref(
                        batch[i].graph, batch[i].assignment, machine, options);
                    std::string why;
                    if (!schedule_trace_equal(batch[i].graph, ref, fast, &why)) {
                      std::cerr << "perf_scheduler: core divergence: " << why
                                << "\n";
                      std::exit(1);
                    }
                  });

  for (int rep = 0; rep < reps; ++rep) {
    double checksum = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (const Sample& sample : batch) {
      checksum +=
          list_schedule_ref(sample.graph, sample.assignment, machine, options)
              .makespan();
    }
    timing.ref_ms = std::min(timing.ref_ms, ms_since(t0));
    timing.checksum_ref = checksum;

    // The batch scheduler already holds every sample's prepared topology
    // from the gate pass above, so from the first timed rep onward this is
    // the experiment pipeline's steady state: zero builds, zero allocation.
    checksum = 0.0;
    t0 = std::chrono::steady_clock::now();
    batch_sched.run(graphs.data(), assignments.data(), graphs.size(), machine,
                    options, [&checksum](std::size_t, const Schedule& schedule) {
                      checksum += schedule.makespan();
                    });
    timing.fast_ms = std::min(timing.fast_ms, ms_since(t0));
    timing.checksum_fast = checksum;
  }
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  int samples = 128;
  int reps = 5;
  int procs = 8;
  double require = 0.0;
  double require_cf = 0.0;
  std::string out_path = "BENCH_scheduler.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "perf_scheduler: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--samples") samples = std::stoi(next());
    else if (arg == "--reps") reps = std::stoi(next());
    else if (arg == "--procs") procs = std::stoi(next());
    else if (arg == "--require") require = std::stod(next());
    else if (arg == "--require-cf") require_cf = std::stod(next());
    else if (arg == "--out") out_path = next();
    else if (arg == "--quick") { samples = 32; reps = 3; }
    else {
      std::cerr << "usage: perf_scheduler [--samples N] [--reps N] [--procs N]"
                   " [--require X] [--require-cf Y] [--out FILE] [--quick]\n";
      return 2;
    }
  }

  std::cout << "perf_scheduler: generating " << samples << " fig2-sized graphs...\n";
  const std::vector<Sample> batch = make_batch(samples, 42);

  Machine machine;
  machine.n_procs = procs;

  SchedulerOptions options;  // paper defaults: time-driven, EDF, gap-search
  std::cout << "timing contention-free batch (best of " << reps << ")...\n";
  const Timing free_t = time_batch(batch, machine, options, reps);

  machine.contention = CommContention::SharedBus;
  std::cout << "timing shared-bus batch...\n";
  const Timing bus_t = time_batch(batch, machine, options, reps);

  std::cout << "contention-free: ref " << free_t.ref_ms << " ms, fast "
            << free_t.fast_ms << " ms, speedup " << free_t.speedup() << "x\n"
            << "shared-bus:      ref " << bus_t.ref_ms << " ms, fast "
            << bus_t.fast_ms << " ms, speedup " << bus_t.speedup() << "x\n"
            << "checksums: " << free_t.checksum_fast << " / " << bus_t.checksum_fast
            << "\n";

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"bench\": \"scheduler\",\n"
      << "  \"samples\": " << samples << ",\n"
      << "  \"procs\": " << procs << ",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"backend\": \"" << kernels::active().name << "\",\n"
      << "  \"cpu_features\": \"" << kernels::cpu_features() << "\",\n"
      << "  \"built_with_avx2\": " << (kernels::built_with_avx2() ? "true" : "false")
      << ",\n"
      << "  \"contention_free\": {\"ref_ms\": " << free_t.ref_ms
      << ", \"fast_ms\": " << free_t.fast_ms << ", \"speedup\": " << free_t.speedup()
      << "},\n"
      << "  \"shared_bus\": {\"ref_ms\": " << bus_t.ref_ms
      << ", \"fast_ms\": " << bus_t.fast_ms << ", \"speedup\": " << bus_t.speedup()
      << "}\n"
      << "}\n";
  std::cout << "wrote " << out_path << "\n";


  bool ok = true;
  if (require > 0.0 && bus_t.speedup() < require) {
    std::cerr << "perf_scheduler: shared-bus speedup " << bus_t.speedup()
              << "x is below the required " << require << "x\n";
    ok = false;
  }
  if (require_cf > 0.0 && free_t.speedup() < require_cf) {
    std::cerr << "perf_scheduler: contention-free speedup " << free_t.speedup()
              << "x is below the required " << require_cf << "x\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
