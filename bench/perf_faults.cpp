/// \file perf_faults.cpp
/// \brief Overhead gate for the fault-injection sites.
///
/// The injection sites in the campaign pool, the cell cache and the
/// manifest writer are compiled in permanently (check/fault.hpp), exactly
/// like the scheduler's obs instrumentation — so the production
/// configuration, *no plan installed*, must cost one relaxed atomic load
/// and a branch.  This bench times check::fire() per call in three
/// configurations: no plan, an installed plan with no rule for the site,
/// and an installed plan armed at an occurrence that never arrives.  Gate
/// with --max-ns to fail the build when a "cheap" refactor makes the
/// disabled path take real time.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "check/fault.hpp"

namespace {

using namespace feast;

constexpr std::uint64_t kIterations = 20'000'000;

/// ns per fire() call under the currently installed plan.
double time_fire_ns() {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t armed = 0;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    if (check::fire(check::FaultSite::PoolTask)) ++armed;
  }
  const auto stop = std::chrono::steady_clock::now();
  if (armed != 0) std::abort();  // Plans in this bench must never fire.
  const double ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count());
  return ns / static_cast<double>(kIterations);
}

}  // namespace

int main(int argc, char** argv) {
  double max_ns = 0.0;  // 0: report only.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--max-ns" && i + 1 < argc) {
      max_ns = std::atof(argv[++i]);
    } else {
      std::cerr << "usage: perf_faults [--max-ns N]\n";
      return 2;
    }
  }

  const double disabled_ns = time_fire_ns();

  check::FaultPlan unrelated("cache-store:1:throw");
  double unrelated_ns = 0.0;
  {
    check::ScopedFaultPlan scope(&unrelated);
    unrelated_ns = time_fire_ns();
  }

  // Armed for this site, but at an occurrence beyond the loop: the worst
  // counted-but-never-firing case (rule scan on every call).
  check::FaultPlan distant("pool-task:999999999999:die");
  double distant_ns = 0.0;
  {
    check::ScopedFaultPlan scope(&distant);
    distant_ns = time_fire_ns();
  }

  std::cout << "fire() per call, " << kIterations << " iterations:\n";
  std::cout << "  no plan installed:   " << disabled_ns << " ns\n";
  std::cout << "  plan, other site:    " << unrelated_ns << " ns\n";
  std::cout << "  plan, distant nth:   " << distant_ns << " ns\n";

  if (max_ns > 0.0 && disabled_ns > max_ns) {
    std::cerr << "FAIL: disabled fire() costs " << disabled_ns << " ns > --max-ns "
              << max_ns << "\n";
    return 1;
  }
  return 0;
}
