/// \file pool.hpp
/// \brief Persistent work-stealing thread pool backing all FEAST parallelism.
///
/// The seed implementation spawned fresh std::threads on every
/// feast::parallel_for call; a large sweep (strategies × sizes × scenarios)
/// paid thousands of thread creations.  This pool is created once, keeps one
/// deque per worker, and serves both the data-parallel loops of the
/// experiment batches (via feast::parallel_for, which delegates here) and
/// the task-level parallelism of the campaign runner (via submit/async).
///
/// Scheduling discipline: a worker pushes and pops its own deque at the back
/// (LIFO, cache-friendly for recursively spawned work) and steals from the
/// front of other workers' deques (FIFO, takes the oldest — typically
/// largest — piece of work).  External submissions are sprayed round-robin
/// over the worker deques.
///
/// parallel_for never blocks the pool: the calling thread participates in
/// the loop and claims every index not already taken by a helper, so the
/// loop completes even when all workers are busy — which makes nested
/// parallel_for (a campaign cell running its 128-sample batch from inside a
/// pool worker) deadlock-free by construction.
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>

namespace feast {

class WorkStealingPool {
 public:
  /// Starts \p threads workers (0 = hardware concurrency).
  explicit WorkStealingPool(unsigned threads = 0);

  /// Drains every queued task, then joins the workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Number of worker threads currently running.
  unsigned worker_count() const noexcept;

  /// Adjusts the worker count (0 = hardware concurrency).  Queued tasks are
  /// preserved.  No-op when the count is unchanged; must not be called from
  /// inside a pool task.
  void resize(unsigned threads);

  /// Enqueues a fire-and-forget task.  The task must not throw; an escaping
  /// exception is caught and logged, never propagated.
  void submit(std::function<void()> task);

  /// Enqueues a task and returns a future for its result (submit/wait API).
  /// Exceptions thrown by \p fn are captured into the future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task]() { (*task)(); });
    return future;
  }

  /// Invokes body(i) for i in [0, n), spreading iterations over the workers
  /// *and* the calling thread.  Returns when every invocation has finished.
  /// The first exception thrown by the body wins and is rethrown here after
  /// the remaining iterations have been cancelled (claimed but skipped).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const noexcept;

  /// The process-wide pool used by feast::parallel_for and the campaign
  /// runner.  Created on first use with hardware concurrency; resized by
  /// feast::set_parallelism.
  static WorkStealingPool& global();

  /// Implementation state; public only so pool.cpp can bind thread-local
  /// worker identity at namespace scope.  Defined in pool.cpp.
  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;

  void start_workers(unsigned threads);
  void stop_workers();
};

}  // namespace feast
