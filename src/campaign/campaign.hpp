/// \file campaign.hpp
/// \brief Durable, cache-aware experiment campaigns.
///
/// A campaign is a declarative grid of experiment cells — strategies ×
/// system sizes over one workload and batch configuration — executed through
/// the persistent work-stealing pool with content-addressed cache lookups.
/// Progress is checkpointed after every cell into a JSON manifest (written
/// atomically), so an interrupted campaign resumes where it stopped: cells
/// recorded as finished are restored from the manifest, cells present in the
/// result cache are served as file reads, and only genuinely new cells pay
/// for their 128-run batches.
///
/// The spec file format (`key = value`, `#` comments) and the manifest
/// schema are documented in docs/CAMPAIGN.md.  CLI: `feastc campaign
/// run|resume|status`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "experiment/strategy.hpp"
#include "experiment/sweep.hpp"
#include "taskgraph/generator.hpp"

namespace feast {

/// Builds a Strategy from a compact spec string:
///   pure[:ccne|ccaa] | norm[:ccne|ccaa] | thres[:delta[:threshold]] |
///   adapt[:threshold] | ud | ed | prop
/// Throws std::invalid_argument on malformed specs.
Strategy parse_strategy_spec(const std::string& spec);

/// What each cell of a campaign evaluates.
enum class CampaignMode {
  Lateness,  ///< Heuristic lateness batches (the paper's protocol).
  Gap,       ///< Heuristic-vs-exact-oracle optimality gaps (src/exact).
};

/// Declarative description of a campaign: the full cell grid derives from
/// strategies × sizes.  Round-trips through canonical_text()/parse().
struct CampaignSpec {
  std::string name = "campaign";
  RandomGraphConfig workload;
  BatchConfig batch;
  /// Run-level knobs (scheduler policies, core, validation, obs sink);
  /// context.machine is ignored — cells derive their machine from
  /// (n_procs, batch).  The sink is not part of the spec format: it is
  /// installed programmatically (e.g. by `feastc campaign --trace-out`).
  RunContext context;
  std::vector<std::string> strategies;  ///< Strategy spec strings.
  std::vector<int> sizes;               ///< Processor counts.
  /// Cell evaluation mode.  Gap cells run each sample through the heuristic
  /// *and* the exact oracle (see exact/gap.hpp for the stats field
  /// mapping); `mode = gap` and `exact_nodes = N` spec keys are emitted
  /// only in Gap mode, so every existing Lateness spec hashes unchanged.
  CampaignMode mode = CampaignMode::Lateness;
  /// Oracle node budget per sample (Gap mode only; part of the cell
  /// identity via the decorated strategy label).
  std::uint64_t exact_nodes = 250000;

  std::size_t cell_count() const noexcept { return strategies.size() * sizes.size(); }

  /// Canonical spec text: every field in a fixed order with full-precision
  /// values.  parse(canonical_text()) reproduces the spec; its FNV-1a hash
  /// identifies the campaign in manifests.
  std::string canonical_text() const;

  /// Parses the `key = value` spec format ('#' starts a comment).  Throws
  /// std::invalid_argument with a line reference on malformed input.
  static CampaignSpec parse(std::istream& in);
  static CampaignSpec parse_file(const std::string& path);
};

/// Lifecycle of one cell within a campaign run.  Quarantined is the
/// supervised runner's poison-cell verdict: the cell failed its full retry
/// budget and was excluded so the rest of the campaign could complete
/// (degraded mode); a later `campaign resume` retries it from scratch.
enum class CellState { Pending, Computed, Cached, Failed, Quarantined };

const char* to_string(CellState state) noexcept;

/// Per-cell record of a campaign run (and of a manifest row).
struct CellOutcome {
  std::string strategy_spec;   ///< As written in the campaign spec.
  std::string strategy_label;  ///< Canonical label (cache identity).
  int n_procs = 0;
  std::string key_hex;  ///< Cache file stem; "" when the cell is uncacheable.
  CellState state = CellState::Pending;
  double wall_ms = 0.0;
  CellStats stats;
  std::string error;  ///< Set when state == Failed/Quarantined.
  /// Supervised runs only: how many worker attempts this cell consumed and,
  /// for Failed/Quarantined cells, the structured error taxonomy —
  /// timeout | crash | signal | oom | io (docs/ROBUSTNESS.md).
  int attempts = 0;
  std::string error_kind;
};

/// Aggregate result of one campaign run.
struct CampaignResult {
  std::string name;
  std::string spec_hash_hex;
  int samples = 0;
  std::vector<CellOutcome> cells;
  double wall_ms = 0.0;
  std::size_t computed = 0;
  std::size_t cached = 0;  ///< Served from cache or restored from manifest.
  std::size_t failed = 0;
  std::size_t quarantined = 0;  ///< Poison cells excluded by the supervisor.
  double cells_per_sec = 0.0;  ///< All cells over the campaign wall time.
  double runs_per_sec = 0.0;   ///< Computed runs only (compute throughput).
  /// A drain (SIGINT/SIGTERM) stopped the run before every cell finished;
  /// the manifest on disk is a resumable checkpoint.
  bool interrupted = false;

  bool ok() const noexcept { return failed == 0 && quarantined == 0 && !interrupted; }
  /// Every cell ran, but some were quarantined: usable, incomplete results.
  bool degraded() const noexcept { return quarantined > 0 && !interrupted; }
};

/// Knobs of run_campaign.
struct CampaignOptions {
  std::string manifest_path;      ///< Empty: no checkpointing.
  ResultCache* cache = nullptr;   ///< Borrowed; nullptr disables the cache.
  bool resume = false;            ///< Restore finished cells from the manifest.
  unsigned threads = 0;           ///< 0: keep the configured parallelism.
  std::ostream* progress = nullptr;  ///< Per-cell progress lines when set.
};

/// Executes the campaign: cells are submitted to the work-stealing pool,
/// consult the cache first, and checkpoint the manifest after every
/// completed cell.  A failing cell is recorded (state Failed) without
/// aborting the rest.  Throws std::invalid_argument for malformed specs.
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

/// One planned cell of a campaign, in manifest order (strategy-major, then
/// size).  The index is the cell's identity in the shard protocol between
/// the supervisor and `feastc campaign exec-cell` workers.
struct PlannedCell {
  std::size_t index = 0;
  std::size_t strategy_index = 0;
  int n_procs = 0;
  std::string canonical;  ///< Cache identity; "" when uncacheable.
};

/// The cache/manifest identity label of one strategy within \p spec: the
/// bare strategy label in Lateness mode, the gap-decorated label (e.g.
/// "gap[NORM+CCNE;nodes=250000]") in Gap mode — so gap cells never collide
/// with lateness cells in the cache or in a resumed manifest.
std::string campaign_strategy_label(const CampaignSpec& spec,
                                    const std::string& strategy_label);

/// Executes one cell of \p spec according to its mode: execute_cell for
/// Lateness, exact::execute_gap_cell for Gap.  The single dispatch point
/// shared by the in-process pool runner and supervised workers.
ExecutedCell execute_campaign_cell(const CampaignSpec& spec, const Strategy& strategy,
                                   int n_procs, CellCache* cache);

/// Writes the optimality-gap table of a Gap-mode campaign: one row per
/// (strategy, size) cell with mean heuristic/optimal/gap, the gap spread,
/// mean oracle nodes and the count of unproven samples.  Skips cells that
/// did not finish (Failed/Quarantined/Pending).
void write_gap_csv(std::ostream& out, const CampaignSpec& spec,
                   const CampaignResult& result);

/// The canonical cell grid of \p spec: strategies × sizes in spec order.
/// \p strategies must be the parsed spec.strategies (the caller usually has
/// them already; parsing here would re-throw on specs run_campaign accepts).
std::vector<PlannedCell> plan_cells(const CampaignSpec& spec,
                                    const std::vector<Strategy>& strategies);

/// Fresh CellOutcome skeletons (state Pending, identity filled) for the
/// plan — the shape both runners start from and the manifest serializes.
std::vector<CellOutcome> plan_outcomes(const CampaignSpec& spec,
                                       const std::vector<Strategy>& strategies,
                                       const std::vector<PlannedCell>& plan);

/// Restores finished (Computed/Cached) cells of a previous run of the same
/// spec from \p manifest_path into \p cells, marking them Cached.  Failed,
/// Quarantined and Pending cells stay Pending (they are retried).  A
/// missing, torn or foreign manifest restores nothing.  Returns the number
/// of restored cells.
std::size_t restore_finished_cells(const std::string& manifest_path,
                                   const std::string& spec_hash_hex,
                                   std::vector<CellOutcome>& cells);

/// Recomputes the computed/cached/failed/quarantined totals and the
/// throughput numbers of \p result from its cells and \p wall_ms.
void refresh_campaign_totals(CampaignResult& result, double wall_ms);

/// Atomically checkpoints the manifest to \p path ("" = no checkpointing)
/// via util::atomic_write_file (durable: fsynced tmp + rename + dir fsync).
/// Carries the manifest-write fault-injection site.
void checkpoint_manifest_file(const std::string& path, const CampaignSpec& spec,
                              const CampaignResult& result);

/// Serializes a manifest (JSON, schema in docs/CAMPAIGN.md).
void write_manifest(std::ostream& out, const CampaignSpec& spec,
                    const CampaignResult& result);

/// A manifest read back for `resume` and `status`.
struct Manifest {
  int version = 0;
  std::string name;
  std::string spec_hash_hex;
  std::string spec_text;  ///< Canonical spec — resume re-parses it from here.
  int samples = 0;
  std::vector<CellOutcome> cells;
  double wall_ms = 0.0;
  std::size_t computed = 0;
  std::size_t cached = 0;
  std::size_t failed = 0;
  std::size_t quarantined = 0;
};

/// Parses a manifest produced by write_manifest (minimal JSON reader).
/// Throws std::runtime_error on malformed input.
Manifest read_manifest(std::istream& in);
Manifest read_manifest_file(const std::string& path);

/// Canonical stats-only rendering of a manifest: cell identities + results
/// at full precision, excluding wall-clock times and cell states.  Two runs
/// of the same spec — interrupted + resumed or not — must fingerprint
/// byte-identically; `feastc torture` asserts exactly this.
std::string manifest_fingerprint(const Manifest& manifest);

/// Human-readable status table of a manifest.
void print_manifest_status(std::ostream& out, const Manifest& manifest);

/// Machine-readable status of a manifest: one JSON object with name /
/// spec_hash / samples / totals (including pending) / the 16-hex-digit
/// FNV-1a of manifest_fingerprint() / per-cell rows.  Shared between
/// `feastc campaign status --json` and the serve daemon's `/v1/status`,
/// so scripts see one schema regardless of which side they ask.
void write_manifest_status_json(std::ostream& out, const Manifest& manifest);

}  // namespace feast
