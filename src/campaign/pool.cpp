#include "campaign/pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "check/fault.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace feast {

namespace {

unsigned resolve_thread_count(unsigned threads) noexcept {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

struct WorkStealingPool::Impl {
  /// One deque per worker; the owner pops at the back, thieves at the front.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  /// Run: serve tasks.  Drain: finish every queued task, then exit
  /// (destruction).  Quit: exit as soon as possible, leaving queued tasks in
  /// place (resize, which restarts workers over the same queues' contents).
  enum class Mode { Run, Drain, Quit };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;

  /// Excludes resize (unique) from external submits / worker_count reads
  /// (shared): start_workers/stop_workers mutate the `queues` and `threads`
  /// vectors, which external threads index concurrently.  Workers never take
  /// this lock — the vectors are only mutated after every worker has been
  /// joined, and taking it in a worker would deadlock resize's join.
  std::shared_mutex structure_mutex;

  std::mutex sleep_mutex;
  std::condition_variable sleep_cv;
  Mode mode = Mode::Run;               ///< Guarded by sleep_mutex.
  std::atomic<std::size_t> pending{0};  ///< Tasks queued but not yet started.
  std::atomic<unsigned> next_queue{0};  ///< Round-robin cursor for external submits.

  bool try_acquire(unsigned self, std::function<void()>& out) {
    {
      WorkerQueue& own = *queues[self];
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());
        own.tasks.pop_back();
        pending.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    for (std::size_t k = 1; k < queues.size(); ++k) {
      WorkerQueue& victim = *queues[(self + k) % queues.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        pending.fetch_sub(1, std::memory_order_relaxed);
        obs::count(obs::Counter::PoolSteal);
        return true;
      }
    }
    return false;
  }

  void worker_main(unsigned index);
};

namespace {
/// Identifies the pool (and worker slot) owning the current thread.
thread_local WorkStealingPool::Impl* tl_pool = nullptr;
thread_local unsigned tl_worker_index = 0;
}  // namespace

void WorkStealingPool::Impl::worker_main(unsigned index) {
  tl_pool = this;
  tl_worker_index = index;
  obs::set_thread_label("pool-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    if (try_acquire(index, task)) {
      try {
        obs::SpanScope span(obs::Span::PoolTask);
        if (const auto fault = check::fire(check::FaultSite::PoolTask)) {
          check::execute(*fault, "pool-task");
        }
        task();
      } catch (const std::exception& e) {
        FEAST_LOG_WARN << "pool task threw: " << e.what();
      } catch (...) {
        FEAST_LOG_WARN << "pool task threw a non-standard exception";
      }
      continue;
    }
    obs::count(obs::Counter::PoolSleep);
    std::unique_lock<std::mutex> lock(sleep_mutex);
    sleep_cv.wait(lock, [&] {
      return mode != Mode::Run || pending.load(std::memory_order_relaxed) > 0;
    });
    if (mode == Mode::Quit) return;
    if (mode == Mode::Drain && pending.load(std::memory_order_relaxed) == 0) return;
  }
}

WorkStealingPool::WorkStealingPool(unsigned threads) : impl_(std::make_shared<Impl>()) {
  start_workers(resolve_thread_count(threads));
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->mode = Impl::Mode::Drain;
  }
  impl_->sleep_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
}

void WorkStealingPool::start_workers(unsigned threads) {
  FEAST_REQUIRE(threads >= 1);
  Impl& impl = *impl_;
  // Keep queued tasks: reuse existing queues where possible.
  while (impl.queues.size() < threads) {
    impl.queues.push_back(std::make_unique<Impl::WorkerQueue>());
  }
  if (impl.queues.size() > threads) {
    // Fold the tail queues' tasks into the surviving ones.
    for (std::size_t k = threads; k < impl.queues.size(); ++k) {
      Impl::WorkerQueue& from = *impl.queues[k];
      Impl::WorkerQueue& to = *impl.queues[k % threads];
      std::scoped_lock lock(from.mutex, to.mutex);
      while (!from.tasks.empty()) {
        to.tasks.push_back(std::move(from.tasks.front()));
        from.tasks.pop_front();
      }
    }
    impl.queues.resize(threads);
  }
  impl.mode = Impl::Mode::Run;
  impl.threads.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    impl.threads.emplace_back([this, t] { impl_->worker_main(t); });
  }
}

void WorkStealingPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(impl_->sleep_mutex);
    impl_->mode = Impl::Mode::Quit;
  }
  impl_->sleep_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  impl_->threads.clear();
}

unsigned WorkStealingPool::worker_count() const noexcept {
  if (tl_pool == impl_.get()) {
    return static_cast<unsigned>(impl_->threads.size());
  }
  std::shared_lock<std::shared_mutex> lock(impl_->structure_mutex);
  return static_cast<unsigned>(impl_->threads.size());
}

bool WorkStealingPool::on_worker_thread() const noexcept {
  return tl_pool == impl_.get();
}

void WorkStealingPool::resize(unsigned threads) {
  const unsigned target = resolve_thread_count(threads);
  FEAST_REQUIRE(!on_worker_thread());
  // Unique lock: no external submit or concurrent resize may index the
  // queues vector while it is reshaped.  The width check happens under the
  // lock so racing resizes to different widths serialize cleanly.
  std::unique_lock<std::shared_mutex> lock(impl_->structure_mutex);
  if (target == static_cast<unsigned>(impl_->threads.size())) return;
  stop_workers();
  start_workers(target);
}

void WorkStealingPool::submit(std::function<void()> task) {
  Impl& impl = *impl_;
  // External submitters must not race a resize that is reshaping the queues
  // vector; workers cannot (resize joins them before mutating).
  std::shared_lock<std::shared_mutex> structure_lock(impl.structure_mutex,
                                                     std::defer_lock);
  if (!on_worker_thread()) structure_lock.lock();
  FEAST_REQUIRE(!impl.queues.empty());
  unsigned target;
  if (on_worker_thread()) {
    target = tl_worker_index;  // LIFO slot of the spawning worker.
  } else {
    target = impl.next_queue.fetch_add(1, std::memory_order_relaxed) %
             static_cast<unsigned>(impl.queues.size());
  }
  {
    Impl::WorkerQueue& queue = *impl.queues[target];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(std::move(task));
  }
  {
    // Serialize the increment with the workers' predicate-check-then-block:
    // incrementing outside sleep_mutex can land between a worker's predicate
    // evaluation and its block, losing the wakeup for good.
    std::lock_guard<std::mutex> lock(impl.sleep_mutex);
    impl.pending.fetch_add(1, std::memory_order_relaxed);
  }
  impl.sleep_cv.notify_one();
}

void WorkStealingPool::parallel_for(std::size_t n,
                                    const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n == 1) {
    body(0);
    return;
  }

  /// Shared state of one loop.  The calling thread claims indices alongside
  /// the helpers and drives the loop to completion on its own if no helper
  /// ever runs, so waiting can never deadlock — even for nested loops issued
  /// from inside pool workers.
  struct Job {
    Job(std::size_t total, const std::function<void(std::size_t)>& b)
        : n(total), body(b) {}

    const std::size_t n;
    /// Only ever invoked for claimed indices; once completed == n the caller
    /// may return (and invalidate this reference), but by then every
    /// participant that could still call it has moved past the i >= n exit.
    const std::function<void(std::size_t)>& body;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;  ///< Guarded by mutex; first failure wins.
    std::mutex mutex;
    std::condition_variable cv;

    void participate() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        // After a failure the remaining indices are claimed and counted but
        // not executed, so `completed` still converges to n.
        if (!failed.load(std::memory_order_relaxed)) {
          try {
            body(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(mutex);
            if (!failed.exchange(true)) error = std::current_exception();
          }
        }
        if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
          std::lock_guard<std::mutex> lock(mutex);  // Pairs with the waiter.
          cv.notify_all();
        }
      }
    }
  };

  auto job = std::make_shared<Job>(n, body);
  const std::size_t helpers = std::min<std::size_t>(worker_count(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([job] { job->participate(); });
  }
  job->participate();

  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] {
    return job->completed.load(std::memory_order_acquire) == job->n;
  });
  if (job->error) std::rethrow_exception(job->error);
}

WorkStealingPool& WorkStealingPool::global() {
  static WorkStealingPool pool(0);
  return pool;
}

}  // namespace feast
