#include "campaign/cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "check/fault.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"
#include "util/fsio.hpp"
#include "util/log.hpp"

namespace feast {

namespace {

// v3: records gained a trailing whole-record checksum line ("sum <hex>"),
// so truncation, bit flips and appended garbage all read as misses instead
// of silently-wrong stats.  v2 keys collided across scheduler cores; v1/v2
// records are treated as misses rather than risking a stale read.
constexpr char kRecordMagic[] = "feast-cell v3";

std::string full(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void write_summary(std::ostream& out, const char* name, const StatSummary& s) {
  out << name << ' ' << s.count << ' ' << full(s.mean) << ' ' << full(s.stddev) << ' '
      << full(s.min) << ' ' << full(s.max) << ' ' << full(s.ci95_half_width) << '\n';
}

/// istream's num_get rejects the `nan`/`inf` tokens %.17g produces, which
/// would turn any record holding a non-finite stat into a permanent cache
/// miss; strtod accepts them, so parse whitespace-delimited tokens instead.
bool read_double(std::istream& in, double& out) {
  std::string token;
  if (!(in >> token)) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool read_summary(std::istream& in, const char* name, StatSummary& s) {
  std::string label;
  if (!(in >> label) || label != name) return false;
  if (!(in >> s.count)) return false;
  return read_double(in, s.mean) && read_double(in, s.stddev) &&
         read_double(in, s.min) && read_double(in, s.max) &&
         read_double(in, s.ci95_half_width);
}

/// The record body (everything up to and including the newline before the
/// sum line) rendered for one cell.
std::string render_record_body(const std::string& canonical_key,
                               const CellStats& stats) {
  std::ostringstream out;
  out << kRecordMagic << '\n';
  out << "key " << canonical_key << '\n';
  write_summary(out, "max_lateness", stats.max_lateness);
  write_summary(out, "end_to_end", stats.end_to_end);
  write_summary(out, "makespan", stats.makespan);
  write_summary(out, "min_laxity", stats.min_laxity);
  out << "infeasible_runs " << stats.infeasible_runs << '\n';
  return out.str();
}

/// Splits \p data into body + checksum and verifies both.  The sum line must
/// be the final line of the file: bytes appended after it make the last line
/// not a sum line, bytes removed break the checksum, so any truncation or
/// trailing garbage fails here.  On failure \p why distinguishes a missing
/// tail (no newline-terminated `sum` line at the end: truncation) from a
/// complete-but-wrong record (bad hex, checksum mismatch: corruption).
bool verify_record_checksum(const std::string& data, std::string& body,
                            RecordError& why) {
  if (data.size() < 2 || data.back() != '\n') {
    why = RecordError::Truncated;
    return false;
  }
  const std::size_t line_start = data.rfind('\n', data.size() - 2);
  const std::string last =
      line_start == std::string::npos
          ? data.substr(0, data.size() - 1)
          : data.substr(line_start + 1, data.size() - line_start - 2);
  if (last.rfind("sum ", 0) != 0) {
    // The bytes end mid-body: everything before the sum line is a valid
    // prefix of a record, so the tail went missing in delivery.
    why = RecordError::Truncated;
    return false;
  }
  why = RecordError::Corrupt;
  const std::string hex = last.substr(4);
  if (hex.size() != 16) return false;
  char* end = nullptr;
  const std::uint64_t stored = std::strtoull(hex.c_str(), &end, 16);
  if (end != hex.c_str() + hex.size()) return false;
  if (line_start == std::string::npos) return false;  // Sum line, no body.
  body = data.substr(0, line_start + 1);
  return fnv1a64(body) == stored;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

void write_cell_record(std::ostream& out, const std::string& canonical_key,
                       const CellStats& stats) {
  const std::string body = render_record_body(canonical_key, stats);
  out << body << "sum " << hash_hex(fnv1a64(body)) << '\n';
}

const char* to_string(RecordError error) noexcept {
  switch (error) {
    case RecordError::None: return "";
    case RecordError::Truncated: return "truncated";
    case RecordError::Corrupt: return "corrupt";
  }
  return "?";
}

std::optional<std::string> read_cell_record(std::istream& in, CellStats& out) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_cell_record(buffer.str(), out);
}

std::optional<std::string> read_cell_record(const std::string& data, CellStats& out,
                                            RecordError* error) {
  RecordError why = RecordError::None;
  std::string body;
  if (!verify_record_checksum(data, body, why)) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  }
  // Past the checksum the bytes are provably the ones the writer hashed;
  // any parse failure below means a complete-but-incompatible record.
  if (error != nullptr) *error = RecordError::Corrupt;

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kRecordMagic) return std::nullopt;
  if (!std::getline(in, line) || line.rfind("key ", 0) != 0) return std::nullopt;
  std::string key = line.substr(4);
  CellStats stats;
  if (!read_summary(in, "max_lateness", stats.max_lateness)) return std::nullopt;
  if (!read_summary(in, "end_to_end", stats.end_to_end)) return std::nullopt;
  if (!read_summary(in, "makespan", stats.makespan)) return std::nullopt;
  if (!read_summary(in, "min_laxity", stats.min_laxity)) return std::nullopt;
  std::string label;
  if (!(in >> label) || label != "infeasible_runs") return std::nullopt;
  if (!(in >> stats.infeasible_runs)) return std::nullopt;
  if (error != nullptr) *error = RecordError::None;
  out = stats;
  return key;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  FEAST_REQUIRE(!dir_.empty());
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ResultCache::record_path(const std::string& canonical_key) const {
  return dir_ / (hash_hex(fnv1a64(canonical_key)) + ".cell");
}

bool ResultCache::lookup(const std::string& canonical_key, CellStats& out) {
  bool hit = false;
  bool corrupt = false;
  std::ifstream file(record_path(canonical_key), std::ios::binary);
  if (file) {
    std::ostringstream buffer;
    buffer << file.rdbuf();
    std::string data = buffer.str();
    if (const auto fault = check::fire(check::FaultSite::CacheLookup)) {
      if (*fault == check::FaultAction::ShortRead) {
        data.resize(data.size() / 2);  // The reader sees only a prefix.
      } else {
        check::execute(*fault, "cache-lookup");
      }
    }
    CellStats stats;
    const auto stored_key = read_cell_record(data, stats);
    if (!stored_key) {
      // Truncated, bit-flipped, garbage-extended or old-format record: a
      // miss, never an exception or a wrong answer.  Recompute overwrites it.
      corrupt = true;
      obs::count(obs::Counter::CacheCorrupt);
      FEAST_LOG_WARN << "cell cache: corrupt record "
                     << record_path(canonical_key).string() << " (treated as miss)";
    } else if (*stored_key == canonical_key) {
      // A record stored under a different canonical key (hash collision, or
      // a stale file from an older format) is a miss, never a wrong answer.
      out = stats;
      hit = true;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
    if (corrupt) ++corrupt_;
  }
  return hit;
}

bool ResultCache::contains(const std::string& canonical_key) {
  CellStats ignored;
  return lookup(canonical_key, ignored);
}

void ResultCache::store(const std::string& canonical_key, const CellStats& stats) {
  std::ostringstream record_stream;
  write_cell_record(record_stream, canonical_key, stats);
  std::string record = record_stream.str();

  bool die_mid_write = false;
  if (const auto fault = check::fire(check::FaultSite::CacheStore)) {
    switch (*fault) {
      case check::FaultAction::FailWrite:
        FEAST_LOG_WARN << "cell cache: injected write failure for "
                       << record_path(canonical_key).string();
        return;
      case check::FaultAction::Truncate:
        record.resize(record.size() / 2);
        break;
      case check::FaultAction::BadMagic:
        record[0] = '#';
        break;
      case check::FaultAction::Die:
        die_mid_write = true;  // Crash after the partial tmp write below.
        break;
      default:
        check::execute(*fault, "cache-store");
    }
  }

  const std::filesystem::path path = record_path(canonical_key);
  // Serialize writers of the same record across *processes* (two feastc
  // runs sharing a --cache-dir); unique_tmp_path makes the scratch name
  // collision-free even when the lock degrades to unlocked.
  FileLock write_lock(path);
  const std::filesystem::path tmp = unique_tmp_path(path);
  if (die_mid_write) {
    // A crash mid-write leaves a torn temporary and no renamed record.
    std::ofstream file(tmp, std::ios::binary);
    if (file) {
      file << record.substr(0, record.size() / 2);
      file.flush();
    }
    std::_Exit(check::kFaultExitCode);
  }
  std::string error;
  if (!write_file_synced(tmp, record, &error)) {
    FEAST_LOG_WARN << "cell cache: cannot write " << tmp.string() << ": " << error;
    return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    FEAST_LOG_WARN << "cell cache: rename failed: " << ec.message();
    std::filesystem::remove(tmp, ec);
    return;
  }
  fsync_parent_dir(path);
  std::lock_guard<std::mutex> lock(mutex_);
  ++stores_;
}

std::size_t ResultCache::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ResultCache::misses() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultCache::stores() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}

std::size_t ResultCache::corrupt() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return corrupt_;
}

ResultCache* install_global_cell_cache(const std::filesystem::path& dir) {
  // Deliberately leaked: the cache must outlive every sweep, including ones
  // issued from static destructors of bench binaries.
  auto* cache = new ResultCache(dir);
  set_cell_cache(cache);
  return cache;
}

}  // namespace feast
