#include "campaign/cache.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace feast {

namespace {

// v2: cell keys gained the scheduler core (describe_cell "feast-cell-v2"),
// so v1 records — written under keys that collided across cores — are
// treated as misses rather than risking a stale read.
constexpr char kRecordMagic[] = "feast-cell v2";

std::string full(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

void write_summary(std::ostream& out, const char* name, const StatSummary& s) {
  out << name << ' ' << s.count << ' ' << full(s.mean) << ' ' << full(s.stddev) << ' '
      << full(s.min) << ' ' << full(s.max) << ' ' << full(s.ci95_half_width) << '\n';
}

/// istream's num_get rejects the `nan`/`inf` tokens %.17g produces, which
/// would turn any record holding a non-finite stat into a permanent cache
/// miss; strtod accepts them, so parse whitespace-delimited tokens instead.
bool read_double(std::istream& in, double& out) {
  std::string token;
  if (!(in >> token)) return false;
  char* end = nullptr;
  out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool read_summary(std::istream& in, const char* name, StatSummary& s) {
  std::string label;
  if (!(in >> label) || label != name) return false;
  if (!(in >> s.count)) return false;
  return read_double(in, s.mean) && read_double(in, s.stddev) &&
         read_double(in, s.min) && read_double(in, s.max) &&
         read_double(in, s.ci95_half_width);
}

/// Distinct temporary names so concurrent stores of the same key never write
/// the same file before the atomic rename.
std::string unique_suffix() {
  static std::atomic<std::uint64_t> counter{0};
  return ".tmp" + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;  // FNV prime.
  }
  return hash;
}

std::string hash_hex(std::uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

void write_cell_record(std::ostream& out, const std::string& canonical_key,
                       const CellStats& stats) {
  out << kRecordMagic << '\n';
  out << "key " << canonical_key << '\n';
  write_summary(out, "max_lateness", stats.max_lateness);
  write_summary(out, "end_to_end", stats.end_to_end);
  write_summary(out, "makespan", stats.makespan);
  write_summary(out, "min_laxity", stats.min_laxity);
  out << "infeasible_runs " << stats.infeasible_runs << '\n';
}

std::optional<std::string> read_cell_record(std::istream& in, CellStats& out) {
  std::string line;
  if (!std::getline(in, line) || line != kRecordMagic) return std::nullopt;
  if (!std::getline(in, line) || line.rfind("key ", 0) != 0) return std::nullopt;
  std::string key = line.substr(4);
  CellStats stats;
  if (!read_summary(in, "max_lateness", stats.max_lateness)) return std::nullopt;
  if (!read_summary(in, "end_to_end", stats.end_to_end)) return std::nullopt;
  if (!read_summary(in, "makespan", stats.makespan)) return std::nullopt;
  if (!read_summary(in, "min_laxity", stats.min_laxity)) return std::nullopt;
  std::string label;
  if (!(in >> label) || label != "infeasible_runs") return std::nullopt;
  if (!(in >> stats.infeasible_runs)) return std::nullopt;
  out = stats;
  return key;
}

ResultCache::ResultCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  FEAST_REQUIRE(!dir_.empty());
  std::filesystem::create_directories(dir_);
}

std::filesystem::path ResultCache::record_path(const std::string& canonical_key) const {
  return dir_ / (hash_hex(fnv1a64(canonical_key)) + ".cell");
}

bool ResultCache::lookup(const std::string& canonical_key, CellStats& out) {
  std::ifstream file(record_path(canonical_key));
  bool hit = false;
  if (file) {
    CellStats stats;
    const auto stored_key = read_cell_record(file, stats);
    // A record stored under a different canonical key (hash collision, or a
    // stale file from an older format) is a miss, never a wrong answer.
    if (stored_key && *stored_key == canonical_key) {
      out = stats;
      hit = true;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (hit) {
    ++hits_;
  } else {
    ++misses_;
  }
  return hit;
}

bool ResultCache::contains(const std::string& canonical_key) {
  CellStats ignored;
  return lookup(canonical_key, ignored);
}

void ResultCache::store(const std::string& canonical_key, const CellStats& stats) {
  const std::filesystem::path path = record_path(canonical_key);
  const std::filesystem::path tmp = path.string() + unique_suffix();
  {
    std::ofstream file(tmp);
    if (!file) {
      FEAST_LOG_WARN << "cell cache: cannot write " << tmp.string();
      return;
    }
    write_cell_record(file, canonical_key, stats);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    FEAST_LOG_WARN << "cell cache: rename failed: " << ec.message();
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++stores_;
}

std::size_t ResultCache::hits() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ResultCache::misses() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultCache::stores() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return stores_;
}

ResultCache* install_global_cell_cache(const std::filesystem::path& dir) {
  // Deliberately leaked: the cache must outlive every sweep, including ones
  // issued from static destructors of bench binaries.
  auto* cache = new ResultCache(dir);
  set_cell_cache(cache);
  return cache;
}

}  // namespace feast
