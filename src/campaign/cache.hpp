/// \file cache.hpp
/// \brief Content-addressed result cache for experiment cells.
///
/// A cell — one (workload, strategy, system size, batch config) aggregate of
/// 128 runs — is identified by the canonical description string built by
/// feast::describe_cell.  Its 64-bit FNV-1a hash names a record file in the
/// cache directory (default `.feast-cache/`), so re-running an unchanged
/// cell is a single file read instead of 128 generate/distribute/schedule
/// pipelines.  Records store the full canonical key alongside the stats;
/// a loaded record whose key does not match byte-for-byte is treated as a
/// miss (hash-collision safety).
///
/// Layout: `<dir>/<16-hex-digit hash>.cell`, one cell per file, written via
/// a temporary + atomic rename so concurrent writers and interrupted runs
/// never leave a torn record.  Every record ends with a whole-record FNV-1a
/// checksum line, so a record that was truncated, bit-flipped or extended
/// with garbage on disk reads as a miss (counted on obs `cache.corrupt`),
/// never as wrong stats.  See docs/CAMPAIGN.md for the record format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "experiment/sweep.hpp"

namespace feast {

/// 64-bit FNV-1a over \p data.
std::uint64_t fnv1a64(std::string_view data) noexcept;

/// 16-lower-hex-digit rendering of \p hash (the cache file stem).
std::string hash_hex(std::uint64_t hash);

/// Writes one cell record (versioned text format, full precision).
void write_cell_record(std::ostream& out, const std::string& canonical_key,
                       const CellStats& stats);

/// Why a record was rejected.  `Truncated` means the tail is missing —
/// the bytes end before the final `sum` line is complete (short read,
/// fragmented delivery, torn write); `Corrupt` means the record is
/// structurally complete but wrong — bad magic, a failed checksum, or
/// unparseable fields.  Remote transports need the distinction: truncation
/// points at delivery, corruption at the bytes themselves.
enum class RecordError : std::uint8_t { None, Truncated, Corrupt };

const char* to_string(RecordError error) noexcept;

/// Reads a record written by write_cell_record.  Returns the canonical key
/// it was stored under, or std::nullopt on malformed/incompatible input —
/// including any checksum mismatch; never throws on corrupt bytes.
std::optional<std::string> read_cell_record(std::istream& in, CellStats& out);

/// Same, over an in-memory record (the istream overload reads the whole
/// stream and delegates here; corruption tests feed mutated bytes directly).
/// \p error (when non-null) reports the truncated-vs-corrupt taxonomy on
/// rejection (RecordError::None on success).
std::optional<std::string> read_cell_record(const std::string& data, CellStats& out,
                                            RecordError* error = nullptr);

/// File-backed CellCache.  Thread-safe: distinct keys touch distinct files,
/// identical keys race only between atomic renames of identical content.
class ResultCache final : public CellCache {
 public:
  /// Opens (and creates if needed) the cache directory.
  explicit ResultCache(std::filesystem::path dir);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  // CellCache interface.
  bool lookup(const std::string& canonical_key, CellStats& out) override;
  void store(const std::string& canonical_key, const CellStats& stats) override;

  /// True when \p canonical_key has a stored record (no stats needed).
  bool contains(const std::string& canonical_key);

  /// Counters since construction (thread-safe snapshots).  A corrupt record
  /// counts as both a miss and a corrupt.
  std::size_t hits() const noexcept;
  std::size_t misses() const noexcept;
  std::size_t stores() const noexcept;
  std::size_t corrupt() const noexcept;

 private:
  std::filesystem::path record_path(const std::string& canonical_key) const;

  std::filesystem::path dir_;
  mutable std::mutex mutex_;  ///< Guards the counters only.
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t stores_ = 0;
  std::size_t corrupt_ = 0;
};

/// Creates a process-lifetime ResultCache on \p dir and installs it as the
/// cell cache consulted by run_cell/sweep_strategies (see BenchArgs
/// --cache-dir).  Returns the installed cache.
ResultCache* install_global_cell_cache(const std::filesystem::path& dir);

}  // namespace feast
