#include "campaign/campaign.hpp"

#include <cctype>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "campaign/cache.hpp"
#include "campaign/pool.hpp"
#include "check/fault.hpp"
#include "exact/gap.hpp"
#include "util/csv.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace feast {

namespace {

std::string full(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// JSON has no literal for NaN/Inf (%.17g's bare `nan`/`inf` would be
/// rejected by any parser, including ours); encode non-finite values as
/// quoted strings and decode them in json_to_double below.
std::string json_number(double value) {
  if (std::isfinite(value)) return full(value);
  if (std::isnan(value)) return "\"nan\"";
  return value > 0.0 ? "\"inf\"" : "\"-inf\"";
}

double parse_double_field(const std::string& what, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign: bad number for " + what + ": '" + text + "'");
  }
}

long long parse_int_field(const std::string& what, const std::string& text) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(text, &pos, 0);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign: bad integer for " + what + ": '" + text +
                                "'");
  }
}

/// Seeds span the full uint64 range, which stoll rejects above INT64_MAX —
/// canonical_text() must round-trip through parse() for every seed.
std::uint64_t parse_u64_field(const std::string& what, const std::string& text) {
  try {
    if (!text.empty() && text.front() == '-') throw std::invalid_argument(text);
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos, 0);
    if (pos != text.size()) throw std::invalid_argument(text);
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("campaign: bad integer for " + what + ": '" + text +
                                "'");
  }
}

std::pair<int, int> parse_range_field(const std::string& what, const std::string& text) {
  const auto pieces = split(text, ':');
  if (pieces.size() != 2) {
    throw std::invalid_argument("campaign: " + what + " wants A:B, got '" + text + "'");
  }
  const int a = static_cast<int>(parse_int_field(what, trim(pieces[0])));
  const int b = static_cast<int>(parse_int_field(what, trim(pieces[1])));
  if (b < a) throw std::invalid_argument("campaign: " + what + " range is empty");
  return {a, b};
}

// ------------------------------------------------------------ JSON writing
// String escaping is feast::json_escape (util/json.hpp), shared with the
// serve daemon and `feastc submit`.

void write_summary_json(std::ostream& out, const char* name, const StatSummary& s) {
  out << '"' << name << "\": [" << s.count << ", " << json_number(s.mean) << ", "
      << json_number(s.stddev) << ", " << json_number(s.min) << ", "
      << json_number(s.max) << ", " << json_number(s.ci95_half_width) << ']';
}

// ------------------------------------------------------------ JSON reading
//
// The recursive-descent parser itself lives in util/json.hpp (it started
// here and was promoted once the obs exporter gained a second JSON reader);
// what remains are the manifest-specific decoding helpers.

/// Inverse of json_number: plain numbers plus the quoted non-finite forms.
double json_to_double(const JsonValue& v, double fallback) {
  if (v.type == JsonValue::Type::Number) return v.number;
  if (v.type == JsonValue::Type::String) {
    if (v.string == "nan") return std::nan("");
    if (v.string == "inf") return std::numeric_limits<double>::infinity();
    if (v.string == "-inf") return -std::numeric_limits<double>::infinity();
  }
  return fallback;
}

double number_at(const JsonValue& object, const std::string& key, double fallback = 0.0) {
  const JsonValue* v = object.find(key);
  return v != nullptr ? json_to_double(*v, fallback) : fallback;
}

std::string string_at(const JsonValue& object, const std::string& key) {
  const JsonValue* v = object.find(key);
  return (v != nullptr && v->type == JsonValue::Type::String) ? v->string : std::string{};
}

StatSummary summary_at(const JsonValue& object, const std::string& key) {
  StatSummary s;
  const JsonValue* v = object.find(key);
  if (v == nullptr || v->type != JsonValue::Type::Array || v->array.size() != 6) return s;
  s.count = static_cast<std::size_t>(v->array[0].number);
  s.mean = json_to_double(v->array[1], 0.0);
  s.stddev = json_to_double(v->array[2], 0.0);
  s.min = json_to_double(v->array[3], 0.0);
  s.max = json_to_double(v->array[4], 0.0);
  s.ci95_half_width = json_to_double(v->array[5], 0.0);
  return s;
}

CellState cell_state_from(const std::string& text) {
  if (text == "computed") return CellState::Computed;
  if (text == "cached") return CellState::Cached;
  if (text == "failed") return CellState::Failed;
  if (text == "quarantined") return CellState::Quarantined;
  return CellState::Pending;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

// --------------------------------------------------------------- strategies

Strategy parse_strategy_spec(const std::string& spec) {
  std::vector<std::string> parts = split(trim(spec), ':');
  for (std::string& p : parts) p = trim(p);
  if (parts.empty() || parts[0].empty()) {
    throw std::invalid_argument("campaign: empty strategy spec");
  }
  const std::string& kind = parts[0];

  auto arity = [&](std::size_t max_parts) {
    if (parts.size() > max_parts) {
      throw std::invalid_argument("campaign: too many ':' fields in strategy '" + spec +
                                  "'");
    }
  };
  auto estimator = [&](std::size_t index) {
    if (parts.size() <= index || parts[index].empty()) return EstimatorKind::CCNE;
    if (parts[index] == "ccne") return EstimatorKind::CCNE;
    if (parts[index] == "ccaa") return EstimatorKind::CCAA;
    throw std::invalid_argument("campaign: unknown estimator '" + parts[index] +
                                "' in strategy '" + spec + "'");
  };
  auto number = [&](std::size_t index, double fallback) {
    if (parts.size() <= index || parts[index].empty()) return fallback;
    return parse_double_field("strategy '" + spec + "'", parts[index]);
  };

  if (kind == "pure") {
    arity(2);
    return strategy_pure(estimator(1));
  }
  if (kind == "norm") {
    arity(2);
    return strategy_norm(estimator(1));
  }
  if (kind == "thres") {
    arity(3);
    return strategy_thres(number(1, 1.0), number(2, 1.25));
  }
  if (kind == "adapt") {
    arity(2);
    return strategy_adapt(number(1, 1.25));
  }
  if (kind == "ud") {
    arity(1);
    return strategy_ultimate_deadline();
  }
  if (kind == "ed") {
    arity(1);
    return strategy_effective_deadline();
  }
  if (kind == "prop") {
    arity(1);
    return strategy_proportional();
  }
  throw std::invalid_argument("campaign: unknown strategy '" + spec + "'");
}

// --------------------------------------------------------------------- spec

std::string CampaignSpec::canonical_text() const {
  std::ostringstream out;
  out << "name = " << name << '\n';
  out << "samples = " << batch.samples << '\n';
  out << "seed = " << batch.seed << '\n';
  out << "subtasks = " << workload.min_subtasks << ':' << workload.max_subtasks << '\n';
  out << "depth = " << workload.min_depth << ':' << workload.max_depth << '\n';
  out << "degree = " << workload.min_degree << ':' << workload.max_degree << '\n';
  out << "alpha = " << full(workload.level_width_alpha) << '\n';
  out << "strict_fanin = " << (workload.strict_fanin_cap ? 1 : 0) << '\n';
  out << "met = " << full(workload.mean_exec_time) << '\n';
  out << "spread = " << full(workload.exec_spread) << '\n';
  out << "olr = " << full(workload.olr) << '\n';
  out << "olr_basis = "
      << (workload.olr_basis == OlrBasis::CriticalPath ? "critical-path"
                                                       : "total-workload")
      << '\n';
  out << "ccr = " << full(workload.ccr) << '\n';
  out << "message_spread = " << full(workload.message_spread) << '\n';
  out << "pinned_fraction = " << full(batch.pinned_fraction) << '\n';
  out << "time_per_item = " << full(batch.time_per_item) << '\n';
  out << "contention = "
      << (batch.contention == CommContention::SharedBus          ? "bus"
          : batch.contention == CommContention::PointToPointLinks ? "links"
                                                                  : "free")
      << '\n';
  out << "release = "
      << (context.scheduler.release_policy == ReleasePolicy::Eager ? "eager"
                                                                   : "time-driven")
      << '\n';
  out << "selection = "
      << (context.scheduler.selection == SelectionPolicy::Fifo           ? "fifo"
          : context.scheduler.selection == SelectionPolicy::StaticLaxity ? "static-laxity"
                                                                         : "edf")
      << '\n';
  out << "processor = "
      << (context.scheduler.processor_policy == ProcessorPolicy::QueueAtEnd
              ? "queue-at-end"
              : "gap-search")
      << '\n';
  out << "core = " << to_string(context.core) << '\n';
  // Emitted only when forced, so every pre-existing spec keeps its
  // canonical text (and hence its manifest hash) — same reasoning as the
  // gap-mode keys below.  Auto is also semantically the only value whose
  // results a cache may share across machines: backends are bit-exact by
  // contract, so this key never changes results, only what it certifies.
  if (context.backend != kernels::Backend::Auto) {
    out << "backend = " << kernels::to_string(context.backend) << '\n';
  }
  out << "validate = " << (context.validate ? 1 : 0) << '\n';
  // Gap-mode keys are emitted only when active so that every pre-existing
  // Lateness spec keeps its canonical text (and hence its manifest hash).
  if (mode == CampaignMode::Gap) {
    out << "mode = gap\n";
    out << "exact_nodes = " << exact_nodes << '\n';
  }
  std::vector<std::string> specs = strategies;
  out << "strategies = " << join(specs, ", ") << '\n';
  std::vector<std::string> size_strings;
  size_strings.reserve(sizes.size());
  for (const int n : sizes) size_strings.push_back(std::to_string(n));
  out << "sizes = " << join(size_strings, ",") << '\n';
  return out.str();
}

CampaignSpec CampaignSpec::parse(std::istream& in) {
  CampaignSpec spec;
  spec.strategies.clear();
  spec.sizes.clear();

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("campaign spec line " + std::to_string(line_no) +
                                  ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    if (key == "name") {
      spec.name = value;
    } else if (key == "samples") {
      spec.batch.samples = static_cast<int>(parse_int_field(key, value));
    } else if (key == "seed") {
      spec.batch.seed = parse_u64_field(key, value);
    } else if (key == "subtasks") {
      std::tie(spec.workload.min_subtasks, spec.workload.max_subtasks) =
          parse_range_field(key, value);
    } else if (key == "depth") {
      std::tie(spec.workload.min_depth, spec.workload.max_depth) =
          parse_range_field(key, value);
    } else if (key == "degree") {
      std::tie(spec.workload.min_degree, spec.workload.max_degree) =
          parse_range_field(key, value);
    } else if (key == "alpha") {
      spec.workload.level_width_alpha = parse_double_field(key, value);
    } else if (key == "strict_fanin") {
      spec.workload.strict_fanin_cap = parse_int_field(key, value) != 0;
    } else if (key == "met") {
      spec.workload.mean_exec_time = parse_double_field(key, value);
    } else if (key == "spread") {
      spec.workload.exec_spread = parse_double_field(key, value);
    } else if (key == "scenario") {
      if (value == "LDET") spec.workload.set_scenario(ExecSpreadScenario::LDET);
      else if (value == "MDET") spec.workload.set_scenario(ExecSpreadScenario::MDET);
      else if (value == "HDET") spec.workload.set_scenario(ExecSpreadScenario::HDET);
      else throw std::invalid_argument("campaign: unknown scenario '" + value + "'");
    } else if (key == "olr") {
      spec.workload.olr = parse_double_field(key, value);
    } else if (key == "olr_basis") {
      if (value == "total-workload") spec.workload.olr_basis = OlrBasis::TotalWorkload;
      else if (value == "critical-path") spec.workload.olr_basis = OlrBasis::CriticalPath;
      else throw std::invalid_argument("campaign: unknown olr_basis '" + value + "'");
    } else if (key == "ccr") {
      spec.workload.ccr = parse_double_field(key, value);
    } else if (key == "message_spread") {
      spec.workload.message_spread = parse_double_field(key, value);
    } else if (key == "pinned_fraction") {
      spec.batch.pinned_fraction = parse_double_field(key, value);
    } else if (key == "time_per_item") {
      spec.batch.time_per_item = parse_double_field(key, value);
    } else if (key == "contention") {
      if (value == "free") spec.batch.contention = CommContention::ContentionFree;
      else if (value == "bus") spec.batch.contention = CommContention::SharedBus;
      else if (value == "links") spec.batch.contention = CommContention::PointToPointLinks;
      else throw std::invalid_argument("campaign: unknown contention '" + value + "'");
    } else if (key == "release") {
      if (value == "time-driven")
        spec.context.scheduler.release_policy = ReleasePolicy::TimeDriven;
      else if (value == "eager")
        spec.context.scheduler.release_policy = ReleasePolicy::Eager;
      else throw std::invalid_argument("campaign: unknown release policy '" + value + "'");
    } else if (key == "selection") {
      if (value == "edf") spec.context.scheduler.selection = SelectionPolicy::Edf;
      else if (value == "fifo") spec.context.scheduler.selection = SelectionPolicy::Fifo;
      else if (value == "static-laxity")
        spec.context.scheduler.selection = SelectionPolicy::StaticLaxity;
      else throw std::invalid_argument("campaign: unknown selection '" + value + "'");
    } else if (key == "processor") {
      if (value == "gap-search")
        spec.context.scheduler.processor_policy = ProcessorPolicy::GapSearch;
      else if (value == "queue-at-end")
        spec.context.scheduler.processor_policy = ProcessorPolicy::QueueAtEnd;
      else throw std::invalid_argument("campaign: unknown processor policy '" + value +
                                       "'");
    } else if (key == "core") {
      if (value == "fast") spec.context.core = SchedulerCore::Fast;
      else if (value == "reference") spec.context.core = SchedulerCore::Reference;
      else throw std::invalid_argument("campaign: unknown core '" + value + "'");
    } else if (key == "backend") {
      if (value == "auto") spec.context.backend = kernels::Backend::Auto;
      else if (value == "scalar") spec.context.backend = kernels::Backend::Scalar;
      else if (value == "avx2") spec.context.backend = kernels::Backend::Avx2;
      else throw std::invalid_argument("campaign: unknown backend '" + value + "'");
    } else if (key == "validate") {
      spec.context.validate = parse_int_field(key, value) != 0;
    } else if (key == "mode") {
      if (value == "lateness") spec.mode = CampaignMode::Lateness;
      else if (value == "gap") spec.mode = CampaignMode::Gap;
      else throw std::invalid_argument("campaign: unknown mode '" + value + "'");
    } else if (key == "exact_nodes") {
      spec.exact_nodes = parse_u64_field(key, value);
    } else if (key == "strategies") {
      for (const std::string& piece : split(value, ',')) {
        const std::string s = trim(piece);
        if (!s.empty()) spec.strategies.push_back(s);
      }
    } else if (key == "sizes") {
      for (const std::string& piece : split(value, ',')) {
        const std::string s = trim(piece);
        if (s.empty()) continue;
        const long long n = parse_int_field(key, s);
        if (n < 1) throw std::invalid_argument("campaign: sizes must be positive");
        spec.sizes.push_back(static_cast<int>(n));
      }
    } else {
      throw std::invalid_argument("campaign spec line " + std::to_string(line_no) +
                                  ": unknown key '" + key + "'");
    }
  }

  if (spec.strategies.empty()) {
    throw std::invalid_argument("campaign spec: no strategies");
  }
  if (spec.sizes.empty()) throw std::invalid_argument("campaign spec: no sizes");
  if (spec.batch.samples < 1) throw std::invalid_argument("campaign spec: samples < 1");
  // Fail fast on malformed strategy specs, before any cell runs.
  for (const std::string& s : spec.strategies) (void)parse_strategy_spec(s);
  return spec;
}

CampaignSpec CampaignSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("campaign: cannot open spec '" + path + "'");
  return parse(in);
}

// ----------------------------------------------------------------- manifest

const char* to_string(CellState state) noexcept {
  switch (state) {
    case CellState::Pending: return "pending";
    case CellState::Computed: return "computed";
    case CellState::Cached: return "cached";
    case CellState::Failed: return "failed";
    case CellState::Quarantined: return "quarantined";
  }
  return "?";
}

void write_manifest(std::ostream& out, const CampaignSpec& spec,
                    const CampaignResult& result) {
  // Schema v2 (docs/CAMPAIGN.md): v1 plus per-cell attempt/error-taxonomy
  // records and a quarantined total.  read_manifest accepts both versions.
  out << "{\n";
  out << "  \"feast_manifest_version\": 2,\n";
  out << "  \"name\": \"" << json_escape(result.name) << "\",\n";
  out << "  \"spec_hash\": \"" << result.spec_hash_hex << "\",\n";
  out << "  \"samples\": " << result.samples << ",\n";
  out << "  \"spec_text\": \"" << json_escape(spec.canonical_text()) << "\",\n";
  std::size_t pending = 0;
  for (const CellOutcome& cell : result.cells) {
    if (cell.state == CellState::Pending) ++pending;
  }
  out << "  \"totals\": {\"cells\": " << result.cells.size()
      << ", \"computed\": " << result.computed << ", \"cached\": " << result.cached
      << ", \"failed\": " << result.failed << ", \"quarantined\": "
      << result.quarantined << ", \"pending\": " << pending
      << ", \"wall_ms\": " << json_number(result.wall_ms)
      << ", \"cells_per_sec\": " << json_number(result.cells_per_sec)
      << ", \"runs_per_sec\": " << json_number(result.runs_per_sec) << "},\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellOutcome& cell = result.cells[i];
    out << "    {\"strategy\": \"" << json_escape(cell.strategy_label)
        << "\", \"spec\": \"" << json_escape(cell.strategy_spec)
        << "\", \"procs\": " << cell.n_procs << ", \"key\": \"" << cell.key_hex
        << "\", \"state\": \"" << to_string(cell.state)
        << "\", \"wall_ms\": " << json_number(cell.wall_ms)
        << ", \"attempts\": " << cell.attempts << ", \"error_kind\": \""
        << json_escape(cell.error_kind) << "\",\n     ";
    write_summary_json(out, "max_lateness", cell.stats.max_lateness);
    out << ", ";
    write_summary_json(out, "end_to_end", cell.stats.end_to_end);
    out << ",\n     ";
    write_summary_json(out, "makespan", cell.stats.makespan);
    out << ", ";
    write_summary_json(out, "min_laxity", cell.stats.min_laxity);
    out << ",\n     \"infeasible_runs\": " << cell.stats.infeasible_runs
        << ", \"error\": \"" << json_escape(cell.error) << "\"}";
    out << (i + 1 < result.cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
}

Manifest read_manifest(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const JsonValue root = parse_json(text);
  if (root.type != JsonValue::Type::Object) {
    throw std::runtime_error("manifest: top level is not an object");
  }
  Manifest manifest;
  manifest.version = static_cast<int>(number_at(root, "feast_manifest_version"));
  if (manifest.version != 1 && manifest.version != 2) {
    throw std::runtime_error("manifest: unsupported version " +
                             std::to_string(manifest.version));
  }
  manifest.name = string_at(root, "name");
  manifest.spec_hash_hex = string_at(root, "spec_hash");
  manifest.spec_text = string_at(root, "spec_text");
  manifest.samples = static_cast<int>(number_at(root, "samples"));
  if (const JsonValue* totals = root.find("totals")) {
    manifest.wall_ms = number_at(*totals, "wall_ms");
    manifest.computed = static_cast<std::size_t>(number_at(*totals, "computed"));
    manifest.cached = static_cast<std::size_t>(number_at(*totals, "cached"));
    manifest.failed = static_cast<std::size_t>(number_at(*totals, "failed"));
    manifest.quarantined = static_cast<std::size_t>(number_at(*totals, "quarantined"));
  }
  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || cells->type != JsonValue::Type::Array) {
    throw std::runtime_error("manifest: missing cells array");
  }
  manifest.cells.reserve(cells->array.size());
  for (const JsonValue& entry : cells->array) {
    if (entry.type != JsonValue::Type::Object) {
      throw std::runtime_error("manifest: cell entry is not an object");
    }
    CellOutcome cell;
    cell.strategy_label = string_at(entry, "strategy");
    cell.strategy_spec = string_at(entry, "spec");
    cell.n_procs = static_cast<int>(number_at(entry, "procs"));
    cell.key_hex = string_at(entry, "key");
    cell.state = cell_state_from(string_at(entry, "state"));
    cell.wall_ms = number_at(entry, "wall_ms");
    cell.stats.max_lateness = summary_at(entry, "max_lateness");
    cell.stats.end_to_end = summary_at(entry, "end_to_end");
    cell.stats.makespan = summary_at(entry, "makespan");
    cell.stats.min_laxity = summary_at(entry, "min_laxity");
    cell.stats.infeasible_runs =
        static_cast<std::size_t>(number_at(entry, "infeasible_runs"));
    cell.error = string_at(entry, "error");
    cell.attempts = static_cast<int>(number_at(entry, "attempts"));  // v2; 0 in v1.
    cell.error_kind = string_at(entry, "error_kind");
    manifest.cells.push_back(std::move(cell));
  }
  return manifest;
}

std::string manifest_fingerprint(const Manifest& manifest) {
  // Everything a result *means* and nothing about how long it took: cell
  // identity + stats at full precision, in manifest (= plan) order.  Two
  // campaigns of the same spec agree here iff they produced the same
  // numbers, regardless of interruptions, resumes or cache state.
  auto summary = [](std::ostringstream& out, const char* name, const StatSummary& s) {
    out << ' ' << name << '=' << s.count << ',' << full(s.mean) << ',' << full(s.stddev)
        << ',' << full(s.min) << ',' << full(s.max) << ',' << full(s.ci95_half_width);
  };
  std::ostringstream out;
  out << "spec " << manifest.spec_hash_hex << " samples " << manifest.samples << '\n';
  for (const CellOutcome& cell : manifest.cells) {
    out << "cell strategy=" << cell.strategy_label << " procs=" << cell.n_procs;
    summary(out, "max_lateness", cell.stats.max_lateness);
    summary(out, "end_to_end", cell.stats.end_to_end);
    summary(out, "makespan", cell.stats.makespan);
    summary(out, "min_laxity", cell.stats.min_laxity);
    out << " infeasible=" << cell.stats.infeasible_runs << '\n';
  }
  return out.str();
}

Manifest read_manifest_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("campaign: cannot open manifest '" + path + "'");
  return read_manifest(in);
}

// ------------------------------------------------------------------- runner

void checkpoint_manifest_file(const std::string& path, const CampaignSpec& spec,
                              const CampaignResult& result) {
  if (path.empty()) return;

  std::ostringstream rendered;
  write_manifest(rendered, spec, result);
  std::string text = rendered.str();

  bool die_before_rename = false;
  if (const auto fault = check::fire(check::FaultSite::ManifestWrite)) {
    switch (*fault) {
      case check::FaultAction::FailWrite:
        // Checkpoint silently skipped: whatever manifest is on disk goes
        // stale by one (or more) cells.
        return;
      case check::FaultAction::PartialWrite: {
        // A torn manifest published in place — what a writer without the
        // tmp+rename discipline would leave after a crash.
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        if (out) out << text.substr(0, text.size() / 2);
        return;
      }
      case check::FaultAction::Die:
        die_before_rename = true;  // Crash between tmp write and rename.
        break;
      default:
        check::execute(*fault, "manifest-write");
    }
  }

  if (die_before_rename) {
    // The fully written, fsynced temporary exists but was never published:
    // exactly the crash window the atomic protocol must tolerate.
    std::string error;
    if (!write_file_synced(unique_tmp_path(path), text, &error)) {
      throw std::runtime_error("campaign: " + error);
    }
    std::_Exit(check::kFaultExitCode);
  }

  // Durable publication: fsynced unique tmp + rename + directory fsync, so
  // a crash (or power cut) right after this call can never surface an
  // empty or torn manifest under the final name, and concurrent feastc
  // processes sharing a manifest path never clobber each other's tmp.
  std::string error;
  if (!atomic_write_file(path, text, &error)) {
    throw std::runtime_error("campaign: cannot write manifest: " + error);
  }
}

void refresh_campaign_totals(CampaignResult& result, double wall_ms) {
  result.computed = result.cached = result.failed = result.quarantined = 0;
  for (const CellOutcome& cell : result.cells) {
    switch (cell.state) {
      case CellState::Computed: ++result.computed; break;
      case CellState::Cached: ++result.cached; break;
      case CellState::Failed: ++result.failed; break;
      case CellState::Quarantined: ++result.quarantined; break;
      case CellState::Pending: break;
    }
  }
  result.wall_ms = wall_ms;
  const double wall_s = wall_ms / 1000.0;
  if (wall_s > 0.0) {
    result.cells_per_sec = static_cast<double>(result.cells.size()) / wall_s;
    result.runs_per_sec =
        static_cast<double>(result.computed) * result.samples / wall_s;
  }
}

std::string campaign_strategy_label(const CampaignSpec& spec,
                                    const std::string& strategy_label) {
  if (spec.mode == CampaignMode::Gap) {
    return exact::gap_cell_label(strategy_label, spec.exact_nodes);
  }
  return strategy_label;
}

ExecutedCell execute_campaign_cell(const CampaignSpec& spec, const Strategy& strategy,
                                   int n_procs, CellCache* cache) {
  if (spec.mode == CampaignMode::Gap) {
    return exact::execute_gap_cell(spec.workload, strategy, n_procs, spec.batch,
                                   spec.context, spec.exact_nodes, cache);
  }
  return execute_cell(spec.workload, strategy, n_procs, spec.batch, spec.context, cache);
}

std::vector<PlannedCell> plan_cells(const CampaignSpec& spec,
                                    const std::vector<Strategy>& strategies) {
  std::vector<PlannedCell> plan;
  plan.reserve(spec.cell_count());
  for (std::size_t si = 0; si < strategies.size(); ++si) {
    for (const int n_procs : spec.sizes) {
      PlannedCell p;
      p.index = plan.size();
      p.strategy_index = si;
      p.n_procs = n_procs;
      p.canonical = describe_cell(spec.workload,
                                  campaign_strategy_label(spec, strategies[si].label),
                                  n_procs, spec.batch, spec.context);
      plan.push_back(std::move(p));
    }
  }
  return plan;
}

void write_gap_csv(std::ostream& out, const CampaignSpec& spec,
                   const CampaignResult& result) {
  CsvWriter csv(out);
  csv.write_row({"strategy", "procs", "samples", "mean_heuristic", "mean_optimal",
                 "mean_gap", "max_gap", "stddev_gap", "mean_nodes", "unproven"});
  for (const CellOutcome& cell : result.cells) {
    if (cell.state != CellState::Computed && cell.state != CellState::Cached) continue;
    // Field mapping per exact/gap.hpp: max_lateness <- heuristic,
    // end_to_end <- optimal, makespan <- gap, min_laxity <- oracle nodes.
    csv.write_row({cell.strategy_spec, std::to_string(cell.n_procs),
                   std::to_string(spec.batch.samples),
                   format_compact(cell.stats.max_lateness.mean, 6),
                   format_compact(cell.stats.end_to_end.mean, 6),
                   format_compact(cell.stats.makespan.mean, 6),
                   format_compact(cell.stats.makespan.max, 6),
                   format_compact(cell.stats.makespan.stddev, 6),
                   format_compact(cell.stats.min_laxity.mean, 6),
                   std::to_string(cell.stats.infeasible_runs)});
  }
}

std::vector<CellOutcome> plan_outcomes(const CampaignSpec& spec,
                                       const std::vector<Strategy>& strategies,
                                       const std::vector<PlannedCell>& plan) {
  std::vector<CellOutcome> cells;
  cells.reserve(plan.size());
  for (const PlannedCell& p : plan) {
    CellOutcome cell;
    cell.strategy_spec = spec.strategies[p.strategy_index];
    cell.strategy_label = campaign_strategy_label(spec, strategies[p.strategy_index].label);
    cell.n_procs = p.n_procs;
    if (!p.canonical.empty()) cell.key_hex = hash_hex(fnv1a64(p.canonical));
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::size_t restore_finished_cells(const std::string& manifest_path,
                                   const std::string& spec_hash_hex,
                                   std::vector<CellOutcome>& cells) {
  if (manifest_path.empty()) return 0;
  std::size_t restored = 0;
  try {
    const Manifest manifest = read_manifest_file(manifest_path);
    if (manifest.spec_hash_hex != spec_hash_hex) return 0;
    std::map<std::pair<std::string, int>, const CellOutcome*> done;
    for (const CellOutcome& cell : manifest.cells) {
      if (cell.state == CellState::Computed || cell.state == CellState::Cached) {
        done[{cell.strategy_label, cell.n_procs}] = &cell;
      }
    }
    for (CellOutcome& cell : cells) {
      const auto it = done.find({cell.strategy_label, cell.n_procs});
      if (it == done.end()) continue;
      cell.state = CellState::Cached;  // Restored, not recomputed.
      cell.stats = it->second->stats;
      cell.wall_ms = 0.0;
      ++restored;
    }
  } catch (const std::exception&) {
    // Missing/torn/foreign manifest: start fresh.
  }
  return restored;
}

CampaignResult run_campaign(const CampaignSpec& spec, const CampaignOptions& options) {
  if (spec.strategies.empty()) throw std::invalid_argument("campaign: no strategies");
  if (spec.sizes.empty()) throw std::invalid_argument("campaign: no sizes");
  if (spec.batch.samples < 1) throw std::invalid_argument("campaign: samples < 1");
  for (const int n : spec.sizes) {
    if (n < 1) throw std::invalid_argument("campaign: sizes must be positive");
  }

  // Arm an attached fault plan process-wide for the campaign's duration: the
  // injection sites (pool workers, cache I/O, the checkpoint writer above)
  // consult check::active(), not the context, since they run below the
  // layers that know about RunContext.
  check::ScopedFaultPlan scoped_faults(spec.context.faults);

  if (options.threads > 0) {
    set_parallelism(options.threads);
    // set_parallelism only feeds parallel_for's lazy resize, but the cells
    // below are submitted straight to the global pool — resize it here (the
    // main thread is not a pool worker) so --threads actually bounds the
    // campaign's concurrency.
    WorkStealingPool::global().resize(options.threads);
  }

  std::vector<Strategy> strategies;
  strategies.reserve(spec.strategies.size());
  for (const std::string& s : spec.strategies) strategies.push_back(parse_strategy_spec(s));

  const std::string spec_text = spec.canonical_text();

  CampaignResult result;
  result.name = spec.name;
  result.spec_hash_hex = hash_hex(fnv1a64(spec_text));
  result.samples = spec.batch.samples;

  const std::vector<PlannedCell> plan = plan_cells(spec, strategies);
  result.cells = plan_outcomes(spec, strategies, plan);

  // Resume: restore the cells an earlier (interrupted) run of this exact
  // spec already finished.  A missing, torn or foreign manifest simply means
  // nothing is restored — the cache still absorbs most of the rework.
  if (options.resume) {
    restore_finished_cells(options.manifest_path, result.spec_hash_hex, result.cells);
  }

  const auto start = std::chrono::steady_clock::now();
  refresh_campaign_totals(result, 0.0);
  checkpoint_manifest_file(options.manifest_path, spec, result);

  // Cells are harvested in COMPLETION order, not submission order: finished
  // outcomes arrive on a queue and the manifest is checkpointed after each
  // one, so a killed run leaves every finished cell on disk no matter how
  // the pool interleaved the work.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::deque<std::pair<std::size_t, CellOutcome>> done_queue;

  WorkStealingPool& pool = WorkStealingPool::global();
  std::size_t submitted = 0;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (result.cells[i].state != CellState::Pending) continue;
    ++submitted;
    pool.submit([&spec, &strategies, &plan, &options, &result, &done_mutex, &done_cv,
                 &done_queue, i]() {
      // The main thread does not touch cells[i] until this task reports done.
      CellOutcome cell = result.cells[i];
      const PlannedCell& p = plan[i];
      const auto cell_start = std::chrono::steady_clock::now();
      try {
        const ExecutedCell executed = execute_campaign_cell(
            spec, strategies[p.strategy_index], p.n_procs, options.cache);
        cell.stats = executed.stats;
        cell.state = executed.from_cache ? CellState::Cached : CellState::Computed;
      } catch (const std::exception& e) {
        cell.state = CellState::Failed;
        cell.error = e.what();
      } catch (...) {
        cell.state = CellState::Failed;
        cell.error = "unknown error";
      }
      cell.wall_ms = ms_since(cell_start);
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_queue.emplace_back(i, std::move(cell));
        // Notify while still holding done_mutex: after the lock is dropped
        // the main thread may harvest the final item and return from
        // run_campaign, destroying the stack-local done_cv mid-notify.
        done_cv.notify_one();
      }
    });
  }

  const std::size_t total = result.cells.size();
  for (std::size_t harvested = 0; harvested < submitted; ++harvested) {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return !done_queue.empty(); });
    const std::size_t i = done_queue.front().first;
    result.cells[i] = std::move(done_queue.front().second);
    done_queue.pop_front();
    lock.unlock();

    refresh_campaign_totals(result, ms_since(start));
    checkpoint_manifest_file(options.manifest_path, spec, result);
    if (options.progress != nullptr) {
      const CellOutcome& cell = result.cells[i];
      *options.progress << "[" << (harvested + 1 + total - submitted) << "/" << total
                        << "] " << cell.strategy_label << " procs=" << cell.n_procs
                        << " " << to_string(cell.state) << " ("
                        << format_compact(cell.wall_ms, 1) << " ms)";
      if (!cell.error.empty()) *options.progress << " — " << cell.error;
      *options.progress << std::endl;  // Flushed: progress must survive a kill.
    }
  }

  refresh_campaign_totals(result, ms_since(start));
  checkpoint_manifest_file(options.manifest_path, spec, result);
  return result;
}

void print_manifest_status(std::ostream& out, const Manifest& manifest) {
  std::size_t pending = 0;
  for (const CellOutcome& cell : manifest.cells) {
    if (cell.state == CellState::Pending) ++pending;
  }
  out << "campaign:  " << manifest.name << " (spec " << manifest.spec_hash_hex << ")\n";
  out << "cells:     " << manifest.cells.size() << " total — " << manifest.computed
      << " computed, " << manifest.cached << " cached, " << manifest.failed
      << " failed, " << manifest.quarantined << " quarantined, " << pending
      << " pending\n";
  if (manifest.quarantined > 0) {
    out << "DEGRADED:  " << manifest.quarantined
        << " poison cell(s) excluded by the supervisor; `campaign resume` "
           "retries them\n";
  }
  out << "samples:   " << manifest.samples << " per cell\n";
  const double wall_s = manifest.wall_ms / 1000.0;
  out << "wall:      " << format_compact(manifest.wall_ms, 1) << " ms";
  if (wall_s > 0.0) {
    out << " (" << format_compact(static_cast<double>(manifest.cells.size()) / wall_s, 2)
        << " cells/s, "
        << format_compact(static_cast<double>(manifest.computed) * manifest.samples /
                              wall_s,
                          2)
        << " computed runs/s)";
  }
  out << "\n\n";
  TextTable table;
  table.set_header({"strategy", "procs", "state", "attempts", "error", "wall ms",
                    "mean max lateness", "infeasible"});
  bool any_error = false;
  for (const CellOutcome& cell : manifest.cells) {
    table.add_row({cell.strategy_label, std::to_string(cell.n_procs),
                   to_string(cell.state),
                   cell.attempts > 0 ? std::to_string(cell.attempts) : "-",
                   cell.error_kind.empty() ? "-" : cell.error_kind,
                   format_compact(cell.wall_ms, 1),
                   format_compact(cell.stats.max_lateness.mean, 4),
                   std::to_string(cell.stats.infeasible_runs)});
    if (!cell.error.empty()) any_error = true;
  }
  table.render(out);
  if (any_error) {
    out << "\nerrors\n";
    for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
      const CellOutcome& cell = manifest.cells[i];
      if (cell.error.empty()) continue;
      out << "  cell " << i << " (" << cell.strategy_label << " procs="
          << cell.n_procs << "): " << cell.error << "\n";
    }
  }
}

void write_manifest_status_json(std::ostream& out, const Manifest& manifest) {
  std::size_t pending = 0;
  for (const CellOutcome& cell : manifest.cells) {
    if (cell.state == CellState::Pending) ++pending;
  }
  out << "{\n";
  out << "  \"name\": \"" << json_escape(manifest.name) << "\",\n";
  out << "  \"spec_hash\": \"" << manifest.spec_hash_hex << "\",\n";
  out << "  \"samples\": " << manifest.samples << ",\n";
  // The fingerprint hash is the differential identity scripts compare: two
  // manifests agree here iff manifest_fingerprint() is byte-identical.
  out << "  \"fingerprint\": \"" << hash_hex(fnv1a64(manifest_fingerprint(manifest)))
      << "\",\n";
  out << "  \"totals\": {\"cells\": " << manifest.cells.size()
      << ", \"computed\": " << manifest.computed << ", \"cached\": " << manifest.cached
      << ", \"failed\": " << manifest.failed
      << ", \"quarantined\": " << manifest.quarantined << ", \"pending\": " << pending
      << ", \"wall_ms\": " << json_number(manifest.wall_ms) << "},\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < manifest.cells.size(); ++i) {
    const CellOutcome& cell = manifest.cells[i];
    out << "    {\"index\": " << i << ", \"strategy\": \""
        << json_escape(cell.strategy_label) << "\", \"procs\": " << cell.n_procs
        << ", \"state\": \"" << to_string(cell.state)
        << "\", \"attempts\": " << cell.attempts << ", \"error_kind\": \""
        << json_escape(cell.error_kind) << "\", \"error\": \""
        << json_escape(cell.error)
        << "\", \"wall_ms\": " << json_number(cell.wall_ms) << ",\n     ";
    write_summary_json(out, "max_lateness", cell.stats.max_lateness);
    out << ", ";
    write_summary_json(out, "end_to_end", cell.stats.end_to_end);
    out << ",\n     ";
    write_summary_json(out, "makespan", cell.stats.makespan);
    out << ", ";
    write_summary_json(out, "min_laxity", cell.stats.min_laxity);
    out << ",\n     \"infeasible_runs\": " << cell.stats.infeasible_runs << "}";
    out << (i + 1 < manifest.cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace feast
