#include "sim/runtime_sim.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace feast {

namespace {

enum class EventKind : std::uint8_t { TaskReady, ProcIdle, BackgroundArrival };

struct Event {
  Time time = 0.0;
  std::uint64_t seq = 0;  ///< Tie-break: FIFO among simultaneous events.
  EventKind kind = EventKind::TaskReady;
  std::uint32_t subject = 0;  ///< Node id or processor index.
  std::uint64_t epoch = 0;    ///< For ProcIdle: invalidated by preemption.

  /// Min-heap ordering.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct TaskState {
  ProcId proc;
  std::size_t pending_preds = 0;
  Time data_ready = 0.0;  ///< Latest message arrival (or boundary release).
  Time ready_time = kUnsetTime;
  bool started = false;      ///< Execution-time scale already drawn.
  Time remaining = 0.0;      ///< Work left (after preemptions).
  Time last_start = 0.0;     ///< When the current burst began.
  Time finish = kUnsetTime;  ///< Completion time.
};

struct ProcState {
  bool busy = false;
  std::vector<NodeId> ready;         ///< Dispatchable application subtasks.
  std::size_t background_pending = 0;
  Time next_background = kInfiniteTime;
  std::uint64_t epoch = 0;  ///< Bumped on every (re)dispatch; stale ProcIdle
                            ///< events carry an older epoch and are ignored.
};

}  // namespace

RuntimeResult simulate_runtime(const TaskGraph& graph,
                               const DeadlineAssignment& assignment,
                               const Schedule& plan, const Machine& machine,
                               const RuntimeOptions& options, Pcg32& rng) {
  machine.check();
  FEAST_REQUIRE(assignment.complete());
  FEAST_REQUIRE(plan.complete(graph));
  FEAST_REQUIRE(options.exec_scale_min > 0.0);
  FEAST_REQUIRE(options.exec_scale_min <= options.exec_scale_max);
  FEAST_REQUIRE(options.background_utilization >= 0.0 &&
                options.background_utilization < 1.0);
  FEAST_REQUIRE(options.background_service > 0.0);

  const auto n_procs = static_cast<std::size_t>(machine.n_procs);

  // Assigned absolute deadlines, flattened once: the online-EDF dispatch
  // scan and the preemption test read them for every ready-queue element
  // on every event, and going through the assignment accessor each time
  // dominated the dispatch profile on large ready sets.
  std::vector<Time> abs_deadline(graph.node_count(), 0.0);
  for (const NodeId id : graph.computation_nodes()) {
    abs_deadline[id.index()] = assignment.abs_deadline(id);
  }

  std::vector<TaskState> tasks(graph.node_count());
  std::vector<ProcState> procs(n_procs);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  std::size_t remaining = 0;

  auto push = [&](Time t, EventKind kind, std::uint32_t subject,
                  std::uint64_t epoch = 0) {
    events.push(Event{t, ++seq, kind, subject, epoch});
  };

  // Background streams: periodic with a random initial phase.
  const Time bg_period = options.background_utilization > 0.0
                             ? options.background_service / options.background_utilization
                             : kInfiniteTime;
  for (std::size_t p = 0; p < n_procs; ++p) {
    if (options.background_utilization > 0.0) {
      procs[p].next_background = rng.uniform_real(0.0, bg_period);
      push(procs[p].next_background, EventKind::BackgroundArrival,
           static_cast<std::uint32_t>(p));
    }
  }

  // Application tasks.
  for (const NodeId id : graph.computation_nodes()) {
    TaskState& task = tasks[id.index()];
    task.proc = plan.placement(id).proc;
    FEAST_REQUIRE(task.proc.index() < n_procs);
    task.pending_preds = graph.preds(id).size();
    const Time boundary = graph.node(id).boundary_release;
    task.data_ready = is_set(boundary) ? boundary : 0.0;
    ++remaining;
    if (task.pending_preds == 0) {
      const Time floor = options.time_driven ? assignment.release(id) : task.data_ready;
      task.ready_time = std::max(task.data_ready, floor);
      push(task.ready_time, EventKind::TaskReady, id.value);
    }
  }

  RuntimeResult result;
  Time now = 0.0;

  // Per-processor currently-running application task (invalid when idle or
  // running a background job).
  std::vector<NodeId> running(n_procs);

  // Starts the best dispatchable work on \p p if it is idle: the ready
  // application subtask with the earliest assigned absolute deadline, or a
  // pending background job when no subtask is ready.
  auto dispatch = [&](std::size_t p) {
    ProcState& proc = procs[p];
    if (proc.busy) return;
    running[p] = NodeId();

    if (!proc.ready.empty()) {
      // Online EDF over assigned absolute deadlines; ties by node id.
      auto best = proc.ready.begin();
      for (auto it = std::next(proc.ready.begin()); it != proc.ready.end(); ++it) {
        const Time da = abs_deadline[it->index()];
        const Time db = abs_deadline[best->index()];
        if (da < db - kTimeEps || (time_eq(da, db) && *it < *best)) best = it;
      }
      const NodeId id = *best;
      proc.ready.erase(best);
      TaskState& task = tasks[id.index()];
      if (!task.started) {
        task.started = true;
        const double scale =
            rng.uniform_real(options.exec_scale_min, options.exec_scale_max);
        task.remaining = machine.exec_time_on(graph.node(id).exec_time, p) * scale;
      }
      task.last_start = now;
      proc.busy = true;
      running[p] = id;
      ++proc.epoch;
      push(now + task.remaining, EventKind::ProcIdle, static_cast<std::uint32_t>(p),
           proc.epoch);
      return;
    }
    if (proc.background_pending > 0 && remaining > 0) {
      --proc.background_pending;
      ++result.background_jobs_run;
      proc.busy = true;
      running[p] = NodeId();
      ++proc.epoch;
      push(now + options.background_service, EventKind::ProcIdle,
           static_cast<std::uint32_t>(p), proc.epoch);
    }
  };

  // Preempts the running application subtask on \p p when \p challenger
  // has a strictly earlier assigned deadline.  Background jobs and
  // about-to-finish tasks are left alone.
  auto maybe_preempt = [&](std::size_t p, NodeId challenger) {
    if (!options.preemptive) return;
    ProcState& proc = procs[p];
    const NodeId incumbent = running[p];
    if (!proc.busy || !incumbent.valid()) return;
    if (abs_deadline[challenger.index()] >=
        abs_deadline[incumbent.index()] - kTimeEps) {
      return;
    }
    TaskState& task = tasks[incumbent.index()];
    const Time done = now - task.last_start;
    if (task.remaining - done <= kTimeEps) return;  // effectively finished
    task.remaining -= done;
    proc.ready.push_back(incumbent);
    proc.busy = false;
    running[p] = NodeId();
    ++proc.epoch;  // invalidate the scheduled completion event
  };

  while (!events.empty() && remaining > 0) {
    const Event event = events.top();
    events.pop();
    now = event.time;

    switch (event.kind) {
      case EventKind::TaskReady: {
        const NodeId id(event.subject);
        TaskState& task = tasks[id.index()];
        FEAST_ASSERT(!task.started);
        const std::size_t p = task.proc.index();
        maybe_preempt(p, id);
        procs[p].ready.push_back(id);
        if (!procs[p].busy) dispatch(p);
        break;
      }
      case EventKind::BackgroundArrival: {
        const std::size_t p = event.subject;
        ++procs[p].background_pending;
        procs[p].next_background += bg_period;
        push(procs[p].next_background, EventKind::BackgroundArrival,
             static_cast<std::uint32_t>(p));
        if (!procs[p].busy) dispatch(p);
        break;
      }
      case EventKind::ProcIdle: {
        const std::size_t p = event.subject;
        if (event.epoch != procs[p].epoch) break;  // superseded by preemption
        procs[p].busy = false;
        const NodeId finished = running[p];
        running[p] = NodeId();
        if (finished.valid()) {
          TaskState& task = tasks[finished.index()];
          task.finish = now;
          task.remaining = 0.0;
          --remaining;
          result.makespan = std::max(result.makespan, now);
          // Deliver messages to consumers.
          for (const NodeId comm : graph.succs(finished)) {
            const NodeId consumer = graph.comm_sink(comm);
            TaskState& down = tasks[consumer.index()];
            const bool crossing = down.proc != task.proc;
            const Time arrival =
                now + (crossing
                           ? machine.transfer_time(graph.node(comm).message_items)
                           : 0.0);
            down.data_ready = std::max(down.data_ready, arrival);
            FEAST_ASSERT(down.pending_preds > 0);
            if (--down.pending_preds == 0) {
              const Time floor = options.time_driven ? assignment.release(consumer)
                                                     : down.data_ready;
              down.ready_time = std::max(down.data_ready, floor);
              push(down.ready_time, EventKind::TaskReady, consumer.value);
            }
          }
        }
        if (remaining > 0) dispatch(p);
        break;
      }
    }
  }

  FEAST_ENSURE_MSG(remaining == 0, "runtime simulation deadlocked");

  // Lateness against the assigned deadlines, per §4.1.
  Time lateness_sum = 0.0;
  for (const NodeId id : graph.computation_nodes()) {
    const TaskState& task = tasks[id.index()];
    const Time lateness = task.finish - abs_deadline[id.index()];
    lateness_sum += lateness;
    if (lateness > result.lateness.max_lateness) {
      result.lateness.max_lateness = lateness;
      result.lateness.argmax = id;
    }
    if (lateness > kTimeEps) ++result.lateness.missed;
    ++result.lateness.count;
  }
  if (result.lateness.count > 0) {
    result.lateness.mean_lateness =
        lateness_sum / static_cast<double>(result.lateness.count);
  }

  Time e2e = -kInfiniteTime;
  for (const NodeId id : graph.outputs()) {
    e2e = std::max(e2e, tasks[id.index()].finish - graph.node(id).boundary_deadline);
  }
  result.end_to_end = graph.outputs().empty() ? 0.0 : e2e;
  return result;
}

}  // namespace feast
