/// \file runtime_sim.hpp
/// \brief Discrete-event runtime simulation of a distributed schedule.
///
/// The offline pipeline (distribute → list-schedule) fixes each subtask's
/// processor and promises that the execution windows hold.  This simulator
/// *executes* that plan under runtime conditions the offline stage did not
/// see:
///
///  - **execution-time variation**: actual running time is the WCET scaled
///    by a uniform factor (below 1 models early completion, above 1 models
///    overruns);
///  - **background workload**: each processor receives a stream of
///    non-preemptable background jobs at a configurable utilization; a job
///    occupying the processor blocks application subtasks that become
///    ready meanwhile — exactly the disturbance §4.1 says the maximum
///    task lateness measures headroom against.
///
/// Dispatching is an online, non-preemptive, per-processor EDF over the
/// assigned absolute deadlines, with the time-driven release rule
/// (subtasks do not start before their distributed release times).
/// Message latencies use the contention-free delay model.
#pragma once

#include "core/annotation.hpp"
#include "sched/lateness.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/rng.hpp"

namespace feast {

/// Runtime disturbance model.
struct RuntimeOptions {
  /// Actual execution time = WCET × U(exec_scale_min, exec_scale_max).
  double exec_scale_min = 1.0;
  double exec_scale_max = 1.0;

  /// Fraction of each processor's time consumed by background jobs
  /// (0 = none).  Jobs are non-preemptable, lower priority than any
  /// application subtask, and arrive periodically with jittered phase.
  double background_utilization = 0.0;

  /// Service time of one background job.
  Time background_service = 10.0;

  /// Subtasks may not start before their assigned release (time-driven);
  /// disable to dispatch as soon as data is available.
  bool time_driven = true;

  /// Preemptive EDF: a newly ready subtask with an earlier assigned
  /// absolute deadline preempts the running subtask on its processor
  /// (background jobs remain non-preemptable).  Default is the paper's
  /// non-preemptive discipline.
  bool preemptive = false;
};

/// Measurements of one simulated execution.
struct RuntimeResult {
  LatenessStats lateness;    ///< Against the assigned absolute deadlines.
  Time end_to_end = 0.0;     ///< Against the boundary deadlines.
  Time makespan = 0.0;
  std::size_t background_jobs_run = 0;
};

/// Simulates the execution of \p graph with windows \p assignment, using
/// the processor placement of \p plan (an offline schedule for the same
/// graph and machine).  Deterministic in \p rng's state.
RuntimeResult simulate_runtime(const TaskGraph& graph,
                               const DeadlineAssignment& assignment,
                               const Schedule& plan, const Machine& machine,
                               const RuntimeOptions& options, Pcg32& rng);

}  // namespace feast
