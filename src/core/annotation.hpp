/// \file annotation.hpp
/// \brief The product of deadline distribution: per-subtask execution
///        windows (release time, relative deadline, absolute deadline).
///
/// The distribution algorithm (§4.2, Figure 1) takes a task graph and
/// produces an *annotated* graph.  FEAST keeps the annotation separate from
/// the immutable TaskGraph so one graph can be distributed under many
/// metric/estimator combinations during an experiment sweep.
#pragma once

#include <vector>

#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast {

/// The execution window assigned to one node.
struct NodeWindow {
  Time release = kUnsetTime;       ///< r_i: earliest allowed start.
  Time rel_deadline = kUnsetTime;  ///< d_i: time allotted from release.
  int iteration = -1;              ///< Slicing iteration that assigned it.

  bool assigned() const noexcept { return is_set(release); }

  /// Absolute deadline D_i = r_i + d_i.
  Time abs_deadline() const noexcept { return release + rel_deadline; }
};

/// One critical path sliced by an iteration of the algorithm, kept for
/// introspection, validation and tests.
struct SlicedPath {
  std::vector<NodeId> nodes;  ///< Path nodes in precedence order.
  Time window_start = 0.0;    ///< lb of the path's first node.
  Time window_end = 0.0;      ///< ub of the path's last node.
  double ratio = 0.0;         ///< Metric value R that made it critical.
  int iteration = -1;
};

/// Windows for every node of a graph plus the slicing history.
class DeadlineAssignment {
 public:
  DeadlineAssignment() = default;

  /// Creates an all-unassigned annotation sized for \p graph.
  explicit DeadlineAssignment(const TaskGraph& graph)
      : windows_(graph.node_count()) {}

  /// Number of node slots.
  std::size_t size() const noexcept { return windows_.size(); }

  /// Window of a node (possibly unassigned).
  const NodeWindow& window(NodeId id) const {
    FEAST_REQUIRE(id.index() < windows_.size());
    return windows_[id.index()];
  }

  /// window() without the bounds check, for the scheduler hot path:
  /// list_schedule requires complete() once per run, after which every
  /// in-range window is assigned and per-node re-checking (two contract
  /// branches per read, ~180 reads per run) only costs.
  const NodeWindow& window_unchecked(NodeId id) const noexcept {
    return windows_[id.index()];
  }

  /// True when every node has a window.  O(1): assign() rejects double
  /// assignment, so counting assignments counts assigned nodes exactly
  /// (the check runs as a precondition on every scheduled graph).
  bool complete() const noexcept {
    return assigned_count_ == windows_.size();
  }

  /// Assigns a window; \p rel_deadline must be non-negative.
  void assign(NodeId id, Time release, Time rel_deadline, int iteration);

  /// r_i of an assigned node.
  Time release(NodeId id) const { return checked(id).release; }

  /// d_i of an assigned node.
  Time rel_deadline(NodeId id) const { return checked(id).rel_deadline; }

  /// D_i = r_i + d_i of an assigned node.
  Time abs_deadline(NodeId id) const { return checked(id).abs_deadline(); }

  /// Laxity before scheduling: d_i − c_i for computation nodes (the slack
  /// the subtask can absorb and still meet its absolute deadline).
  Time laxity(const TaskGraph& graph, NodeId id) const;

  /// Appends a sliced path to the history.
  void record_path(SlicedPath path) { paths_.push_back(std::move(path)); }

  /// Slicing history in iteration order.
  const std::vector<SlicedPath>& paths() const noexcept { return paths_; }

  /// Minimum pre-scheduling laxity over all computation subtasks; the
  /// quantity BST maximizes in the strict-locality setting.
  Time min_laxity(const TaskGraph& graph) const;

 private:
  const NodeWindow& checked(NodeId id) const {
    const NodeWindow& w = window(id);
    FEAST_REQUIRE_MSG(w.assigned(), "node has no assigned window");
    return w;
  }

  std::vector<NodeWindow> windows_;
  std::vector<SlicedPath> paths_;
  std::size_t assigned_count_ = 0;  ///< Distinct assigned nodes (see complete()).
};

}  // namespace feast
