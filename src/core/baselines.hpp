/// \file baselines.hpp
/// \brief Non-slicing deadline-distribution baselines.
///
/// The related-work section of the paper (and the Kao & Garcia-Molina line
/// of work it cites) suggests simpler strategies that need no critical-path
/// search.  FEAST implements three as comparators for the benches:
///
///  - **UD (ultimate deadline)**: every subtask inherits the end-to-end
///    deadline unchanged; releases are as-soon-as-possible.
///  - **ED (effective deadline)**: ALAP — a subtask's absolute deadline is
///    the end-to-end deadline minus the longest (estimated) downstream
///    path; releases are ASAP.
///  - **PROP (proportional scaling)**: the infinite-resource ASAP schedule
///    is linearly stretched so the last finish lands on the end-to-end
///    deadline; each subtask's window is its stretched execution interval.
///
/// All three honour the same communication-cost estimator interface as the
/// slicing technique, so CCNE/CCAA comparisons remain apples-to-apples.
#pragma once

#include <memory>
#include <string>

#include "core/annotation.hpp"
#include "core/comm_estimator.hpp"
#include "core/distributor.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// UD: absolute deadline = end-to-end deadline for every subtask.
class UltimateDeadlineDistributor final : public Distributor {
 public:
  explicit UltimateDeadlineDistributor(const CommCostEstimator& estimator);
  std::string name() const override;
  DeadlineAssignment distribute(const TaskGraph& graph) override;

 private:
  const CommCostEstimator* estimator_;
};

/// ED: ALAP absolute deadlines from downstream longest paths.
class EffectiveDeadlineDistributor final : public Distributor {
 public:
  explicit EffectiveDeadlineDistributor(const CommCostEstimator& estimator);
  std::string name() const override;
  DeadlineAssignment distribute(const TaskGraph& graph) override;

 private:
  const CommCostEstimator* estimator_;
};

/// PROP: ASAP schedule stretched linearly onto the end-to-end window.
class ProportionalDistributor final : public Distributor {
 public:
  explicit ProportionalDistributor(const CommCostEstimator& estimator);
  std::string name() const override;
  DeadlineAssignment distribute(const TaskGraph& graph) override;

 private:
  const CommCostEstimator* estimator_;
};

std::unique_ptr<Distributor> make_ultimate_deadline(const CommCostEstimator& estimator);
std::unique_ptr<Distributor> make_effective_deadline(const CommCostEstimator& estimator);
std::unique_ptr<Distributor> make_proportional(const CommCostEstimator& estimator);

}  // namespace feast
