#include "core/annotation.hpp"

#include <algorithm>

namespace feast {

void DeadlineAssignment::assign(NodeId id, Time release, Time rel_deadline,
                                int iteration) {
  FEAST_REQUIRE(id.index() < windows_.size());
  FEAST_REQUIRE_MSG(!windows_[id.index()].assigned(), "node already has a window");
  FEAST_REQUIRE(is_set(release));
  FEAST_REQUIRE_MSG(rel_deadline >= 0.0, "relative deadline must be non-negative");
  windows_[id.index()] = NodeWindow{release, rel_deadline, iteration};
  ++assigned_count_;
}

Time DeadlineAssignment::laxity(const TaskGraph& graph, NodeId id) const {
  FEAST_REQUIRE(graph.is_computation(id));
  return rel_deadline(id) - graph.node(id).exec_time;
}

Time DeadlineAssignment::min_laxity(const TaskGraph& graph) const {
  Time best = kInfiniteTime;
  for (const NodeId id : graph.computation_nodes()) {
    best = std::min(best, laxity(graph, id));
  }
  return best;
}

}  // namespace feast
