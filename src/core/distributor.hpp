/// \file distributor.hpp
/// \brief Common interface over all deadline-distribution strategies.
///
/// Benches and the experiment runner iterate over heterogeneous strategy
/// sets (BST/AST slicing variants plus the non-slicing baselines); this is
/// the type they share.
#pragma once

#include <memory>
#include <string>

#include "core/annotation.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Strategy interface shared by slicing and the baselines.
class Distributor {
 public:
  virtual ~Distributor() = default;

  /// Identifier for reports, e.g. "PURE+CCNE".
  virtual std::string name() const = 0;

  /// Produces a complete assignment for a distribution-ready graph.
  virtual DeadlineAssignment distribute(const TaskGraph& graph) = 0;
};

}  // namespace feast
