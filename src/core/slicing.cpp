#include "core/slicing.hpp"

#include <algorithm>

#include "taskgraph/validate.hpp"

namespace feast {

DeadlineDistributor::DeadlineDistributor(SliceMetric& metric,
                                         const CommCostEstimator& estimator,
                                         SlicingOptions options)
    : metric_(&metric), estimator_(&estimator), options_(options) {}

std::string DeadlineDistributor::describe() const {
  return metric_->name() + "+" + estimator_->name();
}

DeadlineAssignment DeadlineDistributor::distribute(const TaskGraph& graph) {
  require_valid(validate_for_distribution(graph));
  metric_->prepare(graph);
  CriticalPathFinder finder(graph, *metric_, *estimator_);

  ResidualState state(graph.node_count());
  // Boundary conditions: input subtasks carry their release time, output
  // subtasks their end-to-end deadline (Figure 1, step 1).
  for (const NodeId id : graph.inputs()) {
    state.lb[id.index()] = graph.node(id).boundary_release;
  }
  for (const NodeId id : graph.outputs()) {
    state.ub[id.index()] = graph.node(id).boundary_deadline;
  }

  DeadlineAssignment result(graph);
  int iteration = 0;

  while (auto critical = finder.find(state)) {
    const CriticalPathResult& path = *critical;
    FEAST_ASSERT(!path.nodes.empty());
    const double ratio = path.ratio;
    const SlackShare share = metric_->share();

    // Distribute the window over the path (Figure 1, step 4): contiguous
    // slices; negligible nodes get zero-width windows at their
    // predecessor's absolute deadline.  Overloaded windows (slack < 0)
    // compress slices proportionally to virtual cost so the slices never
    // spill past the window end; inverted windows (end before start, which
    // cross-path overlaps can produce under heavy overload) degenerate to
    // zero-width slices at the window end.
    const Time window = path.window_end - path.window_start;
    const bool inverted = window < 0.0;
    const bool overloaded = !inverted && path.eval.sum_virtual > window;
    const double compression =
        overloaded && path.eval.sum_virtual > kNegligibleCost
            ? window / path.eval.sum_virtual
            : 1.0;

    Time cursor = inverted ? path.window_end : path.window_start;
    std::vector<Time> releases(path.nodes.size());
    std::vector<Time> rel_deadlines(path.nodes.size());
    for (std::size_t i = 0; i < path.nodes.size(); ++i) {
      const NodeId id = path.nodes[i];
      if (options_.respect_interior_bounds && is_set(state.lb[id.index()])) {
        cursor = std::max(cursor, state.lb[id.index()]);
      }
      const Time v = finder.virtual_cost(id);
      Time d = 0.0;
      if (v > kNegligibleCost && !inverted) {
        d = overloaded ? v * compression : slice_rel_deadline(v, ratio, share);
      }
      releases[i] = cursor;
      rel_deadlines[i] = d;
      cursor += d;
    }
    if (options_.respect_interior_bounds) {
      // Backward clamp: no node's absolute deadline may exceed the earliest
      // deadline upper bound of itself or any later path node.
      Time cap = path.window_end;
      for (std::size_t i = path.nodes.size(); i-- > 0;) {
        const NodeId id = path.nodes[i];
        if (is_set(state.ub[id.index()])) cap = std::min(cap, state.ub[id.index()]);
        if (releases[i] + rel_deadlines[i] > cap) {
          const Time release = std::min(releases[i], cap);
          releases[i] = release;
          rel_deadlines[i] = std::max(0.0, cap - release);
        }
        cap = releases[i];  // next-earlier node must finish by our release
      }
    }

    for (std::size_t i = 0; i < path.nodes.size(); ++i) {
      result.assign(path.nodes[i], releases[i], rel_deadlines[i], iteration);
    }

    // Attach the rest of the graph to the spine (Figure 1, steps 5–11):
    // unassigned successors inherit a release lower bound, unassigned
    // predecessors a deadline upper bound.  Bounds accumulate across
    // iterations (max for lb, min for ub).
    for (const NodeId id : path.nodes) {
      state.assigned[id.index()] = true;
    }
    for (const NodeId id : path.nodes) {
      const Time abs_deadline = result.abs_deadline(id);
      const Time release = result.release(id);
      for (const NodeId succ : graph.succs(id)) {
        if (state.assigned[succ.index()]) continue;
        Time& lb = state.lb[succ.index()];
        lb = is_set(lb) ? std::max(lb, abs_deadline) : abs_deadline;
      }
      for (const NodeId pred : graph.preds(id)) {
        if (state.assigned[pred.index()]) continue;
        Time& ub = state.ub[pred.index()];
        ub = is_set(ub) ? std::min(ub, release) : release;
      }
    }

    SlicedPath record;
    record.nodes = path.nodes;
    record.window_start = path.window_start;
    record.window_end = path.window_end;
    record.ratio = ratio;
    record.iteration = iteration;
    result.record_path(std::move(record));
    ++iteration;
  }

  FEAST_ENSURE(result.complete());
  return result;
}

DeadlineAssignment distribute_deadlines(const TaskGraph& graph, SliceMetric& metric,
                                        const CommCostEstimator& estimator,
                                        SlicingOptions options) {
  DeadlineDistributor distributor(metric, estimator, options);
  return distributor.distribute(graph);
}

SlicingDistributor::SlicingDistributor(std::unique_ptr<SliceMetric> metric,
                                       std::unique_ptr<CommCostEstimator> estimator,
                                       SlicingOptions options)
    : metric_(std::move(metric)), estimator_(std::move(estimator)), options_(options) {
  FEAST_REQUIRE(metric_ != nullptr);
  FEAST_REQUIRE(estimator_ != nullptr);
}

std::string SlicingDistributor::name() const {
  return metric_->name() + "+" + estimator_->name();
}

DeadlineAssignment SlicingDistributor::distribute(const TaskGraph& graph) {
  return distribute_deadlines(graph, *metric_, *estimator_, options_);
}

std::unique_ptr<Distributor> make_slicing_distributor(
    std::unique_ptr<SliceMetric> metric, std::unique_ptr<CommCostEstimator> estimator,
    SlicingOptions options) {
  return std::make_unique<SlicingDistributor>(std::move(metric), std::move(estimator),
                                              options);
}

}  // namespace feast
