#include "core/distribution_validate.hpp"

#include <algorithm>

#include "taskgraph/algorithms.hpp"
#include "util/strings.hpp"

namespace feast {

std::string AssignmentReport::to_string() const { return join(problems, "\n"); }

namespace {
std::string node_label(const TaskGraph& graph, NodeId id) {
  return "node #" + std::to_string(id.value) + " ('" + graph.node(id).name + "')";
}
}  // namespace

AssignmentReport check_assignment_basic(const TaskGraph& graph,
                                        const DeadlineAssignment& assignment) {
  AssignmentReport report;
  auto problem = [&](const std::string& msg) { report.problems.push_back(msg); };

  if (assignment.size() != graph.node_count()) {
    problem("assignment sized for a different graph");
    return report;
  }

  for (const NodeId id : graph.all_nodes()) {
    const NodeWindow& w = assignment.window(id);
    if (!w.assigned()) {
      problem(node_label(graph, id) + ": no window assigned");
      continue;
    }
    if (w.rel_deadline < 0.0) {
      problem(node_label(graph, id) + ": negative relative deadline");
    }
  }
  if (!report.ok()) return report;

  for (const NodeId id : graph.inputs()) {
    const Time boundary = graph.node(id).boundary_release;
    if (time_lt(assignment.release(id), boundary)) {
      problem(node_label(graph, id) + ": released before boundary release (" +
              format_compact(assignment.release(id)) + " < " +
              format_compact(boundary) + ")");
    }
  }
  for (const NodeId id : graph.outputs()) {
    const Time boundary = graph.node(id).boundary_deadline;
    if (time_lt(boundary, assignment.abs_deadline(id))) {
      problem(node_label(graph, id) + ": absolute deadline exceeds end-to-end deadline (" +
              format_compact(assignment.abs_deadline(id)) + " > " +
              format_compact(boundary) + ")");
    }
  }

  // Recorded sliced paths must be contiguous slices inside their window.
  // Inverted windows (end before start) degenerate to zero-width slices at
  // the window end, so containment is checked against the normalized span.
  for (const SlicedPath& path : assignment.paths()) {
    const Time span_begin = std::min(path.window_start, path.window_end);
    const Time span_end = std::max(path.window_start, path.window_end);
    Time cursor = span_begin;
    for (const NodeId id : path.nodes) {
      const Time r = assignment.release(id);
      if (time_lt(r, cursor)) {
        problem("sliced path at iteration " + std::to_string(path.iteration) +
                ": slice of " + node_label(graph, id) + " starts before its predecessor ends");
      }
      cursor = std::max(cursor, assignment.abs_deadline(id));
    }
    if (time_lt(span_end, cursor)) {
      problem("sliced path at iteration " + std::to_string(path.iteration) +
              ": slices spill past the window end (" + format_compact(cursor) + " > " +
              format_compact(span_end) + ")");
    }
  }
  return report;
}

AssignmentReport check_path_deadline_sums(const TaskGraph& graph,
                                          const DeadlineAssignment& assignment,
                                          std::size_t path_limit) {
  AssignmentReport report;
  const auto paths = enumerate_source_sink_paths(graph, path_limit);
  if (paths.size() >= path_limit) {
    report.problems.push_back("path enumeration hit the cap of " +
                              std::to_string(path_limit) + "; result incomplete");
  }
  for (const auto& path : paths) {
    FEAST_ASSERT(!path.empty());
    const Time release = graph.node(path.front()).boundary_release;
    const Time deadline = graph.node(path.back()).boundary_deadline;
    if (!is_set(release) || !is_set(deadline)) continue;
    Time sum = 0.0;
    for (const NodeId id : path) sum += assignment.rel_deadline(id);
    if (time_lt(deadline - release, sum)) {
      report.problems.push_back(
          "path " + graph.node(path.front()).name + " -> " + graph.node(path.back()).name +
          ": sum of relative deadlines " + format_compact(sum) +
          " exceeds the end-to-end window " + format_compact(deadline - release));
    }
  }
  return report;
}

std::size_t count_arc_window_overlaps(const TaskGraph& graph,
                                      const DeadlineAssignment& assignment) {
  std::size_t overlaps = 0;
  for (const NodeId id : graph.all_nodes()) {
    const Time finish = assignment.abs_deadline(id);
    for (const NodeId succ : graph.succs(id)) {
      if (time_lt(assignment.release(succ), finish)) ++overlaps;
    }
  }
  return overlaps;
}

void require_valid(const AssignmentReport& report) {
  FEAST_REQUIRE_MSG(report.ok(), report.to_string());
}

}  // namespace feast
