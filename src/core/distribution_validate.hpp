/// \file distribution_validate.hpp
/// \brief Validation of deadline assignments against the problem statement.
///
/// §4.1 requires that the distributed relative deadlines satisfy
/// d_1 + d_2 + ... + d_n <= D along every path between an input and an
/// output subtask.  This module checks that, plus the structural sanity of
/// the windows, and — separately, because the basic algorithm does not
/// guarantee it — arc monotonicity (a successor's window never opens before
/// its predecessor's closes).
#pragma once

#include <string>
#include <vector>

#include "core/annotation.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Outcome of assignment validation.
struct AssignmentReport {
  std::vector<std::string> problems;

  bool ok() const noexcept { return problems.empty(); }
  std::string to_string() const;
};

/// Invariants every correct distribution must satisfy:
///  - every node carries a window with d >= 0;
///  - input subtasks are released no earlier than their boundary release;
///  - output subtasks' absolute deadlines do not exceed their boundary
///    deadline;
///  - each recorded sliced path is contiguous (each slice starts at the
///    previous slice's absolute deadline) and stays inside its window.
AssignmentReport check_assignment_basic(const TaskGraph& graph,
                                        const DeadlineAssignment& assignment);

/// Checks d_1 + ... + d_n <= D over every enumerated input→output path,
/// where D is the path's end-to-end window (boundary deadline of the output
/// minus boundary release of the input).  Exponential path enumeration —
/// intended for tests on generated graphs (paths are capped at \p
/// path_limit; hitting the cap is reported as a problem).
AssignmentReport check_path_deadline_sums(const TaskGraph& graph,
                                          const DeadlineAssignment& assignment,
                                          std::size_t path_limit = 200000);

/// Counts arcs u → v whose windows overlap (abs_deadline(u) > release(v)).
/// The paper's basic algorithm permits such overlaps across different
/// sliced paths; the respect_interior_bounds option eliminates them.
std::size_t count_arc_window_overlaps(const TaskGraph& graph,
                                      const DeadlineAssignment& assignment);

/// Throws ContractViolation when \p report is not ok.
void require_valid(const AssignmentReport& report);

}  // namespace feast
