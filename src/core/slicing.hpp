/// \file slicing.hpp
/// \brief The deadline-distribution algorithm of Figure 1 in the paper.
///
/// The algorithm repeatedly:
///   1. finds the critical path Φ of the residual graph minimizing the
///      metric R (exact search, see path_finder.hpp);
///   2. distributes Φ's available window [lb(first), ub(last)] over Φ's
///      subtasks as contiguous, non-overlapping slices whose relative
///      deadlines follow the metric's slack-sharing rule — communication
///      subtasks with negligible (estimated) cost receive zero-width
///      windows at their predecessor's absolute deadline;
///   3. attaches the rest of the graph to the new "spine": every unassigned
///      successor of an assigned node tightens its release lower bound to
///      the node's absolute deadline, every unassigned predecessor tightens
///      its deadline upper bound to the node's release (Figure 1 steps
///      5–11, following the prose of §4.2);
///   4. removes Φ from the residual set and repeats until no subtask
///      remains.
///
/// Deadline distribution runs *before* task assignment: only the graph,
/// the metric and a communication-cost estimator are consulted — never a
/// processor mapping.
#pragma once

#include <memory>
#include <string>

#include "core/annotation.hpp"
#include "core/comm_estimator.hpp"
#include "core/distributor.hpp"
#include "core/metrics.hpp"
#include "core/path_finder.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Options of the distributor.
struct SlicingOptions {
  /// When true, the sequential window assignment along a sliced path also
  /// respects release lower bounds that *interior* path nodes acquired from
  /// earlier iterations, and clamps trailing windows to interior deadline
  /// upper bounds.  The paper's basic algorithm does not (windows of
  /// precedence-related subtasks in different paths may overlap); this is
  /// the FEAST extension evaluated by the arc-monotonicity ablation.
  bool respect_interior_bounds = false;
};

/// Distributes end-to-end deadlines over the subtasks of a task graph.
class DeadlineDistributor {
 public:
  /// Both strategies are borrowed and must outlive the distributor.  The
  /// metric is non-const because distribute() prepares it against each
  /// graph (thresholds, parallelism).
  DeadlineDistributor(SliceMetric& metric, const CommCostEstimator& estimator,
                      SlicingOptions options = {});

  /// Runs the algorithm.  Precondition: validate_for_distribution(graph)
  /// passes.  Postcondition: the result is complete() and every output
  /// subtask's absolute deadline is at most its boundary deadline.
  DeadlineAssignment distribute(const TaskGraph& graph);

  /// Human-readable configuration, e.g. "PURE+CCNE".
  std::string describe() const;

 private:
  SliceMetric* metric_;
  const CommCostEstimator* estimator_;
  SlicingOptions options_;
};

/// Convenience wrapper: distribute \p graph with a freshly-prepared metric.
DeadlineAssignment distribute_deadlines(const TaskGraph& graph, SliceMetric& metric,
                                        const CommCostEstimator& estimator,
                                        SlicingOptions options = {});

/// Owning Distributor adapter over the slicing algorithm, for heterogeneous
/// strategy sets in benches and the experiment runner.
class SlicingDistributor final : public Distributor {
 public:
  SlicingDistributor(std::unique_ptr<SliceMetric> metric,
                     std::unique_ptr<CommCostEstimator> estimator,
                     SlicingOptions options = {});

  std::string name() const override;
  DeadlineAssignment distribute(const TaskGraph& graph) override;

 private:
  std::unique_ptr<SliceMetric> metric_;
  std::unique_ptr<CommCostEstimator> estimator_;
  SlicingOptions options_;
};

/// Factory for the common (metric, estimator) combination.
std::unique_ptr<Distributor> make_slicing_distributor(
    std::unique_ptr<SliceMetric> metric, std::unique_ptr<CommCostEstimator> estimator,
    SlicingOptions options = {});

}  // namespace feast
