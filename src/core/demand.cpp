#include "core/demand.hpp"

#include <algorithm>
#include <vector>

#include "util/strings.hpp"

namespace feast {

std::string DemandAnalysis::to_string() const {
  return "max demand ratio " + format_fixed(max_ratio, 3) + " on [" +
         format_compact(interval_start, 3) + ", " + format_compact(interval_end, 3) +
         "] (demand " + format_compact(interval_demand, 3) + ")" +
         (feasible_necessary() ? "" : " — INFEASIBLE on this capacity");
}

DemandAnalysis analyze_demand(const TaskGraph& graph,
                              const DeadlineAssignment& assignment, double capacity) {
  FEAST_REQUIRE_MSG(capacity > 0.0, "capacity must be positive");

  struct Window {
    Time release;
    Time deadline;
    Time exec;
  };
  std::vector<Window> windows;
  windows.reserve(graph.subtask_count());
  for (const NodeId id : graph.computation_nodes()) {
    windows.push_back(Window{assignment.release(id), assignment.abs_deadline(id),
                             graph.node(id).exec_time});
  }

  DemandAnalysis analysis;
  if (windows.empty()) return analysis;

  // Candidate interval starts: distinct releases, ascending.
  std::vector<Time> starts;
  starts.reserve(windows.size());
  for (const Window& w : windows) starts.push_back(w.release);
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end(),
                           [](Time a, Time b) { return time_eq(a, b); }),
               starts.end());

  // For each start t1, accumulate demand over tasks with release >= t1 in
  // deadline order; every distinct deadline is a candidate t2.
  std::vector<Window> eligible;
  for (const Time t1 : starts) {
    eligible.clear();
    for (const Window& w : windows) {
      if (time_ge(w.release, t1)) eligible.push_back(w);
    }
    std::sort(eligible.begin(), eligible.end(),
              [](const Window& a, const Window& b) { return a.deadline < b.deadline; });
    Time demand = 0.0;
    for (std::size_t i = 0; i < eligible.size(); ++i) {
      demand += eligible[i].exec;
      const Time t2 = eligible[i].deadline;
      // Extend over ties: include every task with the same deadline.
      while (i + 1 < eligible.size() && time_eq(eligible[i + 1].deadline, t2)) {
        ++i;
        demand += eligible[i].exec;
      }
      const Time length = t2 - t1;
      if (length <= kTimeEps) {
        if (demand > kTimeEps) {
          // Positive demand in a zero-length interval: infinitely overloaded.
          analysis.max_ratio = kInfiniteTime;
          analysis.interval_start = t1;
          analysis.interval_end = t2;
          analysis.interval_demand = demand;
          return analysis;
        }
        continue;
      }
      const double ratio = demand / (capacity * length);
      if (ratio > analysis.max_ratio) {
        analysis.max_ratio = ratio;
        analysis.interval_start = t1;
        analysis.interval_end = t2;
        analysis.interval_demand = demand;
      }
    }
  }
  return analysis;
}

}  // namespace feast
