#include "core/comm_estimator.hpp"

#include "util/strings.hpp"

namespace feast {

Time CcneEstimator::estimate(const TaskGraph& graph, NodeId comm) const {
  FEAST_REQUIRE(graph.is_communication(comm));
  return 0.0;
}

CcaaEstimator::CcaaEstimator(double time_per_item) : time_per_item_(time_per_item) {
  FEAST_REQUIRE(time_per_item >= 0.0);
}

Time CcaaEstimator::estimate(const TaskGraph& graph, NodeId comm) const {
  FEAST_REQUIRE(graph.is_communication(comm));
  return graph.node(comm).message_items * time_per_item_;
}

ProbabilisticEstimator::ProbabilisticEstimator(double crossing_probability,
                                               double time_per_item)
    : probability_(crossing_probability), time_per_item_(time_per_item) {
  FEAST_REQUIRE(crossing_probability >= 0.0 && crossing_probability <= 1.0);
  FEAST_REQUIRE(time_per_item >= 0.0);
}

std::string ProbabilisticEstimator::name() const {
  return "CCP(" + format_compact(probability_, 3) + ")";
}

Time ProbabilisticEstimator::estimate(const TaskGraph& graph, NodeId comm) const {
  FEAST_REQUIRE(graph.is_communication(comm));
  return probability_ * graph.node(comm).message_items * time_per_item_;
}

AssignmentAwareEstimator::AssignmentAwareEstimator(std::vector<ProcId> placement,
                                                   const CommCostEstimator& fallback,
                                                   double time_per_item)
    : placement_(std::move(placement)),
      fallback_(&fallback),
      time_per_item_(time_per_item) {
  FEAST_REQUIRE(time_per_item >= 0.0);
}

std::string AssignmentAwareEstimator::name() const {
  return "ASSIGN(" + fallback_->name() + ")";
}

Time AssignmentAwareEstimator::estimate(const TaskGraph& graph, NodeId comm) const {
  FEAST_REQUIRE(graph.is_communication(comm));
  FEAST_REQUIRE_MSG(placement_.size() == graph.node_count(),
                    "placement sized for a different graph");
  const ProcId src = placement_[graph.comm_source(comm).index()];
  const ProcId dst = placement_[graph.comm_sink(comm).index()];
  if (src.valid() && dst.valid()) {
    return src == dst ? 0.0 : graph.node(comm).message_items * time_per_item_;
  }
  return fallback_->estimate(graph, comm);
}

double AssignmentAwareEstimator::coverage(const TaskGraph& graph) const {
  FEAST_REQUIRE(placement_.size() == graph.node_count());
  std::size_t known = 0;
  std::size_t total = 0;
  for (const NodeId id : graph.computation_nodes()) {
    ++total;
    if (placement_[id.index()].valid()) ++known;
  }
  return total == 0 ? 0.0 : static_cast<double>(known) / static_cast<double>(total);
}

std::vector<ProcId> pinned_placement(const TaskGraph& graph) {
  std::vector<ProcId> placement(graph.node_count());
  for (const NodeId id : graph.computation_nodes()) {
    placement[id.index()] = graph.node(id).pinned;
  }
  return placement;
}

std::unique_ptr<CommCostEstimator> make_ccne() {
  return std::make_unique<CcneEstimator>();
}

std::unique_ptr<CommCostEstimator> make_ccaa(double time_per_item) {
  return std::make_unique<CcaaEstimator>(time_per_item);
}

std::unique_ptr<CommCostEstimator> make_ccp(double crossing_probability,
                                            double time_per_item) {
  return std::make_unique<ProbabilisticEstimator>(crossing_probability, time_per_item);
}

}  // namespace feast
