/// \file demand.hpp
/// \brief Processor-demand analysis of a deadline assignment.
///
/// A necessary condition for any N-processor non-preemptive or preemptive
/// schedule to meet every window: for every interval [t1, t2], the total
/// execution demand of subtasks whose windows lie entirely inside the
/// interval cannot exceed the processing capacity N · (t2 − t1).
///
/// The maximum demand ratio
///
///     max over intervals of  demand(t1, t2) / (capacity · (t2 − t1))
///
/// is therefore an a-priori quality signal for a distribution: a ratio
/// above 1 proves the window assignment infeasible on the machine before
/// any scheduling is attempted, and ratios close to 1 mark the congested
/// interval the scheduler will struggle with.  Only interval endpoints at
/// release times (t1) and absolute deadlines (t2) need to be examined.
#pragma once

#include <string>

#include "core/annotation.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Result of the demand analysis.
struct DemandAnalysis {
  /// max over intervals of demand / capacity·length; 0 for empty graphs.
  double max_ratio = 0.0;
  Time interval_start = 0.0;  ///< Interval attaining the maximum.
  Time interval_end = 0.0;
  Time interval_demand = 0.0;  ///< Execution demand inside that interval.

  /// False proves the assignment unschedulable on the given capacity; true
  /// is necessary but not sufficient for schedulability.
  bool feasible_necessary() const noexcept { return max_ratio <= 1.0 + 1e-9; }

  /// One-line summary for reports.
  std::string to_string() const;
};

/// Analyzes the computation subtasks of \p graph under windows
/// \p assignment against \p n_procs unit-speed processors (use the sum of
/// speeds for a heterogeneous machine; the bound then remains necessary).
/// O(n² log n) over distinct window endpoints.
DemandAnalysis analyze_demand(const TaskGraph& graph,
                              const DeadlineAssignment& assignment, double capacity);

}  // namespace feast
