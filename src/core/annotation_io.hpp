/// \file annotation_io.hpp
/// \brief Plain-text serialization of deadline assignments.
///
/// Format (line-oriented, '#' comments):
///
///   feast-windows v1
///   window <node-id> <release> <rel-deadline> <iteration>
///
/// Node ids refer to the graph the assignment was produced for (all_nodes
/// order), so a windows file only makes sense next to its graph file.
/// Round trips are exact (doubles printed with max_digits10).  Used by the
/// feastc tool to split distribution and scheduling into separate stages.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "core/annotation.hpp"
#include "taskgraph/serialize.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Writes the windows of a complete assignment.
void write_assignment(std::ostream& out, const TaskGraph& graph,
                      const DeadlineAssignment& assignment);

/// Serializes to a string.
std::string assignment_to_string(const TaskGraph& graph,
                                 const DeadlineAssignment& assignment);

/// Parses a windows file against \p graph; throws ParseError on malformed
/// input or node ids outside the graph, and ContractViolation when the
/// result does not cover every node.
DeadlineAssignment read_assignment(std::istream& in, const TaskGraph& graph);

/// Parses from a string.
DeadlineAssignment assignment_from_string(const std::string& text,
                                          const TaskGraph& graph);

}  // namespace feast
