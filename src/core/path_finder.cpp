#include "core/path_finder.hpp"

#include <algorithm>

#include "taskgraph/algorithms.hpp"

namespace feast {

CriticalPathFinder::CriticalPathFinder(const TaskGraph& graph, const SliceMetric& metric,
                                       const CommCostEstimator& estimator)
    : graph_(&graph), metric_(&metric) {
  const std::size_t n = graph.node_count();
  effective_.resize(n);
  virtual_.resize(n);
  for (const NodeId id : graph.all_nodes()) {
    const Time eff = graph.is_computation(id) ? graph.node(id).exec_time
                                              : estimator.estimate(graph, id);
    effective_[id.index()] = eff;
    virtual_[id.index()] = metric.virtual_cost(graph, id, eff);
    FEAST_ASSERT_MSG(virtual_[id.index()] >= eff - kTimeEps,
                     "virtual cost must not undercut the effective cost");
  }
  const auto order = topological_order(graph);
  FEAST_REQUIRE_MSG(order.has_value(), "critical-path search requires an acyclic graph");
  topo_ = *order;
  best_.resize(n);
  parent_.resize(n);
}

std::optional<CriticalPathResult> CriticalPathFinder::find(const ResidualState& state) {
  const TaskGraph& graph = *graph_;
  FEAST_REQUIRE(state.assigned.size() == graph.node_count());

  // Collect residual sources, grouped by their release lower bound so that
  // sources sharing lb can share one DP sweep.
  std::vector<NodeId> sources;
  std::size_t residual_count = 0;
  std::size_t effective_count = 0;
  for (const NodeId id : topo_) {
    if (state.assigned[id.index()]) continue;
    ++residual_count;
    if (effective_[id.index()] > kNegligibleCost) ++effective_count;
    const auto& preds = graph.preds(id);
    const bool is_source =
        std::all_of(preds.begin(), preds.end(),
                    [&](NodeId p) { return state.assigned[p.index()]; });
    if (is_source) {
      FEAST_ASSERT_MSG(is_set(state.lb[id.index()]),
                       "residual source lacks a release lower bound");
      sources.push_back(id);
    }
  }
  if (residual_count == 0) return std::nullopt;
  FEAST_ASSERT_MSG(!sources.empty(), "non-empty residual graph has no source");

  std::vector<Time> lbs;
  for (const NodeId s : sources) {
    const Time lb = state.lb[s.index()];
    if (std::find_if(lbs.begin(), lbs.end(),
                     [&](Time t) { return time_eq(t, lb); }) == lbs.end()) {
      lbs.push_back(lb);
    }
  }

  const std::size_t max_hops = effective_count;  // k ranges over [0, max_hops]
  const std::size_t width = max_hops + 1;

  std::optional<CriticalPathResult> best_result;
  Time best_sink_lb = 0.0;  // lb of the group that produced best_result

  for (const Time group_lb : lbs) {
    // Reset the DP rows of the residual nodes for this group's sweep.
    for (const NodeId id : topo_) {
      if (state.assigned[id.index()]) continue;
      auto& row = best_[id.index()];
      if (row.size() != width) {
        row.assign(width, -kInfiniteTime);
        parent_[id.index()].assign(width, NodeId());
      } else {
        std::fill(row.begin(), row.end(), -kInfiniteTime);
        std::fill(parent_[id.index()].begin(), parent_[id.index()].end(), NodeId());
      }
    }
    for (const NodeId s : sources) {
      if (!time_eq(state.lb[s.index()], group_lb)) continue;
      const std::size_t k = effective_[s.index()] > kNegligibleCost ? 1 : 0;
      auto& row = best_[s.index()];
      if (virtual_[s.index()] > row[k]) {
        row[k] = virtual_[s.index()];
        parent_[s.index()][k] = NodeId();
      }
    }

    // Forward propagation in topological order over residual arcs.
    for (const NodeId id : topo_) {
      if (state.assigned[id.index()]) continue;
      const auto& row = best_[id.index()];
      bool any = false;
      for (const Time t : row) {
        if (t > -kInfiniteTime) {
          any = true;
          break;
        }
      }
      if (!any) continue;
      for (const NodeId succ : graph.succs(id)) {
        if (state.assigned[succ.index()]) continue;
        const std::size_t step = effective_[succ.index()] > kNegligibleCost ? 1 : 0;
        auto& succ_row = best_[succ.index()];
        auto& succ_par = parent_[succ.index()];
        for (std::size_t k = 0; k < width; ++k) {
          if (row[k] <= -kInfiniteTime) continue;
          const std::size_t nk = k + step;
          if (nk >= width) continue;
          const Time cand = row[k] + virtual_[succ.index()];
          if (cand > succ_row[nk]) {
            succ_row[nk] = cand;
            succ_par[nk] = id;
          }
        }
      }
    }

    // Evaluate residual sinks.
    for (const NodeId id : topo_) {
      if (state.assigned[id.index()]) continue;
      const auto& succs = graph.succs(id);
      const bool is_sink =
          std::all_of(succs.begin(), succs.end(),
                      [&](NodeId s) { return state.assigned[s.index()]; });
      if (!is_sink) continue;
      FEAST_ASSERT_MSG(is_set(state.ub[id.index()]),
                       "residual sink lacks a deadline upper bound");
      const Time window = state.ub[id.index()] - group_lb;
      const auto& row = best_[id.index()];
      for (std::size_t k = 0; k < width; ++k) {
        if (row[k] <= -kInfiniteTime) continue;
        PathEvaluation eval;
        eval.window = window;
        eval.sum_virtual = row[k];
        eval.effective_hops = static_cast<int>(k);
        const double ratio = slice_ratio(eval, metric_->share());
        if (!best_result || ratio < best_result->ratio) {
          CriticalPathResult result;
          result.window_start = group_lb;
          result.window_end = state.ub[id.index()];
          result.eval = eval;
          result.ratio = ratio;
          // Node sequence reconstructed below only for the winner; store
          // the sink/hops via the nodes vector temporarily.
          result.nodes = {id};
          result.nodes.reserve(2);
          // Encode k in eval.effective_hops (already there).
          best_result = std::move(result);
          best_sink_lb = group_lb;
        }
      }
    }

  }

  if (!best_result) return std::nullopt;

  // Re-run the winning group's DP to reconstruct the path.  (The scratch
  // tables currently hold the *last* group's sweep, which may not be the
  // winner's.)  Cheap relative to the sweep over all groups.
  if (!time_eq(best_sink_lb, lbs.back())) {
    for (const NodeId id : topo_) {
      if (state.assigned[id.index()]) continue;
      auto& row = best_[id.index()];
      std::fill(row.begin(), row.end(), -kInfiniteTime);
      std::fill(parent_[id.index()].begin(), parent_[id.index()].end(), NodeId());
    }
    for (const NodeId s : sources) {
      if (!time_eq(state.lb[s.index()], best_sink_lb)) continue;
      const std::size_t k = effective_[s.index()] > kNegligibleCost ? 1 : 0;
      if (virtual_[s.index()] > best_[s.index()][k]) {
        best_[s.index()][k] = virtual_[s.index()];
        parent_[s.index()][k] = NodeId();
      }
    }
    for (const NodeId id : topo_) {
      if (state.assigned[id.index()]) continue;
      const auto& row = best_[id.index()];
      for (const NodeId succ : graph.succs(id)) {
        if (state.assigned[succ.index()]) continue;
        const std::size_t step = effective_[succ.index()] > kNegligibleCost ? 1 : 0;
        for (std::size_t k = 0; k < width; ++k) {
          if (row[k] <= -kInfiniteTime) continue;
          const std::size_t nk = k + step;
          if (nk >= width) continue;
          const Time cand = row[k] + virtual_[succ.index()];
          if (cand > best_[succ.index()][nk]) {
            best_[succ.index()][nk] = cand;
            parent_[succ.index()][nk] = id;
          }
        }
      }
    }
  }

  // Walk parent pointers back from (sink, k).
  const NodeId sink = best_result->nodes.front();
  std::vector<NodeId> path;
  NodeId cur = sink;
  auto k = static_cast<std::size_t>(best_result->eval.effective_hops);
  while (cur.valid()) {
    path.push_back(cur);
    const NodeId par = parent_[cur.index()][k];
    k -= effective_[cur.index()] > kNegligibleCost ? 1 : 0;
    cur = par;
  }
  std::reverse(path.begin(), path.end());
  best_result->nodes = std::move(path);
  return best_result;
}

}  // namespace feast
