#include "core/baselines.hpp"

#include <algorithm>
#include <vector>

#include "taskgraph/algorithms.hpp"
#include "taskgraph/validate.hpp"

namespace feast {

namespace {

/// Per-node ASAP/ALAP bounds under estimated costs.
struct TimeBounds {
  std::vector<Time> est;  ///< Earliest start.
  std::vector<Time> eft;  ///< Earliest finish (est + effective cost).
  std::vector<Time> lft;  ///< Latest finish meeting every boundary deadline.
  std::vector<Time> ud;   ///< Ultimate deadline: min reachable boundary deadline.
};

TimeBounds compute_bounds(const TaskGraph& graph, const CommCostEstimator& estimator) {
  const auto order = topological_order(graph);
  FEAST_REQUIRE(order.has_value());

  std::vector<Time> eff(graph.node_count(), 0.0);
  for (const NodeId id : graph.all_nodes()) {
    eff[id.index()] = graph.is_computation(id) ? graph.node(id).exec_time
                                               : estimator.estimate(graph, id);
  }

  TimeBounds b;
  b.est.assign(graph.node_count(), 0.0);
  b.eft.assign(graph.node_count(), 0.0);
  b.lft.assign(graph.node_count(), kInfiniteTime);
  b.ud.assign(graph.node_count(), kInfiniteTime);

  for (const NodeId id : *order) {
    Time est = 0.0;
    if (graph.preds(id).empty()) {
      est = graph.node(id).boundary_release;
      FEAST_ASSERT(is_set(est));
    } else {
      for (const NodeId pred : graph.preds(id)) {
        est = std::max(est, b.eft[pred.index()]);
      }
    }
    b.est[id.index()] = est;
    b.eft[id.index()] = est + eff[id.index()];
  }

  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId id = *it;
    Time lft = kInfiniteTime;
    Time ud = kInfiniteTime;
    if (graph.succs(id).empty()) {
      lft = graph.node(id).boundary_deadline;
      ud = lft;
      FEAST_ASSERT(is_set(lft));
    } else {
      for (const NodeId succ : graph.succs(id)) {
        lft = std::min(lft, b.lft[succ.index()] - eff[succ.index()]);
        ud = std::min(ud, b.ud[succ.index()]);
      }
    }
    b.lft[id.index()] = lft;
    b.ud[id.index()] = ud;
  }
  return b;
}

}  // namespace

UltimateDeadlineDistributor::UltimateDeadlineDistributor(const CommCostEstimator& estimator)
    : estimator_(&estimator) {}

std::string UltimateDeadlineDistributor::name() const {
  return "UD+" + estimator_->name();
}

DeadlineAssignment UltimateDeadlineDistributor::distribute(const TaskGraph& graph) {
  require_valid(validate_for_distribution(graph));
  const TimeBounds b = compute_bounds(graph, *estimator_);
  DeadlineAssignment result(graph);
  for (const NodeId id : graph.all_nodes()) {
    const Time r = b.est[id.index()];
    const Time d = std::max(0.0, b.ud[id.index()] - r);
    result.assign(id, r, d, 0);
  }
  return result;
}

EffectiveDeadlineDistributor::EffectiveDeadlineDistributor(const CommCostEstimator& estimator)
    : estimator_(&estimator) {}

std::string EffectiveDeadlineDistributor::name() const {
  return "ED+" + estimator_->name();
}

DeadlineAssignment EffectiveDeadlineDistributor::distribute(const TaskGraph& graph) {
  require_valid(validate_for_distribution(graph));
  const TimeBounds b = compute_bounds(graph, *estimator_);
  DeadlineAssignment result(graph);
  for (const NodeId id : graph.all_nodes()) {
    const Time r = b.est[id.index()];
    const Time d = std::max(0.0, b.lft[id.index()] - r);
    result.assign(id, r, d, 0);
  }
  return result;
}

ProportionalDistributor::ProportionalDistributor(const CommCostEstimator& estimator)
    : estimator_(&estimator) {}

std::string ProportionalDistributor::name() const {
  return "PROP+" + estimator_->name();
}

DeadlineAssignment ProportionalDistributor::distribute(const TaskGraph& graph) {
  require_valid(validate_for_distribution(graph));
  const TimeBounds b = compute_bounds(graph, *estimator_);

  Time origin = kInfiniteTime;
  for (const NodeId id : graph.inputs()) {
    origin = std::min(origin, graph.node(id).boundary_release);
  }
  Time makespan_end = -kInfiniteTime;
  Time deadline = kInfiniteTime;
  for (const NodeId id : graph.outputs()) {
    makespan_end = std::max(makespan_end, b.eft[id.index()]);
    deadline = std::min(deadline, graph.node(id).boundary_deadline);
  }
  const Time span = makespan_end - origin;
  const double scale = span > kTimeEps ? (deadline - origin) / span : 1.0;

  DeadlineAssignment result(graph);
  for (const NodeId id : graph.all_nodes()) {
    const Time r = origin + (b.est[id.index()] - origin) * scale;
    const Time finish = origin + (b.eft[id.index()] - origin) * scale;
    result.assign(id, r, std::max(0.0, finish - r), 0);
  }
  return result;
}

std::unique_ptr<Distributor> make_ultimate_deadline(const CommCostEstimator& estimator) {
  return std::make_unique<UltimateDeadlineDistributor>(estimator);
}

std::unique_ptr<Distributor> make_effective_deadline(const CommCostEstimator& estimator) {
  return std::make_unique<EffectiveDeadlineDistributor>(estimator);
}

std::unique_ptr<Distributor> make_proportional(const CommCostEstimator& estimator) {
  return std::make_unique<ProportionalDistributor>(estimator);
}

}  // namespace feast
