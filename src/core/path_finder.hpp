/// \file path_finder.hpp
/// \brief Critical-path search over the residual (not-yet-assigned) graph.
///
/// Each iteration of the slicing algorithm must find, among all maximal
/// paths of the residual graph, the one that minimizes the metric R
/// (Figure 1, step 3).  FEAST performs this search *exactly* with a dynamic
/// program over (node, effective-hop-count) states:
///
///   best[v][k] = max Σ virtual-cost over residual paths from a source to v
///                that contain exactly k non-negligible nodes.
///
/// For a fixed sink t and hop count k, every metric in metrics.hpp is
/// monotonically decreasing in Σv, so minimizing R over paths reduces to
/// maximizing Σv per (t, k) — the DP is exact, not a heuristic.  This
/// realizes the paper's "breadth-first traversal" with a per-level table.
///
/// A *residual source* is an unassigned node all of whose predecessors are
/// assigned (its release lower bound lb is known); a *residual sink* is an
/// unassigned node all of whose successors are assigned (its deadline upper
/// bound ub is known).  The available window of a path is ub(sink) −
/// lb(source).
#pragma once

#include <optional>
#include <vector>

#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Mutable bookkeeping of the slicing loop, shared with the path finder.
struct ResidualState {
  std::vector<bool> assigned;  ///< Node already carries a window.
  std::vector<Time> lb;        ///< Release lower bound (kUnsetTime = unknown).
  std::vector<Time> ub;        ///< Deadline upper bound (kUnsetTime = unknown).

  explicit ResidualState(std::size_t node_count)
      : assigned(node_count, false),
        lb(node_count, kUnsetTime),
        ub(node_count, kUnsetTime) {}
};

/// A critical path found by the search.
struct CriticalPathResult {
  std::vector<NodeId> nodes;  ///< Path members in precedence order.
  Time window_start = 0.0;    ///< lb of the first node.
  Time window_end = 0.0;      ///< ub of the last node.
  PathEvaluation eval;        ///< Window, Σv, effective hops.
  double ratio = 0.0;         ///< The minimized metric value R.
};

/// Exact minimum-R maximal-path search.  Construct once per distribution
/// (after SliceMetric::prepare) and call find() each iteration.
class CriticalPathFinder {
 public:
  CriticalPathFinder(const TaskGraph& graph, const SliceMetric& metric,
                     const CommCostEstimator& estimator);

  /// Finds the minimum-R maximal path of the residual graph, or nullopt
  /// when no unassigned node remains.  Deterministic: ties are broken
  /// toward the first candidate in topological order.
  std::optional<CriticalPathResult> find(const ResidualState& state);

  /// Effective (real or estimated) cost of a node, as used in the search.
  Time effective_cost(NodeId id) const {
    FEAST_REQUIRE(id.index() < effective_.size());
    return effective_[id.index()];
  }

  /// Virtual cost of a node under the metric.
  Time virtual_cost(NodeId id) const {
    FEAST_REQUIRE(id.index() < virtual_.size());
    return virtual_[id.index()];
  }

 private:
  const TaskGraph* graph_;
  const SliceMetric* metric_;
  std::vector<Time> effective_;  ///< Per-node effective cost.
  std::vector<Time> virtual_;    ///< Per-node virtual cost v_i.
  std::vector<NodeId> topo_;     ///< Full-graph topological order.

  // Scratch buffers reused across find() calls (indexed [node][hops]).
  std::vector<std::vector<Time>> best_;
  std::vector<std::vector<NodeId>> parent_;
};

}  // namespace feast
