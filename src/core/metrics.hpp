/// \file metrics.hpp
/// \brief Laxity-ratio metrics for critical-path evaluation (§6 and §7).
///
/// A metric R maps a candidate path Φ — its available window D_Φ, the costs
/// of its nodes, and its hop count n_Φ — to a scalar; the path *minimizing*
/// R is the critical path sliced next.  The same metric then dictates how
/// the window is divided into per-subtask relative deadlines:
///
///  - **NORM** (BST): R = (D_Φ − Σc) / Σc, d_i = c_i (1 + R) — slack
///    proportional to execution time.
///  - **PURE** (BST): R = (D_Φ − Σc) / n_Φ, d_i = c_i + R — equal slack
///    share per subtask.
///  - **THRES** (AST): PURE over *virtual* execution times
///    c′ = c < c_thres ? c : c (1 + Δ) — subtasks above the execution-time
///    threshold receive an extra, fixed surplus Δ.
///  - **ADAPT** (AST): THRES with the surplus replaced by ξ / N_proc, the
///    ratio of average task-graph parallelism to system size — extra slack
///    adapts to how much parallelism the machine can actually exploit.
///
/// Communication subtasks participate with their *estimated* cost (see
/// comm_estimator.hpp); nodes whose cost is negligible are excluded from
/// the hop count and receive zero-width windows, per §4.2.
#pragma once

#include <memory>
#include <string>

#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast {

/// How a metric divides a path's slack among its subtasks.
enum class SlackShare {
  PerEffectiveHop,     ///< d_i = v_i + R  (PURE family).
  ProportionalToCost,  ///< d_i = v_i (1 + R)  (NORM).
};

/// Aggregate quantities of one candidate path.
struct PathEvaluation {
  Time window = 0.0;       ///< D_Φ: ub(last) − lb(first).
  Time sum_virtual = 0.0;  ///< Σ v_i over effective nodes.
  int effective_hops = 0;  ///< n_Φ: nodes with non-negligible cost.
};

/// Cost below which a node is treated as negligible (gets a zero-width
/// window and does not count as a hop).
inline constexpr Time kNegligibleCost = 1e-9;

/// The laxity ratio R of a path; +infinity when the divisor is zero (a path
/// of only negligible nodes), so such paths are sliced last.
double slice_ratio(const PathEvaluation& eval, SlackShare share) noexcept;

/// The relative deadline granted to a node with virtual cost \p v on a path
/// with ratio \p ratio.  Clamped at zero: an over-subscribed window never
/// produces negative relative deadlines.
Time slice_rel_deadline(Time v, double ratio, SlackShare share) noexcept;

/// Strategy interface for the distribution metrics.
class SliceMetric {
 public:
  virtual ~SliceMetric() = default;

  /// Identifier including parameters, e.g. "THRES(d=1,th=1.25MET)".
  virtual std::string name() const = 0;

  /// Called once per distribution with the full graph; computes
  /// graph-dependent parameters (thresholds, parallelism).
  virtual void prepare(const TaskGraph& graph);

  /// Virtual cost v_i of a node given its effective (real or estimated)
  /// cost.  Must be >= effective_cost and 0 when effective_cost is 0.
  virtual Time virtual_cost(const TaskGraph& graph, NodeId id,
                            Time effective_cost) const = 0;

  /// Slack-sharing rule of this metric.
  virtual SlackShare share() const noexcept = 0;
};

/// BST's normalized laxity ratio.
class NormMetric final : public SliceMetric {
 public:
  std::string name() const override { return "NORM"; }
  Time virtual_cost(const TaskGraph& graph, NodeId id, Time effective_cost) const override;
  SlackShare share() const noexcept override { return SlackShare::ProportionalToCost; }
};

/// BST's pure laxity ratio.
class PureMetric final : public SliceMetric {
 public:
  std::string name() const override { return "PURE"; }
  Time virtual_cost(const TaskGraph& graph, NodeId id, Time effective_cost) const override;
  SlackShare share() const noexcept override { return SlackShare::PerEffectiveHop; }
};

/// AST's threshold laxity ratio with a fixed surplus factor Δ.
class ThresMetric final : public SliceMetric {
 public:
  /// \p surplus is Δ; \p threshold_factor scales the graph MET into c_thres
  /// (the paper recommends values near 1, and uses 1.25 for Figure 5).
  ThresMetric(double surplus, double threshold_factor = 1.25);

  std::string name() const override;
  void prepare(const TaskGraph& graph) override;
  Time virtual_cost(const TaskGraph& graph, NodeId id, Time effective_cost) const override;
  SlackShare share() const noexcept override { return SlackShare::PerEffectiveHop; }

  /// The concrete threshold computed by prepare() (for tests).
  Time threshold() const noexcept { return threshold_; }

 private:
  double surplus_;
  double threshold_factor_;
  Time threshold_ = 0.0;
};

/// AST's adaptive laxity ratio: surplus ξ / N_proc.
class AdaptMetric final : public SliceMetric {
 public:
  AdaptMetric(int n_procs, double threshold_factor = 1.25);

  std::string name() const override;
  void prepare(const TaskGraph& graph) override;
  Time virtual_cost(const TaskGraph& graph, NodeId id, Time effective_cost) const override;
  SlackShare share() const noexcept override { return SlackShare::PerEffectiveHop; }

  /// The surplus ξ / N_proc computed by prepare() (for tests).
  double surplus() const noexcept { return surplus_; }

  /// The concrete threshold computed by prepare() (for tests).
  Time threshold() const noexcept { return threshold_; }

 private:
  int n_procs_;
  double threshold_factor_;
  double surplus_ = 0.0;
  Time threshold_ = 0.0;
};

/// Factory helpers mirroring the paper's metric names.
std::unique_ptr<SliceMetric> make_norm();
std::unique_ptr<SliceMetric> make_pure();
std::unique_ptr<SliceMetric> make_thres(double surplus, double threshold_factor = 1.25);
std::unique_ptr<SliceMetric> make_adapt(int n_procs, double threshold_factor = 1.25);

}  // namespace feast
