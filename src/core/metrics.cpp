#include "core/metrics.hpp"

#include <algorithm>

#include "taskgraph/algorithms.hpp"
#include "util/strings.hpp"

namespace feast {

double slice_ratio(const PathEvaluation& eval, SlackShare share) noexcept {
  const Time slack = eval.window - eval.sum_virtual;
  switch (share) {
    case SlackShare::PerEffectiveHop:
      if (eval.effective_hops == 0) return kInfiniteTime;
      return slack / static_cast<double>(eval.effective_hops);
    case SlackShare::ProportionalToCost:
      if (eval.sum_virtual <= kNegligibleCost) return kInfiniteTime;
      return slack / eval.sum_virtual;
  }
  return kInfiniteTime;
}

Time slice_rel_deadline(Time v, double ratio, SlackShare share) noexcept {
  Time d = 0.0;
  switch (share) {
    case SlackShare::PerEffectiveHop:
      d = v + ratio;
      break;
    case SlackShare::ProportionalToCost:
      d = v * (1.0 + ratio);
      break;
  }
  return std::max(d, 0.0);
}

void SliceMetric::prepare(const TaskGraph& graph) { (void)graph; }

Time NormMetric::virtual_cost(const TaskGraph& graph, NodeId id,
                              Time effective_cost) const {
  (void)graph;
  (void)id;
  return effective_cost;
}

Time PureMetric::virtual_cost(const TaskGraph& graph, NodeId id,
                              Time effective_cost) const {
  (void)graph;
  (void)id;
  return effective_cost;
}

ThresMetric::ThresMetric(double surplus, double threshold_factor)
    : surplus_(surplus), threshold_factor_(threshold_factor) {
  FEAST_REQUIRE_MSG(surplus >= 0.0, "surplus factor must be non-negative");
  FEAST_REQUIRE_MSG(threshold_factor > 0.0, "threshold factor must be positive");
}

std::string ThresMetric::name() const {
  return "THRES(d=" + format_compact(surplus_, 3) +
         ",th=" + format_compact(threshold_factor_, 3) + "MET)";
}

void ThresMetric::prepare(const TaskGraph& graph) {
  threshold_ = threshold_factor_ * graph.mean_exec_time();
}

Time ThresMetric::virtual_cost(const TaskGraph& graph, NodeId id,
                               Time effective_cost) const {
  // The threshold filter applies to computation subtasks only; message
  // estimates pass through untouched.
  if (!graph.is_computation(id)) return effective_cost;
  if (effective_cost < threshold_) return effective_cost;
  return effective_cost * (1.0 + surplus_);
}

AdaptMetric::AdaptMetric(int n_procs, double threshold_factor)
    : n_procs_(n_procs), threshold_factor_(threshold_factor) {
  FEAST_REQUIRE_MSG(n_procs >= 1, "system size must be at least 1");
  FEAST_REQUIRE_MSG(threshold_factor > 0.0, "threshold factor must be positive");
}

std::string AdaptMetric::name() const {
  return "ADAPT(N=" + std::to_string(n_procs_) +
         ",th=" + format_compact(threshold_factor_, 3) + "MET)";
}

void AdaptMetric::prepare(const TaskGraph& graph) {
  threshold_ = threshold_factor_ * graph.mean_exec_time();
  surplus_ = average_parallelism(graph) / static_cast<double>(n_procs_);
}

Time AdaptMetric::virtual_cost(const TaskGraph& graph, NodeId id,
                               Time effective_cost) const {
  if (!graph.is_computation(id)) return effective_cost;
  if (effective_cost < threshold_) return effective_cost;
  return effective_cost * (1.0 + surplus_);
}

std::unique_ptr<SliceMetric> make_norm() { return std::make_unique<NormMetric>(); }

std::unique_ptr<SliceMetric> make_pure() { return std::make_unique<PureMetric>(); }

std::unique_ptr<SliceMetric> make_thres(double surplus, double threshold_factor) {
  return std::make_unique<ThresMetric>(surplus, threshold_factor);
}

std::unique_ptr<SliceMetric> make_adapt(int n_procs, double threshold_factor) {
  return std::make_unique<AdaptMetric>(n_procs, threshold_factor);
}

}  // namespace feast
