/// \file comm_estimator.hpp
/// \brief Communication-cost estimation strategies (§5.4 of the paper).
///
/// Under relaxed locality constraints the distribution algorithm cannot
/// know whether a message will cross processors (cost m_ij × bus rate) or
/// stay local (negligible).  An estimator resolves that uncertainty while
/// the critical path is searched:
///
///  - **CCNE** (Communication Cost Non-Existing): assume messages are free.
///    Maximizes the slack pool; interprocessor traffic later consumes slack
///    from the receiving subtask.  The paper finds this best overall.
///  - **CCAA** (Communication Cost Always Assumed): assume every message
///    crosses the bus.  Conservative; precedence constraints then drain the
///    slack pool even for co-located subtasks.
///
/// FEAST adds **CCP** (probability-weighted): expected cost p × bus cost,
/// which interpolates between the two and models the statistical chance
/// 1 − 1/N_proc of a random assignment separating two subtasks.  It is used
/// by the ablation benches; the paper evaluates only CCNE and CCAA.
#pragma once

#include <memory>
#include <string>

#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Strategy interface: the estimated execution-time cost of a communication
/// subtask while task assignment is still unknown.
class CommCostEstimator {
 public:
  virtual ~CommCostEstimator() = default;

  /// Short identifier for reports ("CCNE", "CCAA", ...).
  virtual std::string name() const = 0;

  /// Estimated cost, in time units, of communication node \p comm.
  virtual Time estimate(const TaskGraph& graph, NodeId comm) const = 0;
};

/// CCNE: communication never costs anything during distribution.
class CcneEstimator final : public CommCostEstimator {
 public:
  std::string name() const override { return "CCNE"; }
  Time estimate(const TaskGraph& graph, NodeId comm) const override;
};

/// CCAA: every message is assumed to cross the shared bus at
/// \p time_per_item per data item (1.0 in the paper's platform).
class CcaaEstimator final : public CommCostEstimator {
 public:
  explicit CcaaEstimator(double time_per_item = 1.0);
  std::string name() const override { return "CCAA"; }
  Time estimate(const TaskGraph& graph, NodeId comm) const override;

 private:
  double time_per_item_;
};

/// CCP: expected cost p × (m × time_per_item) with crossing probability p.
class ProbabilisticEstimator final : public CommCostEstimator {
 public:
  /// \p crossing_probability in [0, 1]; e.g. 1 − 1/N for random assignment
  /// over N processors.
  ProbabilisticEstimator(double crossing_probability, double time_per_item = 1.0);
  std::string name() const override;
  Time estimate(const TaskGraph& graph, NodeId comm) const override;

 private:
  double probability_;
  double time_per_item_;
};

/// Assignment-aware estimation: when both endpoints of a message have a
/// known processor (a strict locality constraint, or an assignment from a
/// previous scheduling pass), the cost is *exact* — zero when co-located,
/// m × rate when crossing.  Unknown endpoints fall back to a base
/// estimator.  With a complete placement this reproduces the
/// strict-locality setting in which BST is optimal; with a partial one it
/// interpolates between the paper's relaxed world and that ideal.
class AssignmentAwareEstimator final : public CommCostEstimator {
 public:
  /// \p placement maps node index → processor (invalid = unknown); sized
  /// like the graph's node table, computation entries meaningful.
  /// \p fallback is borrowed and must outlive this estimator.
  AssignmentAwareEstimator(std::vector<ProcId> placement,
                           const CommCostEstimator& fallback,
                           double time_per_item = 1.0);

  std::string name() const override;
  Time estimate(const TaskGraph& graph, NodeId comm) const override;

  /// Fraction of computation nodes with a known processor (diagnostics).
  double coverage(const TaskGraph& graph) const;

 private:
  std::vector<ProcId> placement_;
  const CommCostEstimator* fallback_;
  double time_per_item_;
};

/// Extracts the placement implied by a graph's strict locality constraints
/// (pinned subtasks); unpinned nodes are unknown.
std::vector<ProcId> pinned_placement(const TaskGraph& graph);

/// Factory helpers.
std::unique_ptr<CommCostEstimator> make_ccne();
std::unique_ptr<CommCostEstimator> make_ccaa(double time_per_item = 1.0);
std::unique_ptr<CommCostEstimator> make_ccp(double crossing_probability,
                                            double time_per_item = 1.0);

}  // namespace feast
