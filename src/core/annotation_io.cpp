#include "core/annotation_io.hpp"

#include <iomanip>
#include <limits>
#include <sstream>

#include "util/strings.hpp"

namespace feast {

namespace {
constexpr const char* kHeader = "feast-windows v1";
}  // namespace

void write_assignment(std::ostream& out, const TaskGraph& graph,
                      const DeadlineAssignment& assignment) {
  FEAST_REQUIRE(assignment.size() == graph.node_count());
  FEAST_REQUIRE_MSG(assignment.complete(), "only complete assignments are written");
  out << kHeader << "\n";
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const NodeId id : graph.all_nodes()) {
    const NodeWindow& w = assignment.window(id);
    out << "window " << id.value << ' ' << w.release << ' ' << w.rel_deadline << ' '
        << w.iteration << "\n";
  }
}

std::string assignment_to_string(const TaskGraph& graph,
                                 const DeadlineAssignment& assignment) {
  std::ostringstream oss;
  write_assignment(oss, graph, assignment);
  return oss.str();
}

DeadlineAssignment read_assignment(std::istream& in, const TaskGraph& graph) {
  DeadlineAssignment assignment(graph);
  std::string line;
  int line_no = 0;
  bool saw_header = false;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    if (!saw_header) {
      if (text != kHeader) {
        throw ParseError("line " + std::to_string(line_no) + ": expected header '" +
                         kHeader + "'");
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields(text);
    std::string keyword;
    fields >> keyword;
    if (keyword != "window") {
      throw ParseError("line " + std::to_string(line_no) + ": unknown keyword '" +
                       keyword + "'");
    }
    std::uint32_t node = 0;
    double release = 0.0;
    double rel_deadline = 0.0;
    int iteration = 0;
    if (!(fields >> node >> release >> rel_deadline >> iteration)) {
      throw ParseError("line " + std::to_string(line_no) + ": malformed window line");
    }
    if (node >= graph.node_count()) {
      throw ParseError("line " + std::to_string(line_no) + ": node id " +
                       std::to_string(node) + " outside the graph");
    }
    try {
      assignment.assign(NodeId(node), release, rel_deadline, iteration);
    } catch (const ContractViolation& e) {
      throw ParseError("line " + std::to_string(line_no) + ": " + e.what());
    }
  }
  if (!saw_header) throw ParseError("missing header line");
  FEAST_REQUIRE_MSG(assignment.complete(),
                    "windows file does not cover every node of the graph");
  return assignment;
}

DeadlineAssignment assignment_from_string(const std::string& text,
                                          const TaskGraph& graph) {
  std::istringstream iss(text);
  return read_assignment(iss, graph);
}

}  // namespace feast
