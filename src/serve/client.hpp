/// \file client.hpp
/// \brief Tiny blocking HTTP client for talking to a `feastc serve` daemon.
///
/// One request per connection (`Connection: close`), bounded by a wall-clock
/// deadline — exactly what `feastc submit`, the serve tests and the bench
/// need.  Not a general HTTP client on purpose.
#pragma once

#include <cstdint>
#include <string>

namespace feast::serve {

/// Outcome of one request.  `error` empty ⇔ a complete HTTP response was
/// received (whatever its status); transport failures set `error` and leave
/// `status` 0.
struct HttpReply {
  int status = 0;
  std::string body;
  std::string error;
  /// Parsed Retry-After header in seconds, -1 when absent.  The daemon's
  /// admission-control 429/503 replies carry it; `feastc submit` folds it
  /// into its retry backoff.
  int retry_after_s = -1;

  bool ok() const noexcept { return error.empty(); }
};

/// Performs one blocking request against `host:port` and returns the reply.
/// \p body, when non-empty, is sent as application/json.  \p client_name,
/// when non-empty, is sent as the X-Feast-Client header (the daemon's
/// fair-queue identity).
HttpReply http_request(const std::string& host, std::uint16_t port,
                       const std::string& method, const std::string& target,
                       const std::string& body = "",
                       const std::string& client_name = "",
                       double timeout_s = 60.0);

/// Splits "HOST:PORT" (host may be empty → loopback).  Returns false on a
/// missing or unparseable port.
bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port);

}  // namespace feast::serve
