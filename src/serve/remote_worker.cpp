#include "serve/remote_worker.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <thread>
#include <vector>

#include "campaign/cache.hpp"
#include "check/fault.hpp"
#include "serve/client.hpp"
#include "supervise/subprocess.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace feast::serve {

namespace fs = std::filesystem;

namespace {

/// Sleeps \p ms in small slices so a stop request lands promptly.
void stoppable_sleep(double ms, const std::atomic<bool>* stop) {
  using namespace std::chrono;
  auto remaining = duration<double, std::milli>(ms);
  while (remaining.count() > 0.0) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) return;
    const auto slice = remaining.count() > 50.0
                           ? duration<double, std::milli>(50.0)
                           : remaining;
    std::this_thread::sleep_for(slice);
    remaining -= slice;
  }
}

bool stopped(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_acquire);
}

std::string json_str(const JsonValue& root, const char* key) {
  const JsonValue* v = root.find(key);
  return (v != nullptr && v->type == JsonValue::Type::String) ? v->string : "";
}

double json_num(const JsonValue& root, const char* key, double fallback) {
  const JsonValue* v = root.find(key);
  return (v != nullptr && v->type == JsonValue::Type::Number) ? v->number
                                                              : fallback;
}

/// One leased cell as handed out by /v1/worker/lease.
struct Lease {
  std::string token;
  std::size_t cell = 0;
  std::string spec;
  std::string inject;
  double timeout_s = 0.0;
  unsigned threads = 1;
};

/// What one executed lease reports back.
struct CellReport {
  bool ok = false;
  std::string shard;  ///< The raw feast-shard frame when ok.
  std::string kind;   ///< Taxonomy name when !ok.
  std::string error;
};

}  // namespace

int run_remote_worker(const RemoteWorkerOptions& options,
                      const std::atomic<bool>* stop,
                      RemoteWorkerStats* stats) {
  RemoteWorkerStats local_stats;
  RemoteWorkerStats& st = (stats != nullptr) ? *stats : local_stats;
  const std::string name =
      options.name.empty() ? "worker-" + std::to_string(::getpid())
                           : options.name;
  if (options.work_dir.empty()) {
    if (options.log != nullptr) *options.log << "worker: --work-dir required\n";
    return 1;
  }
  fs::create_directories(options.work_dir);
  const std::string feastc = options.feastc_path.empty()
                                 ? supervise::self_exe_path()
                                 : options.feastc_path;
  const auto log_line = [&](const std::string& line) {
    if (options.log != nullptr) {
      *options.log << "worker " << name << ": " << line << std::endl;
    }
  };

  std::string worker_id;
  int registrations = 0;
  double poll_ms = static_cast<double>(options.poll_ms);

  // Registers (or re-registers) with a deterministic backoff between
  // attempts; returns false when the reconnect budget is spent.
  const auto register_self = [&]() -> bool {
    for (int attempt = 1;; ++attempt) {
      if (stopped(stop)) return false;
      if (options.max_reconnects > 0 && registrations > 0 &&
          static_cast<int>(st.reconnects) >= options.max_reconnects) {
        log_line("reconnect budget spent, giving up");
        return false;
      }
      const std::string body = "{\"name\": \"" + json_escape(name) +
                               "\", \"slots\": " +
                               std::to_string(options.slots) + "}";
      const HttpReply reply =
          http_request(options.host, options.port, "POST",
                       "/v1/worker/register", body, name,
                       options.request_timeout_s);
      if (reply.status == 200) {
        try {
          const JsonValue root = parse_json(reply.body);
          worker_id = json_str(root, "worker");
          poll_ms = json_num(root, "poll_ms", poll_ms);
        } catch (const std::exception&) {
          worker_id.clear();
        }
        if (!worker_id.empty()) {
          if (registrations > 0) ++st.reconnects;
          ++registrations;
          log_line("registered as " + worker_id);
          return true;
        }
      }
      if (reply.status == 503 || reply.status == 429) {
        // Draining or overloaded: honor the hint, keep trying.
        stoppable_sleep(reply.retry_after_s > 0 ? reply.retry_after_s * 1000.0
                                                : poll_ms,
                        stop);
        continue;
      }
      if (reply.status >= 400) {
        log_line("registration rejected (" + std::to_string(reply.status) +
                 "), giving up");
        return false;
      }
      // Transport failure: the daemon is down or partitioned away.  The
      // delay is replayable — same (seed, attempt) → same sleep.
      const double delay =
          supervise::backoff_delay_ms(options.backoff, /*cell_index=*/0,
                                      attempt);
      log_line("connect failed (" + reply.error + "), retrying in " +
               std::to_string(static_cast<int>(delay)) + " ms");
      stoppable_sleep(delay, stop);
      if (options.max_reconnects > 0 &&
          attempt >= options.max_reconnects && registrations == 0) {
        log_line("daemon unreachable, giving up");
        return false;
      }
    }
  };

  // Executes one leased cell through the supervised exec-cell subprocess,
  // mirroring WorkerPool's argv and harvest decode.
  const auto execute = [&](const Lease& lease) -> CellReport {
    CellReport report;
    const std::string spec_hash = hash_hex(fnv1a64(lease.spec));
    const fs::path spec_path =
        fs::path(options.work_dir) / (spec_hash + ".spec");
    std::string error;
    if (!atomic_write_file(spec_path, lease.spec, &error)) {
      report.kind = "io";
      report.error = "cannot write spec file: " + error;
      return report;
    }
    const std::string stem =
        "lease-" + lease.token + ".cell-" + std::to_string(lease.cell);
    const fs::path result_path = fs::path(options.work_dir) / (stem + ".result");
    const fs::path log_path = fs::path(options.work_dir) / (stem + ".log");
    std::error_code ec;
    fs::remove(result_path, ec);

    std::vector<std::string> argv = {feastc,
                                     "campaign",
                                     "exec-cell",
                                     spec_path.string(),
                                     "--cell",
                                     std::to_string(lease.cell),
                                     "--out",
                                     result_path.string(),
                                     "--threads",
                                     std::to_string(lease.threads)};
    if (options.no_cache) {
      argv.emplace_back("--no-cache");
    } else if (!options.cache_dir.empty()) {
      argv.emplace_back("--cache-dir");
      argv.push_back(options.cache_dir);
    }
    if (!lease.inject.empty()) {
      argv.emplace_back("--inject");
      argv.push_back(lease.inject);
    }

    supervise::SubprocessOptions sub;
    sub.stdout_path = log_path.string();
    sub.stderr_path = "+stdout";
    sub.new_process_group = true;
    double timeout_s = lease.timeout_s;
    if (options.subprocess_timeout_s > 0.0 &&
        (timeout_s <= 0.0 || options.subprocess_timeout_s < timeout_s)) {
      timeout_s = options.subprocess_timeout_s;
    }
    std::string spawn_error;
    const supervise::ExitStatus status =
        supervise::run_command(argv, sub, timeout_s, &spawn_error);

    if (status.kind == supervise::ExitStatus::Kind::None) {
      report.kind = "io";
      report.error = "spawn failed: " + spawn_error;
      return report;
    }
    if (status.timed_out) {
      report.kind = "timeout";
      report.error = "cell exceeded " + std::to_string(timeout_s) + " s";
      return report;
    }
    if (status.kind == supervise::ExitStatus::Kind::Lost) {
      report.kind = "io";
      report.error = "worker subprocess lost";
      return report;
    }
    if (status.kind == supervise::ExitStatus::Kind::Signaled) {
      report.kind = "signal";
      report.error = "worker subprocess " + status.describe();
      return report;
    }
    if (!status.exited(0)) {
      report.kind = "crash";
      report.error = "worker subprocess " + status.describe();
      return report;
    }
    std::ifstream in(result_path, std::ios::binary);
    if (!in) {
      report.kind = "io";
      report.error = "exec-cell exited 0 but left no result file";
      return report;
    }
    report.shard.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    report.ok = true;
    fs::remove(result_path, ec);
    fs::remove(log_path, ec);
    return report;
  };

  if (!register_self()) return stopped(stop) ? 0 : 1;

  while (!stopped(stop)) {
    if (check::fire(check::FaultSite::WorkerReconnect)) {
      // Injected registration loss: forget who we are mid-loop, exactly as
      // if the daemon restarted under us.
      log_line("injected fault (worker-reconnect): dropping registration");
      worker_id.clear();
      if (!register_self()) return stopped(stop) ? 0 : 1;
      continue;
    }
    const HttpReply reply = http_request(
        options.host, options.port, "POST", "/v1/worker/lease",
        "{\"worker\": \"" + json_escape(worker_id) + "\"}", name,
        options.request_timeout_s);
    if (!reply.ok()) {
      log_line("lease poll failed (" + reply.error + "), reconnecting");
      if (!register_self()) return stopped(stop) ? 0 : 1;
      continue;
    }
    if (reply.status == 404) {
      // The daemon forgot us (restart, heartbeat sweep): new incarnation.
      if (!register_self()) return stopped(stop) ? 0 : 1;
      continue;
    }
    if (reply.status == 503 || reply.status == 429) {
      stoppable_sleep(reply.retry_after_s > 0 ? reply.retry_after_s * 1000.0
                                              : poll_ms,
                      stop);
      continue;
    }
    if (reply.status != 200) {
      log_line("lease poll rejected (" + std::to_string(reply.status) + ")");
      stoppable_sleep(poll_ms, stop);
      continue;
    }
    Lease lease;
    try {
      const JsonValue root = parse_json(reply.body);
      if (const JsonValue* idle = root.find("idle");
          idle != nullptr && idle->type == JsonValue::Type::Bool &&
          idle->boolean) {
        stoppable_sleep(poll_ms, stop);
        continue;
      }
      lease.token = json_str(root, "lease");
      lease.spec = json_str(root, "spec");
      lease.inject = json_str(root, "inject");
      lease.cell = static_cast<std::size_t>(json_num(root, "cell", 0.0));
      lease.timeout_s = json_num(root, "timeout_s", 0.0);
      lease.threads = static_cast<unsigned>(
          json_num(root, "threads", static_cast<double>(options.threads)));
    } catch (const std::exception& e) {
      log_line(std::string("malformed lease body: ") + e.what());
      stoppable_sleep(poll_ms, stop);
      continue;
    }
    if (lease.token.empty() || lease.spec.empty()) {
      stoppable_sleep(poll_ms, stop);
      continue;
    }
    ++st.leases;

    if (lease.inject == "worker-die" ||
        lease.inject.rfind("worker-die@", 0) == 0) {
      // The poison mechanism: this worker dies *holding* the lease, so the
      // daemon's failure detector — not a polite error report — must notice.
      log_line("injected worker-die on cell " + std::to_string(lease.cell));
      if (options.allow_process_exit) std::_Exit(check::kFaultExitCode);
      return check::kFaultExitCode;
    }

    CellReport report = execute(lease);
    std::string body = "{\"worker\": \"" + json_escape(worker_id) +
                       "\", \"lease\": \"" + json_escape(lease.token) + "\"";
    if (report.ok) {
      body += ", \"ok\": true, \"shard\": \"" + json_escape(report.shard) + "\"";
      ++st.cells_ok;
    } else {
      body += ", \"ok\": false, \"kind\": \"" + json_escape(report.kind) +
              "\", \"error\": \"" + json_escape(report.error) + "\"";
      ++st.cells_failed;
      log_line("cell " + std::to_string(lease.cell) + " failed [" +
               report.kind + "] " + report.error);
    }
    body += "}";
    const int posts = check::fire(check::FaultSite::WorkerResultDup) ? 2 : 1;
    bool delivered = false;
    for (int i = 0; i < posts; ++i) {
      const HttpReply post = http_request(options.host, options.port, "POST",
                                          "/v1/worker/result", body, name,
                                          options.request_timeout_s);
      if (post.ok()) {
        delivered = true;
        // 410 means the daemon expired the lease and moved on — the duplicate
        // or late result is dropped by design, nothing to do here.
      }
    }
    if (!delivered) {
      // The daemon will requeue the cell when the lease deadline passes;
      // all we can do is come back with a fresh registration.
      log_line("result delivery failed, reconnecting");
      if (!register_self()) return stopped(stop) ? 0 : 1;
    }
    if (options.max_cells > 0 &&
        st.cells_ok + st.cells_failed >= options.max_cells) {
      log_line("max-cells reached, exiting");
      return 0;
    }
  }
  return 0;
}

}  // namespace feast::serve
