/// \file http.hpp
/// \brief Minimal HTTP/1.1 request parsing and response rendering.
///
/// Exactly the subset the serve daemon needs: an *incremental* request
/// parser (feed bytes as they arrive off a nonblocking socket, never block
/// waiting for a complete request), Content-Length bodies only, hard limits
/// on header and body size so attacker-controlled input bounds memory, and
/// a response renderer.  Chunked transfer encoding, multipart, continuation
/// lines and 100-continue are rejected rather than implemented — every
/// client this daemon serves (`feastc submit`, curl, the bench) speaks the
/// simple form.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace feast::serve {

/// Input-size caps enforced during parsing.  Exceeding either is a hard
/// parse error with a distinct status (431 headers / 413 body), not a
/// truncation — an oversized request never reaches a handler.
struct HttpLimits {
  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

/// One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;   ///< Path + optional query, as sent.
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0".
  std::vector<std::pair<std::string, std::string>> headers;  ///< Names lowercased.
  std::string body;

  /// First header named \p name (lowercase), or "" when absent.
  const std::string& header(const std::string& name) const;

  /// Path without the query string.
  std::string path() const;
};

/// Incremental request parser.  Feed arbitrary byte fragments; the parser
/// consumes exactly one request and reports NeedMore until it has it.
/// After Done, reset() rearms it for the next request on a keep-alive
/// connection (leftover pipelined bytes are retained).
class HttpRequestParser {
 public:
  enum class Status { NeedMore, Done, Error };

  explicit HttpRequestParser(HttpLimits limits = {}) : limits_(limits) {}

  /// Consumes \p bytes.  Returns the parse state after this fragment.
  /// In Done state the bytes are buffered (pipelined behind the pending
  /// request) rather than parsed; in Error state they are discarded.
  Status feed(const char* data, std::size_t size);
  Status feed(const std::string& data) { return feed(data.data(), data.size()); }

  /// Re-parses already-buffered bytes without feeding new ones — the
  /// companion to reset() for draining pipelined requests.
  Status drive();

  /// Bytes held but not yet consumed into a completed request.
  std::size_t buffered() const noexcept { return buffer_.size(); }

  /// The parsed request (valid after Done).
  const HttpRequest& request() const noexcept { return request_; }

  /// HTTP status code describing the failure (valid after Error):
  /// 400 malformed, 413 body too large, 431 headers too large,
  /// 501 unsupported transfer encoding.
  int error_status() const noexcept { return error_status_; }
  const std::string& error() const noexcept { return error_; }

  /// Rearms for the next request, keeping unconsumed pipelined bytes.
  void reset();

 private:
  Status fail(int status, std::string what);
  Status parse_buffer();

  HttpLimits limits_;
  std::string buffer_;
  HttpRequest request_;
  std::size_t header_end_ = 0;  ///< Offset past "\r\n\r\n" once seen.
  bool headers_done_ = false;
  std::size_t content_length_ = 0;
  Status state_ = Status::NeedMore;
  int error_status_ = 0;
  std::string error_;
};

/// Renders a complete response with Content-Length framing.
std::string render_http_response(int status, const std::string& content_type,
                                 const std::string& body, bool keep_alive);

/// Same, with extra response headers (name, value) — e.g. the Retry-After
/// hint on admission-control 429/503 replies.  Names/values are emitted
/// verbatim; callers pass only trusted, CRLF-free strings.
std::string render_http_response(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers);

/// Canonical reason phrase for the handful of statuses the daemon sends.
const char* http_status_reason(int status) noexcept;

}  // namespace feast::serve
