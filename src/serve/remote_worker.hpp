/// \file remote_worker.hpp
/// \brief The `feastc worker` side of the distributed worker fabric.
///
/// A remote worker is a long-lived client of a `feastc serve` daemon: it
/// registers under a stable name, then loops leasing cells, executing each
/// one through the same supervised `feastc campaign exec-cell` subprocess
/// the daemon's local pool would use, and streaming the checksummed
/// feast-shard frame back over `/v1/worker/result`.
///
/// Failure-domain behavior (docs/SERVE.md, "Distributed workers"):
///
///   * **Reconnect** — any transport failure (connect refused, torn write,
///     short read) drops the registration and re-registers after a
///     deterministic exponential backoff with seeded jitter
///     (supervise::backoff_delay_ms), so a daemon restart produces a
///     bounded, replayable reconnect storm rather than a tight spin.
///   * **Lease loss is safe** — a result the daemon refuses (404/410) is
///     simply dropped; the daemon has already requeued or settled the cell.
///   * **Injected deaths** — a leased cell carrying the `worker-die` inject
///     kills this worker instead of executing, which is how the chaos
///     driver manufactures cross-worker poison.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "supervise/supervisor.hpp"

namespace feast::serve {

/// Knobs of one `feastc worker` process (CLI flags map 1:1).
struct RemoteWorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name;        ///< Stable identity; "" derives one from the pid.
  int slots = 1;           ///< Lease cap advertised at registration.  The
                           ///< loop executes one cell at a time, so >1 only
                           ///< matters to the daemon's grant accounting.
  std::string work_dir;    ///< Spec/shard scratch.  Required.
  std::string cache_dir;   ///< Cell cache for exec-cell ("" = default).
  bool no_cache = false;
  std::string feastc_path;  ///< exec-cell binary ("" = /proc/self/exe).
  unsigned threads = 1;     ///< --threads given to exec-cell.
  int poll_ms = 50;         ///< Idle sleep between lease polls.
  double request_timeout_s = 10.0;  ///< Per-HTTP-request deadline.
  double subprocess_timeout_s = 0.0;  ///< Extra local watchdog (0 = server's).
  supervise::BackoffPolicy backoff;   ///< Reconnect/busy backoff schedule.
  int max_reconnects = 0;  ///< Give up after this many reconnects (0 = never).
  std::uint64_t max_cells = 0;  ///< Exit cleanly after N results (0 = never).
  /// When true (the CLI), an injected `worker-die` lease calls
  /// std::_Exit(check::kFaultExitCode); in-process harnesses leave it false
  /// and get a clean return instead.
  bool allow_process_exit = false;
  std::ostream* log = nullptr;
};

/// Counters a harness can assert on after run_remote_worker returns.
struct RemoteWorkerStats {
  std::uint64_t leases = 0;     ///< Cells leased (attempts started).
  std::uint64_t cells_ok = 0;   ///< Healthy shard frames accepted.
  std::uint64_t cells_failed = 0;  ///< Failure reports delivered.
  std::uint64_t reconnects = 0;    ///< Registrations after the first.
};

/// Runs the worker loop until \p stop is set, max_cells is reached, the
/// reconnect budget is spent, or an injected death fires.  Returns a CLI
/// exit code: 0 on a clean stop, 1 when the daemon stayed unreachable,
/// check::kFaultExitCode for an in-thread injected death.
int run_remote_worker(const RemoteWorkerOptions& options,
                      const std::atomic<bool>* stop = nullptr,
                      RemoteWorkerStats* stats = nullptr);

}  // namespace feast::serve
