#include "serve/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace feast::serve {

namespace {

const std::string kEmpty;

std::string lowercased(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string trimmed(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && (s[begin] == ' ' || s[begin] == '\t')) ++begin;
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
  return s.substr(begin, end - begin);
}

}  // namespace

const std::string& HttpRequest::header(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return kEmpty;
}

std::string HttpRequest::path() const {
  const std::size_t query = target.find('?');
  return query == std::string::npos ? target : target.substr(0, query);
}

HttpRequestParser::Status HttpRequestParser::fail(int status, std::string what) {
  state_ = Status::Error;
  error_status_ = status;
  error_ = std::move(what);
  return state_;
}

HttpRequestParser::Status HttpRequestParser::feed(const char* data,
                                                  std::size_t size) {
  if (state_ == Status::Error) return state_;
  buffer_.append(data, size);
  // In Done state the bytes are pipelined behind an unconsumed request:
  // retain them (the append above) and parse after reset().
  if (state_ != Status::NeedMore) return state_;
  return parse_buffer();
}

HttpRequestParser::Status HttpRequestParser::drive() {
  return state_ == Status::NeedMore ? parse_buffer() : state_;
}

HttpRequestParser::Status HttpRequestParser::parse_buffer() {
  if (!headers_done_) {
    const std::size_t end = buffer_.find("\r\n\r\n");
    if (end == std::string::npos) {
      // The cap applies to the *unterminated* prefix too, so a client
      // dribbling an endless header line cannot grow the buffer forever.
      if (buffer_.size() > limits_.max_header_bytes) {
        return fail(431, "header block exceeds " +
                             std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return Status::NeedMore;
    }
    if (end > limits_.max_header_bytes) {
      return fail(431, "header block exceeds " +
                           std::to_string(limits_.max_header_bytes) + " bytes");
    }
    header_end_ = end + 4;

    // Request line.
    const std::size_t line_end = buffer_.find("\r\n");
    const std::string line = buffer_.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                     : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      return fail(400, "malformed request line");
    }
    request_.method = line.substr(0, sp1);
    request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    request_.version = line.substr(sp2 + 1);
    if (request_.method.empty() || request_.target.empty() ||
        (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0")) {
      return fail(400, "malformed request line");
    }

    // Header fields.
    std::size_t pos = line_end + 2;
    while (pos < end) {
      const std::size_t eol = buffer_.find("\r\n", pos);
      const std::string field = buffer_.substr(pos, eol - pos);
      pos = eol + 2;
      const std::size_t colon = field.find(':');
      if (colon == std::string::npos || colon == 0) {
        return fail(400, "malformed header field");
      }
      request_.headers.emplace_back(lowercased(trimmed(field.substr(0, colon))),
                                    trimmed(field.substr(colon + 1)));
    }

    if (!request_.header("transfer-encoding").empty()) {
      return fail(501, "transfer-encoding not supported");
    }
    const std::string& length = request_.header("content-length");
    if (!length.empty()) {
      char* parse_end = nullptr;
      const unsigned long long v = std::strtoull(length.c_str(), &parse_end, 10);
      if (parse_end != length.c_str() + length.size()) {
        return fail(400, "malformed content-length");
      }
      if (v > limits_.max_body_bytes) {
        return fail(413, "body exceeds " + std::to_string(limits_.max_body_bytes) +
                             " bytes");
      }
      content_length_ = static_cast<std::size_t>(v);
    }
    headers_done_ = true;
  }

  if (buffer_.size() < header_end_ + content_length_) return Status::NeedMore;
  request_.body = buffer_.substr(header_end_, content_length_);
  buffer_.erase(0, header_end_ + content_length_);
  state_ = Status::Done;
  return state_;
}

void HttpRequestParser::reset() {
  request_ = HttpRequest{};
  header_end_ = 0;
  headers_done_ = false;
  content_length_ = 0;
  state_ = Status::NeedMore;
  error_status_ = 0;
  error_.clear();
  // buffer_ keeps pipelined bytes; re-parse them immediately on next feed.
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_http_response(int status, const std::string& content_type,
                                 const std::string& body, bool keep_alive) {
  return render_http_response(status, content_type, body, keep_alive, {});
}

std::string render_http_response(
    int status, const std::string& content_type, const std::string& body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(body.size() + 160);
  out += "HTTP/1.1 " + std::to_string(status) + " " + http_status_reason(status) +
         "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace feast::serve
