#include "serve/client.hpp"

#include <cctype>
#include <cstdlib>

#include "util/net.hpp"

namespace feast::serve {

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) return false;
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(port_text.c_str(), &end, 10);
  if (end != port_text.c_str() + port_text.size() || v == 0 || v > 65535) {
    return false;
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(v);
  return true;
}

HttpReply http_request(const std::string& host, std::uint16_t port,
                       const std::string& method, const std::string& target,
                       const std::string& body, const std::string& client_name,
                       double timeout_s) {
  HttpReply reply;
  net::Socket sock = net::tcp_connect(host, port, timeout_s, &reply.error);
  if (!sock.valid()) return reply;

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + (host.empty() ? std::string("localhost") : host) + "\r\n";
  if (!client_name.empty()) request += "X-Feast-Client: " + client_name + "\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!net::write_all(sock.fd(), request, timeout_s, &reply.error)) return reply;

  // Connection: close framing — the response is everything until EOF.
  std::string raw;
  if (!net::read_until_eof(sock.fd(), raw, timeout_s, &reply.error)) return reply;

  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    reply.error = "malformed response";
    return reply;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    reply.error = "malformed status line";
    return reply;
  }
  reply.status = std::atoi(raw.c_str() + sp + 1);
  if (reply.status < 100 || reply.status > 599) {
    reply.status = 0;
    reply.error = "malformed status line";
    return reply;
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    reply.status = 0;
    reply.error = "truncated response header";
    return reply;
  }
  // Scan the header block for Retry-After (delay-seconds form only); the
  // client otherwise ignores response headers.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::size_t colon = raw.find(':', pos);
    if (colon != std::string::npos && colon < eol) {
      std::string name = raw.substr(pos, colon - pos);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "retry-after") {
        std::size_t value = colon + 1;
        while (value < eol && raw[value] == ' ') ++value;
        const int seconds = std::atoi(raw.c_str() + value);
        if (seconds >= 0) reply.retry_after_s = seconds;
      }
    }
    pos = eol + 2;
  }
  reply.body = raw.substr(header_end + 4);
  return reply;
}

}  // namespace feast::serve
