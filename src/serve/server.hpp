/// \file server.hpp
/// \brief The `feastc serve` daemon: a long-lived, cache-deduplicated
///        evaluation service over HTTP/1.1 + JSON.
///
/// The daemon accepts cell and campaign requests on a TCP socket, folds
/// them onto the existing content-addressed cell cache, and dispatches
/// misses to supervised `feastc campaign exec-cell` worker subprocesses
/// (leased from supervise::WorkerPool; shard-result files are the wire
/// format between daemon and worker).  The core loop is a single-threaded
/// poll() reactor — accept → parse → dedup → dispatch → harvest → reply —
/// shaped like a request→batch→worker translation loop:
///
///   * **Dedup/batching** — every request resolves to cell jobs keyed by
///     the cell's canonical cache identity; concurrent requests for the
///     same cell share one computation, and finished cells are memoized
///     for the daemon's lifetime (on top of the on-disk cache).
///   * **Admission control** — a bounded queue of not-yet-running cells;
///     requests that would grow it past --max-queue are shed with 429.
///   * **Fairness** — queued cells drain round-robin across clients
///     (X-Feast-Client header, else anonymous), so one bulk submitter
///     cannot starve interactive users.
///   * **Drain** — SIGTERM/SIGINT stop accepting, give in-flight workers
///     a grace window, checkpoint campaign manifests (resumable exactly
///     like a supervised run) and exit 130.
///
/// Endpoints, protocol and knobs: docs/SERVE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "serve/http.hpp"

namespace feast::serve {

/// Daemon configuration (CLI flags map 1:1; docs/SERVE.md).
struct ServeOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0: ephemeral, report via Server::port().

  int workers = 2;              ///< Local worker subprocesses (0 = none:
                                ///< remote-only daemon, cells wait for
                                ///< registered `feastc worker` peers).
  int max_queue = 64;           ///< Queued (not running) cells before 429.
  int max_connections = 128;    ///< Concurrent sockets before 503-and-close.
  int max_attempts = 3;         ///< Worker attempts before a cell fails.
  double cell_timeout_s = 0.0;  ///< Watchdog deadline per attempt (0 = off).
  double term_grace_s = 2.0;    ///< SIGTERM → SIGKILL escalation window.
  double drain_grace_s = 10.0;  ///< Drain: wait for in-flight workers.
  double header_timeout_s = 5.0;  ///< Full request must arrive within this
                                  ///< (the slow-loris guard).
  double idle_timeout_s = 60.0;   ///< Keep-alive connections idle longer
                                  ///< than this are closed.
  std::uint64_t memory_limit_mb = 0;  ///< RLIMIT_AS per worker (0 = off).
  unsigned worker_threads = 1;        ///< --threads given to each worker.

  std::string work_dir;    ///< Spec files, manifests, shard scratch.  Required.
  std::string cache_dir;   ///< Cell cache ("" = .feast-cache default).
  bool no_cache = false;
  std::string feastc_path;  ///< Worker binary ("" = /proc/self/exe).

  // ---- Distributed worker fabric (docs/SERVE.md, "Distributed workers").
  double heartbeat_timeout_s = 15.0;  ///< Idle remote worker with no poll
                                      ///< for this long is declared lost.
  double lease_timeout_s = 0.0;  ///< Per-lease deadline before the cell is
                                 ///< requeued uncharged (0 = auto: from
                                 ///< cell_timeout_s + grace, else 60 s).
  int poison_worker_deaths = 2;  ///< Distinct workers dead while holding a
                                 ///< cell before it is quarantined as `net`
                                 ///< cross-worker poison.
  int retry_after_s = 1;  ///< Retry-After hint on 429/503 replies.

  HttpLimits http;          ///< Header/body byte caps.
  std::ostream* log = nullptr;  ///< Progress/diagnostic lines when set.
};

/// Monotonic counters + instantaneous gauges, snapshotted by stats().
struct ServeStatsSnapshot {
  std::uint64_t accepted = 0;      ///< Connections accepted.
  std::uint64_t requests = 0;      ///< Requests fully parsed.
  std::uint64_t parse_errors = 0;  ///< Requests rejected by the parser.
  std::uint64_t shed = 0;          ///< Requests shed by admission control.
  std::uint64_t dedup_hits = 0;    ///< Cells coalesced onto existing jobs.
  std::uint64_t cache_hits = 0;    ///< Cells served from the on-disk cache.
  std::uint64_t dispatched = 0;    ///< Worker leases issued.
  std::uint64_t completed = 0;     ///< Cells that reached a healthy result.
  std::uint64_t failed = 0;        ///< Cells that spent their retry budget.
  std::uint64_t replies = 0;       ///< Responses enqueued.
  std::uint64_t disconnects = 0;   ///< Clients gone before their reply.
  std::uint64_t workers_lost = 0;  ///< Remote workers declared lost.
  std::uint64_t requeued = 0;      ///< Cells requeued uncharged after a
                                   ///< worker loss or lease expiry.
  std::size_t queue_depth = 0;     ///< Cells queued, not yet running.
  std::size_t running = 0;         ///< Leased workers right now (local).
  std::size_t remote_workers = 0;  ///< Registered remote workers right now.
  std::size_t remote_leases = 0;   ///< Cells leased to remote workers now.
  std::size_t connections = 0;     ///< Open sockets right now.
};

/// The daemon.  start() binds, run() serves until stopped or drained.
/// request_stop()/request_drain() are safe from other threads (tests and
/// the bench run the server on a background thread).
class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens.  Throws std::runtime_error on failure.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const noexcept;

  /// Serves until request_stop() (returns 0) or a drain — SIGTERM/SIGINT
  /// or request_drain() (returns 130, the supervised-drain exit code; all
  /// campaign manifests are resumable checkpoints).
  int run();

  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }
  void request_drain() noexcept { drain_.store(true, std::memory_order_release); }

  ServeStatsSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
};

}  // namespace feast::serve
