#include "serve/server.hpp"

#include <csignal>
#include <poll.h>
#include <sys/socket.h>

#include <cerrno>

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "check/fault.hpp"
#include "obs/obs.hpp"
#include "sched/kernels/kernels.hpp"
#include "supervise/supervisor.hpp"
#include "supervise/worker_pool.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/net.hpp"

namespace feast::serve {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

// ------------------------------------------------------------ small helpers

std::string full_digits(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string json_number(double value) {
  if (std::isfinite(value)) return full_digits(value);
  if (std::isnan(value)) return "\"nan\"";
  return value > 0.0 ? "\"inf\"" : "\"-inf\"";
}

void append_summary_json(std::string& out, const char* name, const StatSummary& s) {
  out += '"';
  out += name;
  out += "\": [" + std::to_string(s.count) + ", " + json_number(s.mean) + ", " +
         json_number(s.stddev) + ", " + json_number(s.min) + ", " +
         json_number(s.max) + ", " + json_number(s.ci95_half_width) + "]";
}

std::string error_body(const std::string& message, const std::string& kind = "") {
  std::string out = "{\"error\": \"" + json_escape(message) + "\"";
  if (!kind.empty()) out += ", \"error_kind\": \"" + json_escape(kind) + "\"";
  out += "}\n";
  return out;
}

bool known_inject_action(const std::string& value) {
  const std::string action = value.substr(0, value.find('@'));
  // "worker-die" is the distributed-fabric poison: a remote worker leasing
  // the cell dies on the spot instead of executing it (docs/SERVE.md).
  return action == "hang" || action == "crash" || action == "signal" ||
         action == "worker-die";
}

/// Resolves an inject value ("action" or "action@N") against one attempt.
std::string inject_for_attempt(const std::string& value, int attempt) {
  const std::size_t at = value.find('@');
  if (at == std::string::npos) return value;
  const int only = std::atoi(value.c_str() + at + 1);
  return attempt == only ? value.substr(0, at) : std::string();
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Drain flag set from the SIGINT/SIGTERM handler; the reactor polls it
// between ticks (async-signal-safe by construction, same pattern as the
// supervised campaign runner).
volatile std::sig_atomic_t g_serve_signal = 0;

void serve_signal_handler(int sig) { g_serve_signal = sig; }

class SignalGuard {
 public:
  SignalGuard() {
    g_serve_signal = 0;
    struct sigaction action {};
    action.sa_handler = serve_signal_handler;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &old_int_);
    sigaction(SIGTERM, &action, &old_term_);
  }
  ~SignalGuard() {
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  int signal() const noexcept { return static_cast<int>(g_serve_signal); }

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

// --------------------------------------------------------------- the model

/// One open client connection.
struct Conn {
  net::Socket sock;
  std::uint64_t id = 0;
  HttpRequestParser parser;
  std::string outbox;
  std::size_t out_off = 0;
  bool close_after_write = false;
  bool waiting = false;     ///< Request handled, reply pending on a job.
  bool slow_loris = false;  ///< Fault-injected: reject with 408 on first bytes.
  bool has_partial = false; ///< A request is arriving but incomplete.
  bool doomed = false;      ///< Torn down; erased at end of tick (never
                            ///< mid-callback — callers hold references).
  Clock::time_point last_activity = Clock::now();
  Clock::time_point request_start = Clock::now();  ///< First byte of request.
  std::string client = "anon";
  obs::Sink* sink = nullptr;  ///< Captured per request for the request span.
  std::uint64_t span_start_ns = 0;

  explicit Conn(HttpLimits limits) : parser(limits) {}
};

/// A campaign waiting on one cell job: which campaign, which row.
struct CampaignLink {
  std::uint64_t campaign = 0;
  std::size_t pos = 0;
};

/// One deduplicated unit of work: a cell, keyed by its canonical cache
/// identity (all requests for the same bytes share this object).
struct CellJob {
  enum class State { Queued, Running, Done, Failed };

  std::string key;
  std::string spec_path;
  std::size_t cell_index = 0;
  std::string canonical;
  std::string inject;
  std::string client;  ///< Fair-queue owner (first submitter).
  int attempts = 0;    ///< Worker attempts consumed so far.
  State state = State::Queued;
  supervise::ShardResult shard;          ///< Valid once Done.
  supervise::ErrorKind kind = supervise::ErrorKind::None;
  std::string error;                     ///< Valid once Failed.
  std::uint64_t ticket = 0;              ///< Pool lease while Running.
  std::vector<std::uint64_t> waiters;    ///< Conns wanting a /v1/cell reply.
  std::vector<CampaignLink> campaigns;   ///< Campaigns wanting this cell.
  obs::Sink* sink = nullptr;             ///< Dispatch span: enqueue → terminal.
  std::uint64_t span_start_ns = 0;

  // Remote-lease state (empty lease token ⇔ local pool or not leased).
  std::string lease;            ///< Lease token while Running on a remote.
  std::string lease_worker;     ///< Worker id holding the lease.
  Clock::time_point lease_deadline{};  ///< Requeue uncharged past this.
  std::set<std::string> dead_workers;  ///< Distinct worker names that died
                                       ///< holding this cell (poison count).
  obs::Sink* lease_sink = nullptr;     ///< serve/lease span: grant → settle.
  std::uint64_t lease_span_start_ns = 0;

  bool terminal() const noexcept {
    return state == State::Done || state == State::Failed;
  }
};

/// One registered remote worker (a `feastc worker` process on some host).
struct RemoteWorker {
  std::string id;    ///< Daemon-assigned token; the worker echoes it back.
  std::string name;  ///< Operator-chosen identity; poison counts names.
  int slots = 1;
  std::size_t leases = 0;  ///< Cells currently out on lease.
  Clock::time_point last_seen = Clock::now();
  std::uint64_t cells_ok = 0;
  /// Failure tallies indexed by supervise::ErrorKind (None..Net).
  std::array<std::uint64_t, 7> errors{};
};

/// One submitted campaign, resolved cell by cell.
struct CampaignJob {
  std::uint64_t id = 0;
  CampaignSpec spec;
  CampaignResult result;
  std::string manifest_path;
  std::size_t outstanding = 0;  ///< Cells not yet terminal.
  std::vector<std::uint64_t> waiters;
  Clock::time_point started = Clock::now();
};

// Lifetime bounds on the daemon's memo maps.  Terminal cell jobs and spec
// files are cheap to recreate (the persistent result cache still answers
// repeats), so a long-lived daemon evicts the oldest beyond these caps
// instead of growing without bound.
constexpr std::size_t kMaxTerminalMemo = 4096;
constexpr std::size_t kMaxSpecMemo = 512;

}  // namespace

// ------------------------------------------------------------------- Impl

struct Server::Impl {
  explicit Impl(ServeOptions options, Server& owner)
      : opt(std::move(options)), server(owner) {}

  ServeOptions opt;
  Server& server;
  net::TcpListener listener;
  std::optional<ResultCache> cache;
  std::unique_ptr<supervise::WorkerPool> pool;

  std::map<std::uint64_t, Conn> conns;
  std::map<std::string, CellJob> jobs;  ///< Keyed by dedup key; Done memoized.
  std::map<std::uint64_t, CampaignJob> campaigns;
  std::map<std::string, std::uint64_t> campaign_by_hash;  ///< In-flight only.
  std::map<std::string, std::string> spec_paths;          ///< spec hash → file.
  std::deque<std::string> memo_order;  ///< Terminal job keys, oldest first.
  std::deque<std::string> spec_order;  ///< Spec memo keys, oldest first.
  std::deque<std::uint64_t> pump_queue;  ///< Conns with pipelined bytes to
                                         ///< re-parse after their reply.

  // Per-client FIFO queues of queued job keys, drained round-robin.
  std::map<std::string, std::deque<std::string>> queues;
  std::vector<std::string> rr_clients;
  std::size_t rr_cursor = 0;

  // The remote worker fabric: registered `feastc worker` peers by id, and
  // the name → id map that makes a re-registration replace (and implicitly
  // declare dead) the previous incarnation of the same name.
  std::map<std::string, RemoteWorker> workers;
  std::map<std::string, std::string> worker_ids;  ///< name → id.

  std::uint64_t next_conn_id = 1;
  std::uint64_t next_campaign_id = 1;
  std::uint64_t next_worker_id = 1;
  std::uint64_t next_lease_id = 1;
  bool draining = false;
  Clock::time_point drain_deadline{};

  // Monotonic counters + gauges (atomic: stats() reads cross-thread).
  std::atomic<std::uint64_t> accepted{0}, requests{0}, parse_errors{0}, shed{0},
      dedup_hits{0}, cache_hits{0}, dispatched{0}, completed{0}, failed{0},
      replies{0}, disconnects{0}, workers_lost{0}, requeued{0};
  std::atomic<std::size_t> gauge_queue{0}, gauge_running{0}, gauge_conns{0},
      gauge_workers{0}, gauge_leases{0};

  /// Effective per-lease deadline: explicit knob, else derived from the
  /// worker watchdog (the remote runs the same exec-cell under the same
  /// timeout, plus escalation grace and network slack), else a minute.
  double lease_timeout() const {
    if (opt.lease_timeout_s > 0.0) return opt.lease_timeout_s;
    if (opt.cell_timeout_s > 0.0) {
      return opt.cell_timeout_s + opt.term_grace_s + 5.0;
    }
    return 60.0;
  }

  // ------------------------------------------------------------- plumbing
  std::size_t queue_depth() const {
    std::size_t depth = 0;
    for (const auto& [client, queue] : queues) depth += queue.size();
    return depth;
  }

  void log_line(const std::string& line) {
    if (opt.log != nullptr) *opt.log << "serve: " << line << std::endl;
  }

  /// Enqueues a job key on its owner's fair queue.
  void enqueue(const CellJob& job) {
    auto [it, inserted] = queues.try_emplace(job.client);
    if (inserted) rr_clients.push_back(job.client);
    it->second.push_back(job.key);
  }

  /// Pops the next queued job key round-robin across clients ("" if none).
  std::string next_queued() {
    if (rr_clients.empty()) return {};
    for (std::size_t i = 0; i < rr_clients.size(); ++i) {
      rr_cursor = (rr_cursor + 1) % rr_clients.size();
      auto& queue = queues[rr_clients[rr_cursor]];
      while (!queue.empty()) {
        std::string key = std::move(queue.front());
        queue.pop_front();
        const auto it = jobs.find(key);
        if (it != jobs.end() && it->second.state == CellJob::State::Queued) {
          return key;
        }
        // Stale entry (job already resolved or re-queued elsewhere): skip.
      }
    }
    return {};
  }

  /// Writes (once) the canonical spec file workers re-parse; returns its path.
  std::string spec_file_for(const std::string& spec_hash,
                            const std::string& canonical_text) {
    auto it = spec_paths.find(spec_hash);
    if (it != spec_paths.end()) return it->second;
    const std::string path =
        (fs::path(opt.work_dir) / (spec_hash + ".spec")).string();
    std::string error;
    if (!atomic_write_file(path, canonical_text, &error)) {
      throw std::runtime_error("serve: cannot write spec file: " + error);
    }
    spec_paths.emplace(spec_hash, path);
    spec_order.push_back(spec_hash);
    // Only the memo is bounded; the file itself stays on disk, since queued
    // jobs hold their own copies of the path.  An evicted spec is simply
    // rewritten on its next submission.
    while (spec_order.size() > kMaxSpecMemo) {
      spec_paths.erase(spec_order.front());
      spec_order.pop_front();
    }
    return path;
  }

  // --------------------------------------------------------------- replies

  /// Enqueues a response on \p conn_id's outbox.  Honors the injected
  /// client-disconnect fault (the connection is torn down instead) and
  /// tolerates the client having already gone away.
  void enqueue_reply(std::uint64_t conn_id, int status,
                     const std::string& content_type, const std::string& body,
                     const std::vector<std::pair<std::string, std::string>>&
                         extra_headers = {}) {
    const auto it = conns.find(conn_id);
    if (it == conns.end() || it->second.doomed) {
      disconnects.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeDisconnect);
      return;
    }
    Conn& conn = it->second;
    if (check::fire(check::FaultSite::ServeClientDisconnect)) {
      // The armed occurrence simulates the client hanging up right before
      // its reply.  Erasing the Conn here would free memory our synchronous
      // callers (read_conn, the poll loop) still hold references into, so
      // only mark it doomed; the reactor reaps it at the end of the tick.
      disconnects.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeDisconnect);
      conn.doomed = true;
      conn.waiting = false;
      conn.has_partial = false;
      conn.outbox.clear();
      conn.out_off = 0;
      ::shutdown(conn.sock.fd(), SHUT_RDWR);
      return;
    }
    conn.outbox += render_http_response(status, content_type, body,
                                        !conn.close_after_write, extra_headers);
    replies.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::ServeReply);
    if (conn.sink != nullptr) {
      obs::detail::record_span(*conn.sink, obs::Span::ServeRequest,
                               conn.span_start_ns);
      conn.sink = nullptr;
    }
    conn.waiting = false;
    conn.parser.reset();
    // Bytes pipelined behind this reply may already hold a complete next
    // request; the pump drains them (worklist, not recursion).
    if (!conn.close_after_write) pump_queue.push_back(conn.id);
    flush_conn(conn);
  }

  void reply_json(std::uint64_t conn_id, int status, const std::string& body) {
    enqueue_reply(conn_id, status, "application/json", body);
  }

  /// 429/503 admission replies: same as reply_json plus the Retry-After
  /// hint that `feastc submit` and remote workers fold into their backoff.
  void reply_busy(std::uint64_t conn_id, int status, const std::string& body) {
    enqueue_reply(conn_id, status, "application/json", body,
                  {{"Retry-After", std::to_string(opt.retry_after_s)}});
  }

  /// Renders the /v1/cell success body from a terminal Done job.
  std::string cell_body(const CellJob& job) {
    std::string out = "{\"cell\": " + std::to_string(job.cell_index) +
                      ", \"state\": \"" +
                      (job.shard.from_cache ? "cached" : "computed") +
                      "\", \"wall_ms\": " + json_number(job.shard.wall_ms) +
                      ", \"attempts\": " + std::to_string(job.attempts) + ",\n ";
    append_summary_json(out, "max_lateness", job.shard.stats.max_lateness);
    out += ", ";
    append_summary_json(out, "end_to_end", job.shard.stats.end_to_end);
    out += ",\n ";
    append_summary_json(out, "makespan", job.shard.stats.makespan);
    out += ", ";
    append_summary_json(out, "min_laxity", job.shard.stats.min_laxity);
    out += ",\n \"infeasible_runs\": " +
           std::to_string(job.shard.stats.infeasible_runs) + "}\n";
    return out;
  }

  /// Builds the status-JSON view of one campaign job.
  Manifest manifest_view(CampaignJob& campaign) {
    refresh_campaign_totals(campaign.result,
                            seconds_since(campaign.started) * 1000.0);
    Manifest manifest;
    manifest.version = 2;
    manifest.name = campaign.result.name;
    manifest.spec_hash_hex = campaign.result.spec_hash_hex;
    manifest.spec_text = campaign.spec.canonical_text();
    manifest.samples = campaign.result.samples;
    manifest.cells = campaign.result.cells;
    manifest.wall_ms = campaign.result.wall_ms;
    manifest.computed = campaign.result.computed;
    manifest.cached = campaign.result.cached;
    manifest.failed = campaign.result.failed;
    manifest.quarantined = campaign.result.quarantined;
    return manifest;
  }

  void checkpoint(CampaignJob& campaign) {
    refresh_campaign_totals(campaign.result,
                            seconds_since(campaign.started) * 1000.0);
    checkpoint_manifest_file(campaign.manifest_path, campaign.spec,
                             campaign.result);
  }

  /// Replies to a finished campaign's waiters and retires the job.
  void finish_campaign(std::uint64_t campaign_id) {
    const auto it = campaigns.find(campaign_id);
    if (it == campaigns.end()) return;
    CampaignJob& campaign = it->second;
    checkpoint(campaign);
    std::ostringstream body;
    write_manifest_status_json(body, manifest_view(campaign));
    for (const std::uint64_t waiter : campaign.waiters) {
      reply_json(waiter, 200, body.str());
    }
    log_line("campaign " + campaign.result.spec_hash_hex + " finished (" +
             std::to_string(campaign.result.computed) + " computed, " +
             std::to_string(campaign.result.cached) + " cached, " +
             std::to_string(campaign.result.quarantined) + " quarantined)");
    // Injected campaigns never enter the share map; only drop the entry
    // when it actually points at this campaign.
    if (const auto hit = campaign_by_hash.find(campaign.result.spec_hash_hex);
        hit != campaign_by_hash.end() && hit->second == campaign_id) {
      campaign_by_hash.erase(hit);
    }
    campaigns.erase(it);
  }

  /// Records \p job reaching a terminal state and evicts the oldest
  /// memoized terminal jobs beyond the cap — never the one just noted,
  /// whose reference callers still hold.  Evicted results are not lost:
  /// the persistent cell cache still answers repeats.
  void note_terminal(const CellJob& job) {
    memo_order.push_back(job.key);
    while (memo_order.size() > kMaxTerminalMemo) {
      const std::string key = std::move(memo_order.front());
      memo_order.pop_front();
      if (key == job.key) continue;
      const auto it = jobs.find(key);
      if (it != jobs.end() && it->second.terminal() &&
          it->second.waiters.empty() && it->second.campaigns.empty()) {
        jobs.erase(it);
      }
    }
  }

  /// Applies a terminal cell job to every waiter: single-cell replies and
  /// campaign rows, checkpointing and finishing campaigns as they complete.
  void settle_job(CellJob& job) {
    if (job.sink != nullptr) {
      obs::detail::record_span(*job.sink, obs::Span::ServeDispatch,
                               job.span_start_ns);
      job.sink = nullptr;
    }
    for (const std::uint64_t waiter : job.waiters) {
      if (job.state == CellJob::State::Done) {
        reply_json(waiter, 200, cell_body(job));
      } else {
        reply_json(waiter, 500,
                   error_body(job.error, supervise::to_string(job.kind)));
      }
    }
    job.waiters.clear();
    std::vector<CampaignLink> links;
    links.swap(job.campaigns);
    for (const CampaignLink& link : links) {
      const auto it = campaigns.find(link.campaign);
      if (it == campaigns.end()) continue;
      CampaignJob& campaign = it->second;
      CellOutcome& cell = campaign.result.cells[link.pos];
      apply_job_to_cell(job, cell);
      checkpoint(campaign);
      if (--campaign.outstanding == 0) finish_campaign(link.campaign);
    }
    note_terminal(job);
  }

  static void apply_job_to_cell(const CellJob& job, CellOutcome& cell) {
    cell.attempts = job.attempts;
    if (job.state == CellJob::State::Done) {
      cell.state =
          job.shard.from_cache ? CellState::Cached : CellState::Computed;
      cell.stats = job.shard.stats;
      cell.wall_ms = job.shard.wall_ms;
      cell.error.clear();
      cell.error_kind.clear();
    } else {
      // Retry budget spent: the quarantine verdict, exactly like the
      // supervised runner — the campaign completes degraded around it.
      cell.state = CellState::Quarantined;
      cell.error = job.error;
      cell.error_kind = supervise::to_string(job.kind);
    }
  }

  // ------------------------------------------------------------ dispatching

  void dispatch() {
    if (!pool) return;  // Remote-only daemon: cells wait for worker leases.
    while (pool->free_slots() > 0) {
      const std::string key = next_queued();
      if (key.empty()) return;
      CellJob& job = jobs[key];
      const std::string inject = inject_for_attempt(job.inject, job.attempts + 1);
      try {
        job.ticket = pool->submit(job.spec_path, job.cell_index, inject);
      } catch (const std::exception& e) {
        ++job.attempts;
        fail_or_retry(job, supervise::ErrorKind::Io,
                      std::string("spawn failed: ") + e.what());
        continue;
      }
      ++job.attempts;
      job.state = CellJob::State::Running;
      dispatched.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeDispatch);
    }
  }

  void fail_or_retry(CellJob& job, supervise::ErrorKind kind, std::string error) {
    if (job.attempts < opt.max_attempts && !draining) {
      job.state = CellJob::State::Queued;
      enqueue(job);
      obs::count(obs::Counter::SuperviseRetry);
      return;
    }
    job.state = CellJob::State::Failed;
    job.kind = kind;
    job.error = std::move(error);
    failed.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::SuperviseQuarantine);
    log_line("cell " + std::to_string(job.cell_index) + " failed after " +
             std::to_string(job.attempts) + " attempts [" +
             supervise::to_string(kind) + "] — " + job.error);
    settle_job(job);
  }

  void harvest() {
    if (!pool) return;
    for (supervise::WorkerOutcome& outcome : pool->poll()) {
      CellJob* job = nullptr;
      for (auto& [key, candidate] : jobs) {
        if (candidate.state == CellJob::State::Running &&
            candidate.ticket == outcome.ticket) {
          job = &candidate;
          break;
        }
      }
      if (job == nullptr) continue;  // Lease already abandoned (drain).
      job->ticket = 0;
      if (outcome.ok) {
        job->state = CellJob::State::Done;
        job->shard = outcome.shard;
        completed.fetch_add(1, std::memory_order_relaxed);
        settle_job(*job);
      } else {
        fail_or_retry(*job, outcome.kind, outcome.error);
      }
    }
  }

  // ------------------------------------------------------ remote worker fabric

  /// Returns the remote lease and closes its span; the job stays in
  /// whatever state the caller assigns next.
  void release_lease(CellJob& job) {
    if (!job.lease.empty()) {
      const auto it = workers.find(job.lease_worker);
      if (it != workers.end() && it->second.leases > 0) --it->second.leases;
      job.lease.clear();
      job.lease_worker.clear();
    }
    if (job.lease_sink != nullptr) {
      obs::detail::record_span(*job.lease_sink, obs::Span::ServeLease,
                               job.lease_span_start_ns);
      job.lease_sink = nullptr;
    }
  }

  /// A worker died (or vanished) while holding \p job: requeue it
  /// *uncharged* — the attempt never produced a verdict on the cell, same
  /// as drain-killed local attempts — unless enough distinct workers have
  /// now died holding it, in which case the cell itself is the suspect:
  /// cross-worker poison, quarantined under the `net` taxonomy.
  void abandon_lease(CellJob& job, const std::string& worker_name,
                     const std::string& why) {
    release_lease(job);
    if (job.attempts > 0) --job.attempts;  // Uncharged requeue.
    requeued.fetch_add(1, std::memory_order_relaxed);
    job.dead_workers.insert(worker_name);
    if (static_cast<int>(job.dead_workers.size()) >= opt.poison_worker_deaths) {
      job.state = CellJob::State::Failed;
      job.kind = supervise::ErrorKind::Net;
      job.error = "cross-worker poison: " +
                  std::to_string(job.dead_workers.size()) +
                  " distinct workers lost while running this cell (last '" +
                  worker_name + "': " + why + ")";
      failed.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::SuperviseQuarantine);
      log_line("cell " + std::to_string(job.cell_index) +
               " quarantined [net] — " + job.error);
      settle_job(job);
      return;
    }
    job.state = CellJob::State::Queued;
    enqueue(job);
    log_line("cell " + std::to_string(job.cell_index) +
             " requeued uncharged (" + why + ")");
  }

  /// Deregisters \p worker_id and requeues every cell it held.
  void drop_worker(const std::string& worker_id, const std::string& why) {
    const auto it = workers.find(worker_id);
    if (it == workers.end()) return;
    const std::string name = it->second.name;
    const auto name_it = worker_ids.find(name);
    if (name_it != worker_ids.end() && name_it->second == worker_id) {
      worker_ids.erase(name_it);
    }
    workers.erase(it);
    workers_lost.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::ServeWorkerLost);
    log_line("worker '" + name + "' lost (" + why + ")");
    // Collect first: abandon_lease can settle jobs, which may evict other
    // terminal jobs from the map mid-iteration.
    std::vector<std::string> held;
    for (const auto& [key, job] : jobs) {
      if (job.state == CellJob::State::Running && job.lease_worker == worker_id) {
        held.push_back(key);
      }
    }
    for (const std::string& key : held) {
      const auto job_it = jobs.find(key);
      if (job_it != jobs.end()) abandon_lease(job_it->second, name, why);
    }
  }

  /// Failure detection, one poll tick: leases past their deadline take
  /// their worker down (it is dead, partitioned, or hopelessly slow —
  /// indistinguishable from here, treated identically); idle workers that
  /// stopped polling are dropped on heartbeat age.
  void sweep_workers() {
    const auto now = Clock::now();
    std::vector<std::string> lost;
    for (const auto& [key, job] : jobs) {
      if (job.state == CellJob::State::Running && !job.lease.empty() &&
          now >= job.lease_deadline) {
        lost.push_back(job.lease_worker);
      }
    }
    for (const std::string& worker_id : lost) {
      drop_worker(worker_id, "lease deadline missed");
    }
    lost.clear();
    for (const auto& [worker_id, worker] : workers) {
      if (worker.leases == 0 &&
          seconds_since(worker.last_seen) > opt.heartbeat_timeout_s) {
        lost.push_back(worker_id);
      }
    }
    for (const std::string& worker_id : lost) {
      drop_worker(worker_id, "heartbeat missed");
    }
  }

  // ------------------------------------------------------- request handling

  /// Resolves one cell of one spec to a job, creating/attaching as needed.
  /// Returns the terminal job if it can be answered right now (cache hit or
  /// memoized), nullptr when the caller was attached as a waiter, or throws
  /// AdmissionShed when the queue is full.
  struct AdmissionShed {};

  CellJob& resolve_cell(const std::string& spec_hash, const std::string& spec_path,
                        const PlannedCell& cell, const std::string& inject,
                        const std::string& client, bool& created) {
    std::string key = cell.canonical.empty()
                          ? spec_hash + ":" + std::to_string(cell.index)
                          : cell.canonical;
    if (!inject.empty()) key += "#inject=" + inject;
    auto it = jobs.find(key);
    if (it != jobs.end() && it->second.state == CellJob::State::Failed) {
      // A memoized failure is a verdict on past attempts, not on the bytes:
      // a resubmission evicts it and retries with a fresh budget.  (This
      // also keeps the campaign admission pre-count honest — it already
      // treats Failed jobs as new work.)
      jobs.erase(it);
      it = jobs.end();
    }
    if (it != jobs.end()) {
      created = false;
      dedup_hits.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeDedup);
      return it->second;
    }
    if (queue_depth() >= static_cast<std::size_t>(opt.max_queue)) {
      throw AdmissionShed{};
    }
    created = true;
    CellJob& job = jobs[key];
    job.key = key;
    job.spec_path = spec_path;
    job.cell_index = cell.index;
    job.canonical = cell.canonical;
    job.inject = inject;
    job.client = client;
    if ((job.sink = obs::active()) != nullptr) {
      job.span_start_ns = obs::detail::now_ns(*job.sink);
    }
    // The cache consult: a stored record resolves the job without a worker.
    // Inject jobs skip it — their point is to exercise the worker path.
    if (cache.has_value() && !cell.canonical.empty() && inject.empty()) {
      CellStats stats;
      if (cache->lookup(cell.canonical, stats)) {
        job.state = CellJob::State::Done;
        job.shard.cell_index = cell.index;
        job.shard.from_cache = true;
        job.shard.stats = stats;
        cache_hits.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::CacheHit);
        if (job.sink != nullptr) {
          obs::detail::record_span(*job.sink, obs::Span::ServeDispatch,
                                   job.span_start_ns);
          job.sink = nullptr;
        }
        note_terminal(job);
        return job;
      }
      obs::count(obs::Counter::CacheMiss);
    }
    job.state = CellJob::State::Queued;
    enqueue(job);
    return job;
  }

  void handle_cell_request(Conn& conn, const JsonValue& root) {
    const JsonValue* spec_value = root.find("spec");
    const JsonValue* cell_value = root.find("cell");
    if (spec_value == nullptr || spec_value->type != JsonValue::Type::String ||
        cell_value == nullptr || cell_value->type != JsonValue::Type::Number) {
      reply_json(conn.id, 400,
                 error_body("body wants {\"spec\": \"...\", \"cell\": N}"));
      return;
    }
    std::string inject;
    if (const JsonValue* inject_value = root.find("inject")) {
      if (inject_value->type != JsonValue::Type::String ||
          !known_inject_action(inject_value->string)) {
        reply_json(conn.id, 400,
                   error_body("inject wants hang|crash|signal[@ATTEMPT]"));
        return;
      }
      inject = inject_value->string;
    }

    CampaignSpec spec;
    std::vector<Strategy> strategies;
    std::vector<PlannedCell> plan;
    try {
      std::istringstream in(spec_value->string);
      spec = CampaignSpec::parse(in);
      strategies.reserve(spec.strategies.size());
      for (const std::string& s : spec.strategies) {
        strategies.push_back(parse_strategy_spec(s));
      }
      plan = plan_cells(spec, strategies);
    } catch (const std::exception& e) {
      reply_json(conn.id, 400, error_body(std::string("bad spec: ") + e.what()));
      return;
    }
    // Validate in double space before any cast: an untrusted value like
    // 1e300 or 0.5 must never reach the double→size_t conversion (UB when
    // out of range, silent truncation when fractional).
    const double cell_number = cell_value->number;
    if (!std::isfinite(cell_number) || cell_number < 0.0 ||
        cell_number != std::floor(cell_number) ||
        cell_number >= static_cast<double>(plan.size())) {
      reply_json(conn.id, 400,
                 error_body("cell out of range (campaign has " +
                            std::to_string(plan.size()) + " cells)"));
      return;
    }
    const std::size_t index = static_cast<std::size_t>(cell_number);
    const std::string spec_hash = hash_hex(fnv1a64(spec.canonical_text()));
    const std::string spec_path = spec_file_for(spec_hash, spec.canonical_text());

    bool created = false;
    try {
      CellJob& job =
          resolve_cell(spec_hash, spec_path, plan[index], inject, conn.client,
                       created);
      if (job.state == CellJob::State::Done) {
        reply_json(conn.id, 200, cell_body(job));
      } else if (job.state == CellJob::State::Failed) {
        reply_json(conn.id, 500,
                   error_body(job.error, supervise::to_string(job.kind)));
      } else {
        job.waiters.push_back(conn.id);
        conn.waiting = true;
      }
    } catch (const AdmissionShed&) {
      shed.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeShed);
      reply_busy(conn.id, 429, error_body("queue full, retry later"));
    }
  }

  /// Parses the /v1/campaign "inject" field: "CELL:ACTION[@ATTEMPT]" entries
  /// joined by commas.  Returns false on any malformed entry.
  static bool parse_campaign_injects(const std::string& text,
                                     std::map<std::size_t, std::string>& out) {
    std::size_t pos = 0;
    while (pos < text.size()) {
      std::size_t comma = text.find(',', pos);
      if (comma == std::string::npos) comma = text.size();
      const std::string entry = text.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t colon = entry.find(':');
      if (colon == 0 || colon == std::string::npos) return false;
      char* end = nullptr;
      const unsigned long cell = std::strtoul(entry.c_str(), &end, 10);
      if (end != entry.c_str() + colon) return false;
      const std::string action = entry.substr(colon + 1);
      if (!known_inject_action(action)) return false;
      out[static_cast<std::size_t>(cell)] = action;
    }
    return true;
  }

  void handle_campaign_request(Conn& conn, const JsonValue& root) {
    const JsonValue* spec_value = root.find("spec");
    if (spec_value == nullptr || spec_value->type != JsonValue::Type::String) {
      reply_json(conn.id, 400, error_body("body wants {\"spec\": \"...\"}"));
      return;
    }
    std::map<std::size_t, std::string> injects;
    if (const JsonValue* inject_value = root.find("inject")) {
      if (inject_value->type != JsonValue::Type::String ||
          !parse_campaign_injects(inject_value->string, injects)) {
        reply_json(conn.id, 400,
                   error_body("inject wants CELL:ACTION[@ATTEMPT][,...]"));
        return;
      }
    }
    CampaignSpec spec;
    std::vector<Strategy> strategies;
    std::vector<PlannedCell> plan;
    try {
      std::istringstream in(spec_value->string);
      spec = CampaignSpec::parse(in);
      strategies.reserve(spec.strategies.size());
      for (const std::string& s : spec.strategies) {
        strategies.push_back(parse_strategy_spec(s));
      }
      plan = plan_cells(spec, strategies);
    } catch (const std::exception& e) {
      reply_json(conn.id, 400, error_body(std::string("bad spec: ") + e.what()));
      return;
    }
    const std::string spec_hash = hash_hex(fnv1a64(spec.canonical_text()));

    // A campaign of the same spec already in flight: share it.  Injected
    // campaigns are never shared — their point is the fault, not the result.
    if (const auto it = campaign_by_hash.find(spec_hash);
        injects.empty() && it != campaign_by_hash.end()) {
      dedup_hits.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeDedup);
      campaigns[it->second].waiters.push_back(conn.id);
      conn.waiting = true;
      return;
    }

    const std::string spec_path = spec_file_for(spec_hash, spec.canonical_text());
    CampaignJob campaign;
    campaign.id = next_campaign_id++;
    campaign.spec = spec;
    campaign.manifest_path =
        (fs::path(opt.work_dir) / (spec_hash + ".manifest.json")).string();
    campaign.result.name = spec.name;
    campaign.result.spec_hash_hex = spec_hash;
    campaign.result.samples = spec.batch.samples;
    campaign.result.cells = plan_outcomes(spec, strategies, plan);
    // Resume semantics across daemon restarts: finished cells of a previous
    // submission of this spec are restored from its manifest checkpoint.
    restore_finished_cells(campaign.manifest_path, spec_hash,
                           campaign.result.cells);

    // Count how many *new* jobs this submission would enqueue, so admission
    // control sheds the whole request before creating any state.
    std::size_t new_jobs = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (campaign.result.cells[i].state != CellState::Pending) continue;
      std::string key = plan[i].canonical.empty()
                            ? spec_hash + ":" + std::to_string(i)
                            : plan[i].canonical;
      if (const auto inj = injects.find(i); inj != injects.end()) {
        key += "#inject=" + inj->second;
      }
      const auto it = jobs.find(key);
      if (it == jobs.end() || it->second.state == CellJob::State::Failed) {
        ++new_jobs;
      }
    }
    if (queue_depth() + new_jobs > static_cast<std::size_t>(opt.max_queue)) {
      shed.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeShed);
      reply_busy(conn.id, 429,
                 error_body("queue full (" + std::to_string(new_jobs) +
                            " new cells), retry later"));
      return;
    }

    const std::uint64_t campaign_id = campaign.id;
    campaign.waiters.push_back(conn.id);
    auto [cit, inserted] = campaigns.emplace(campaign_id, std::move(campaign));
    if (injects.empty()) campaign_by_hash.emplace(spec_hash, campaign_id);
    CampaignJob& job = cit->second;

    for (std::size_t i = 0; i < plan.size(); ++i) {
      CellOutcome& cell = job.result.cells[i];
      if (cell.state != CellState::Pending) continue;
      bool created = false;
      std::string inject;
      if (const auto inj = injects.find(i); inj != injects.end()) {
        inject = inj->second;
      }
      // Admission was pre-checked above; resolve_cell cannot shed here
      // except under a racing queue, in which case the cell is quarantined
      // as shed rather than failing the whole submission.
      try {
        CellJob& cell_job = resolve_cell(spec_hash, spec_path, plan[i], inject,
                                         conn.client, created);
        if (cell_job.terminal()) {
          apply_job_to_cell(cell_job, cell);
        } else {
          cell_job.campaigns.push_back({campaign_id, i});
          ++job.outstanding;
        }
      } catch (const AdmissionShed&) {
        cell.state = CellState::Quarantined;
        cell.error = "shed by admission control";
        cell.error_kind = "io";
      }
    }
    checkpoint(job);
    log_line("campaign " + spec_hash + " accepted (" +
             std::to_string(job.outstanding) + " cells outstanding)");
    if (job.outstanding == 0) {
      finish_campaign(campaign_id);
    } else {
      conn.waiting = true;
    }
  }

  // ---- /v1/worker/*: the lease protocol spoken by `feastc worker` peers.

  void handle_worker_register(Conn& conn, const JsonValue& root) {
    const JsonValue* name_value = root.find("name");
    if (name_value == nullptr || name_value->type != JsonValue::Type::String ||
        name_value->string.empty() || name_value->string.size() > 64) {
      reply_json(conn.id, 400,
                 error_body("body wants {\"name\": \"...\"} (1..64 chars)"));
      return;
    }
    int slots = 1;
    if (const JsonValue* slots_value = root.find("slots")) {
      if (slots_value->type != JsonValue::Type::Number ||
          !std::isfinite(slots_value->number) || slots_value->number < 1.0 ||
          slots_value->number > 64.0 ||
          slots_value->number != std::floor(slots_value->number)) {
        reply_json(conn.id, 400, error_body("slots wants an integer in 1..64"));
        return;
      }
      slots = static_cast<int>(slots_value->number);
    }
    const std::string name = name_value->string;
    // A returning name is a new incarnation of the same worker: the previous
    // registration is dead by definition, its leases requeue uncharged, and
    // its death is charged to the poison tally of any cell it held.
    if (const auto it = worker_ids.find(name); it != worker_ids.end()) {
      drop_worker(it->second, "replaced by re-registration");
    }
    RemoteWorker worker;
    worker.id = "w" + std::to_string(next_worker_id++);
    worker.name = name;
    worker.slots = slots;
    worker.last_seen = Clock::now();
    const std::string id = worker.id;
    worker_ids[name] = id;
    workers.emplace(id, std::move(worker));
    obs::count(obs::Counter::ServeWorkerRegister);
    log_line("worker '" + name + "' registered as " + id + " (" +
             std::to_string(slots) + " slot(s))");
    reply_json(conn.id, 200,
               "{\"worker\": \"" + id + "\", \"poll_ms\": 50, "
               "\"lease_timeout_s\": " + json_number(lease_timeout()) +
               ", \"heartbeat_timeout_s\": " +
               json_number(opt.heartbeat_timeout_s) + "}\n");
  }

  void handle_worker_lease(Conn& conn, const JsonValue& root) {
    const JsonValue* worker_value = root.find("worker");
    if (worker_value == nullptr ||
        worker_value->type != JsonValue::Type::String) {
      reply_json(conn.id, 400, error_body("body wants {\"worker\": \"...\"}"));
      return;
    }
    const auto it = workers.find(worker_value->string);
    if (it == workers.end()) {
      reply_json(conn.id, 404, error_body("unknown worker (re-register)"));
      return;
    }
    RemoteWorker& worker = it->second;
    worker.last_seen = Clock::now();  // The lease poll doubles as heartbeat.
    std::string key;
    if (worker.leases < static_cast<std::size_t>(worker.slots)) {
      key = next_queued();
    }
    if (key.empty()) {
      reply_json(conn.id, 200, "{\"idle\": true, \"poll_ms\": 50}\n");
      return;
    }
    CellJob& job = jobs.find(key)->second;
    const std::string inject = inject_for_attempt(job.inject, job.attempts + 1);
    ++job.attempts;
    std::ifstream spec_in(job.spec_path, std::ios::binary);
    std::ostringstream spec_text;
    spec_text << spec_in.rdbuf();
    if (!spec_in) {
      fail_or_retry(job, supervise::ErrorKind::Io,
                    "cannot read spec file " + job.spec_path);
      reply_json(conn.id, 200, "{\"idle\": true, \"poll_ms\": 50}\n");
      return;
    }
    job.state = CellJob::State::Running;
    job.lease = "L" + std::to_string(next_lease_id++);
    job.lease_worker = worker.id;
    job.lease_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(lease_timeout()));
    if ((job.lease_sink = obs::active()) != nullptr) {
      job.lease_span_start_ns = obs::detail::now_ns(*job.lease_sink);
    }
    ++worker.leases;
    dispatched.fetch_add(1, std::memory_order_relaxed);
    obs::count(obs::Counter::ServeDispatch);
    obs::count(obs::Counter::ServeWorkerLease);
    std::string body = "{\"lease\": \"" + job.lease +
                       "\", \"cell\": " + std::to_string(job.cell_index) +
                       ", \"spec\": \"" + json_escape(spec_text.str()) + "\"";
    if (!inject.empty()) {
      body += ", \"inject\": \"" + json_escape(inject) + "\"";
    }
    body += ", \"timeout_s\": " + json_number(opt.cell_timeout_s) +
            ", \"threads\": " + std::to_string(opt.worker_threads) + "}\n";
    reply_json(conn.id, 200, body);
  }

  /// The Running job holding \p lease, nullptr when it expired or settled.
  CellJob* find_lease(const std::string& lease) {
    for (auto& [key, job] : jobs) {
      if (job.state == CellJob::State::Running && job.lease == lease) {
        return &job;
      }
    }
    return nullptr;
  }

  void handle_worker_result(Conn& conn, const JsonValue& root) {
    const JsonValue* worker_value = root.find("worker");
    const JsonValue* lease_value = root.find("lease");
    const JsonValue* ok_value = root.find("ok");
    if (worker_value == nullptr ||
        worker_value->type != JsonValue::Type::String ||
        lease_value == nullptr || lease_value->type != JsonValue::Type::String ||
        ok_value == nullptr || ok_value->type != JsonValue::Type::Bool) {
      reply_json(conn.id, 400,
                 error_body("body wants {\"worker\", \"lease\", \"ok\", ...}"));
      return;
    }
    const auto worker_it = workers.find(worker_value->string);
    if (worker_it == workers.end()) {
      reply_json(conn.id, 404, error_body("unknown worker (re-register)"));
      return;
    }
    RemoteWorker& worker = worker_it->second;
    worker.last_seen = Clock::now();
    CellJob* job = find_lease(lease_value->string);
    if (job == nullptr || job->lease_worker != worker.id) {
      // Duplicate delivery, or a lease the sweep already expired: the
      // result is no longer wanted.  410 keeps the settle at-most-once.
      reply_json(conn.id, 410, error_body("lease expired or already settled"));
      return;
    }
    obs::count(obs::Counter::ServeWorkerResult);
    if (ok_value->boolean) {
      const JsonValue* shard_value = root.find("shard");
      if (shard_value == nullptr ||
          shard_value->type != JsonValue::Type::String) {
        reply_json(conn.id, 400,
                   error_body("ok result wants {\"shard\": \"...\"}"));
        return;
      }
      supervise::ShardError shard_error = supervise::ShardError::None;
      const auto shard =
          supervise::parse_shard_result(shard_value->string, &shard_error);
      if (!shard.has_value() || shard->cell_index != job->cell_index) {
        // A frame torn or corrupted in flight is a network-domain failure,
        // charged like any other failed attempt — the next lease retries.
        const std::string why =
            !shard.has_value()
                ? (shard_error == supervise::ShardError::Truncated
                       ? "truncated shard frame"
                       : "corrupt shard frame")
                : "shard for the wrong cell";
        release_lease(*job);
        ++worker.errors[static_cast<std::size_t>(supervise::ErrorKind::Net)];
        fail_or_retry(*job, supervise::ErrorKind::Net,
                      why + " over the wire from worker '" + worker.name + "'");
        reply_json(conn.id, 400, error_body(why, "net"));
        return;
      }
      release_lease(*job);
      job->state = CellJob::State::Done;
      job->shard = *shard;
      completed.fetch_add(1, std::memory_order_relaxed);
      ++worker.cells_ok;
      // Remote results feed the same persistent cache as local harvests.
      if (cache.has_value() && !job->canonical.empty() && job->inject.empty()) {
        cache->store(job->canonical, job->shard.stats);
      }
      settle_job(*job);
      reply_json(conn.id, 200, "{\"accepted\": true}\n");
      return;
    }
    // Worker-observed failure (timeout/crash/signal/oom/io on its side):
    // charged against the cell's retry budget exactly as a local harvest.
    std::string kind_name;
    if (const JsonValue* kind_value = root.find("kind");
        kind_value != nullptr && kind_value->type == JsonValue::Type::String) {
      kind_name = kind_value->string;
    }
    std::string error = "worker-reported failure";
    if (const JsonValue* error_value = root.find("error");
        error_value != nullptr &&
        error_value->type == JsonValue::Type::String) {
      error = error_value->string;
    }
    const supervise::ErrorKind kind =
        supervise::error_kind_from_string(kind_name);
    release_lease(*job);
    ++worker.errors[static_cast<std::size_t>(kind)];
    fail_or_retry(*job, kind, "worker '" + worker.name + "': " + error);
    reply_json(conn.id, 200, "{\"accepted\": true}\n");
  }

  std::string status_body() {
    std::string out = "{\n  \"server\": {";
    const ServeStatsSnapshot snapshot = snapshot_stats();
    out += "\"accepted\": " + std::to_string(snapshot.accepted);
    out += ", \"requests\": " + std::to_string(snapshot.requests);
    out += ", \"parse_errors\": " + std::to_string(snapshot.parse_errors);
    out += ", \"shed\": " + std::to_string(snapshot.shed);
    out += ", \"dedup_hits\": " + std::to_string(snapshot.dedup_hits);
    out += ", \"cache_hits\": " + std::to_string(snapshot.cache_hits);
    out += ", \"dispatched\": " + std::to_string(snapshot.dispatched);
    out += ", \"completed\": " + std::to_string(snapshot.completed);
    out += ", \"failed\": " + std::to_string(snapshot.failed);
    out += ", \"replies\": " + std::to_string(snapshot.replies);
    out += ", \"disconnects\": " + std::to_string(snapshot.disconnects);
    out += ", \"queue_depth\": " + std::to_string(queue_depth());
    out += ", \"clients\": " + std::to_string(queues.size());
    out += ", \"running\": " + std::to_string(pool ? pool->running() : 0);
    out += ", \"connections\": " + std::to_string(conns.size());
    // Which kernel backend this daemon's scheduler runs dispatch to —
    // bit-exact across backends by contract, reported so operators can
    // tell a scalar-fallback host from an AVX2 one when comparing
    // throughput between daemons.
    out += ", \"kernel_backend\": \"";
    out += kernels::to_string(kernels::active_backend());
    out += "\"";
    out += ", \"draining\": ";
    out += draining ? "true" : "false";
    out += ", \"workers_lost\": " + std::to_string(snapshot.workers_lost);
    out += ", \"requeued\": " + std::to_string(snapshot.requeued);
    out += ", \"remote_workers\": " + std::to_string(workers.size());
    std::size_t remote_leases = 0;
    for (const auto& [id, worker] : workers) remote_leases += worker.leases;
    out += ", \"remote_leases\": " + std::to_string(remote_leases);
    out += "},\n  \"workers\": [\n";
    bool first_worker = true;
    if (pool) {
      out += "    {\"name\": \"local\", \"kind\": \"local\", \"slots\": " +
             std::to_string(opt.workers) + ", \"leases\": " +
             std::to_string(pool->running()) + "}";
      first_worker = false;
    }
    for (const auto& [id, worker] : workers) {
      if (!first_worker) out += ",\n";
      first_worker = false;
      out += "    {\"name\": \"" + json_escape(worker.name) + "\", \"id\": \"" +
             worker.id + "\", \"kind\": \"remote\", \"slots\": " +
             std::to_string(worker.slots) + ", \"leases\": " +
             std::to_string(worker.leases) + ", \"heartbeat_age_s\": " +
             json_number(seconds_since(worker.last_seen)) +
             ", \"completed\": " + std::to_string(worker.cells_ok) +
             ", \"errors\": {";
      bool first_kind = true;
      for (std::size_t k = 1; k < worker.errors.size(); ++k) {
        if (!first_kind) out += ", ";
        first_kind = false;
        out += "\"";
        out += supervise::to_string(static_cast<supervise::ErrorKind>(k));
        out += "\": " + std::to_string(worker.errors[k]);
      }
      out += "}}";
    }
    out += "\n  ],\n  \"campaigns\": [\n";
    bool first = true;
    for (auto& [id, campaign] : campaigns) {
      if (!first) out += ",\n";
      first = false;
      std::ostringstream body;
      write_manifest_status_json(body, manifest_view(campaign));
      out += body.str();
    }
    out += "  ]\n}\n";
    return out;
  }

  void handle_request(Conn& conn) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if ((conn.sink = obs::active()) != nullptr) {
      conn.span_start_ns = obs::detail::now_ns(*conn.sink);
    }
    const HttpRequest& request = conn.parser.request();
    const std::string& client_header = request.header("x-feast-client");
    conn.client = client_header.empty() ? "anon" : client_header;
    if (request.header("connection") == "close" ||
        (request.version == "HTTP/1.0" &&
         request.header("connection") != "keep-alive")) {
      conn.close_after_write = true;
    }
    const std::string path = request.path();

    if (path == "/healthz") {
      if (request.method != "GET") {
        enqueue_reply(conn.id, 405, "text/plain", "method not allowed\n");
        return;
      }
      enqueue_reply(conn.id, 200, "text/plain", draining ? "draining\n" : "ok\n");
      return;
    }
    if (path == "/v1/status") {
      if (request.method != "GET") {
        reply_json(conn.id, 405, error_body("method not allowed"));
        return;
      }
      reply_json(conn.id, 200, status_body());
      return;
    }
    if (path == "/v1/cell" || path == "/v1/campaign" ||
        path == "/v1/worker/register" || path == "/v1/worker/lease" ||
        path == "/v1/worker/result") {
      if (request.method != "POST") {
        reply_json(conn.id, 405, error_body("method not allowed"));
        return;
      }
      if (draining) {
        reply_busy(conn.id, 503, error_body("draining"));
        return;
      }
      JsonValue root;
      try {
        // Untrusted bytes: tight nesting and byte budgets on top of the
        // transport-level body cap.
        JsonLimits limits;
        limits.max_depth = 32;
        limits.max_bytes = opt.http.max_body_bytes;
        root = parse_json(request.body, limits);
      } catch (const std::exception& e) {
        parse_errors.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::ServeParseError);
        reply_json(conn.id, 400, error_body(std::string("bad json: ") + e.what()));
        return;
      }
      if (root.type != JsonValue::Type::Object) {
        parse_errors.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::ServeParseError);
        reply_json(conn.id, 400, error_body("body must be a JSON object"));
        return;
      }
      if (path == "/v1/cell") {
        handle_cell_request(conn, root);
      } else if (path == "/v1/campaign") {
        handle_campaign_request(conn, root);
      } else if (path == "/v1/worker/register") {
        handle_worker_register(conn, root);
      } else if (path == "/v1/worker/lease") {
        handle_worker_lease(conn, root);
      } else {
        handle_worker_result(conn, root);
      }
      return;
    }
    reply_json(conn.id, 404, error_body("no such endpoint: " + path));
  }

  // ----------------------------------------------------------- connections

  void close_conn(std::map<std::uint64_t, Conn>::iterator it) {
    conns.erase(it);
  }

  /// True when the connection should be torn down after this read pass.
  bool read_conn(Conn& conn) {
    for (;;) {
      if (conn.doomed) return true;
      std::string bytes;
      const int rc = net::read_available(conn.sock.fd(), bytes);
      if (rc == -1) break;  // Would block: drained the readable data.
      if (rc == 0 || rc == -2) {
        // EOF or hard error.  A client that leaves mid-request or while a
        // reply is pending is a disconnect worth counting.
        if (conn.waiting || conn.has_partial) {
          disconnects.fetch_add(1, std::memory_order_relaxed);
          obs::count(obs::Counter::ServeDisconnect);
        }
        return true;
      }
      conn.last_activity = Clock::now();
      if (conn.slow_loris) {
        // Fault-injected slow-loris client: its header deadline is treated
        // as already expired — reject and close without parsing.
        conn.close_after_write = true;
        enqueue_reply(conn.id, 408, "text/plain", "request timeout\n");
        return conn.doomed;
      }
      if (conn.waiting) {
        // One request in flight per connection: retain pipelined bytes in
        // the parser; the reply path re-drives it over them.  A client that
        // floods while its reply is pending is cut off, not buffered
        // forever.
        conn.parser.feed(bytes);
        if (conn.parser.buffered() >
            opt.http.max_header_bytes + opt.http.max_body_bytes) {
          parse_errors.fetch_add(1, std::memory_order_relaxed);
          obs::count(obs::Counter::ServeParseError);
          return true;
        }
        continue;
      }
      if (!conn.has_partial) {
        conn.has_partial = true;
        conn.request_start = Clock::now();
      }
      const HttpRequestParser::Status status = conn.parser.feed(bytes);
      if (status == HttpRequestParser::Status::Done) {
        conn.has_partial = false;
        handle_request(conn);
        if (conn.doomed) return true;
      } else if (status == HttpRequestParser::Status::Error) {
        parse_errors.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::ServeParseError);
        conn.close_after_write = true;
        enqueue_reply(conn.id, conn.parser.error_status(), "text/plain",
                      conn.parser.error() + "\n");
        conn.has_partial = false;
        if (conn.doomed) return true;
      }
    }
    return false;
  }

  /// Re-drives parsers over bytes that were pipelined behind a reply: each
  /// entry is a connection whose parser may already hold a complete
  /// request.  A worklist rather than recursion — handling a request can
  /// answer it immediately, which re-arms the parser and pushes the
  /// connection back here for the next buffered request.
  void pump() {
    while (!pump_queue.empty()) {
      const std::uint64_t id = pump_queue.front();
      pump_queue.pop_front();
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      Conn& conn = it->second;
      if (conn.waiting || conn.doomed || conn.close_after_write) continue;
      const HttpRequestParser::Status status = conn.parser.drive();
      if (status == HttpRequestParser::Status::Done) {
        conn.has_partial = false;
        handle_request(conn);
      } else if (status == HttpRequestParser::Status::Error) {
        parse_errors.fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::ServeParseError);
        conn.close_after_write = true;
        enqueue_reply(conn.id, conn.parser.error_status(), "text/plain",
                      conn.parser.error() + "\n");
        conn.has_partial = false;
      } else if (conn.parser.buffered() > 0) {
        // A pipelined request arrived incomplete: arm the partial-request
        // deadline so the slow-loris sweep applies to it too.
        conn.has_partial = true;
        conn.request_start = Clock::now();
      }
    }
  }

  /// Pushes outbox bytes; returns true when the conn should close.
  bool flush_conn(Conn& conn) {
    if (conn.doomed) return true;
    while (conn.out_off < conn.outbox.size()) {
      const ssize_t n = ::send(conn.sock.fd(), conn.outbox.data() + conn.out_off,
                               conn.outbox.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      if (n < 0 && errno == EINTR) continue;
      return true;  // Broken pipe: the client is gone.
    }
    if (conn.out_off > 0) {
      conn.outbox.erase(0, conn.out_off);
      conn.out_off = 0;
    }
    // Close only once the pending reply (if any) has been produced *and*
    // flushed — a waiting request's connection must survive until its job
    // resolves even under Connection: close.
    return conn.close_after_write && conn.outbox.empty() && !conn.waiting;
  }

  void accept_ready() {
    for (;;) {
      net::Socket sock = listener.accept();
      if (!sock.valid()) return;
      accepted.fetch_add(1, std::memory_order_relaxed);
      obs::count(obs::Counter::ServeAccept);
      const std::uint64_t id = next_conn_id++;
      auto [it, inserted] = conns.emplace(id, Conn(opt.http));
      Conn& conn = it->second;
      conn.sock = std::move(sock);
      conn.id = id;
      if (conns.size() > static_cast<std::size_t>(opt.max_connections)) {
        conn.close_after_write = true;
        enqueue_reply(id, 503, "text/plain", "too many connections\n",
                      {{"Retry-After", std::to_string(opt.retry_after_s)}});
        continue;
      }
      if (check::fire(check::FaultSite::ServeSlowLoris)) {
        conn.slow_loris = true;
      }
    }
  }

  void sweep_timeouts() {
    const auto now = Clock::now();
    std::vector<std::uint64_t> expired_partial;
    std::vector<std::uint64_t> expired_idle;
    for (auto& [id, conn] : conns) {
      if (conn.has_partial &&
          std::chrono::duration<double>(now - conn.request_start).count() >
              opt.header_timeout_s) {
        expired_partial.push_back(id);
      } else if (!conn.waiting && !conn.has_partial && conn.outbox.empty() &&
                 std::chrono::duration<double>(now - conn.last_activity).count() >
                     opt.idle_timeout_s) {
        expired_idle.push_back(id);
      }
    }
    for (const std::uint64_t id : expired_partial) {
      // The slow-loris guard proper: a request that dribbles in slower than
      // the header deadline is rejected, freeing its connection slot.
      const auto it = conns.find(id);
      if (it == conns.end()) continue;
      it->second.close_after_write = true;
      it->second.has_partial = false;
      enqueue_reply(id, 408, "text/plain", "request timeout\n");
    }
    for (const std::uint64_t id : expired_idle) {
      const auto it = conns.find(id);
      if (it != conns.end()) close_conn(it);
    }
  }

  /// Evicts clients whose fair queues have drained, so queue_depth() scans
  /// and the round-robin stay proportional to *active* clients rather than
  /// every x-feast-client value the daemon has ever seen.
  void prune_clients() {
    for (std::size_t i = 0; i < rr_clients.size();) {
      const auto it = queues.find(rr_clients[i]);
      if (it != queues.end() && !it->second.empty()) {
        ++i;
        continue;
      }
      if (it != queues.end()) queues.erase(it);
      rr_clients.erase(rr_clients.begin() + i);
      if (rr_cursor > i) --rr_cursor;
      if (rr_cursor >= rr_clients.size()) rr_cursor = 0;
    }
  }

  /// Erases connections doomed mid-callback, once no caller can still hold
  /// a reference into them (end of tick).
  void reap_doomed() {
    for (auto it = conns.begin(); it != conns.end();) {
      it = it->second.doomed ? conns.erase(it) : std::next(it);
    }
  }

  void update_gauges() {
    gauge_queue.store(queue_depth(), std::memory_order_relaxed);
    gauge_running.store(pool ? pool->running() : 0, std::memory_order_relaxed);
    gauge_conns.store(conns.size(), std::memory_order_relaxed);
    gauge_workers.store(workers.size(), std::memory_order_relaxed);
    std::size_t leases = 0;
    for (const auto& [id, worker] : workers) leases += worker.leases;
    gauge_leases.store(leases, std::memory_order_relaxed);
  }

  ServeStatsSnapshot snapshot_stats() const {
    ServeStatsSnapshot s;
    s.accepted = accepted.load(std::memory_order_relaxed);
    s.requests = requests.load(std::memory_order_relaxed);
    s.parse_errors = parse_errors.load(std::memory_order_relaxed);
    s.shed = shed.load(std::memory_order_relaxed);
    s.dedup_hits = dedup_hits.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits.load(std::memory_order_relaxed);
    s.dispatched = dispatched.load(std::memory_order_relaxed);
    s.completed = completed.load(std::memory_order_relaxed);
    s.failed = failed.load(std::memory_order_relaxed);
    s.replies = replies.load(std::memory_order_relaxed);
    s.disconnects = disconnects.load(std::memory_order_relaxed);
    s.workers_lost = workers_lost.load(std::memory_order_relaxed);
    s.requeued = requeued.load(std::memory_order_relaxed);
    s.queue_depth = gauge_queue.load(std::memory_order_relaxed);
    s.running = gauge_running.load(std::memory_order_relaxed);
    s.remote_workers = gauge_workers.load(std::memory_order_relaxed);
    s.remote_leases = gauge_leases.load(std::memory_order_relaxed);
    s.connections = gauge_conns.load(std::memory_order_relaxed);
    return s;
  }

  // ------------------------------------------------------------- the drain

  void begin_drain() {
    draining = true;
    drain_deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(
                                            opt.drain_grace_s));
    listener.close();
    // Queued (never dispatched) work is abandoned: its waiters get 503 now,
    // its campaign cells stay Pending in the checkpoint so a resubmission
    // after restart picks them up — the supervisor's drain contract.
    queues.clear();
    rr_clients.clear();
    // Remote leases are cut loose uncharged: any result that still arrives
    // is refused (410), and the cells revert to Queued so the checkpoint
    // records them Pending — identical to never-dispatched work.
    for (auto& [key, job] : jobs) {
      if (job.state == CellJob::State::Running && !job.lease.empty()) {
        release_lease(job);
        if (job.attempts > 0) --job.attempts;
        job.state = CellJob::State::Queued;
      }
    }
    workers.clear();
    worker_ids.clear();
    std::vector<std::uint64_t> waiters;
    for (auto& [key, job] : jobs) {
      if (job.state == CellJob::State::Queued) {
        for (const std::uint64_t waiter : job.waiters) waiters.push_back(waiter);
        job.waiters.clear();
        job.campaigns.clear();
      }
    }
    for (auto& [id, campaign] : campaigns) {
      checkpoint(campaign);
      for (const std::uint64_t waiter : campaign.waiters) {
        waiters.push_back(waiter);
      }
      campaign.waiters.clear();
    }
    for (const std::uint64_t waiter : waiters) {
      reply_json(waiter, 503, error_body("draining: resubmit after restart"));
    }
    log_line("drain: stopped accepting; waiting up to " +
             std::to_string(opt.drain_grace_s) + " s for " +
             std::to_string(pool ? pool->running() : 0) + " worker(s)");
  }

  void finish_drain() {
    // Stragglers are killed uncharged; their cells stay Pending.
    if (pool) pool->kill_all(1.0);
    for (auto& [id, campaign] : campaigns) checkpoint(campaign);
    for (auto& [id, conn] : conns) flush_conn(conn);
    conns.clear();
    log_line("drain: checkpointed, exiting 130");
  }
};

// ------------------------------------------------------------------ Server

Server::Server(ServeOptions options)
    : impl_(std::make_unique<Impl>(std::move(options), *this)) {}

Server::~Server() = default;

void Server::start() {
  ServeOptions& opt = impl_->opt;
  if (opt.work_dir.empty()) throw std::runtime_error("serve: --work-dir required");
  if (opt.workers < 0) throw std::runtime_error("serve: workers < 0");
  if (opt.max_queue < 1) throw std::runtime_error("serve: max-queue < 1");
  if (opt.max_attempts < 1) throw std::runtime_error("serve: max-attempts < 1");
  if (opt.heartbeat_timeout_s <= 0.0) {
    throw std::runtime_error("serve: heartbeat-timeout <= 0");
  }
  if (opt.poison_worker_deaths < 1) {
    throw std::runtime_error("serve: poison-deaths < 1");
  }
  if (opt.retry_after_s < 0) throw std::runtime_error("serve: retry-after < 0");
  fs::create_directories(opt.work_dir);
  if (!opt.no_cache) {
    impl_->cache.emplace(opt.cache_dir.empty() ? ".feast-cache" : opt.cache_dir);
  }
  if (opt.workers > 0) {
    supervise::WorkerPoolOptions pool_options;
    pool_options.slots = opt.workers;
    pool_options.cell_timeout_s = opt.cell_timeout_s;
    pool_options.term_grace_s = opt.term_grace_s;
    pool_options.memory_limit_mb = opt.memory_limit_mb;
    pool_options.worker_threads = opt.worker_threads;
    pool_options.feastc_path = opt.feastc_path;
    pool_options.cache_dir = opt.no_cache
                                 ? ""
                                 : (opt.cache_dir.empty() ? ".feast-cache"
                                                          : opt.cache_dir);
    pool_options.no_cache = opt.no_cache;
    pool_options.work_dir = (fs::path(opt.work_dir) / "shards").string();
    impl_->pool = std::make_unique<supervise::WorkerPool>(pool_options);
  }
  impl_->listener = net::TcpListener::bind_and_listen(opt.host, opt.port);
}

std::uint16_t Server::port() const noexcept { return impl_->listener.port(); }

int Server::run() {
  Impl& impl = *impl_;
  if (!impl.listener.valid()) start();
  SignalGuard signals;
  bool drained = false;
  while (true) {
    // Assemble this tick's poll set: listener + every connection.
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfd_conn;
    pfds.reserve(impl.conns.size() + 1);
    if (impl.listener.valid()) {
      pfds.push_back({impl.listener.fd(), POLLIN, 0});
      pfd_conn.push_back(0);
    }
    for (auto& [id, conn] : impl.conns) {
      short events = POLLIN;
      if (!conn.outbox.empty()) events |= POLLOUT;
      pfds.push_back({conn.sock.fd(), events, 0});
      pfd_conn.push_back(id);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), 20);
    (void)rc;  // EINTR and timeouts both fall through to the tick body.

    std::vector<std::uint64_t> closing;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfd_conn[i] == 0) {
        if ((pfds[i].revents & POLLIN) != 0) impl.accept_ready();
        continue;
      }
      const auto it = impl.conns.find(pfd_conn[i]);
      if (it == impl.conns.end()) continue;
      Conn& conn = it->second;
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (impl.read_conn(conn)) {
          closing.push_back(conn.id);
          continue;
        }
      }
      if (!conn.outbox.empty() || conn.close_after_write) {
        if (impl.flush_conn(conn)) closing.push_back(conn.id);
      }
    }
    for (const std::uint64_t id : closing) {
      const auto it = impl.conns.find(id);
      if (it != impl.conns.end()) impl.close_conn(it);
    }

    impl.harvest();
    impl.pump();
    if (!impl.draining) {
      impl.dispatch();
      impl.sweep_workers();
    }
    impl.prune_clients();
    impl.sweep_timeouts();
    impl.reap_doomed();
    impl.update_gauges();

    const bool stop_requested = stop_.load(std::memory_order_acquire);
    const bool drain_requested =
        drain_.load(std::memory_order_acquire) || signals.signal() != 0;
    if (!impl.draining && drain_requested) {
      impl.begin_drain();
      drained = true;
    }
    if (impl.draining &&
        ((impl.pool ? impl.pool->running() : 0) == 0 ||
         Clock::now() >= impl.drain_deadline)) {
      // Give late harvests one last pass, then cut the stragglers loose.
      impl.harvest();
      impl.finish_drain();
      return drained ? 130 : 0;
    }
    if (stop_requested && !impl.draining) {
      if (impl.pool) impl.pool->kill_all(1.0);
      for (auto& [id, campaign] : impl.campaigns) impl.checkpoint(campaign);
      for (auto& [id, conn] : impl.conns) impl.flush_conn(conn);
      impl.conns.clear();
      impl.listener.close();
      impl.log_line("stopped");
      return 0;
    }
  }
}

ServeStatsSnapshot Server::stats() const { return impl_->snapshot_stats(); }

}  // namespace feast::serve
