/// \file worker_pool.hpp
/// \brief Leased `exec-cell` worker subprocesses for long-lived callers.
///
/// `run_supervised_campaign` owns its workers for the span of one campaign;
/// a long-lived daemon needs the same process-isolation discipline —
/// watchdog, SIGTERM→SIGKILL escalation, shard-result harvest, structured
/// error taxonomy — detached from any single campaign.  WorkerPool is that
/// extraction: a fixed number of slots, each leased to one
/// `feastc campaign exec-cell` attempt at a time.  submit() spawns into a
/// free slot and returns a ticket; poll() harvests finished (or
/// watchdog-killed) leases without blocking.  Retry and quarantine policy
/// stay with the caller — the pool reports one attempt's outcome, it does
/// not decide what an attempt failure means.
///
/// The destructor kills and reaps every outstanding lease: a pool owner
/// that dies, drains or unwinds through an exception never leaks a worker
/// process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "supervise/supervisor.hpp"

namespace feast::supervise {

/// Pool-construction knobs (per-lease knobs ride on submit()).
struct WorkerPoolOptions {
  int slots = 2;                ///< Concurrent leases.
  double cell_timeout_s = 0.0;  ///< Watchdog deadline per lease (0 = off).
  double term_grace_s = 2.0;    ///< SIGTERM → SIGKILL escalation window.
  std::uint64_t memory_limit_mb = 0;  ///< RLIMIT_AS per worker (0 = off).
  unsigned worker_threads = 1;        ///< --threads given to each worker.
  /// Worker binary; empty resolves /proc/self/exe (correct when the caller
  /// is feastc itself; tests pass their configured binary).
  std::string feastc_path;
  std::string cache_dir;  ///< Forwarded to workers ("" = worker default).
  bool no_cache = false;
  /// Scratch directory for shard results + worker logs.  Required.
  std::string work_dir;
};

/// One harvested lease.
struct WorkerOutcome {
  std::uint64_t ticket = 0;
  std::size_t cell_index = 0;
  bool ok = false;
  ErrorKind kind = ErrorKind::None;  ///< Why the attempt failed (!ok).
  std::string error;                 ///< Human-readable detail (!ok).
  ShardResult shard;                 ///< Valid when ok.
  double wall_s = 0.0;               ///< Lease wall time, spawn → harvest.
};

/// Fixed-capacity pool of supervised worker subprocesses.  Single-owner:
/// not thread-safe (the serve daemon drives it from one event loop).
class WorkerPool {
 public:
  explicit WorkerPool(WorkerPoolOptions options);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t capacity() const noexcept;
  std::size_t running() const noexcept;
  std::size_t free_slots() const noexcept;

  /// Leases a free slot to one `exec-cell` attempt on cell \p cell_index of
  /// the campaign spec at \p spec_path (\p inject is the poison action to
  /// forward, "" = none).  Returns a nonzero ticket the eventual
  /// WorkerOutcome echoes back.  Throws std::runtime_error when the pool is
  /// full or the spawn fails outright — callers gate on free_slots().
  std::uint64_t submit(const std::string& spec_path, std::size_t cell_index,
                       const std::string& inject = "");

  /// Non-blocking harvest: reaps every finished lease, watchdog-kills every
  /// overrun one, and returns their outcomes (possibly empty).
  std::vector<WorkerOutcome> poll();

  /// Kills (SIGTERM → \p grace_s → SIGKILL) and discards every outstanding
  /// lease without producing outcomes — the drain path.
  void kill_all(double grace_s);

 private:
  struct Lease;

  WorkerOutcome harvest(Lease& lease, bool timed_out);

  WorkerPoolOptions options_;
  std::string feastc_;
  std::uint64_t next_ticket_ = 1;
  std::vector<Lease> leases_;
};

}  // namespace feast::supervise
