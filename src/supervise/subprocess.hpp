/// \file subprocess.hpp
/// \brief Portable fork/exec subprocess wrapper with watchdog semantics.
///
/// `Subprocess` spawns an argv (no shell) with optional stdout/stderr
/// redirection and rlimit caps, and decodes the wait status properly:
/// `WIFEXITED` vs `WIFSIGNALED` are distinct outcomes (`ExitStatus::Kind`),
/// so a worker that was SIGKILLed is never confused with one that exited
/// with an error code — the misclassification the old `std::system`-based
/// torture driver suffered.
///
/// The watchdog pattern lives in `kill_and_reap`: SIGTERM, a bounded grace
/// period, then SIGKILL escalation, always ending in a reaped child (no
/// zombies).  `run_command` composes spawn + deadline + escalation for
/// one-shot callers (the torture driver).
///
/// Fork safety: the parent may own a running thread pool, so the child
/// executes only async-signal-safe calls (dup2/setpgid/setrlimit/execvp/
/// _exit) between fork() and execvp().
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace feast::supervise {

/// Decoded wait status of a finished child.
struct ExitStatus {
  enum class Kind : std::uint8_t {
    None,      ///< Not finished (or never spawned).
    Exited,    ///< WIFEXITED: normal termination, exit_code valid.
    Signaled,  ///< WIFSIGNALED: killed by a signal, term_signal valid.
    Lost,      ///< waitpid failed (reaped elsewhere / SIGCHLD ignored).
  };

  Kind kind = Kind::None;
  int exit_code = 0;    ///< WEXITSTATUS when kind == Exited.
  int term_signal = 0;  ///< WTERMSIG when kind == Signaled.
  bool timed_out = false;  ///< The caller killed it for missing a deadline.

  bool exited(int code) const noexcept {
    return kind == Kind::Exited && exit_code == code;
  }
  bool success() const noexcept { return exited(0) && !timed_out; }

  /// "exit 3" | "signal 9 (SIGKILL)" | "timeout (signal 9)" | "not run".
  std::string describe() const;
};

/// Spawn-time knobs.
struct SubprocessOptions {
  /// Redirect stdout to this file (truncated); empty inherits the parent's.
  std::string stdout_path;
  /// Redirect stderr: empty inherits, "+stdout" duplicates onto stdout's
  /// target (the common capture-both-into-one-log case).
  std::string stderr_path;
  /// RLIMIT_CPU in seconds (0 = unlimited): a hard cap on runaway spins
  /// that even a wedged watchdog cannot miss.
  unsigned cpu_limit_s = 0;
  /// RLIMIT_AS in bytes (0 = unlimited): allocation failures in the child
  /// surface as bad_alloc/SIGKILL instead of driving the host to OOM.
  std::uint64_t memory_limit_bytes = 0;
  /// setpgid(0, 0) in the child: terminal-generated signals (Ctrl-C's
  /// SIGINT) then reach only the parent, which owns the child's fate — the
  /// supervisor uses this so a drain never looks like worker signal deaths.
  bool new_process_group = false;
};

/// One spawned child process.  Movable, not copyable; the destructor of a
/// still-running child SIGKILLs and reaps it (a supervisor must never leak
/// an unsupervised process).
class Subprocess {
 public:
  Subprocess() = default;
  ~Subprocess();
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// fork+execvp of \p argv (argv[0] is the binary; PATH is searched).
  /// Throws std::runtime_error when the fork fails or the exec fails to
  /// launch (exec failure is reported via a CLOEXEC pipe, so "binary not
  /// found" is a throw here, not a confusing child exit code).
  static Subprocess spawn(const std::vector<std::string>& argv,
                          const SubprocessOptions& options = {});

  pid_t pid() const noexcept { return pid_; }
  bool spawned() const noexcept { return pid_ > 0; }

  /// Non-blocking: reaps and returns true when the child has finished
  /// (status() becomes valid).  False while it is still running.
  bool poll();

  /// Blocks until the child finishes; returns the decoded status.
  ExitStatus wait();

  /// Polls until the child finishes or \p seconds elapse.  Returns the
  /// status on completion, std::nullopt on timeout (child still running).
  std::optional<ExitStatus> wait_for(double seconds);

  /// Sends \p sig to the child (no-op once reaped).
  void send_signal(int sig) noexcept;

  /// Watchdog escalation: SIGTERM, up to \p term_grace_s for a clean exit,
  /// then SIGKILL + blocking reap.  The returned status has timed_out set.
  ExitStatus kill_and_reap(double term_grace_s);

  /// The decoded status once poll()/wait() observed the exit.
  const ExitStatus& status() const noexcept { return status_; }

 private:
  void reap_blocking();

  pid_t pid_ = -1;
  ExitStatus status_;
};

/// Runs \p argv to completion with a wall-clock deadline: spawn, wait up
/// to \p timeout_s (0 = forever), SIGTERM→SIGKILL escalation on overrun.
/// Never throws on spawn failure — that is folded into the returned status
/// (Kind::None) with \p error filled when non-null.
ExitStatus run_command(const std::vector<std::string>& argv,
                       const SubprocessOptions& options, double timeout_s,
                       std::string* error = nullptr);

/// Absolute path of the running executable (/proc/self/exe); falls back to
/// "feastc" (PATH lookup) when unreadable.  The supervisor and the serve
/// daemon both use this to re-spawn themselves as `exec-cell` workers.
std::string self_exe_path();

}  // namespace feast::supervise
