#include "supervise/worker_pool.hpp"

#include <csignal>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "obs/obs.hpp"
#include "supervise/subprocess.hpp"
#include "util/fsio.hpp"

namespace feast::supervise {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct WorkerPool::Lease {
  Subprocess proc;
  std::uint64_t ticket = 0;
  std::size_t cell = 0;
  Clock::time_point started;
  fs::path result_path;
  fs::path log_path;
  obs::Sink* sink = nullptr;  ///< Captured at spawn for the attempt span.
  std::uint64_t span_start_ns = 0;
};

namespace {

/// The last few lines of a worker log, squeezed onto one line ("" when the
/// log is missing or empty).  Mirrors the supervisor's error detail.
std::string log_tail(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  if (data.empty()) return {};
  constexpr std::size_t kMaxBytes = 320;
  if (data.size() > kMaxBytes) data.erase(0, data.size() - kMaxBytes);
  std::string tail;
  tail.reserve(data.size());
  for (const char c : data) tail += (c == '\n' || c == '\r') ? ' ' : c;
  return tail;
}

}  // namespace

WorkerPool::WorkerPool(WorkerPoolOptions options) : options_(std::move(options)) {
  if (options_.slots < 1) throw std::invalid_argument("worker pool: slots < 1");
  if (options_.work_dir.empty()) {
    throw std::invalid_argument("worker pool: work_dir required");
  }
  fs::create_directories(options_.work_dir);
  feastc_ = options_.feastc_path.empty() ? self_exe_path() : options_.feastc_path;
  leases_.reserve(static_cast<std::size_t>(options_.slots));
}

WorkerPool::~WorkerPool() {
  // Never leak an unsupervised process: a pool owner unwinding through an
  // exception (or just exiting) takes its leases down with it.
  kill_all(/*grace_s=*/1.0);
}

std::size_t WorkerPool::capacity() const noexcept {
  return static_cast<std::size_t>(options_.slots);
}

std::size_t WorkerPool::running() const noexcept { return leases_.size(); }

std::size_t WorkerPool::free_slots() const noexcept {
  return capacity() - running();
}

std::uint64_t WorkerPool::submit(const std::string& spec_path,
                                 std::size_t cell_index, const std::string& inject) {
  if (free_slots() == 0) throw std::runtime_error("worker pool: no free slot");

  Lease lease;
  lease.ticket = next_ticket_++;
  lease.cell = cell_index;
  const std::string stem = "lease-" + std::to_string(lease.ticket) + ".cell-" +
                           std::to_string(cell_index);
  lease.result_path = fs::path(options_.work_dir) / (stem + ".result");
  lease.log_path = fs::path(options_.work_dir) / (stem + ".log");
  std::error_code ec;
  fs::remove(lease.result_path, ec);  // Never harvest a stale shard.

  std::vector<std::string> argv = {feastc_,
                                   "campaign",
                                   "exec-cell",
                                   spec_path,
                                   "--cell",
                                   std::to_string(cell_index),
                                   "--out",
                                   lease.result_path.string(),
                                   "--threads",
                                   std::to_string(options_.worker_threads)};
  if (options_.no_cache) {
    argv.emplace_back("--no-cache");
  } else if (!options_.cache_dir.empty()) {
    argv.emplace_back("--cache-dir");
    argv.push_back(options_.cache_dir);
  }
  if (!inject.empty()) {
    argv.emplace_back("--inject");
    argv.push_back(inject);
  }

  SubprocessOptions opts;
  opts.stdout_path = lease.log_path.string();
  opts.stderr_path = "+stdout";
  opts.memory_limit_bytes = options_.memory_limit_mb << 20;
  // Own process group: a SIGTERM aimed at the daemon must reach only the
  // daemon (which drains), never the workers.
  opts.new_process_group = true;

  obs::count(obs::Counter::SuperviseSpawn);
  lease.proc = Subprocess::spawn(argv, opts);  // Throws on spawn failure.
  lease.started = Clock::now();
  if ((lease.sink = obs::active()) != nullptr) {
    lease.span_start_ns = obs::detail::now_ns(*lease.sink);
  }
  const std::uint64_t ticket = lease.ticket;
  leases_.push_back(std::move(lease));
  return ticket;
}

WorkerOutcome WorkerPool::harvest(Lease& lease, bool timed_out) {
  if (lease.sink != nullptr) {
    obs::detail::record_span(*lease.sink, obs::Span::SuperviseAttempt,
                             lease.span_start_ns);
  }
  const ExitStatus& status = lease.proc.status();
  WorkerOutcome outcome;
  outcome.ticket = lease.ticket;
  outcome.cell_index = lease.cell;
  outcome.wall_s =
      std::chrono::duration<double>(Clock::now() - lease.started).count();

  const std::string tail = log_tail(lease.log_path);
  const std::string suffix = tail.empty() ? "" : " — " + tail;
  if (timed_out) {
    outcome.kind = ErrorKind::Timeout;
    outcome.error = "watchdog: exceeded deadline (" + status.describe() + ")" +
                    suffix;
    return outcome;
  }
  if (status.kind == ExitStatus::Kind::Lost) {
    outcome.kind = ErrorKind::Io;
    outcome.error = "worker " + status.describe() + suffix;
    return outcome;
  }
  if (status.kind == ExitStatus::Kind::Signaled) {
    // Under an address-space cap the kernel's reply to an unservable
    // allocation is SIGKILL; classify that as oom.
    outcome.kind = (options_.memory_limit_mb > 0 && status.term_signal == SIGKILL)
                       ? ErrorKind::Oom
                       : ErrorKind::Signal;
    outcome.error = "worker " + status.describe() + suffix;
    return outcome;
  }
  if (!status.exited(0)) {
    outcome.kind = ErrorKind::Crash;
    outcome.error = "worker " + status.describe() + suffix;
    return outcome;
  }
  std::ifstream in(lease.result_path, std::ios::binary);
  if (!in) {
    outcome.kind = ErrorKind::Io;
    outcome.error = "worker exited 0 but left no result file" + suffix;
    return outcome;
  }
  const std::string data((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  ShardError shard_error = ShardError::None;
  const std::optional<ShardResult> shard = parse_shard_result(data, &shard_error);
  if (!shard.has_value() || shard->cell_index != lease.cell) {
    outcome.kind = ErrorKind::Io;
    outcome.error =
        "worker result unreadable (" +
        std::string(shard.has_value() ? "wrong cell" : to_string(shard_error)) +
        "): " + lease.result_path.string();
    return outcome;
  }
  outcome.ok = true;
  outcome.kind = ErrorKind::None;
  outcome.shard = *shard;
  std::error_code ec;
  fs::remove(lease.result_path, ec);
  fs::remove(lease.log_path, ec);
  return outcome;
}

std::vector<WorkerOutcome> WorkerPool::poll() {
  std::vector<WorkerOutcome> outcomes;
  for (auto it = leases_.begin(); it != leases_.end();) {
    Lease& lease = *it;
    if (lease.proc.poll()) {
      outcomes.push_back(harvest(lease, /*timed_out=*/false));
      it = leases_.erase(it);
      continue;
    }
    const double age_s =
        std::chrono::duration<double>(Clock::now() - lease.started).count();
    if (options_.cell_timeout_s > 0.0 && age_s > options_.cell_timeout_s) {
      obs::count(obs::Counter::SuperviseKill);
      lease.proc.kill_and_reap(options_.term_grace_s);
      outcomes.push_back(harvest(lease, /*timed_out=*/true));
      it = leases_.erase(it);
      continue;
    }
    ++it;
  }
  return outcomes;
}

void WorkerPool::kill_all(double grace_s) {
  for (Lease& lease : leases_) {
    obs::count(obs::Counter::SuperviseKill);
    lease.proc.kill_and_reap(grace_s);
    std::error_code ec;
    fs::remove(lease.result_path, ec);
    fs::remove(lease.log_path, ec);
  }
  leases_.clear();
}

}  // namespace feast::supervise
