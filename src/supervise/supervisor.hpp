/// \file supervisor.hpp
/// \brief Supervised process isolation for campaigns.
///
/// `run_supervised_campaign` executes a campaign's cells in worker
/// *subprocesses* (`feastc campaign exec-cell`, one cell per attempt)
/// instead of pool threads, so a wedged or crashing cell can no longer
/// take the whole campaign down.  The supervision discipline borrows the
/// reservation/budget stance of reservation-based federated scheduling —
/// every unit of work runs under an enforced budget — and the graceful
/// degradation of imprecise computation: a late or failed piece degrades
/// the result instead of aborting the run.
///
///   * **Watchdog** — each attempt gets a wall-clock deadline; overruns are
///     killed with SIGTERM → (grace) → SIGKILL escalation.
///   * **Retry** — failed attempts requeue under deterministic exponential
///     backoff with seeded jitter (replayable from the spec seed alone).
///   * **Quarantine** — a cell that exhausts its retry budget is recorded
///     as `quarantined` with a structured error taxonomy
///     (timeout | crash | signal | oom | io) and the campaign *completes*
///     in degraded mode around it.
///   * **Drain** — SIGINT/SIGTERM stop dispatch, give in-flight workers a
///     grace window, and write a final resumable manifest checkpoint.
///
/// Results travel supervisor ← worker through shard-result files written
/// with util::atomic_write_file; healthy cells are byte-identical to an
/// unsupervised run (torture asserts the manifest fingerprints match).
/// Policy details: docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "campaign/campaign.hpp"

namespace feast::supervise {

/// Structured taxonomy of why a worker attempt failed (manifest
/// `error_kind`; docs/ROBUSTNESS.md).
enum class ErrorKind : std::uint8_t {
  None,     ///< The attempt succeeded.
  Timeout,  ///< Watchdog deadline exceeded; the worker was killed.
  Crash,    ///< Worker exited with a non-zero code.
  Signal,   ///< Worker was killed by a signal it did not expect.
  Oom,      ///< Worker died under its memory cap (SIGKILL with RLIMIT_AS).
  Io,       ///< Spawn failed or the shard result was missing/unreadable.
  Net,      ///< Remote-worker failure domain: torn/corrupt frames over the
            ///< wire, or a cell that killed enough distinct workers to be
            ///< declared cross-worker poison (docs/SERVE.md).
};

const char* to_string(ErrorKind kind) noexcept;

/// Inverse of to_string; unknown strings decode as Io (the conservative
/// "something infrastructural went wrong" bucket).
ErrorKind error_kind_from_string(const std::string& name) noexcept;

/// Deterministic retry backoff: attempt n (1-based, the attempt that just
/// failed) sleeps `min(cap, base·2^(n-1))` scaled by a seeded jitter in
/// [0.75, 1.25).  Identical (seed, cell, attempt) triples always produce
/// identical delays, so a retry schedule is replayable.
struct BackoffPolicy {
  double base_ms = 250.0;
  double cap_ms = 10'000.0;
  std::uint64_t seed = 0;  ///< Usually the campaign's batch seed.
};

double backoff_delay_ms(const BackoffPolicy& policy, std::size_t cell_index,
                        int attempt);

/// Knobs of the supervised runner.
struct SupervisorOptions {
  int workers = 2;             ///< Concurrent worker subprocesses.
  double cell_timeout_s = 0.0; ///< Watchdog deadline per attempt (0 = off).
  double term_grace_s = 2.0;   ///< SIGTERM → SIGKILL escalation window.
  double drain_grace_s = 10.0; ///< Drain: wait for in-flight workers.
  int max_attempts = 3;        ///< Attempts before a cell is quarantined.
  BackoffPolicy backoff;
  std::uint64_t memory_limit_mb = 0;  ///< RLIMIT_AS per worker (0 = off).
  unsigned worker_threads = 1;        ///< --threads given to each worker.
  /// Scratch directory for shard results + worker logs.  Empty: derived
  /// from the manifest path (`<manifest>.work`).  Removed after a fully
  /// healthy run, kept (with the logs the manifest errors reference) when
  /// anything was quarantined.
  std::string work_dir;
  bool keep_work_dir = false;
  /// Worker binary; empty resolves /proc/self/exe (correct when the caller
  /// is feastc itself; tests pass their configured binary).
  std::string feastc_path;
  /// The spec file workers re-parse.  Required: the supervisor never ships
  /// spec state through argv, both sides parse the same canonical file.
  std::string spec_path;
  std::string cache_dir;  ///< Forwarded to workers; "" with no_cache unset
                          ///< still forwards (workers default their own).
  bool no_cache = false;
  /// Deterministic poison-cell injection for tests and torture: cell index
  /// → "hang" | "crash" | "signal", optionally "@N" to poison only attempt
  /// N (e.g. "crash@1" fails once, then the retry succeeds).  Forwarded to
  /// the matching worker as `exec-cell --inject`.
  std::map<std::size_t, std::string> inject;
  /// Per-cell fault-injection plans (check/fault.hpp spec grammar, e.g.
  /// "exact-solve:1:die"), armed inside the matching worker subprocess via
  /// `exec-cell --faults`.  Unlike `inject` (which fakes worker-level
  /// crashes before the cell runs), these fire at real library injection
  /// sites mid-execution; every attempt re-arms the same plan.
  std::map<std::size_t, std::string> fault_cells;
};

/// Parses a comma-separated `--inject CELL:ACTION[@ATTEMPT]` list.  Throws
/// std::invalid_argument on malformed input.
std::map<std::size_t, std::string> parse_inject_spec(const std::string& spec);

/// Runs the campaign under process isolation.  Uses options.manifest_path /
/// resume / progress / cache exactly like run_campaign (the cache pointer is
/// only consulted for *restored* cells; workers open their own cache on
/// sup.cache_dir).  Returns with result.interrupted set when a drain signal
/// stopped the run early; quarantined cells leave the run degraded but
/// complete.  Throws std::invalid_argument for malformed specs.
CampaignResult run_supervised_campaign(const CampaignSpec& spec,
                                       const CampaignOptions& options,
                                       const SupervisorOptions& sup);

// ----------------------------------------------------------- shard protocol

/// One worker's result for one cell, shipped through a shard-result file.
struct ShardResult {
  std::size_t cell_index = 0;
  bool from_cache = false;
  double wall_ms = 0.0;
  CellStats stats;
};

/// Why a shard result was rejected.  `Truncated`: the bytes end before the
/// record's final checksum line is complete — a short read or fragmented
/// delivery lost the tail.  `Corrupt`: the shard is structurally complete
/// but wrong — bad magic/fields or a failed whole-record checksum.  Over a
/// remote transport the distinction is diagnostic: truncation points at
/// delivery, corruption at the bytes.  Each rejection bumps the matching
/// obs counter (`shard.truncated` / `shard.corrupt`).
enum class ShardError : std::uint8_t { None, Truncated, Corrupt };

const char* to_string(ShardError error) noexcept;

/// Renders/parses the shard-result file format (versioned, ends with the
/// cell record's whole-record checksum; docs/ROBUSTNESS.md).  parse returns
/// std::nullopt on any malformed input, never throws on corrupt bytes;
/// \p error (when non-null) reports the truncated-vs-corrupt taxonomy.
std::string render_shard_result(const ShardResult& result,
                                const std::string& canonical_key);
std::optional<ShardResult> parse_shard_result(const std::string& data,
                                              ShardError* error = nullptr);

/// Worker side of the protocol (the `feastc campaign exec-cell` body):
/// executes cell \p cell_index of \p spec (cache on \p cache_dir unless
/// empty), writes the shard result atomically to \p out_path and returns 0.
/// On failure writes the reason to \p err and returns 1.  \p inject is the
/// poison action to honor before executing ("" = none); \p faults is a
/// fault-plan spec (check/fault.hpp grammar) armed for the cell's duration
/// ("" = none).
int run_worker_cell(const CampaignSpec& spec, std::size_t cell_index,
                    const std::string& out_path, const std::string& cache_dir,
                    const std::string& inject, const std::string& faults,
                    std::ostream& err);

}  // namespace feast::supervise
