#include "supervise/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace feast::supervise {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Async-signal-safe best effort: open a redirect target in the child.
/// Returns the fd or -1 (the child then reports the failure via exec_errno).
int open_redirect(const char* path) {
  return ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
}

ExitStatus decode_wait_status(int wait_status) {
  ExitStatus status;
  if (WIFEXITED(wait_status)) {
    status.kind = ExitStatus::Kind::Exited;
    status.exit_code = WEXITSTATUS(wait_status);
  } else if (WIFSIGNALED(wait_status)) {
    status.kind = ExitStatus::Kind::Signaled;
    status.term_signal = WTERMSIG(wait_status);
  }
  return status;
}

}  // namespace

std::string ExitStatus::describe() const {
  switch (kind) {
    case Kind::None:
      return "not run";
    case Kind::Exited:
      return (timed_out ? "timeout (exit " : "exit ") + std::to_string(exit_code) +
             (timed_out ? ")" : "");
    case Kind::Signaled: {
      const char* name = ::strsignal(term_signal);
      std::string text = (timed_out ? "timeout (signal " : "signal ") +
                         std::to_string(term_signal);
      if (name != nullptr) text += std::string(" ") + name;
      return text + (timed_out ? ")" : "");
    }
    case Kind::Lost:
      return timed_out ? "timeout (lost: waitpid failed)" : "lost: waitpid failed";
  }
  return "?";
}

Subprocess::~Subprocess() {
  if (spawned() && status_.kind == ExitStatus::Kind::None) {
    ::kill(pid_, SIGKILL);
    reap_blocking();
  }
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(other.status_) {
  other.pid_ = -1;
  other.status_ = ExitStatus{};
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    if (spawned() && status_.kind == ExitStatus::Kind::None) {
      ::kill(pid_, SIGKILL);
      reap_blocking();
    }
    pid_ = other.pid_;
    status_ = other.status_;
    other.pid_ = -1;
    other.status_ = ExitStatus{};
  }
  return *this;
}

Subprocess Subprocess::spawn(const std::vector<std::string>& argv,
                             const SubprocessOptions& options) {
  if (argv.empty()) throw std::runtime_error("subprocess: empty argv");

  // argv for execvp, valid until fork() in this frame.
  std::vector<char*> exec_argv;
  exec_argv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) exec_argv.push_back(const_cast<char*>(arg.c_str()));
  exec_argv.push_back(nullptr);

  // CLOEXEC pipe: a successful exec closes it silently; an exec/setup
  // failure writes errno, so the parent can throw with the real cause
  // instead of inventing an exit-code convention.
  int err_pipe[2];
  if (::pipe(err_pipe) != 0) {
    throw std::runtime_error(std::string("subprocess: pipe: ") + std::strerror(errno));
  }
  ::fcntl(err_pipe[1], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    throw std::runtime_error(std::string("subprocess: fork: ") + std::strerror(saved));
  }

  if (pid == 0) {
    // Child: async-signal-safe calls only (the parent may be multithreaded).
    ::close(err_pipe[0]);
    int exec_errno = 0;
    if (options.new_process_group && ::setpgid(0, 0) != 0) exec_errno = errno;
    if (!options.stdout_path.empty()) {
      const int fd = open_redirect(options.stdout_path.c_str());
      if (fd < 0 || ::dup2(fd, STDOUT_FILENO) < 0) exec_errno = errno;
      if (fd >= 0) ::close(fd);
    }
    if (exec_errno == 0 && !options.stderr_path.empty()) {
      if (options.stderr_path == "+stdout") {
        if (::dup2(STDOUT_FILENO, STDERR_FILENO) < 0) exec_errno = errno;
      } else {
        const int fd = open_redirect(options.stderr_path.c_str());
        if (fd < 0 || ::dup2(fd, STDERR_FILENO) < 0) exec_errno = errno;
        if (fd >= 0) ::close(fd);
      }
    }
    if (exec_errno == 0 && options.cpu_limit_s > 0) {
      struct rlimit limit;
      limit.rlim_cur = options.cpu_limit_s;
      limit.rlim_max = options.cpu_limit_s + 1;  // SIGXCPU, then hard SIGKILL.
      if (::setrlimit(RLIMIT_CPU, &limit) != 0) exec_errno = errno;
    }
    if (exec_errno == 0 && options.memory_limit_bytes > 0) {
      struct rlimit limit;
      limit.rlim_cur = options.memory_limit_bytes;
      limit.rlim_max = options.memory_limit_bytes;
      if (::setrlimit(RLIMIT_AS, &limit) != 0) exec_errno = errno;
    }
    if (exec_errno == 0) {
      ::execvp(exec_argv[0], exec_argv.data());
      exec_errno = errno;
    }
    (void)!::write(err_pipe[1], &exec_errno, sizeof exec_errno);
    ::_exit(127);
  }

  // Parent.
  ::close(err_pipe[1]);
  int exec_errno = 0;
  ssize_t n;
  do {
    n = ::read(err_pipe[0], &exec_errno, sizeof exec_errno);
  } while (n < 0 && errno == EINTR);
  ::close(err_pipe[0]);
  if (n > 0) {
    // The child never ran the target; reap it and report the real cause.
    int ignored;
    ::waitpid(pid, &ignored, 0);
    throw std::runtime_error("subprocess: cannot exec '" + argv[0] +
                             "': " + std::strerror(exec_errno));
  }

  Subprocess child;
  child.pid_ = pid;
  return child;
}

void Subprocess::reap_blocking() {
  int wait_status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &wait_status, 0);
  } while (r < 0 && errno == EINTR);
  const bool timed_out = status_.timed_out;
  if (r == pid_) {
    status_ = decode_wait_status(wait_status);
  } else if (r < 0) {
    // ECHILD and friends: the child is unobservable (reaped elsewhere, or
    // SIGCHLD is SIG_IGN in the hosting process).  Record a terminal
    // status so callers never treat this slot as still running.
    status_ = ExitStatus{};
    status_.kind = ExitStatus::Kind::Lost;
  }
  status_.timed_out = timed_out;
}

bool Subprocess::poll() {
  if (!spawned()) return false;
  if (status_.kind != ExitStatus::Kind::None) return true;
  int wait_status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &wait_status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return false;
  const bool timed_out = status_.timed_out;
  if (r == pid_) {
    status_ = decode_wait_status(wait_status);
  } else {
    // waitpid failed (see reap_blocking): synthesize a terminal status
    // instead of reporting "still running" forever.
    status_ = ExitStatus{};
    status_.kind = ExitStatus::Kind::Lost;
  }
  status_.timed_out = timed_out;
  return true;
}

ExitStatus Subprocess::wait() {
  if (spawned() && status_.kind == ExitStatus::Kind::None) reap_blocking();
  return status_;
}

std::optional<ExitStatus> Subprocess::wait_for(double seconds) {
  const auto start = Clock::now();
  while (!poll()) {
    if (seconds_since(start) >= seconds) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return status_;
}

void Subprocess::send_signal(int sig) noexcept {
  if (spawned() && status_.kind == ExitStatus::Kind::None) ::kill(pid_, sig);
}

ExitStatus Subprocess::kill_and_reap(double term_grace_s) {
  if (!spawned()) return status_;
  if (status_.kind != ExitStatus::Kind::None) return status_;
  status_.timed_out = true;
  send_signal(SIGTERM);
  if (wait_for(term_grace_s)) return status_;
  send_signal(SIGKILL);
  reap_blocking();
  return status_;
}

std::string self_exe_path() {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return "feastc";  // PATH lookup as a last resort.
  buffer[n] = '\0';
  return buffer;
}

ExitStatus run_command(const std::vector<std::string>& argv,
                       const SubprocessOptions& options, double timeout_s,
                       std::string* error) {
  try {
    Subprocess child = Subprocess::spawn(argv, options);
    if (timeout_s <= 0.0) return child.wait();
    if (auto status = child.wait_for(timeout_s)) return *status;
    return child.kill_and_reap(/*term_grace_s=*/2.0);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return ExitStatus{};
  }
}

}  // namespace feast::supervise
