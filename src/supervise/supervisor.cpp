#include "supervise/supervisor.hpp"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/cache.hpp"
#include "check/fault.hpp"
#include "obs/obs.hpp"
#include "supervise/subprocess.hpp"
#include "util/fsio.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace feast::supervise {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

const char* to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::None: return "";
    case ErrorKind::Timeout: return "timeout";
    case ErrorKind::Crash: return "crash";
    case ErrorKind::Signal: return "signal";
    case ErrorKind::Oom: return "oom";
    case ErrorKind::Io: return "io";
    case ErrorKind::Net: return "net";
  }
  return "?";
}

ErrorKind error_kind_from_string(const std::string& name) noexcept {
  if (name.empty()) return ErrorKind::None;
  if (name == "timeout") return ErrorKind::Timeout;
  if (name == "crash") return ErrorKind::Crash;
  if (name == "signal") return ErrorKind::Signal;
  if (name == "oom") return ErrorKind::Oom;
  if (name == "net") return ErrorKind::Net;
  return ErrorKind::Io;
}

double backoff_delay_ms(const BackoffPolicy& policy, std::size_t cell_index,
                        int attempt) {
  const int n = attempt < 1 ? 1 : attempt;
  double delay = policy.base_ms * std::pow(2.0, n - 1);
  if (!(delay < policy.cap_ms)) delay = policy.cap_ms;
  // Jitter stream: independent of the batch's sample streams (distinct
  // leading path element) and fully determined by (seed, cell, attempt).
  Pcg32 rng(seed_for(policy.seed,
                     {0x5355504552ULL /* "SUPER" */, cell_index,
                      static_cast<std::uint64_t>(n)}));
  return delay * rng.uniform_real(0.75, 1.25);
}

namespace {

bool known_inject_action(const std::string& action) {
  return action == "hang" || action == "crash" || action == "signal";
}

/// Resolves an inject value ("action" or "action@N") against one attempt.
std::string inject_for_attempt(const std::string& value, int attempt) {
  const std::size_t at = value.find('@');
  if (at == std::string::npos) return value;
  const int only = std::atoi(value.c_str() + at + 1);
  return attempt == only ? value.substr(0, at) : std::string();
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// The last few lines of a worker log, squeezed onto one line for the
/// manifest error field ("" when the log is missing or empty).
std::string log_tail(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  while (!data.empty() && (data.back() == '\n' || data.back() == '\r')) {
    data.pop_back();
  }
  if (data.empty()) return {};
  constexpr std::size_t kMaxBytes = 320;
  if (data.size() > kMaxBytes) data.erase(0, data.size() - kMaxBytes);
  std::string tail;
  tail.reserve(data.size());
  for (const char c : data) tail += (c == '\n' || c == '\r') ? ' ' : c;
  return tail;
}

// Drain flag set from the SIGINT/SIGTERM handler; the supervisor loop
// polls it between heartbeats (async-signal-safe by construction).
volatile std::sig_atomic_t g_drain_signal = 0;

void drain_handler(int sig) { g_drain_signal = sig; }

/// Installs the drain handlers for the supervisor's lifetime and restores
/// the previous dispositions afterwards (the CLI's own handlers, or the
/// default, must win again once the campaign has returned).
class DrainGuard {
 public:
  DrainGuard() {
    g_drain_signal = 0;
    struct sigaction action {};
    action.sa_handler = drain_handler;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, &old_int_);
    sigaction(SIGTERM, &action, &old_term_);
  }
  ~DrainGuard() {
    sigaction(SIGINT, &old_int_, nullptr);
    sigaction(SIGTERM, &old_term_, nullptr);
  }
  DrainGuard(const DrainGuard&) = delete;
  DrainGuard& operator=(const DrainGuard&) = delete;

  int signal() const noexcept { return static_cast<int>(g_drain_signal); }

 private:
  struct sigaction old_int_ {};
  struct sigaction old_term_ {};
};

}  // namespace

std::map<std::size_t, std::string> parse_inject_spec(const std::string& spec) {
  std::map<std::size_t, std::string> inject;
  for (const std::string& rule : split(spec, ',')) {
    const std::string trimmed = trim(rule);
    if (trimmed.empty()) continue;
    const std::size_t colon = trimmed.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "inject rule must be CELL:ACTION[@ATTEMPT], got '" + trimmed + "'");
    }
    std::size_t cell = 0;
    try {
      cell = std::stoull(trim(trimmed.substr(0, colon)));
    } catch (const std::exception&) {
      throw std::invalid_argument("inject rule cell must be a number in '" +
                                  trimmed + "'");
    }
    const std::string value = trim(trimmed.substr(colon + 1));
    const std::string action = value.substr(0, value.find('@'));
    if (!known_inject_action(action)) {
      throw std::invalid_argument(
          "inject action must be hang|crash|signal, got '" + action + "'");
    }
    inject[cell] = value;
  }
  return inject;
}

// --------------------------------------------------------- shard protocol

std::string render_shard_result(const ShardResult& result,
                                const std::string& canonical_key) {
  std::ostringstream out;
  out << "feast-shard v1\n";
  out << "cell " << result.cell_index << "\n";
  out << "origin " << (result.from_cache ? "cached" : "computed") << "\n";
  out << "wall_ms " << format_compact(result.wall_ms, 17) << "\n";
  // The payload reuses the cache record format — stats at full precision
  // with the whole-record checksum line, so a torn shard reads as corrupt.
  write_cell_record(out,
                    canonical_key.empty() ? "cell:" + std::to_string(result.cell_index)
                                          : canonical_key,
                    result.stats);
  return out.str();
}

const char* to_string(ShardError error) noexcept {
  switch (error) {
    case ShardError::None: return "";
    case ShardError::Truncated: return "truncated";
    case ShardError::Corrupt: return "corrupt";
  }
  return "?";
}

namespace {

/// Rejects \p data with the \p why taxonomy: bumps the matching obs counter
/// and reports the classification through \p error.
std::nullopt_t reject_shard(ShardError why, ShardError* error) {
  obs::count(why == ShardError::Truncated ? obs::Counter::ShardTruncated
                                          : obs::Counter::ShardCorrupt);
  if (error != nullptr) *error = why;
  return std::nullopt;
}

/// Reads one newline-terminated header line.  False at end of data; a line
/// the stream ended inside (no '\n') sets \p complete false — the signature
/// of a truncated delivery rather than corrupt bytes.
bool shard_header_line(std::istream& in, std::string& line, bool& complete) {
  if (!std::getline(in, line)) return false;
  complete = !in.eof();
  return true;
}

}  // namespace

std::optional<ShardResult> parse_shard_result(const std::string& data,
                                              ShardError* error) {
  if (error != nullptr) *error = ShardError::None;
  std::istringstream in(data);
  std::string line;
  bool complete = false;
  // Header lines: running out of bytes — or a final line without its
  // newline — is truncation; a complete line with the wrong shape or an
  // unparseable value is corruption.
  if (!shard_header_line(in, line, complete)) {
    return reject_shard(ShardError::Truncated, error);
  }
  if (!complete) return reject_shard(ShardError::Truncated, error);
  if (line != "feast-shard v1") return reject_shard(ShardError::Corrupt, error);
  ShardResult result;
  if (!shard_header_line(in, line, complete)) {
    return reject_shard(ShardError::Truncated, error);
  }
  if (!complete) return reject_shard(ShardError::Truncated, error);
  if (line.rfind("cell ", 0) != 0) return reject_shard(ShardError::Corrupt, error);
  try {
    result.cell_index = std::stoull(line.substr(5));
  } catch (const std::exception&) {
    return reject_shard(ShardError::Corrupt, error);
  }
  if (!shard_header_line(in, line, complete)) {
    return reject_shard(ShardError::Truncated, error);
  }
  if (!complete) return reject_shard(ShardError::Truncated, error);
  if (line.rfind("origin ", 0) != 0) return reject_shard(ShardError::Corrupt, error);
  const std::string origin = line.substr(7);
  if (origin != "computed" && origin != "cached") {
    return reject_shard(ShardError::Corrupt, error);
  }
  result.from_cache = origin == "cached";
  if (!shard_header_line(in, line, complete)) {
    return reject_shard(ShardError::Truncated, error);
  }
  if (!complete) return reject_shard(ShardError::Truncated, error);
  if (line.rfind("wall_ms ", 0) != 0) return reject_shard(ShardError::Corrupt, error);
  try {
    result.wall_ms = std::stod(line.substr(8));
  } catch (const std::exception&) {
    return reject_shard(ShardError::Corrupt, error);
  }
  const std::string record((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
  RecordError record_error = RecordError::None;
  CellStats stats;
  if (!read_cell_record(record, stats, &record_error).has_value()) {
    return reject_shard(record_error == RecordError::Truncated
                            ? ShardError::Truncated
                            : ShardError::Corrupt,
                        error);
  }
  result.stats = stats;
  return result;
}

// ------------------------------------------------------------ worker side

int run_worker_cell(const CampaignSpec& spec, std::size_t cell_index,
                    const std::string& out_path, const std::string& cache_dir,
                    const std::string& inject, const std::string& faults,
                    std::ostream& err) {
  if (inject == "hang") {
    // Poison action for watchdog tests: wedge until killed.  Sleep in a
    // loop (not one long sleep) so a SIGTERM-ignoring hang stays wedged
    // through EINTR too.
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (inject == "crash") {
    err << "exec-cell: injected crash" << std::endl;
    return 1;
  }
  if (inject == "signal") {
    // SIGUSR1: default disposition terminates, is never sent by the
    // watchdog (SIGTERM/SIGKILL) and does not trip sanitizer abort hooks.
    std::raise(SIGUSR1);
  }
  if (!inject.empty()) {
    err << "exec-cell: unknown inject action '" << inject << "'" << std::endl;
    return 1;
  }

  std::vector<Strategy> strategies;
  std::vector<PlannedCell> plan;
  try {
    strategies.reserve(spec.strategies.size());
    for (const std::string& s : spec.strategies) {
      strategies.push_back(parse_strategy_spec(s));
    }
    plan = plan_cells(spec, strategies);
  } catch (const std::exception& e) {
    err << "exec-cell: bad spec: " << e.what() << std::endl;
    return 1;
  }
  if (cell_index >= plan.size()) {
    err << "exec-cell: cell " << cell_index << " out of range (campaign has "
        << plan.size() << " cells)" << std::endl;
    return 1;
  }

  const PlannedCell& cell = plan[cell_index];
  std::optional<ResultCache> cache;
  if (!cache_dir.empty()) {
    try {
      cache.emplace(cache_dir);
    } catch (const std::exception& e) {
      err << "exec-cell: cannot open cache: " << e.what() << std::endl;
      return 1;
    }
  }

  // Arm a per-cell fault plan (supervisor-forwarded --faults) inside this
  // worker: the supervisor's own plan does not cross the process boundary.
  std::optional<check::FaultPlan> fault_plan;
  if (!faults.empty()) {
    try {
      fault_plan.emplace(faults);
    } catch (const std::exception& e) {
      err << "exec-cell: bad fault spec: " << e.what() << std::endl;
      return 1;
    }
  }
  check::ScopedFaultPlan scoped_faults(fault_plan ? &*fault_plan : nullptr);

  ShardResult shard;
  shard.cell_index = cell_index;
  const auto start = Clock::now();
  try {
    const ExecutedCell executed = execute_campaign_cell(
        spec, strategies[cell.strategy_index], cell.n_procs, cache ? &*cache : nullptr);
    shard.stats = executed.stats;
    shard.from_cache = executed.from_cache;
  } catch (const std::exception& e) {
    err << "exec-cell: cell " << cell_index << " failed: " << e.what()
        << std::endl;
    return 1;
  }
  shard.wall_ms = ms_since(start);

  std::string error;
  if (!atomic_write_file(out_path, render_shard_result(shard, cell.canonical),
                         &error)) {
    err << "exec-cell: cannot write result: " << error << std::endl;
    return 1;
  }
  return 0;
}

// -------------------------------------------------------- supervisor side

namespace {

/// A pending attempt: cell + attempt number, runnable once `due` passes
/// (backoff delays land here).
struct ReadyEntry {
  std::size_t cell = 0;
  int attempt = 1;
  Clock::time_point due;
};

/// One live worker subprocess.
struct Slot {
  Subprocess proc;
  std::size_t cell = 0;
  int attempt = 1;
  Clock::time_point started;
  fs::path result_path;
  fs::path log_path;
  obs::Sink* sink = nullptr;  ///< Captured at spawn for the attempt span.
  std::uint64_t span_start_ns = 0;
};

}  // namespace

CampaignResult run_supervised_campaign(const CampaignSpec& spec,
                                       const CampaignOptions& options,
                                       const SupervisorOptions& sup) {
  if (spec.strategies.empty()) throw std::invalid_argument("campaign: no strategies");
  if (spec.sizes.empty()) throw std::invalid_argument("campaign: no sizes");
  if (spec.batch.samples < 1) throw std::invalid_argument("campaign: samples < 1");
  for (const int n : spec.sizes) {
    if (n < 1) throw std::invalid_argument("campaign: sizes must be positive");
  }
  if (sup.workers < 1) throw std::invalid_argument("supervise: workers < 1");
  if (sup.max_attempts < 1) throw std::invalid_argument("supervise: max attempts < 1");
  for (const auto& [cell, value] : sup.inject) {
    if (!known_inject_action(value.substr(0, value.find('@')))) {
      throw std::invalid_argument("supervise: bad inject action '" + value + "'");
    }
  }
  for (const auto& [cell, value] : sup.fault_cells) {
    check::FaultPlan probe(value);  // Fail fast on malformed fault specs.
  }

  // The supervisor's own fault sites (spawn/heartbeat/manifest-write) fire
  // in this process; workers are separate processes and see no plan.
  check::ScopedFaultPlan scoped_faults(spec.context.faults);

  std::vector<Strategy> strategies;
  strategies.reserve(spec.strategies.size());
  for (const std::string& s : spec.strategies) {
    strategies.push_back(parse_strategy_spec(s));
  }

  const std::string spec_text = spec.canonical_text();

  CampaignResult result;
  result.name = spec.name;
  result.spec_hash_hex = hash_hex(fnv1a64(spec_text));
  result.samples = spec.batch.samples;

  const std::vector<PlannedCell> plan = plan_cells(spec, strategies);
  result.cells = plan_outcomes(spec, strategies, plan);

  if (options.resume) {
    restore_finished_cells(options.manifest_path, result.spec_hash_hex,
                           result.cells);
  }

  BackoffPolicy backoff = sup.backoff;
  if (backoff.seed == 0) backoff.seed = spec.batch.seed;

  // Scratch directory for shard results, worker logs and (when the caller
  // did not hand us a spec file) the canonical spec workers re-parse.
  const fs::path work_dir =
      !sup.work_dir.empty() ? fs::path(sup.work_dir)
      : !options.manifest_path.empty()
          ? fs::path(options.manifest_path + ".work")
          : fs::path(spec.name + ".feast-work");
  fs::create_directories(work_dir);
  std::string spec_path = sup.spec_path;
  if (spec_path.empty()) {
    spec_path = (work_dir / "spec.feast").string();
    std::string error;
    if (!atomic_write_file(spec_path, spec_text, &error)) {
      throw std::runtime_error("supervise: cannot write worker spec: " + error);
    }
  }
  const std::string feastc =
      sup.feastc_path.empty() ? self_exe_path() : sup.feastc_path;

  const auto start = Clock::now();
  refresh_campaign_totals(result, 0.0);
  checkpoint_manifest_file(options.manifest_path, spec, result);

  std::deque<ReadyEntry> ready;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    if (result.cells[i].state == CellState::Pending) {
      ready.push_back({i, 1, start});
    }
  }
  const std::size_t total = result.cells.size();
  std::size_t finished = total - ready.size();  // Restored cells count as done.

  std::vector<Slot> running;
  running.reserve(static_cast<std::size_t>(sup.workers));

  DrainGuard drain_guard;
  bool draining = false;
  Clock::time_point drain_deadline{};

  const auto progress_prefix = [&](std::ostream& out) -> std::ostream& {
    return out << "[" << finished << "/" << total << "] ";
  };

  const auto checkpoint = [&] {
    refresh_campaign_totals(result, ms_since(start));
    checkpoint_manifest_file(options.manifest_path, spec, result);
  };

  // Records a cell's terminal success from a parsed shard result.
  const auto complete_cell = [&](const Slot& slot, const ShardResult& shard) {
    CellOutcome& cell = result.cells[slot.cell];
    cell.state = shard.from_cache ? CellState::Cached : CellState::Computed;
    cell.stats = shard.stats;
    cell.wall_ms = shard.wall_ms;
    cell.attempts = slot.attempt;
    cell.error.clear();
    cell.error_kind.clear();
    ++finished;
    checkpoint();
    if (options.progress != nullptr) {
      progress_prefix(*options.progress)
          << cell.strategy_label << " procs=" << cell.n_procs << " "
          << to_string(cell.state) << " (" << format_compact(cell.wall_ms, 1)
          << " ms, attempt " << slot.attempt << ")" << std::endl;
    }
  };

  // Charges a failed attempt: requeues it under backoff, or quarantines the
  // cell once the retry budget is spent.
  const auto fail_attempt = [&](std::size_t cell_index, int attempt,
                                ErrorKind kind, std::string message) {
    CellOutcome& cell = result.cells[cell_index];
    cell.attempts = attempt;
    if (attempt >= sup.max_attempts) {
      cell.state = CellState::Quarantined;
      cell.error_kind = to_string(kind);
      cell.error = std::move(message);
      obs::count(obs::Counter::SuperviseQuarantine);
      ++finished;
      checkpoint();
      if (options.progress != nullptr) {
        progress_prefix(*options.progress)
            << cell.strategy_label << " procs=" << cell.n_procs
            << " quarantined after " << attempt << " attempts ["
            << cell.error_kind << "] — " << cell.error << std::endl;
      }
      return;
    }
    const double delay = backoff_delay_ms(backoff, cell_index, attempt);
    ready.push_back({cell_index, attempt + 1,
                     Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::milli>(
                                            delay))});
    obs::count(obs::Counter::SuperviseRetry);
    if (options.progress != nullptr) {
      progress_prefix(*options.progress)
          << cell.strategy_label << " procs=" << cell.n_procs << " attempt "
          << attempt << "/" << sup.max_attempts << " failed [" << to_string(kind)
          << "], retry in " << format_compact(delay, 0) << " ms — " << message
          << std::endl;
    }
  };

  // Classifies and records one finished (or watchdog-killed) attempt.
  const auto harvest = [&](Slot& slot, const ExitStatus& status) {
    if (slot.sink != nullptr) {
      obs::detail::record_span(*slot.sink, obs::Span::SuperviseAttempt,
                               slot.span_start_ns);
    }
    if (const auto fault = check::fire(check::FaultSite::SuperviseHeartbeat)) {
      if (*fault == check::FaultAction::Die) std::_Exit(check::kFaultExitCode);
      // Any other action: the heartbeat "lost" this worker — discard its
      // result exactly as if the watchdog had killed it.
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Timeout,
                   "injected heartbeat fault: attempt discarded");
      return;
    }
    const std::string tail = log_tail(slot.log_path);
    const std::string suffix = tail.empty() ? "" : " — " + tail;
    if (status.timed_out) {
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Timeout,
                   "watchdog: exceeded " + format_compact(sup.cell_timeout_s, 3) +
                       " s deadline (" + status.describe() + ")" + suffix);
      return;
    }
    if (status.kind == ExitStatus::Kind::Lost) {
      // waitpid could not observe the worker (reaped elsewhere): an
      // infrastructure failure, same bucket as a failed spawn.
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Io,
                   "worker " + status.describe() + suffix);
      return;
    }
    if (status.kind == ExitStatus::Kind::Signaled) {
      // Under an address-space cap the kernel's reply to an unservable
      // allocation is SIGKILL; classify that as oom, anything else as the
      // signal it was.
      const ErrorKind kind =
          (sup.memory_limit_mb > 0 && status.term_signal == SIGKILL)
              ? ErrorKind::Oom
              : ErrorKind::Signal;
      fail_attempt(slot.cell, slot.attempt, kind,
                   "worker " + status.describe() + suffix);
      return;
    }
    if (!status.exited(0)) {
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Crash,
                   "worker " + status.describe() + suffix);
      return;
    }
    std::ifstream in(slot.result_path, std::ios::binary);
    if (!in) {
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Io,
                   "worker exited 0 but left no result file" + suffix);
      return;
    }
    const std::string data((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    const std::optional<ShardResult> shard = parse_shard_result(data);
    if (!shard.has_value() || shard->cell_index != slot.cell) {
      fail_attempt(slot.cell, slot.attempt, ErrorKind::Io,
                   "worker result unreadable: " + slot.result_path.string());
      return;
    }
    complete_cell(slot, *shard);
    if (!sup.keep_work_dir) {
      std::error_code ec;
      fs::remove(slot.result_path, ec);
      fs::remove(slot.log_path, ec);
    }
  };

  const auto spawn_attempt = [&](std::size_t cell_index, int attempt) {
    obs::count(obs::Counter::SuperviseSpawn);
    if (const auto fault = check::fire(check::FaultSite::SuperviseSpawn)) {
      if (*fault == check::FaultAction::Die) std::_Exit(check::kFaultExitCode);
      fail_attempt(cell_index, attempt, ErrorKind::Io,
                   "injected spawn failure");
      return;
    }
    Slot slot;
    slot.cell = cell_index;
    slot.attempt = attempt;
    const std::string stem = "cell-" + std::to_string(cell_index) + ".attempt-" +
                             std::to_string(attempt);
    slot.result_path = work_dir / (stem + ".result");
    slot.log_path = work_dir / (stem + ".log");
    std::error_code ec;
    fs::remove(slot.result_path, ec);  // Never harvest a stale shard.

    std::vector<std::string> argv = {feastc,
                                     "campaign",
                                     "exec-cell",
                                     spec_path,
                                     "--cell",
                                     std::to_string(cell_index),
                                     "--out",
                                     slot.result_path.string(),
                                     "--threads",
                                     std::to_string(sup.worker_threads)};
    if (sup.no_cache) {
      argv.emplace_back("--no-cache");
    } else if (!sup.cache_dir.empty()) {
      argv.emplace_back("--cache-dir");
      argv.push_back(sup.cache_dir);
    }
    if (const auto it = sup.inject.find(cell_index); it != sup.inject.end()) {
      const std::string action = inject_for_attempt(it->second, attempt);
      if (!action.empty()) {
        argv.emplace_back("--inject");
        argv.push_back(action);
      }
    }
    if (const auto it = sup.fault_cells.find(cell_index); it != sup.fault_cells.end()) {
      argv.emplace_back("--faults");
      argv.push_back(it->second);
    }

    SubprocessOptions opts;
    opts.stdout_path = slot.log_path.string();
    opts.stderr_path = "+stdout";
    opts.memory_limit_bytes = sup.memory_limit_mb << 20;
    // Own process group: a terminal Ctrl-C must reach only the supervisor
    // (which drains), never the workers — otherwise every in-flight attempt
    // harvests as a signal death and gets charged, breaking the "drain
    // kills are uncharged" guarantee.
    opts.new_process_group = true;
    try {
      slot.proc = Subprocess::spawn(argv, opts);
    } catch (const std::exception& e) {
      fail_attempt(cell_index, attempt, ErrorKind::Io,
                   std::string("spawn failed: ") + e.what());
      return;
    }
    slot.started = Clock::now();
    if ((slot.sink = obs::active()) != nullptr) {
      slot.span_start_ns = obs::detail::now_ns(*slot.sink);
    }
    running.push_back(std::move(slot));
  };

  // ------------------------------------------------------- the event loop
  while (true) {
    const auto now = Clock::now();

    if (!draining && drain_guard.signal() != 0) {
      draining = true;
      drain_deadline = now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(sup.drain_grace_s));
      // Undispatched cells stay Pending in the checkpoint; in-flight
      // workers get the grace window to finish and be harvested.
      ready.clear();
      if (options.progress != nullptr) {
        *options.progress << "drain: signal " << drain_guard.signal()
                          << " received; waiting up to "
                          << format_compact(sup.drain_grace_s, 1) << " s for "
                          << running.size() << " running worker(s)" << std::endl;
      }
    }

    if (!draining) {
      // Pull the due entries out first: a failed spawn re-queues onto
      // `ready` via fail_attempt, and deque::push_back invalidates every
      // iterator, so spawning while still walking `ready` is UB.
      std::vector<ReadyEntry> due;
      for (auto it = ready.begin();
           it != ready.end() &&
           running.size() + due.size() < static_cast<std::size_t>(sup.workers);) {
        if (it->due <= now) {
          due.push_back(*it);
          it = ready.erase(it);
        } else {
          ++it;
        }
      }
      for (const ReadyEntry& entry : due) spawn_attempt(entry.cell, entry.attempt);
    }

    for (auto it = running.begin(); it != running.end();) {
      Slot& slot = *it;
      if (slot.proc.poll()) {
        const ExitStatus status = slot.proc.status();
        harvest(slot, status);
        it = running.erase(it);
        continue;
      }
      const double age_s =
          std::chrono::duration<double>(Clock::now() - slot.started).count();
      if (sup.cell_timeout_s > 0.0 && age_s > sup.cell_timeout_s) {
        obs::count(obs::Counter::SuperviseKill);
        const ExitStatus status = slot.proc.kill_and_reap(sup.term_grace_s);
        harvest(slot, status);
        it = running.erase(it);
        continue;
      }
      if (draining && Clock::now() >= drain_deadline) {
        // Past the drain grace: kill the straggler and leave its cell
        // Pending — resume retries it, the attempt is not charged.
        obs::count(obs::Counter::SuperviseKill);
        slot.proc.kill_and_reap(1.0);
        std::error_code ec;
        fs::remove(slot.result_path, ec);
        it = running.erase(it);
        continue;
      }
      ++it;
    }

    if (running.empty() && (draining || ready.empty())) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  result.interrupted =
      draining && std::any_of(result.cells.begin(), result.cells.end(),
                              [](const CellOutcome& c) {
                                return c.state == CellState::Pending;
                              });

  refresh_campaign_totals(result, ms_since(start));
  checkpoint_manifest_file(options.manifest_path, spec, result);

  if (!sup.keep_work_dir && sup.work_dir.empty() && result.failed == 0 &&
      result.quarantined == 0 && !result.interrupted) {
    // Fully healthy run on a work dir we invented: nothing in it is worth
    // keeping.  Degraded/interrupted runs keep their logs — the manifest
    // error fields reference them.
    std::error_code ec;
    fs::remove_all(work_dir, ec);
  }
  return result;
}

}  // namespace feast::supervise
