#include "experiment/figures.hpp"

#include <string>

namespace feast {

std::vector<int> paper_sizes() { return {2, 4, 6, 8, 10, 12, 14, 16}; }

std::vector<ExecSpreadScenario> paper_scenarios() {
  return {ExecSpreadScenario::LDET, ExecSpreadScenario::MDET, ExecSpreadScenario::HDET};
}

RandomGraphConfig paper_workload(ExecSpreadScenario scenario) {
  RandomGraphConfig config;  // §5.2 defaults are the struct defaults.
  config.set_scenario(scenario);
  return config;
}

namespace {

std::vector<SweepResult> per_scenario_sweep(const std::string& figure_name,
                                            const std::vector<Strategy>& strategies,
                                            const FigureOptions& options) {
  BatchConfig batch;
  batch.samples = options.samples;
  batch.seed = options.seed;

  std::vector<SweepResult> results;
  for (const ExecSpreadScenario scenario : paper_scenarios()) {
    const std::string title = figure_name + " — " + to_string(scenario) + " scenario";
    results.push_back(sweep_strategies(title, paper_workload(scenario), strategies,
                                       options.sizes, batch, options.context));
  }
  return results;
}

}  // namespace

std::vector<SweepResult> figure2_bst(const FigureOptions& options) {
  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_pure(EstimatorKind::CCAA),
      strategy_norm(EstimatorKind::CCNE),
      strategy_norm(EstimatorKind::CCAA),
  };
  return per_scenario_sweep("Figure 2: BST metrics (PURE, NORM) x (CCNE, CCAA)",
                            strategies, options);
}

std::vector<SweepResult> figure3_thres_surplus(const FigureOptions& options) {
  const std::vector<Strategy> strategies{
      strategy_thres(1.0),
      strategy_thres(2.0),
      strategy_thres(4.0),
  };
  return per_scenario_sweep("Figure 3: THRES surplus factor sweep", strategies, options);
}

std::vector<SweepResult> figure4_thres_threshold(const FigureOptions& options) {
  const std::vector<Strategy> strategies{
      strategy_thres(1.0, 0.75),
      strategy_thres(1.0, 1.00),
      strategy_thres(1.0, 1.25),
  };
  return per_scenario_sweep("Figure 4: THRES execution-time threshold sweep",
                            strategies, options);
}

std::vector<SweepResult> figure5_ast(const FigureOptions& options) {
  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_thres(1.0, 1.25),
      strategy_adapt(1.25),
  };
  return per_scenario_sweep("Figure 5: PURE vs THRES vs ADAPT", strategies, options);
}

}  // namespace feast
