/// \file cli.hpp
/// \brief Shared command-line handling for the bench binaries.
///
/// Every bench accepts:
///   --samples N   graphs per data point (default 128, the paper's batch)
///   --seed S      root seed (default 0xFEA57)
///   --quick       shorthand for --samples 16 (CI-friendly)
///   --sizes list  comma-separated system sizes (default 2,4,...,16)
///   --csv FILE    additionally dump all series as CSV
///   --threads N   worker threads (default: hardware concurrency)
///   --cache-dir D content-addressed result cache directory (off by default)
///   --no-cache    ignore a --cache-dir (explicit override)
///   --verbose     raise the log level
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "experiment/figures.hpp"

namespace feast {

/// Parsed bench options.
struct BenchArgs {
  FigureOptions figure;
  std::optional<std::string> csv_path;
  bool quick = false;
  /// Result-cache directory; empty unless --cache-dir was given (and not
  /// overridden by --no-cache).  The bench main decides whether to install
  /// it: the experiment layer has no dependency on the campaign cache.
  std::optional<std::string> cache_dir;

  /// Applies the figure options and writes the CSV file when requested.
  /// Call after computing the results.
  void write_csv(const std::vector<SweepResult>& results) const;
};

/// Parses argv; prints usage and exits(2) on malformed input, exits(0) on
/// --help.  \p bench_name appears in the usage text.
BenchArgs parse_bench_args(int argc, char** argv, const std::string& bench_name);

/// Prints every sweep with a blank line between them.
void print_results(const std::vector<SweepResult>& results);

}  // namespace feast
