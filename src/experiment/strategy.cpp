#include "experiment/strategy.hpp"

#include "core/baselines.hpp"
#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "util/strings.hpp"

namespace feast {

namespace {

std::unique_ptr<CommCostEstimator> make_estimator(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::CCNE: return make_ccne();
    case EstimatorKind::CCAA: return make_ccaa();
  }
  return make_ccne();
}

/// Distributor owning its estimator, wrapping one of the baselines.
template <typename BaselineT>
class OwningBaseline final : public Distributor {
 public:
  explicit OwningBaseline(std::unique_ptr<CommCostEstimator> estimator)
      : estimator_(std::move(estimator)), impl_(*estimator_) {}

  std::string name() const override { return impl_.name(); }
  DeadlineAssignment distribute(const TaskGraph& graph) override {
    return impl_.distribute(graph);
  }

 private:
  std::unique_ptr<CommCostEstimator> estimator_;
  BaselineT impl_;
};

}  // namespace

const char* to_string(EstimatorKind kind) noexcept {
  switch (kind) {
    case EstimatorKind::CCNE: return "CCNE";
    case EstimatorKind::CCAA: return "CCAA";
  }
  return "?";
}

Strategy strategy_pure(EstimatorKind estimator) {
  return Strategy{std::string("PURE+") + to_string(estimator),
                  [estimator](int) {
                    return make_slicing_distributor(make_pure(),
                                                    make_estimator(estimator));
                  }};
}

Strategy strategy_norm(EstimatorKind estimator) {
  return Strategy{std::string("NORM+") + to_string(estimator),
                  [estimator](int) {
                    return make_slicing_distributor(make_norm(),
                                                    make_estimator(estimator));
                  }};
}

Strategy strategy_thres(double surplus, double threshold_factor) {
  return Strategy{"THRES(d=" + format_compact(surplus, 3) +
                      ",th=" + format_compact(threshold_factor, 3) + ")",
                  [surplus, threshold_factor](int) {
                    return make_slicing_distributor(
                        make_thres(surplus, threshold_factor), make_ccne());
                  }};
}

Strategy strategy_adapt(double threshold_factor) {
  return Strategy{"ADAPT(th=" + format_compact(threshold_factor, 3) + ")",
                  [threshold_factor](int n_procs) {
                    return make_slicing_distributor(
                        make_adapt(n_procs, threshold_factor), make_ccne());
                  }};
}

Strategy strategy_ultimate_deadline() {
  return Strategy{"UD", [](int) {
                    return std::make_unique<OwningBaseline<UltimateDeadlineDistributor>>(
                        make_ccne());
                  }};
}

Strategy strategy_effective_deadline() {
  return Strategy{"ED", [](int) {
                    return std::make_unique<OwningBaseline<EffectiveDeadlineDistributor>>(
                        make_ccne());
                  }};
}

Strategy strategy_proportional() {
  return Strategy{"PROP", [](int) {
                    return std::make_unique<OwningBaseline<ProportionalDistributor>>(
                        make_ccne());
                  }};
}

}  // namespace feast
