/// \file runner.hpp
/// \brief One end-to-end simulation run: distribute → schedule → measure.
///
/// The unit of every experiment: a task graph is annotated by a
/// distribution strategy, scheduled on a machine by the deadline-driven
/// list scheduler, optionally validated, and its lateness statistics
/// extracted.
#pragma once

#include "check/fault.hpp"
#include "core/distributor.hpp"
#include "obs/obs.hpp"
#include "sched/kernels/kernels.hpp"
#include "sched/lateness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Measurements of one run.
struct RunResult {
  LatenessStats lateness;       ///< Against the distributed deadlines.
  Time end_to_end = 0.0;        ///< Against the boundary deadlines.
  Time makespan = 0.0;
  double utilization = 0.0;
  Time min_laxity = 0.0;        ///< Pre-scheduling, over computation nodes.
};

/// Everything a run needs beyond the graph and the strategy, carried as
/// one value through every layer of the pipeline (run_once → cells →
/// sweeps → figures → campaigns) so a new knob never means a new
/// parameter on four signatures.
struct RunContext {
  /// The machine of a bare run_once call.  The cell/sweep layer derives
  /// the machine from its own (n_procs, batch) axes instead — see
  /// execute_cell — so there this field is ignored.
  Machine machine;
  SchedulerOptions scheduler;
  /// Which scheduler core evaluates the run.  Trace-identical by contract;
  /// Reference exists so experiments can be replayed on the paper-faithful
  /// oracle (e.g. to cross-check a published figure end to end).
  SchedulerCore core = SchedulerCore::Fast;
  /// Which kernel backend executes the run's hot loops.  Auto (default)
  /// keeps the process-wide resolution (FEAST_SCHED_BACKEND env, then
  /// cpuid); anything else is installed as a scoped thread-local override
  /// for the run's extent.  Every backend is bit-exact by contract, so
  /// this changes speed, never results — the differential tests sweep it
  /// to prove exactly that.
  kernels::Backend backend = kernels::Backend::Auto;
  bool validate = true;  ///< Validate assignment + schedule (cheap; on by default).
  /// Observability sink for this run's spans/counters (borrowed).  When
  /// nullptr, the process-wide obs::active() sink applies — so installing
  /// a ScopedSink around a whole sweep needs no per-context plumbing.
  obs::Sink* sink = nullptr;
  /// Deterministic fault plan (borrowed), armed by the drivers that own a
  /// scope — run_campaign installs it process-wide for the campaign's
  /// duration.  nullptr (production default) leaves every injection site
  /// a no-op.  See check/fault.hpp.
  check::FaultPlan* faults = nullptr;
};

/// Executes one run.  Throws ContractViolation when validation fails.
RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const RunContext& context);

/// Pre-RunContext options struct, kept one release for out-of-tree callers.
struct RunOptions {
  SchedulerOptions scheduler;
  SchedulerCore core = SchedulerCore::Fast;
  bool validate = true;
};

/// Forwarding shim for the old (machine, options) signature.
[[deprecated("use run_once(graph, distributor, RunContext) instead")]]
RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const Machine& machine, const RunOptions& options = {});

}  // namespace feast
