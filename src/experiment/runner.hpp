/// \file runner.hpp
/// \brief One end-to-end simulation run: distribute → schedule → measure.
///
/// The unit of every experiment: a task graph is annotated by a
/// distribution strategy, scheduled on a machine by the deadline-driven
/// list scheduler, optionally validated, and its lateness statistics
/// extracted.
#pragma once

#include "core/distributor.hpp"
#include "sched/lateness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Measurements of one run.
struct RunResult {
  LatenessStats lateness;       ///< Against the distributed deadlines.
  Time end_to_end = 0.0;        ///< Against the boundary deadlines.
  Time makespan = 0.0;
  double utilization = 0.0;
  Time min_laxity = 0.0;        ///< Pre-scheduling, over computation nodes.
};

/// Run options beyond the machine itself.
struct RunOptions {
  SchedulerOptions scheduler;
  /// Which scheduler core evaluates the run.  Trace-identical by contract;
  /// Reference exists so experiments can be replayed on the paper-faithful
  /// oracle (e.g. to cross-check a published figure end to end).
  SchedulerCore core = SchedulerCore::Fast;
  bool validate = true;  ///< Validate assignment + schedule (cheap; on by default).
};

/// Executes one run.  Throws ContractViolation when validation fails.
RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const Machine& machine, const RunOptions& options = {});

}  // namespace feast
