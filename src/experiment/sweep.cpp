#include "experiment/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <optional>
#include <vector>

#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace feast {

namespace {

std::atomic<CellCache*> g_cell_cache{nullptr};

/// Full-precision double rendering: cache identities must survive any
/// formatting round-trip, so %.17g (shortest exact for IEEE doubles is at
/// most 17 significant digits).
std::string full(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

CellCache* set_cell_cache(CellCache* cache) noexcept {
  return g_cell_cache.exchange(cache, std::memory_order_acq_rel);
}

CellCache* cell_cache() noexcept {
  return g_cell_cache.load(std::memory_order_acquire);
}

std::string describe_cell(const RandomGraphConfig& workload,
                          const std::string& strategy_label, int n_procs,
                          const BatchConfig& batch, const RunContext& context) {
  if (strategy_label.empty()) return {};
  if (batch.shape_machine && batch.machine_tag.empty()) return {};

  std::string key;
  key.reserve(512);
  // v2: the scheduler policies, validation flag and scheduler core moved
  // from BatchConfig into RunContext and the core joined the key — records
  // no longer collide across policy/core variants.
  key += "feast-cell-v2";
  key += "|workload{subtasks=" + std::to_string(workload.min_subtasks) + ":" +
         std::to_string(workload.max_subtasks);
  key += ",depth=" + std::to_string(workload.min_depth) + ":" +
         std::to_string(workload.max_depth);
  key += ",degree=" + std::to_string(workload.min_degree) + ":" +
         std::to_string(workload.max_degree);
  key += ",alpha=" + full(workload.level_width_alpha);
  key += ",strict_fanin=" + std::to_string(workload.strict_fanin_cap ? 1 : 0);
  key += ",met=" + full(workload.mean_exec_time);
  key += ",spread=" + full(workload.exec_spread);
  key += ",olr=" + full(workload.olr);
  key += std::string(",olr_basis=") +
         (workload.olr_basis == OlrBasis::CriticalPath ? "critical-path"
                                                       : "total-workload");
  key += ",ccr=" + full(workload.ccr);
  key += ",msg_spread=" + full(workload.message_spread);
  key += "}|strategy=" + strategy_label;
  key += "|procs=" + std::to_string(n_procs);
  key += "|batch{samples=" + std::to_string(batch.samples);
  key += ",seed=" + std::to_string(batch.seed);
  key += ",pinned=" + full(batch.pinned_fraction);
  key += ",tpi=" + full(batch.time_per_item);
  key += std::string(",contention=") + to_string(batch.contention);
  key += "}|run{release=" + std::string(to_string(context.scheduler.release_policy));
  key += std::string(",selection=") + to_string(context.scheduler.selection);
  key += std::string(",processor=") + to_string(context.scheduler.processor_policy);
  key += std::string(",core=") + to_string(context.core);
  key += ",validate=" + std::to_string(context.validate ? 1 : 0);
  key += "}|machine=" + batch.machine_tag;
  return key;
}

ExecutedCell execute_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                          int n_procs, const BatchConfig& batch,
                          const RunContext& context, CellCache* cache) {
  obs::Sink* const sink = context.sink != nullptr ? context.sink : obs::active();

  ExecutedCell result;
  if (cache != nullptr) {
    result.canonical_key = describe_cell(workload, strategy.label, n_procs, batch,
                                         context);
    if (!result.canonical_key.empty()) {
      CellStats cached;
      const bool hit = [&] {
        obs::SpanScope span(sink, obs::Span::CacheLookup);
        return cache->lookup(result.canonical_key, cached);
      }();
      if (hit) {
        obs::count_on(sink, obs::Counter::CacheHit);
        result.stats = cached;
        result.from_cache = true;
        return result;
      }
      obs::count_on(sink, obs::Counter::CacheMiss);
    }
  }

  const GraphFactory factory = [&workload](std::size_t sample, std::uint64_t seed) {
    Pcg32 rng(seed, /*stream=*/sample);
    return generate_random_graph(workload, rng);
  };
  result.stats = run_custom_cell(factory, strategy, n_procs, batch, context);

  if (cache != nullptr && !result.canonical_key.empty()) {
    obs::SpanScope span(sink, obs::Span::CacheStore);
    cache->store(result.canonical_key, result.stats);
    obs::count_on(sink, obs::Counter::CacheStore);
  }
  return result;
}

CellStats run_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                   int n_procs, const BatchConfig& batch, const RunContext& context) {
  return execute_cell(workload, strategy, n_procs, batch, context, cell_cache()).stats;
}

CellStats run_custom_cell(const GraphFactory& factory, const Strategy& strategy,
                          int n_procs, const BatchConfig& batch,
                          const RunContext& context) {
  FEAST_REQUIRE(batch.samples >= 1);
  FEAST_REQUIRE(n_procs >= 1);

  obs::Sink* const sink = context.sink != nullptr ? context.sink : obs::active();
  // Install an explicitly passed sink once, here on the cell driver thread,
  // so the per-sample run_once calls below (and the scheduler internals
  // they reach) find it via active() instead of each worker touching the
  // process-wide slot concurrently.
  std::optional<obs::ScopedSink> scoped;
  if (sink != nullptr && sink != obs::active()) scoped.emplace(*sink);
  obs::SpanScope cell_span(sink, obs::Span::CellRun);

  const auto n = static_cast<std::size_t>(batch.samples);
  std::vector<RunResult> results(n);

  // The machine is a cell-level constant: derived from the (n_procs, batch)
  // axes, never from context.machine (which describes bare run_once calls).
  Machine machine;
  machine.n_procs = n_procs;
  machine.time_per_item = batch.time_per_item;
  machine.contention = batch.contention;
  if (batch.shape_machine) batch.shape_machine(machine);

  RunContext run_context = context;
  run_context.machine = machine;

  parallel_for(n, [&](std::size_t sample) {
    // Graph seed depends only on (batch seed, sample): the same graphs are
    // replayed for every strategy and size of the surrounding sweep.
    TaskGraph graph = [&] {
      obs::SpanScope span(sink, obs::Span::Generate);
      return factory(sample, seed_for(batch.seed, {0, sample}));
    }();
    if (batch.pinned_fraction > 0.0) {
      // Pinning depends on the system size (a pin names a processor).
      Pcg32 pin_rng(seed_for(batch.seed, {1, sample, static_cast<std::uint64_t>(n_procs)}),
                    /*stream=*/sample);
      pin_random_fraction(graph, batch.pinned_fraction, n_procs, pin_rng);
    }

    const auto distributor = strategy.make(n_procs);
    results[sample] = run_once(graph, *distributor, run_context);
  });

  RunningStats max_lateness;
  RunningStats end_to_end;
  RunningStats makespan;
  RunningStats min_laxity;
  std::size_t infeasible = 0;
  for (const RunResult& r : results) {
    max_lateness.add(r.lateness.max_lateness);
    end_to_end.add(r.end_to_end);
    makespan.add(r.makespan);
    min_laxity.add(r.min_laxity);
    if (!r.lateness.feasible()) ++infeasible;
  }

  CellStats stats;
  stats.max_lateness = max_lateness.summary();
  stats.end_to_end = end_to_end.summary();
  stats.makespan = makespan.summary();
  stats.min_laxity = min_laxity.summary();
  stats.infeasible_runs = infeasible;
  return stats;
}

SweepResult sweep_strategies(const std::string& title,
                             const RandomGraphConfig& workload,
                             const std::vector<Strategy>& strategies,
                             const std::vector<int>& sizes, const BatchConfig& batch,
                             const RunContext& context) {
  FEAST_REQUIRE(!strategies.empty());
  FEAST_REQUIRE(!sizes.empty());

  // Cell by cell through run_cell (not sweep_custom) so an installed
  // CellCache serves repeated cells across runs.
  SweepResult result;
  result.title = title;
  result.sizes = sizes;
  result.series.reserve(strategies.size());
  for (const Strategy& strategy : strategies) {
    Series series;
    series.label = strategy.label;
    series.cells.reserve(sizes.size());
    for (const int n_procs : sizes) {
      series.cells.push_back(run_cell(workload, strategy, n_procs, batch, context));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

SweepResult sweep_custom(const std::string& title, const GraphFactory& factory,
                         const std::vector<Strategy>& strategies,
                         const std::vector<int>& sizes, const BatchConfig& batch,
                         const RunContext& context) {
  FEAST_REQUIRE(!strategies.empty());
  FEAST_REQUIRE(!sizes.empty());

  SweepResult result;
  result.title = title;
  result.sizes = sizes;
  result.series.reserve(strategies.size());
  for (const Strategy& strategy : strategies) {
    Series series;
    series.label = strategy.label;
    series.cells.reserve(sizes.size());
    for (const int n_procs : sizes) {
      series.cells.push_back(run_custom_cell(factory, strategy, n_procs, batch, context));
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

void SweepResult::print(std::ostream& out) const {
  out << title << "\n";
  out << "mean maximum task lateness (more negative = better)\n";
  TextTable table;
  std::vector<std::string> header{"strategy \\ procs"};
  for (const int n : sizes) header.push_back(std::to_string(n));
  table.set_header(std::move(header));
  for (const Series& s : series) {
    std::vector<double> values;
    values.reserve(s.cells.size());
    for (const CellStats& c : s.cells) values.push_back(c.max_lateness.mean);
    table.add_row(s.label, values, 1);
  }
  table.render(out);
}

void SweepResult::write_csv(std::ostream& out) const {
  CsvWriter csv(out);
  csv.write_row({"title", "strategy", "procs", "mean_max_lateness", "stddev", "ci95",
                 "mean_end_to_end", "mean_makespan", "infeasible_runs"});
  for (const Series& s : series) {
    for (std::size_t i = 0; i < s.cells.size(); ++i) {
      const CellStats& c = s.cells[i];
      csv.write_row({title, s.label, std::to_string(sizes[i]),
                     format_compact(c.max_lateness.mean, 6),
                     format_compact(c.max_lateness.stddev, 6),
                     format_compact(c.max_lateness.ci95_half_width, 6),
                     format_compact(c.end_to_end.mean, 6),
                     format_compact(c.makespan.mean, 6),
                     std::to_string(c.infeasible_runs)});
    }
  }
}

}  // namespace feast
