/// \file strategy.hpp
/// \brief Named distribution strategies for experiment sweeps.
///
/// A Strategy is a label plus a factory that builds a Distributor for a
/// given system size.  The factory takes the size because the ADAPT metric
/// is parameterized on N_proc — the whole point of the adaptive surplus —
/// while every other strategy ignores it.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/distributor.hpp"

namespace feast {

/// Builds a fresh Distributor for a system of \p n_procs processors.
using DistributorFactory = std::function<std::unique_ptr<Distributor>(int n_procs)>;

/// A labelled strategy, the unit of comparison in all figures.
struct Strategy {
  std::string label;
  DistributorFactory make;
};

/// Which communication-cost estimator a strategy distributes under.
enum class EstimatorKind { CCNE, CCAA };

/// Estimator name ("CCNE"/"CCAA").
const char* to_string(EstimatorKind kind) noexcept;

/// BST with the pure laxity ratio.
Strategy strategy_pure(EstimatorKind estimator);

/// BST with the normalized laxity ratio.
Strategy strategy_norm(EstimatorKind estimator);

/// AST/THRES with surplus Δ and threshold factor (relative to MET).
/// The paper's AST always distributes under CCNE.
Strategy strategy_thres(double surplus, double threshold_factor = 1.25);

/// AST/ADAPT with threshold factor (relative to MET); surplus is ξ/N_proc.
Strategy strategy_adapt(double threshold_factor = 1.25);

/// Baselines (distribute under CCNE, like AST).
Strategy strategy_ultimate_deadline();
Strategy strategy_effective_deadline();
Strategy strategy_proportional();

}  // namespace feast
