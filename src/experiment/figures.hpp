/// \file figures.hpp
/// \brief Ready-made configurations for every figure of the paper.
///
/// Each figure function returns one SweepResult per execution-time-spread
/// scenario (LDET, MDET, HDET — the left/middle/right plots of each paper
/// figure), sweeping system size 2–16 with the figure's strategy set:
///
///  - Figure 2: BST — PURE and NORM, each under CCNE and CCAA.
///  - Figure 3: THRES with surplus Δ ∈ {1, 2, 4}.
///  - Figure 4: THRES with threshold ∈ {0.75, 1.0, 1.25} × MET.
///  - Figure 5: PURE vs THRES(Δ=1) vs ADAPT, threshold 1.25 × MET.
///
/// The §8 sweeps (parallelism, MET, CCR, structured graphs, bus contention,
/// locality strictness) live in their bench binaries, composed from the
/// same sweep_strategies() primitive.
#pragma once

#include <vector>

#include "experiment/sweep.hpp"
#include "taskgraph/generator.hpp"

namespace feast {

/// System sizes plotted in the paper: 2–16 processors.
std::vector<int> paper_sizes();

/// The three execution-time-spread scenarios, paper order.
std::vector<ExecSpreadScenario> paper_scenarios();

/// The paper's §5.2 workload with the given scenario.
RandomGraphConfig paper_workload(ExecSpreadScenario scenario);

/// Knobs shared by the figure reproductions.
struct FigureOptions {
  int samples = 128;              ///< 128 in the paper; lower for --quick.
  std::uint64_t seed = 0xFEA57u;
  std::vector<int> sizes = paper_sizes();
  RunContext context;             ///< Scheduler core/policies + obs sink.
};

std::vector<SweepResult> figure2_bst(const FigureOptions& options = {});
std::vector<SweepResult> figure3_thres_surplus(const FigureOptions& options = {});
std::vector<SweepResult> figure4_thres_threshold(const FigureOptions& options = {});
std::vector<SweepResult> figure5_ast(const FigureOptions& options = {});

}  // namespace feast
