#include "experiment/runner.hpp"

#include <optional>

#include "core/distribution_validate.hpp"
#include "sched/batch.hpp"
#include "sched/schedule_validate.hpp"

namespace feast {

RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const RunContext& context) {
  obs::Sink* const sink = context.sink != nullptr ? context.sink : obs::active();
  // An explicitly passed sink must also catch scheduler-internal spans and
  // counters, which resolve obs::active() (the scheduler has no context):
  // install it for the run's extent.  In-tree parallel drivers resolve
  // their sink *from* active() (so this branch stays cold there); callers
  // running concurrent runs with distinct explicit sinks are on their own.
  std::optional<obs::ScopedSink> scoped;
  if (sink != nullptr && sink != obs::active()) scoped.emplace(*sink);
  // A non-Auto backend rides the whole run, so the scheduler's hot loops
  // and the lateness reduction resolve the same kernel table.
  std::optional<kernels::ScopedBackend> backend;
  if (context.backend != kernels::Backend::Auto) {
    backend.emplace(context.backend);
  }

  const DeadlineAssignment assignment = [&] {
    obs::SpanScope span(sink, obs::Span::Distribute);
    return distributor.distribute(graph);
  }();
  if (context.validate) {
    obs::SpanScope span(sink, obs::Span::Validate);
    require_valid(check_assignment_basic(graph, assignment));
  }

  // The fast core runs through the thread-local batch arena: one
  // BatchScheduler per worker thread, so every run_once caller — run_cell
  // samples on the parallel pool, campaign cells, serve workers — reuses
  // prepared-topology, scratch and schedule storage with no per-run
  // allocation and no Schedule copy out.  The reference core keeps the
  // plain value path: it is the oracle and must not ride the machinery it
  // certifies.
  thread_local BatchScheduler batch;
  std::optional<Schedule> ref_schedule;
  const Schedule* schedule = nullptr;
  {
    obs::SpanScope span(sink, obs::Span::Schedule);
    if (context.core == SchedulerCore::Reference) {
      ref_schedule.emplace(list_schedule_ref(graph, assignment, context.machine,
                                             context.scheduler));
      schedule = &*ref_schedule;
    } else {
      schedule =
          &batch.run_one(graph, assignment, context.machine, context.scheduler);
    }
  }
  if (context.validate) {
    obs::SpanScope span(sink, obs::Span::Validate);
    require_valid(validate_schedule(graph, assignment, context.machine,
                                    *schedule, context.scheduler));
  }

  obs::SpanScope span(sink, obs::Span::Stats);
  RunResult result;
  result.lateness = computation_lateness(graph, assignment, *schedule);
  result.end_to_end = end_to_end_lateness(graph, *schedule);
  result.makespan = schedule->makespan();
  result.utilization = schedule->average_utilization();
  result.min_laxity = assignment.min_laxity(graph);
  return result;
}

RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const Machine& machine, const RunOptions& options) {
  RunContext context;
  context.machine = machine;
  context.scheduler = options.scheduler;
  context.core = options.core;
  context.validate = options.validate;
  return run_once(graph, distributor, context);
}

}  // namespace feast
