#include "experiment/runner.hpp"

#include "core/distribution_validate.hpp"
#include "sched/schedule_validate.hpp"

namespace feast {

RunResult run_once(const TaskGraph& graph, Distributor& distributor,
                   const Machine& machine, const RunOptions& options) {
  const DeadlineAssignment assignment = distributor.distribute(graph);
  if (options.validate) {
    require_valid(check_assignment_basic(graph, assignment));
  }

  const Schedule schedule =
      list_schedule_with(options.core, graph, assignment, machine, options.scheduler);
  if (options.validate) {
    require_valid(validate_schedule(graph, assignment, machine, schedule,
                                    options.scheduler));
  }

  RunResult result;
  result.lateness = computation_lateness(graph, assignment, schedule);
  result.end_to_end = end_to_end_lateness(graph, schedule);
  result.makespan = schedule.makespan();
  result.utilization = schedule.average_utilization();
  result.min_laxity = assignment.min_laxity(graph);
  return result;
}

}  // namespace feast
