#include "experiment/cli.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace feast {

namespace {

[[noreturn]] void usage(const std::string& bench_name, int code) {
  std::ostream& out = code == 0 ? std::cout : std::cerr;
  out << "usage: " << bench_name << " [options]\n"
      << "  --samples N    graphs per data point (default 128)\n"
      << "  --quick        shorthand for --samples 16\n"
      << "  --seed S       root seed (default 0xFEA57)\n"
      << "  --sizes LIST   comma-separated processor counts (default 2,4,...,16)\n"
      << "  --csv FILE     dump all series as CSV\n"
      << "  --threads N    worker threads (default: hardware concurrency)\n"
      << "  --cache-dir D  reuse cell results from a cache directory\n"
      << "  --no-cache     ignore --cache-dir\n"
      << "  --verbose      raise the log level to info\n"
      << "  --help         this text\n";
  std::exit(code);
}

long long parse_number(const std::string& bench_name, const std::string& value) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos, 0);
    if (pos != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    std::cerr << bench_name << ": bad number '" << value << "'\n";
    usage(bench_name, 2);
  }
}

}  // namespace

BenchArgs parse_bench_args(int argc, char** argv, const std::string& bench_name) {
  BenchArgs args;
  bool no_cache = false;
  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      std::cerr << bench_name << ": option " << argv[i] << " needs a value\n";
      usage(bench_name, 2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(bench_name, 0);
    } else if (arg == "--samples") {
      args.figure.samples = static_cast<int>(parse_number(bench_name, need_value(i)));
      if (args.figure.samples < 1) usage(bench_name, 2);
    } else if (arg == "--quick") {
      args.quick = true;
      args.figure.samples = 16;
    } else if (arg == "--seed") {
      args.figure.seed = static_cast<std::uint64_t>(parse_number(bench_name, need_value(i)));
    } else if (arg == "--sizes") {
      args.figure.sizes.clear();
      for (const std::string& piece : split(need_value(i), ',')) {
        const long long n = parse_number(bench_name, trim(piece));
        if (n < 1) usage(bench_name, 2);
        args.figure.sizes.push_back(static_cast<int>(n));
      }
      if (args.figure.sizes.empty()) usage(bench_name, 2);
    } else if (arg == "--csv") {
      args.csv_path = need_value(i);
    } else if (arg == "--threads") {
      const long long n = parse_number(bench_name, need_value(i));
      if (n < 0) usage(bench_name, 2);
      set_parallelism(static_cast<unsigned>(n));
    } else if (arg == "--cache-dir") {
      args.cache_dir = need_value(i);
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--verbose") {
      set_log_level(LogLevel::Info);
    } else {
      std::cerr << bench_name << ": unknown option '" << arg << "'\n";
      usage(bench_name, 2);
    }
  }
  if (no_cache) args.cache_dir.reset();
  return args;
}

void BenchArgs::write_csv(const std::vector<SweepResult>& results) const {
  if (!csv_path) return;
  std::ofstream out(*csv_path);
  if (!out) {
    std::cerr << "cannot open CSV file '" << *csv_path << "'\n";
    std::exit(1);
  }
  for (const SweepResult& r : results) r.write_csv(out);
  std::cout << "wrote CSV: " << *csv_path << "\n";
}

void print_results(const std::vector<SweepResult>& results) {
  for (const SweepResult& r : results) {
    r.print(std::cout);
    std::cout << "\n";
  }
}

}  // namespace feast
