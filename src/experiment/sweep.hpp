/// \file sweep.hpp
/// \brief Batched experiment cells and strategy-by-size sweeps.
///
/// Reproduces the paper's measurement protocol: every data point is the
/// mean over a batch of randomly generated task graphs (128 in the paper)
/// of the maximum task lateness.  The *same* batch of graphs — derived
/// deterministically from the batch seed and sample index, never from the
/// strategy or system size — is reused across all strategies and sizes of
/// a sweep, exactly like evaluating one generated task set everywhere.
///
/// Run-level knobs (scheduler policies, core, validation, observability
/// sink) travel in a RunContext (experiment/runner.hpp); BatchConfig only
/// describes the batch itself.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/strategy.hpp"
#include "taskgraph/generator.hpp"
#include "util/stats.hpp"

namespace feast {

/// Batch-level knobs shared by all cells of a sweep.
struct BatchConfig {
  int samples = 128;                  ///< Graphs per data point.
  std::uint64_t seed = 0xFEA57u;      ///< Root seed of the batch.
  double pinned_fraction = 0.0;       ///< Strict-locality subset (0 = fully relaxed).
  double time_per_item = 1.0;         ///< Bus cost per data item.
  CommContention contention = CommContention::ContentionFree;
  /// Optional hook applied to the machine of every cell after n_procs,
  /// time_per_item and contention are set — e.g. to install heterogeneous
  /// processor speeds.
  std::function<void(Machine&)> shape_machine;
  /// Canonical description of what shape_machine does, e.g.
  /// "speeds=geometric:0.5".  Required for a cell with a shape_machine hook
  /// to be cacheable: the hook itself cannot be hashed, so an empty tag
  /// marks such cells uncacheable.
  std::string machine_tag;
};

/// Aggregates of one (workload, strategy, system size) cell.
struct CellStats {
  StatSummary max_lateness;  ///< The figures' y-axis (mean of per-run maxima).
  StatSummary end_to_end;
  StatSummary makespan;
  StatSummary min_laxity;
  std::size_t infeasible_runs = 0;  ///< Runs where some subtask missed its window.
};

/// Cross-run cell memoization point.  Cell execution consults the installed
/// cache before evaluating a batch and stores the aggregate afterwards,
/// keyed by a canonical description of everything the result depends on
/// (see describe_cell).  The content-addressed file cache of src/campaign
/// implements this interface; sweeps over caller-supplied GraphFactory
/// closures are never cached (their graphs are not describable).
class CellCache {
 public:
  virtual ~CellCache() = default;

  /// True and fills \p out when \p canonical_key has a stored result.
  virtual bool lookup(const std::string& canonical_key, CellStats& out) = 0;

  /// Stores the result of \p canonical_key.
  virtual void store(const std::string& canonical_key, const CellStats& stats) = 0;
};

/// Installs the process-wide cell cache consulted by run_cell (borrowed
/// pointer; nullptr disables caching).  Returns the previous cache.
CellCache* set_cell_cache(CellCache* cache) noexcept;

/// Currently installed cell cache (nullptr when caching is off).
CellCache* cell_cache() noexcept;

/// Canonical, versioned description of one cell: every BatchConfig field,
/// the workload parameters, the strategy label, the system size, and the
/// run-context knobs that shape results (scheduler policies, core,
/// validation), with doubles printed at full precision.  This string *is*
/// the cache identity — its FNV-1a hash names the cache file.  Returns ""
/// (uncacheable) when the strategy label is empty or the batch carries a
/// shape_machine hook without a machine_tag describing it.
std::string describe_cell(const RandomGraphConfig& workload,
                          const std::string& strategy_label, int n_procs,
                          const BatchConfig& batch, const RunContext& context = {});

/// Produces the sample'th graph of a batch; must be deterministic in
/// (sample, the provided seed).  Allows sweeps over workloads the standard
/// random generator cannot express (structured shapes, loaded files).
using GraphFactory = std::function<TaskGraph(std::size_t sample, std::uint64_t seed)>;

/// What execute_cell did for one cell.
struct ExecutedCell {
  CellStats stats;
  bool from_cache = false;
  std::string canonical_key;  ///< "" when the cell is uncacheable.
};

/// The single cell-execution entry point: consults \p cache (may be
/// nullptr), evaluates the batch on a miss, and stores the fresh result.
/// run_cell layers the process-wide cell_cache() on top; the campaign
/// runner passes its own ResultCache.  context.machine is ignored — the
/// cell's machine derives from (n_procs, batch), which is what the cache
/// key describes.
ExecutedCell execute_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                          int n_procs, const BatchConfig& batch,
                          const RunContext& context, CellCache* cache);

/// Evaluates one cell: \p batch.samples random graphs from \p workload,
/// distributed by \p strategy, scheduled on \p n_procs processors.
/// Samples run in parallel; the result is deterministic in the seed.
/// Consults the process-wide cell_cache().
CellStats run_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                   int n_procs, const BatchConfig& batch,
                   const RunContext& context = {});

/// As run_cell, but with caller-supplied graphs (never cached).
CellStats run_custom_cell(const GraphFactory& factory, const Strategy& strategy,
                          int n_procs, const BatchConfig& batch,
                          const RunContext& context = {});

/// One strategy's series across the size axis.
struct Series {
  std::string label;
  std::vector<CellStats> cells;  ///< Aligned with SweepResult::sizes.
};

/// A full sweep: strategies × system sizes on one workload.
struct SweepResult {
  std::string title;
  std::vector<int> sizes;
  std::vector<Series> series;

  /// Mean max-lateness of series \p s at size index \p i.
  double value(std::size_t s, std::size_t i) const {
    return series.at(s).cells.at(i).max_lateness.mean;
  }

  /// Paper-style table: one row per strategy, one column per size.
  void print(std::ostream& out) const;

  /// Long-format CSV: strategy,procs,mean_max_lateness,stddev,ci95,
  /// mean_end_to_end,infeasible_runs.
  void write_csv(std::ostream& out) const;
};

/// Runs a sweep, reusing the same graph batch for every cell.
SweepResult sweep_strategies(const std::string& title,
                             const RandomGraphConfig& workload,
                             const std::vector<Strategy>& strategies,
                             const std::vector<int>& sizes, const BatchConfig& batch,
                             const RunContext& context = {});

/// As sweep_strategies, but with caller-supplied graphs.
SweepResult sweep_custom(const std::string& title, const GraphFactory& factory,
                         const std::vector<Strategy>& strategies,
                         const std::vector<int>& sizes, const BatchConfig& batch,
                         const RunContext& context = {});

}  // namespace feast
