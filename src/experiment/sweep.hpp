/// \file sweep.hpp
/// \brief Batched experiment cells and strategy-by-size sweeps.
///
/// Reproduces the paper's measurement protocol: every data point is the
/// mean over a batch of randomly generated task graphs (128 in the paper)
/// of the maximum task lateness.  The *same* batch of graphs — derived
/// deterministically from the batch seed and sample index, never from the
/// strategy or system size — is reused across all strategies and sizes of
/// a sweep, exactly like evaluating one generated task set everywhere.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/strategy.hpp"
#include "taskgraph/generator.hpp"
#include "util/stats.hpp"

namespace feast {

/// Batch-level knobs shared by all cells of a sweep.
struct BatchConfig {
  int samples = 128;                  ///< Graphs per data point.
  std::uint64_t seed = 0xFEA57u;      ///< Root seed of the batch.
  double pinned_fraction = 0.0;       ///< Strict-locality subset (0 = fully relaxed).
  double time_per_item = 1.0;         ///< Bus cost per data item.
  CommContention contention = CommContention::ContentionFree;
  SchedulerOptions scheduler;         ///< Time-driven EDF by default.
  bool validate = true;
  /// Optional hook applied to the machine of every cell after n_procs,
  /// time_per_item and contention are set — e.g. to install heterogeneous
  /// processor speeds.
  std::function<void(Machine&)> shape_machine;
};

/// Aggregates of one (workload, strategy, system size) cell.
struct CellStats {
  StatSummary max_lateness;  ///< The figures' y-axis (mean of per-run maxima).
  StatSummary end_to_end;
  StatSummary makespan;
  StatSummary min_laxity;
  std::size_t infeasible_runs = 0;  ///< Runs where some subtask missed its window.
};

/// Produces the sample'th graph of a batch; must be deterministic in
/// (sample, the provided seed).  Allows sweeps over workloads the standard
/// random generator cannot express (structured shapes, loaded files).
using GraphFactory = std::function<TaskGraph(std::size_t sample, std::uint64_t seed)>;

/// Evaluates one cell: \p batch.samples random graphs from \p workload,
/// distributed by \p strategy, scheduled on \p n_procs processors.
/// Samples run in parallel; the result is deterministic in the seed.
CellStats run_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                   int n_procs, const BatchConfig& batch);

/// As run_cell, but with caller-supplied graphs.
CellStats run_custom_cell(const GraphFactory& factory, const Strategy& strategy,
                          int n_procs, const BatchConfig& batch);

/// One strategy's series across the size axis.
struct Series {
  std::string label;
  std::vector<CellStats> cells;  ///< Aligned with SweepResult::sizes.
};

/// A full sweep: strategies × system sizes on one workload.
struct SweepResult {
  std::string title;
  std::vector<int> sizes;
  std::vector<Series> series;

  /// Mean max-lateness of series \p s at size index \p i.
  double value(std::size_t s, std::size_t i) const {
    return series.at(s).cells.at(i).max_lateness.mean;
  }

  /// Paper-style table: one row per strategy, one column per size.
  void print(std::ostream& out) const;

  /// Long-format CSV: strategy,procs,mean_max_lateness,stddev,ci95,
  /// mean_end_to_end,infeasible_runs.
  void write_csv(std::ostream& out) const;
};

/// Runs a sweep, reusing the same graph batch for every cell.
SweepResult sweep_strategies(const std::string& title,
                             const RandomGraphConfig& workload,
                             const std::vector<Strategy>& strategies,
                             const std::vector<int>& sizes, const BatchConfig& batch);

/// As sweep_strategies, but with caller-supplied graphs.
SweepResult sweep_custom(const std::string& title, const GraphFactory& factory,
                         const std::vector<Strategy>& strategies,
                         const std::vector<int>& sizes, const BatchConfig& batch);

}  // namespace feast
