#include "sched/diffsched.hpp"

#include <array>
#include <ostream>
#include <sstream>
#include <vector>

#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "sched/kernels/kernels.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule_validate.hpp"
#include "sched/trace.hpp"
#include "taskgraph/generator.hpp"
#include "util/rng.hpp"

namespace feast {

namespace {

constexpr std::uint64_t kDiffStream = 0xD1FFU;

constexpr std::array<ReleasePolicy, 2> kReleases = {ReleasePolicy::TimeDriven,
                                                    ReleasePolicy::Eager};
constexpr std::array<SelectionPolicy, 3> kSelections = {
    SelectionPolicy::Edf, SelectionPolicy::Fifo, SelectionPolicy::StaticLaxity};
constexpr std::array<ProcessorPolicy, 2> kProcessors = {ProcessorPolicy::GapSearch,
                                                        ProcessorPolicy::QueueAtEnd};

/// One randomized workload: graph + windows + machine.
struct Workload {
  TaskGraph graph;
  DeadlineAssignment assignment;
  Machine machine;
  std::string describe;  ///< Reproducer text for failure reports.
};

Workload make_workload(std::uint64_t root, int trial, bool quick) {
  Pcg32 rng(seed_for(root, {kDiffStream, static_cast<std::uint64_t>(trial)}));

  RandomGraphConfig config;
  // Three size classes: small graphs shake out edge cases (joins, single
  // chains) fast; the fig2-sized class exercises the paper's workload.
  const int size_class = quick ? rng.uniform_int(0, 1) : rng.uniform_int(0, 2);
  switch (size_class) {
    case 0:
      config.min_subtasks = 5;
      config.max_subtasks = 14;
      config.min_depth = 2;
      config.max_depth = 5;
      break;
    case 1:
      config.min_subtasks = 15;
      config.max_subtasks = 30;
      config.min_depth = 4;
      config.max_depth = 8;
      break;
    default:
      break;  // paper defaults: 40-60 subtasks, depth 8-12
  }
  const auto scenario = static_cast<ExecSpreadScenario>(rng.uniform_int(0, 2));
  config.set_scenario(scenario);
  constexpr std::array<double, 3> kCcrs = {0.1, 1.0, 5.0};
  constexpr std::array<double, 3> kOlrs = {1.1, 1.5, 3.0};
  config.ccr = kCcrs[rng.uniform_index(kCcrs.size())];
  config.olr = kOlrs[rng.uniform_index(kOlrs.size())];
  if (rng.uniform_int(0, 3) == 0) config.strict_fanin_cap = true;

  Workload w;
  w.graph = generate_random_graph(config, rng);

  w.machine.n_procs = rng.uniform_int(2, quick ? 6 : 16);
  w.machine.contention = static_cast<CommContention>(rng.uniform_int(0, 2));
  if (rng.uniform_int(0, 3) == 0) {
    w.machine.speeds.reserve(static_cast<std::size_t>(w.machine.n_procs));
    for (int p = 0; p < w.machine.n_procs; ++p) {
      w.machine.speeds.push_back(rng.uniform_real(0.5, 2.0));
    }
  }

  // Locality mix: fully relaxed, the paper's partially-pinned middle
  // ground, and fully strict (every subtask pinned — exercises the pinned
  // bypass in both cores).
  constexpr std::array<double, 3> kPinned = {0.0, 0.25, 1.0};
  const double pinned = kPinned[rng.uniform_index(kPinned.size())];
  if (pinned > 0.0) {
    pin_random_fraction(w.graph, pinned, w.machine.n_procs, rng);
  }

  std::unique_ptr<SliceMetric> metric;
  const char* metric_name = "?";
  switch (rng.uniform_int(0, 3)) {
    case 0:
      metric = make_pure();
      metric_name = "pure";
      break;
    case 1:
      metric = make_norm();
      metric_name = "norm";
      break;
    case 2:
      metric = make_thres(1.0);
      metric_name = "thres";
      break;
    default:
      metric = make_adapt(w.machine.n_procs);
      metric_name = "adapt";
      break;
  }
  const bool ccaa = rng.uniform_int(0, 1) == 1;
  const auto estimator = ccaa ? make_ccaa(w.machine.time_per_item) : make_ccne();
  w.assignment = distribute_deadlines(w.graph, *metric, *estimator);

  std::ostringstream os;
  os << "trial " << trial << ": " << w.graph.subtask_count() << " subtasks, "
     << to_string(scenario) << ", ccr=" << config.ccr << ", olr=" << config.olr
     << ", procs=" << w.machine.n_procs
     << (w.machine.homogeneous() ? "" : " (heterogeneous)")
     << ", contention=" << to_string(w.machine.contention) << ", pinned=" << pinned
     << ", metric=" << metric_name << ", estimator=" << (ccaa ? "ccaa" : "ccne");
  w.describe = os.str();
  return w;
}

}  // namespace

DiffSchedResult run_diffsched(const DiffSchedConfig& config, std::ostream* progress) {
  DiffSchedResult result;
  result.combos = static_cast<int>(kReleases.size() * kSelections.size() *
                                   kProcessors.size());
  SchedulerScratch scratch;  // one arena reused across every fast-core run

  // Every kernel backend this build + host can execute: the fast core is
  // replayed once per backend against the one reference trace, so the
  // certificate covers every (core × backend) pair the process could ever
  // dispatch to.  Scalar is always available; AVX2 joins when compiled in
  // and the host reports it.
  std::vector<kernels::Backend> backends = {kernels::Backend::Scalar};
  if (kernels::available(kernels::Backend::Avx2)) {
    backends.push_back(kernels::Backend::Avx2);
  }
  result.backends = static_cast<int>(backends.size());

  auto note = [&result](const std::string& text) {
    ++result.mismatches;
    if (result.first_problem.empty()) result.first_problem = text;
  };

  for (int trial = 0; trial < config.trials; ++trial) {
    const Workload w = make_workload(config.seed, trial, config.quick);

    for (const ReleasePolicy release : kReleases) {
      for (const SelectionPolicy selection : kSelections) {
        for (const ProcessorPolicy processor : kProcessors) {
          const SchedulerOptions options{release, selection, processor};
          const Schedule ref =
              list_schedule_ref(w.graph, w.assignment, w.machine, options);
          ++result.schedules;
          {
            const ScheduleReport report =
                validate_schedule(w.graph, w.assignment, w.machine, ref, options);
            if (!report.ok()) {
              ++result.invalid;
              if (result.first_problem.empty()) {
                result.first_problem = w.describe + ", " + to_string(release) +
                                       "/" + to_string(selection) + "/" +
                                       to_string(processor) +
                                       ": reference schedule invalid: " +
                                       report.to_string();
              }
            }
          }
          // One reference trace certifies every backend: the fast core is
          // bit-exact across backends by contract, so each replay must
          // match the same bytes.
          for (const kernels::Backend backend : backends) {
            const kernels::ScopedBackend forced(backend);
            const Schedule fast =
                list_schedule(w.graph, w.assignment, w.machine, options, scratch);
            ++result.schedules;

            std::string why;
            if (!schedule_trace_equal(w.graph, ref, fast, &why)) {
              std::ostringstream os;
              os << w.describe << ", " << to_string(release) << "/"
                 << to_string(selection) << "/" << to_string(processor)
                 << ", backend=" << kernels::to_string(backend) << " (seed "
                 << config.seed << "): trace mismatch at " << why;
              note(os.str());
            }
            const ScheduleReport report =
                validate_schedule(w.graph, w.assignment, w.machine, fast, options);
            if (!report.ok()) {
              ++result.invalid;
              if (result.first_problem.empty()) {
                result.first_problem =
                    w.describe + ", " + to_string(release) + "/" +
                    to_string(selection) + "/" + to_string(processor) +
                    ", backend=" + kernels::to_string(backend) +
                    ": fast schedule invalid: " + report.to_string();
              }
            }
          }
        }
      }
    }

    ++result.trials;
    if (progress != nullptr && (trial + 1) % 100 == 0) {
      *progress << "  " << (trial + 1) << "/" << config.trials << " trials, "
                << result.schedules << " schedules, " << result.mismatches
                << " mismatches\n";
    }
  }

  if (progress != nullptr) {
    *progress << "diffsched: " << result.trials << " trials x " << result.combos
              << " policy combos x " << result.backends << " backend(s) ("
              << result.schedules << " schedules): " << result.mismatches
              << " trace mismatches, " << result.invalid
              << " invalid schedules\n";
    if (!result.first_problem.empty()) {
      *progress << "first problem: " << result.first_problem << "\n";
    }
  }
  return result;
}

}  // namespace feast
