/// \file schedule_validate.hpp
/// \brief Structural validation of schedules.
///
/// Every experiment run validates its schedule: a bug in the scheduler
/// would otherwise silently corrupt thousands of lateness samples.  Checks:
///
///  - every computation subtask is placed exactly once on a processor of
///    the machine, and pinned subtasks sit on their designated processor;
///  - executions on one processor never overlap (non-preemptive);
///  - precedence + communication: a consumer starts no earlier than each
///    producer's finish plus the message transfer when they are on
///    different processors (and no earlier than the producer's finish when
///    co-located);
///  - transfer records are consistent (crossing iff endpoints differ,
///    duration equals the machine latency, departure not before the
///    producer's finish);
///  - under the shared-bus model, crossing transfers are pairwise disjoint;
///  - under the time-driven release policy, starts respect assigned
///    release times.
#pragma once

#include <string>
#include <vector>

#include "core/annotation.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Outcome of schedule validation.
struct ScheduleReport {
  std::vector<std::string> problems;

  bool ok() const noexcept { return problems.empty(); }
  std::string to_string() const;
};

/// Runs all checks listed above.
ScheduleReport validate_schedule(const TaskGraph& graph,
                                 const DeadlineAssignment& assignment,
                                 const Machine& machine, const Schedule& schedule,
                                 const SchedulerOptions& options = {});

/// Throws ContractViolation when the report is not ok.
void require_valid(const ScheduleReport& report);

}  // namespace feast
