/// \file kernels.hpp
/// \brief Pluggable SIMD kernel backends for the scheduler hot loops.
///
/// The optimized scheduler core spends its time in three loop shapes:
///
///  1. **ready-queue eligibility scans** — find-first-set over the ready
///     rank bitset (one word per 64 subtasks);
///  2. **bus-timeline gap probes** — first-fit scans over the SoA slot
///     arrays of a BusTimeline (starts[] / ends[], sorted, disjoint);
///  3. **lateness / stats reductions** — elementwise finish − deadline
///     over the packed per-run arrays plus max/argmax/missed reduction.
///
/// Each shape is a function pointer in KernelOps, so a backend is one
/// table.  Two backends exist: `scalar` (plain loops, always built, the
/// reference semantics) and `avx2` (AVX2 intrinsics, compiled only when
/// the toolchain supports -mavx2, dispatched at runtime via cpuid).  The
/// contract is *bit-exactness*: for every input, every backend returns
/// byte-identical results — the AVX2 loops are exact transformations of
/// the scalar ones (same comparisons, same update order; reductions that
/// would reassociate floating-point arithmetic are either associative
/// (max) or left to the caller (sums)).  `feastc diffsched` certifies the
/// contract end to end by replaying every (scheduler core × backend) pair
/// on randomized workloads; tests/test_kernels.cpp pins the kernels
/// themselves on adversarial inputs.
///
/// Backend selection, in precedence order:
///  - a thread-local ScopedBackend override (tests, RunContext::backend);
///  - the FEAST_SCHED_BACKEND environment variable (`scalar`, `avx2`,
///    `auto`), read once at first use;
///  - cpuid auto-detection (AVX2 when the host and build support it).
///
/// Grounding: the swappable-SIMD-backend-behind-one-interface pattern of
/// marian-lite's intgemm_interface.h / prod_blas.h.
#pragma once

#include <cstddef>
#include <cstdint>

namespace feast::kernels {

/// Which kernel table executes the scheduler hot loops.
enum class Backend : std::uint8_t {
  Auto,    ///< Resolve via env / cpuid (never the active() result).
  Scalar,  ///< Plain loops; always available.
  Avx2,    ///< AVX2 intrinsics; requires build + host support.
};

const char* to_string(Backend backend) noexcept;

/// Result of the lateness reduction kernel.
struct LatenessReduce {
  double max = 0.0;          ///< Maximum lateness (n >= 1 required).
  std::uint32_t argmax = 0;  ///< First index attaining the maximum.
  std::uint64_t missed = 0;  ///< Entries with lateness > eps.
};

/// One backend: a table of the hot-loop kernels.  All pointers are
/// non-null in a registered backend.
struct KernelOps {
  const char* name;  ///< "scalar" or "avx2" (stable; used in bench JSON).

  /// Bit index of the lowest set bit across \p words[0..nwords).  At
  /// least one bit must be set.
  std::size_t (*first_set)(const std::uint64_t* words, std::size_t nwords);

  /// First index i in [\p from, \p n) with values[i] > \p bound under
  /// exact double comparison; returns \p n when none.
  std::size_t (*first_above)(const double* values, std::size_t n,
                             std::size_t from, double bound);

  /// First-fit gap walk over the SoA slot arrays, starting at slot
  /// \p from with the given \p candidate start:
  ///
  ///   for i in [from, n):
  ///     if ends[i] <= candidate + eps: continue        (gap past slot)
  ///     if starts[i] >= candidate + duration - eps: break  (fits before)
  ///     candidate = ends[i]                            (collision)
  ///   return candidate
  ///
  /// Backends must reproduce this walk exactly (same comparisons on the
  /// same doubles), so every backend returns the identical start.
  double (*gap_scan)(const double* starts, const double* ends, std::size_t n,
                     std::size_t from, double candidate, double duration,
                     double eps);

  /// out[i] = values[i] * factor for i in [0, n).  Exact: one IEEE
  /// multiply per element in every backend.
  void (*scale)(const double* values, std::size_t n, double factor,
                double* out);

  /// lateness[i] = finish[i] − deadline[i] for i in [0, n), plus the
  /// reduction: max with *first-index* argmax (an entry replaces the
  /// incumbent only when strictly greater) and the count of entries
  /// > \p eps.  Requires n >= 1.  Exact: the subtraction is elementwise,
  /// max is associative over non-NaN doubles, and the subtraction never
  /// produces -0.0 (IEEE a−b is +0.0 whenever a == b), so the reduction
  /// is order-insensitive bit-for-bit.  Sums are intentionally *not*
  /// part of the kernel: they reassociate, so callers keep them scalar.
  void (*lateness)(const double* finish, const double* deadline,
                   std::size_t n, double eps, double* lateness,
                   LatenessReduce* out);
};

/// The scalar backend table (always available; the reference semantics).
const KernelOps& scalar_ops() noexcept;

/// True when \p backend can execute on this build + host.
bool available(Backend backend) noexcept;

/// The backend active() currently resolves to (never Auto).
Backend active_backend() noexcept;

/// The active kernel table: thread-local override if any, else the
/// process-wide table (env / cpuid resolved once).  One TLS load and one
/// atomic load; scheduler runs cache the reference for their duration.
const KernelOps& active() noexcept;

/// Installs \p backend process-wide.  Auto re-resolves env / cpuid.
/// Requesting an unavailable backend falls back to Scalar and emits one
/// stderr warning (a daemon forced onto missing hardware must keep
/// serving, not die).  Returns the backend actually installed.
Backend set_backend(Backend backend) noexcept;

/// Scoped thread-local backend override (tests, RunContext::backend).
/// Nestable; restores the previous override on destruction.  An
/// unavailable request falls back to Scalar, as with set_backend.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend) noexcept;
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const KernelOps* previous_;
};

/// Comma-separated CPU feature flags relevant to kernel dispatch, e.g.
/// "avx2,avx512f" — recorded in BENCH_scheduler.json so speedup
/// trajectories stay interpretable across machines.
const char* cpu_features() noexcept;

/// True when this build contains the AVX2 backend (compile-time gate).
bool built_with_avx2() noexcept;

}  // namespace feast::kernels
