/// \file kernels.cpp
/// \brief Backend registry and runtime dispatch for the scheduler kernels.
#include "sched/kernels/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace feast::kernels {

namespace detail {
// Defined in avx2.cpp: the AVX2 table when FEAST_KERNEL_AVX2 was compiled
// in, nullptr otherwise (the TU is always in the build so linking never
// depends on the gate).
const KernelOps* avx2_ops() noexcept;
}  // namespace detail

namespace {

bool host_has_avx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelOps* ops_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::Scalar:
      return &scalar_ops();
    case Backend::Avx2:
      return detail::avx2_ops();
    case Backend::Auto:
      break;
  }
  return nullptr;
}

/// Resolves Auto: FEAST_SCHED_BACKEND env if set, else cpuid.  Unknown
/// env values and unavailable forced backends warn once and fall back.
Backend resolve_auto() noexcept {
  const char* env = std::getenv("FEAST_SCHED_BACKEND");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Backend requested = Backend::Auto;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Backend::Scalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Backend::Avx2;
    } else {
      std::fprintf(stderr,
                   "feast: FEAST_SCHED_BACKEND=%s is not a backend "
                   "(scalar, avx2, auto); using auto detection\n",
                   env);
    }
    if (requested != Backend::Auto) {
      if (available(requested)) return requested;
      std::fprintf(stderr,
                   "feast: FEAST_SCHED_BACKEND=%s is unavailable on this "
                   "%s; falling back to scalar\n",
                   env,
                   built_with_avx2() ? "host" : "build (no AVX2 compiled in)");
      return Backend::Scalar;
    }
  }
  return available(Backend::Avx2) ? Backend::Avx2 : Backend::Scalar;
}

/// Process-wide active table.  Resolved lazily on first use so the env
/// variable is honored no matter how early the first scheduler run is.
std::atomic<const KernelOps*> g_active{nullptr};

const KernelOps* process_ops() noexcept {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = ops_for(resolve_auto());
    // Another thread may have resolved concurrently; both compute a valid
    // table, so a lost race is harmless.
    g_active.store(ops, std::memory_order_release);
  }
  return ops;
}

/// Thread-local override stack (ScopedBackend).  A raw pointer: nullptr
/// means "no override, use the process-wide table".
thread_local const KernelOps* t_override = nullptr;

}  // namespace

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::Auto:
      return "auto";
    case Backend::Scalar:
      return "scalar";
    case Backend::Avx2:
      return "avx2";
  }
  return "?";
}

bool available(Backend backend) noexcept {
  switch (backend) {
    case Backend::Auto:
    case Backend::Scalar:
      return true;
    case Backend::Avx2:
      return detail::avx2_ops() != nullptr && host_has_avx2();
  }
  return false;
}

const KernelOps& active() noexcept {
  if (t_override != nullptr) return *t_override;
  return *process_ops();
}

Backend active_backend() noexcept {
  const KernelOps& ops = active();
  if (&ops == detail::avx2_ops()) return Backend::Avx2;
  return Backend::Scalar;
}

Backend set_backend(Backend backend) noexcept {
  if (backend == Backend::Auto) {
    backend = resolve_auto();
  } else if (!available(backend)) {
    std::fprintf(stderr,
                 "feast: kernel backend %s is unavailable on this %s; "
                 "falling back to scalar\n",
                 to_string(backend),
                 built_with_avx2() ? "host" : "build (no AVX2 compiled in)");
    backend = Backend::Scalar;
  }
  g_active.store(ops_for(backend), std::memory_order_release);
  return backend;
}

ScopedBackend::ScopedBackend(Backend backend) noexcept
    : previous_(t_override) {
  if (backend == Backend::Auto) {
    t_override = nullptr;  // fall through to the process-wide table
    return;
  }
  if (!available(backend)) {
    std::fprintf(stderr,
                 "feast: kernel backend %s is unavailable on this %s; "
                 "falling back to scalar\n",
                 to_string(backend),
                 built_with_avx2() ? "host" : "build (no AVX2 compiled in)");
    backend = Backend::Scalar;
  }
  t_override = ops_for(backend);
}

ScopedBackend::~ScopedBackend() { t_override = previous_; }

const char* cpu_features() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const char* features = [] {
    const bool avx2 = __builtin_cpu_supports("avx2");
    const bool avx512 = __builtin_cpu_supports("avx512f");
    if (avx2 && avx512) return "avx2,avx512f";
    if (avx2) return "avx2";
    return "none";
  }();
  return features;
#else
  return "none";
#endif
}

bool built_with_avx2() noexcept { return detail::avx2_ops() != nullptr; }

}  // namespace feast::kernels
