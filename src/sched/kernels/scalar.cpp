/// \file scalar.cpp
/// \brief The scalar kernel backend: plain loops, the reference semantics
///        every other backend must reproduce bit-for-bit.
#include <bit>

#include "sched/kernels/kernels.hpp"

namespace feast::kernels {

namespace {

std::size_t scalar_first_set(const std::uint64_t* words, std::size_t nwords) {
  for (std::size_t w = 0;; ++w) {
    if (w >= nwords) return nwords * 64;  // defensive; contract says set bit exists
    const std::uint64_t word = words[w];
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
  }
}

std::size_t scalar_first_above(const double* values, std::size_t n,
                               std::size_t from, double bound) {
  for (std::size_t i = from; i < n; ++i) {
    if (values[i] > bound) return i;
  }
  return n;
}

double scalar_gap_scan(const double* starts, const double* ends, std::size_t n,
                       std::size_t from, double candidate, double duration,
                       double eps) {
  for (std::size_t i = from; i < n; ++i) {
    if (ends[i] <= candidate + eps) continue;               // gap is past this slot
    if (starts[i] >= candidate + duration - eps) break;     // fits before it
    candidate = ends[i];                                    // collision: try after
  }
  return candidate;
}

void scalar_scale(const double* values, std::size_t n, double factor,
                  double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = values[i] * factor;
}

void scalar_lateness(const double* finish, const double* deadline, std::size_t n,
                     double eps, double* lateness, LatenessReduce* out) {
  double max = finish[0] - deadline[0];
  std::uint32_t argmax = 0;
  std::uint64_t missed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double late = finish[i] - deadline[i];
    lateness[i] = late;
    if (late > max) {
      max = late;
      argmax = static_cast<std::uint32_t>(i);
    }
    if (late > eps) ++missed;
  }
  out->max = max;
  out->argmax = argmax;
  out->missed = missed;
}

constexpr KernelOps kScalarOps = {
    "scalar",         scalar_first_set, scalar_first_above,
    scalar_gap_scan,  scalar_scale,     scalar_lateness,
};

}  // namespace

const KernelOps& scalar_ops() noexcept { return kScalarOps; }

}  // namespace feast::kernels
