/// \file avx2.cpp
/// \brief The AVX2 kernel backend.
///
/// Compiled only when the toolchain accepts -mavx2 (see the FEAST_KERNEL_AVX2
/// gate in src/sched/CMakeLists.txt); selected at runtime only when cpuid
/// reports AVX2, so a binary carrying this TU still runs everywhere.
///
/// Every kernel is an *exact transformation* of its scalar counterpart: the
/// vector lanes evaluate the same comparisons on the same doubles, and the
/// data-dependent decisions (which slot collides first, which index holds the
/// maximum) are resolved with the scalar tie rules.  Where a vectorized
/// reduction would reassociate floating-point arithmetic, the operation is
/// either associative bit-for-bit (max over non-NaN, no -0.0 inputs — see
/// kernels.hpp) or excluded from the kernel contract (sums stay with the
/// caller).  tests/test_kernels.cpp pins scalar ≡ avx2 on adversarial
/// inputs; `feastc diffsched` certifies whole-scheduler traces.
#include "sched/kernels/kernels.hpp"

#if defined(FEAST_KERNEL_AVX2)

#include <immintrin.h>

#include <bit>

namespace feast::kernels {

namespace {

std::size_t avx2_first_set(const std::uint64_t* words, std::size_t nwords) {
  std::size_t w = 0;
  // 4 words (256 bits of ranks) per step: vptest sets ZF when the whole
  // block is zero, so dense prefixes of empty ready words are skipped at
  // 4x the scalar rate.  The first non-zero block falls through to the
  // scalar word walk, which applies the exact same "lowest set bit" rule.
  for (; w + 4 <= nwords; w += 4) {
    const __m256i block =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (!_mm256_testz_si256(block, block)) break;
  }
  for (;; ++w) {
    if (w >= nwords) return nwords * 64;  // defensive; contract says set bit exists
    const std::uint64_t word = words[w];
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
  }
}

std::size_t avx2_first_above(const double* values, std::size_t n,
                             std::size_t from, double bound) {
  std::size_t i = from;
  const __m256d vbound = _mm256_set1_pd(bound);
  // _CMP_GT_OQ is IEEE `>` (ordered, quiet): lane k is all-ones exactly
  // when values[i+k] > bound, the scalar predicate.  The first set lane of
  // the first non-zero mask is the scalar loop's first hit.
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(v, vbound, _CMP_GT_OQ));
    if (mask != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(
                     static_cast<unsigned>(mask)));
    }
  }
  for (; i < n; ++i) {
    if (values[i] > bound) return i;
  }
  return n;
}

double avx2_gap_scan(const double* starts, const double* ends, std::size_t n,
                     std::size_t from, double candidate, double duration,
                     double eps) {
  // The scalar walk in an equivalent form that exposes its two scans:
  //
  //   loop:
  //     i = first index >= i with ends[i] > candidate + eps   (skip scan)
  //     if i == n: return candidate
  //     if starts[i] >= candidate + duration - eps: return candidate
  //     candidate = ends[i]; ++i                              (collision)
  //     dense walk: while the chain invariant candidate == ends[i-1]
  //     holds, each step either skips (ends[i] <= ends[i-1] + eps),
  //     breaks (starts[i] - ends[i-1] >= duration - eps: a wide-enough
  //     inter-slot gap), or collides again (candidate = ends[i]).
  //
  // The skip scan vectorizes directly (the candidate does not move), and
  // the dense walk — the serial part that dominates on a congested bus,
  // where back-to-back slots force the candidate through every slot until
  // the first wide-enough gap — vectorizes against *consecutive* slots:
  // while the chain invariant holds the step at index i compares
  // starts[i] and ends[i] against ends[i-1] only, so four steps evaluate
  // at once from unaligned loads at i-1 and i.  The first lane where
  // either condition fires is located exactly, and its condition is
  // re-dispatched with the scalar rules in scalar order (skip before
  // break), so the walk is decision-for-decision the scalar walk's.
  std::size_t i = from;
  for (;;) {
    i = avx2_first_above(ends, n, i, candidate + eps);
    if (i == n) return candidate;
    if (starts[i] >= candidate + duration - eps) return candidate;
    candidate = ends[i];
    ++i;
    // Dense walk with candidate == ends[i - 1].
    const __m256d veps = _mm256_set1_pd(eps);
    const __m256d vdur = _mm256_set1_pd(duration);
    while (i + 4 <= n) {
      const __m256d prev_end = _mm256_loadu_pd(ends + i - 1);
      const __m256d cur_end = _mm256_loadu_pd(ends + i);
      const __m256d cur_start = _mm256_loadu_pd(starts + i);
      // Lane k stops the chain when ends[i+k] <= ends[i+k-1] + eps (the
      // scalar skip) or starts[i+k] >= ends[i+k-1] + duration - eps (the
      // scalar break).  The break bound is formed left-to-right exactly as
      // the scalar expression — (candidate + duration) - eps — so every
      // intermediate rounding matches; _CMP_LE_OQ / _CMP_GE_OQ are the
      // IEEE comparisons of the scalar predicates on the same doubles.
      const __m256d skip = _mm256_cmp_pd(
          cur_end, _mm256_add_pd(prev_end, veps), _CMP_LE_OQ);
      const __m256d wide = _mm256_cmp_pd(
          cur_start,
          _mm256_sub_pd(_mm256_add_pd(prev_end, vdur), veps), _CMP_GE_OQ);
      const int stop = _mm256_movemask_pd(_mm256_or_pd(skip, wide));
      if (stop == 0) {
        candidate = ends[i + 3];
        i += 4;
        continue;
      }
      const std::size_t j =
          i + static_cast<std::size_t>(std::countr_zero(
                  static_cast<unsigned>(stop)));
      candidate = ends[j - 1];  // chain advanced through every prior lane
      // Scalar order: the skip test runs before the break test.
      if (ends[j] <= candidate + eps) {
        i = j + 1;  // skip; the chain invariant is broken, rescan
        goto rescan;
      }
      return candidate;  // starts[j] opened a wide-enough gap
    }
    // Scalar tail of the dense walk (fewer than 4 slots left).
    for (; i < n; ++i) {
      if (ends[i] <= candidate + eps) continue;
      if (starts[i] >= candidate + duration - eps) break;
      candidate = ends[i];
    }
    return candidate;
  rescan:;
  }
}

void avx2_scale(const double* values, std::size_t n, double factor,
                double* out) {
  const __m256d vfactor = _mm256_set1_pd(factor);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(values + i), vfactor));
  }
  for (; i < n; ++i) out[i] = values[i] * factor;
}

void avx2_lateness(const double* finish, const double* deadline, std::size_t n,
                   double eps, double* lateness, LatenessReduce* out) {
  // Pass 1 (vector): lateness[i] = finish[i] − deadline[i] (elementwise,
  // exact), lane-max running reduction, and missed counting via compare
  // masks.  max over non-NaN doubles with no -0.0 (see kernels.hpp) is
  // associative bit-for-bit, so the lane fold equals the scalar fold.
  const __m256d veps = _mm256_set1_pd(eps);
  __m256d vmax = _mm256_set1_pd(-__builtin_huge_val());
  std::uint64_t missed = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d late = _mm256_sub_pd(_mm256_loadu_pd(finish + i),
                                       _mm256_loadu_pd(deadline + i));
    _mm256_storeu_pd(lateness + i, late);
    vmax = _mm256_max_pd(vmax, late);
    const int mask =
        _mm256_movemask_pd(_mm256_cmp_pd(late, veps, _CMP_GT_OQ));
    missed += static_cast<std::uint64_t>(
        std::popcount(static_cast<unsigned>(mask)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vmax);
  double max = lanes[0];
  if (lanes[1] > max) max = lanes[1];
  if (lanes[2] > max) max = lanes[2];
  if (lanes[3] > max) max = lanes[3];
  bool any_vector = i != 0;
  for (; i < n; ++i) {
    const double late = finish[i] - deadline[i];
    lateness[i] = late;
    if (late > max || (!any_vector && i == 0)) max = late;
    any_vector = true;
    if (late > eps) ++missed;
  }
  // Pass 2 (vector): the scalar rule is *first* index strictly greater than
  // every predecessor — i.e. the first index whose lateness equals the
  // maximum.  Equality search is order-safe, so it vectorizes exactly.
  std::uint32_t argmax = 0;
  const __m256d vtarget = _mm256_set1_pd(max);
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const int mask = _mm256_movemask_pd(_mm256_cmp_pd(
        _mm256_loadu_pd(lateness + j), vtarget, _CMP_EQ_OQ));
    if (mask != 0) {
      argmax = static_cast<std::uint32_t>(
          j + static_cast<std::size_t>(
                  std::countr_zero(static_cast<unsigned>(mask))));
      out->max = max;
      out->argmax = argmax;
      out->missed = missed;
      return;
    }
  }
  for (; j < n; ++j) {
    if (lateness[j] == max) {
      argmax = static_cast<std::uint32_t>(j);
      break;
    }
  }
  out->max = max;
  out->argmax = argmax;
  out->missed = missed;
}

constexpr KernelOps kAvx2Ops = {
    "avx2",        avx2_first_set, avx2_first_above,
    avx2_gap_scan, avx2_scale,     avx2_lateness,
};

}  // namespace

namespace detail {
const KernelOps* avx2_ops() noexcept { return &kAvx2Ops; }
}  // namespace detail

}  // namespace feast::kernels

#else  // !FEAST_KERNEL_AVX2

namespace feast::kernels::detail {
const KernelOps* avx2_ops() noexcept { return nullptr; }
}  // namespace feast::kernels::detail

#endif
