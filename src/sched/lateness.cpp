#include "sched/lateness.hpp"

#include <algorithm>

namespace feast {

Time lateness_of(const DeadlineAssignment& assignment, const Schedule& schedule,
                 NodeId id) {
  return schedule.placement(id).finish - assignment.abs_deadline(id);
}

LatenessStats computation_lateness(const TaskGraph& graph,
                                   const DeadlineAssignment& assignment,
                                   const Schedule& schedule) {
  LatenessStats stats;
  Time sum = 0.0;
  for (const NodeId id : graph.computation_nodes()) {
    const Time lateness = lateness_of(assignment, schedule, id);
    sum += lateness;
    if (lateness > stats.max_lateness) {
      stats.max_lateness = lateness;
      stats.argmax = id;
    }
    if (lateness > kTimeEps) ++stats.missed;
    ++stats.count;
  }
  if (stats.count > 0) {
    stats.mean_lateness = sum / static_cast<double>(stats.count);
  } else {
    stats.max_lateness = 0.0;
  }
  return stats;
}

Time end_to_end_lateness(const TaskGraph& graph, const Schedule& schedule) {
  Time worst = -kInfiniteTime;
  for (const NodeId id : graph.outputs()) {
    const Time deadline = graph.node(id).boundary_deadline;
    FEAST_REQUIRE(is_set(deadline));
    worst = std::max(worst, schedule.placement(id).finish - deadline);
  }
  return graph.outputs().empty() ? 0.0 : worst;
}

}  // namespace feast
