#include "sched/lateness.hpp"

#include <algorithm>
#include <vector>

#include "sched/kernels/kernels.hpp"

namespace feast {

Time lateness_of(const DeadlineAssignment& assignment, const Schedule& schedule,
                 NodeId id) {
  return schedule.placement(id).finish - assignment.abs_deadline(id);
}

LatenessStats computation_lateness(const TaskGraph& graph,
                                   const DeadlineAssignment& assignment,
                                   const Schedule& schedule) {
  LatenessStats stats;
  const auto& comps = graph.computation_nodes();
  const std::size_t n = comps.size();
  if (n == 0) {
    stats.max_lateness = 0.0;
    return stats;
  }
  // Stage finishes and deadlines into packed arrays and run the reduction
  // on the kernel backend (sched/kernels): elementwise subtraction plus
  // max / first-argmax / missed-count, bit-exact across backends.  The
  // mean stays a scalar left-to-right sum — kernel backends must not
  // reassociate it (see KernelOps::lateness), so it is folded here over
  // the kernel's elementwise output in the original node order.
  thread_local std::vector<double> finish, deadline, late;
  if (finish.size() < n) {
    finish.resize(n);
    deadline.resize(n);
    late.resize(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    finish[i] = schedule.placement(comps[i]).finish;
    deadline[i] = assignment.abs_deadline(comps[i]);
  }
  kernels::LatenessReduce reduce;
  kernels::active().lateness(finish.data(), deadline.data(), n, kTimeEps,
                             late.data(), &reduce);
  Time sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += late[i];
  stats.max_lateness = reduce.max;
  stats.argmax = comps[reduce.argmax];
  stats.missed = static_cast<std::size_t>(reduce.missed);
  stats.count = n;
  stats.mean_lateness = sum / static_cast<double>(n);
  return stats;
}

Time end_to_end_lateness(const TaskGraph& graph, const Schedule& schedule) {
  Time worst = -kInfiniteTime;
  for (const NodeId id : graph.outputs()) {
    const Time deadline = graph.node(id).boundary_deadline;
    FEAST_REQUIRE(is_set(deadline));
    worst = std::max(worst, schedule.placement(id).finish - deadline);
  }
  return graph.outputs().empty() ? 0.0 : worst;
}

}  // namespace feast
