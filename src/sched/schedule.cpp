#include "sched/schedule.hpp"

#include <algorithm>

namespace feast {

const TaskPlacement& Schedule::placement(NodeId id) const {
  FEAST_REQUIRE(id.index() < placements_.size());
  const TaskPlacement& p = placements_[id.index()];
  FEAST_REQUIRE_MSG(p.placed(), "subtask not placed");
  return p;
}

const TransferRecord& Schedule::transfer(NodeId id) const {
  FEAST_REQUIRE(id.index() < transfers_.size());
  const TransferRecord& t = transfers_[id.index()];
  FEAST_REQUIRE_MSG(t.recorded(), "transfer not recorded");
  return t;
}

bool Schedule::complete(const TaskGraph& graph) const {
  // O(1) fast path: the counters track *distinct* placed/recorded nodes
  // (writers only count a slot's first write), so requiring the placed
  // count to equal the subtask count and the two together to cover every
  // node rules out the unchecked writers' realistic failure modes — a
  // double write or a missed node.  (A writer addressing a node of the
  // wrong kind could still satisfy the counts; that corrupts the trace
  // itself and is caught by the validator and the differential oracle.)
  // This runs as a postcondition on every scheduled graph on the batch
  // hot path, where the full walk was measurable.
  if (placements_.size() == graph.node_count() &&
      placed_count_ + transfer_count_ == graph.node_count() &&
      placed_count_ == graph.subtask_count()) {
    return true;
  }
  // Walk node ids directly: computation_nodes()/communication_nodes()
  // materialize fresh vectors, and this check runs once per scheduled
  // graph on the experiment hot path.
  for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
    const NodeId id(v);
    if (graph.is_computation(id)) {
      if (id.index() >= placements_.size() || !placements_[id.index()].placed()) {
        return false;
      }
    } else if (id.index() >= transfers_.size() || !transfers_[id.index()].recorded()) {
      return false;
    }
  }
  return true;
}

std::vector<NodeId> Schedule::tasks_on(ProcId proc) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i].placed() && placements_[i].proc == proc) {
      out.push_back(NodeId(static_cast<std::uint32_t>(i)));
    }
  }
  std::sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
    return placements_[a.index()].start < placements_[b.index()].start;
  });
  return out;
}

Time Schedule::busy_time(ProcId proc) const {
  Time busy = 0.0;
  for (const TaskPlacement& p : placements_) {
    if (p.placed() && p.proc == proc) busy += p.finish - p.start;
  }
  return busy;
}

double Schedule::average_utilization() const {
  const Time span = makespan();
  if (span <= 0.0 || n_procs_ == 0) return 0.0;
  Time busy = 0.0;
  for (const TaskPlacement& p : placements_) {
    if (p.placed()) busy += p.finish - p.start;
  }
  return busy / (span * static_cast<double>(n_procs_));
}

}  // namespace feast
