/// \file diffsched.hpp
/// \brief Differential testing of the two list-scheduler cores.
///
/// Replays randomized workloads — varied graph shapes, locality mixes,
/// machine sizes, metrics and contention models — through both
/// list_schedule (optimized) and list_schedule_ref (reference) under every
/// {ReleasePolicy × SelectionPolicy × ProcessorPolicy} combination, the
/// optimized core once per available kernel backend (sched/kernels), and
/// asserts byte-identical Schedule traces plus validator acceptance of
/// every (core × backend) pair.  This is the oracle that lets the
/// optimized core and its SIMD backends evolve freely: any divergence from
/// the retained §5.3 implementation fails loudly with a reproducible
/// (seed, trial, combo, backend) coordinate.
///
/// Shared by the `feastc diffsched` subcommand (CI runs ≥500 trials) and
/// tests/test_sched_differential.cpp (a quicker slice for ctest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace feast {

/// Parameters of a differential run.
struct DiffSchedConfig {
  std::uint64_t seed = 1;  ///< Root seed; trials derive via seed_for().
  int trials = 500;        ///< Randomized workloads (each × 12 policy combos).
  bool quick = false;      ///< Shrink graphs/machines for smoke runs.
};

/// Outcome of a differential run.
struct DiffSchedResult {
  int trials = 0;           ///< Workloads replayed.
  int combos = 0;           ///< Policy combinations per workload (12).
  int backends = 0;         ///< Kernel backends certified per combo.
  long long schedules = 0;  ///< Total invocations (trials × combos × (1 + backends)).
  int mismatches = 0;       ///< Trace divergences between the cores.
  int invalid = 0;          ///< Validator rejections (either core).
  std::string first_problem;  ///< Reproducer line for the first failure.

  bool ok() const noexcept { return mismatches == 0 && invalid == 0; }
};

/// Runs the differential harness.  When \p progress is non-null, emits a
/// short line every few hundred trials and a final summary.
DiffSchedResult run_diffsched(const DiffSchedConfig& config,
                              std::ostream* progress = nullptr);

}  // namespace feast
