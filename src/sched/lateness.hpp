/// \file lateness.hpp
/// \brief Schedule-quality metrics (§4.1 of the paper).
///
/// The *lateness* of a subtask is its completion time minus its absolute
/// deadline — non-positive in valid schedules, determined after scheduling.
/// The paper's headline statistic is the **maximum task lateness**: the
/// lateness of the single worst subtask, indicating how far from
/// infeasibility the schedule is and how much extra background workload it
/// could absorb.
#pragma once

#include "core/annotation.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Lateness summary over the computation subtasks of one schedule.
struct LatenessStats {
  Time max_lateness = -kInfiniteTime;  ///< The paper's headline metric.
  NodeId argmax;                       ///< Subtask attaining the maximum.
  Time mean_lateness = 0.0;
  std::size_t missed = 0;  ///< Subtasks with positive lateness.
  std::size_t count = 0;   ///< Computation subtasks measured.

  /// True when every subtask met its absolute deadline.
  bool feasible() const noexcept { return missed == 0; }
};

/// Lateness of one computation subtask: finish − absolute deadline.
Time lateness_of(const DeadlineAssignment& assignment, const Schedule& schedule,
                 NodeId id);

/// Lateness statistics against the *assigned* (distributed) deadlines —
/// this is what Figures 2–5 plot.
LatenessStats computation_lateness(const TaskGraph& graph,
                                   const DeadlineAssignment& assignment,
                                   const Schedule& schedule);

/// Maximum lateness of the output subtasks against their *end-to-end*
/// boundary deadlines — whether the application as a whole met its
/// deadline, independent of how the windows were distributed.
Time end_to_end_lateness(const TaskGraph& graph, const Schedule& schedule);

}  // namespace feast
