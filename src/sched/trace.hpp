/// \file trace.hpp
/// \brief Exact schedule-trace comparison for differential testing.
///
/// A schedule's *trace* is the full record the scheduler emits: per
/// computation subtask its (processor, start, finish), per communication
/// subtask its (depart, arrive, crossed_bus).  The optimized and reference
/// scheduler cores promise byte-identical traces (the contract in
/// list_scheduler_detail.hpp); these helpers are how the differential
/// harness checks that promise.
///
/// Comparison uses exact double equality — deliberately not the
/// epsilon-tolerant time_eq — because the contract is bit-level
/// determinism, not numerical closeness.  The digest canonicalizes -0.0 to
/// 0.0 so value-equal traces always hash equal.
#pragma once

#include <cstdint>
#include <string>

#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// True when \p a and \p b record exactly the same trace for every node of
/// \p graph.  On mismatch, when \p why is non-null, it receives a one-line
/// description of the first differing node.
bool schedule_trace_equal(const TaskGraph& graph, const Schedule& a, const Schedule& b,
                          std::string* why = nullptr);

/// FNV-1a 64-bit digest of the trace in node-id order.  Equal traces hash
/// equal on any platform with IEEE-754 doubles; use it to pin golden
/// traces in logs without storing full schedules.
std::uint64_t schedule_trace_digest(const TaskGraph& graph, const Schedule& schedule);

}  // namespace feast
