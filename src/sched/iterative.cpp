#include "sched/iterative.hpp"

#include "core/slicing.hpp"
#include "sched/schedule_validate.hpp"

namespace feast {

namespace {

/// Placement of every computation node according to a schedule.
std::vector<ProcId> schedule_placement(const TaskGraph& graph, const Schedule& schedule) {
  std::vector<ProcId> placement(graph.node_count());
  for (const NodeId id : graph.computation_nodes()) {
    placement[id.index()] = schedule.placement(id).proc;
  }
  return placement;
}

}  // namespace

IterativeResult iterate_distribution(const TaskGraph& graph, SliceMetric& metric,
                                     const CommCostEstimator& initial_estimator,
                                     const Machine& machine,
                                     const IterativeOptions& options) {
  FEAST_REQUIRE(options.max_rounds >= 1);
  machine.check();

  IterativeResult best;
  Time best_lateness = kInfiniteTime;
  std::vector<ProcId> placement = pinned_placement(graph);

  IterativeResult result;
  for (int round = 0; round < options.max_rounds; ++round) {
    const AssignmentAwareEstimator estimator(placement, initial_estimator,
                                             machine.time_per_item);
    DeadlineAssignment assignment = distribute_deadlines(graph, metric, estimator);
    Schedule schedule = list_schedule(graph, assignment, machine, options.scheduler);
    const LatenessStats lateness = computation_lateness(graph, assignment, schedule);
    result.history.push_back(lateness.max_lateness);

    const bool improved = lateness.max_lateness < best_lateness - kTimeEps;
    if (round == 0 || improved) {
      best_lateness = lateness.max_lateness;
      best.assignment = std::move(assignment);
      best.lateness = lateness;
      best.best_round = round;
      placement = schedule_placement(graph, schedule);
      best.schedule = std::move(schedule);
    } else {
      // Feed the (non-improving) round's assignment forward anyway unless
      // we are stopping: oscillation sometimes escapes a local optimum.
      if (options.stop_when_stalled) break;
      placement = schedule_placement(graph, schedule);
    }
  }

  best.history = std::move(result.history);
  return best;
}

}  // namespace feast
