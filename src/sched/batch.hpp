/// \file batch.hpp
/// \brief Prepared graph topologies and the batch scheduling entry point.
///
/// The experiment pipeline reschedules the *same* graphs over and over: a
/// figure-2 cell runs a 128-graph batch per (strategy, size) pair, the
/// policy sweeps replay one batch under 12 policy combinations, and the
/// iterative refiner reschedules one graph per iteration.  The TaskGraph
/// representation those reschedules walk is an AoS of ~128-byte Nodes
/// (name strings, per-node pred/succ vectors) — cache-hostile for a
/// scheduler whose whole run touches every node several times.
///
/// PreparedTopology flattens the assignment-independent part of a
/// (graph, machine) pair into SoA arrays once — CSR predecessor and
/// successor comm lists, packed execution times, transfer latencies,
/// pinning, release floors — so a scheduling run reads contiguous arrays
/// only, and repeated runs over the same graph skip graph preparation
/// entirely.  The per-assignment part (release floors under the policy,
/// selection keys) is rebuilt per run from the packed windows; the sorted
/// selection order it implies is memoized per topology and revalidated
/// against the fresh keys, so replaying an assignment skips the sort.
///
/// BatchScheduler is the batch entry point: it owns one set of arenas
/// (prepared topologies per slot, one SchedulerScratch, one reusable
/// Schedule) and pipelines graph preparation against placement — the next
/// slot's topology is prepared while the current schedule is still being
/// consumed, and a repeated pass over the same batch runs placement only.
/// Steady state performs zero heap allocation per run (asserted by
/// tests/test_sched_batch.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/annotation.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Assignment-independent SoA mirror of one (graph, machine) pair.  All
/// arrays are indexed by node id unless noted; members are public for the
/// scheduler core, like SchedulerScratch.  build() is grow-only: rebinding
/// a topology to a new pair reuses every buffer.
class PreparedTopology {
 public:
  /// Flattens \p graph for \p machine.  Validates pins against the
  /// machine's processor count (the per-run check list_schedule used to
  /// do).  The graph and machine are borrowed: the topology is valid only
  /// while both outlive it unmodified.
  void build(const TaskGraph& graph, const Machine& machine);

  /// True when this topology was built for exactly (\p graph, \p machine)
  /// — same graph object, same shape, same transfer rate and processor
  /// count.  An advisory identity check for arena reuse: callers that
  /// rebuild graphs in place must rebuild the topology too.
  bool matches(const TaskGraph& graph, const Machine& machine) const noexcept;

  /// The graph this topology mirrors (nullptr before the first build()).
  const TaskGraph* source_graph() const noexcept { return graph_; }

  std::size_t n_nodes = 0;        ///< graph.node_count() at build time.
  std::uint32_t n_subtasks = 0;   ///< Computation-subtask count.

  // --- per-node arrays (sized n_nodes) ---------------------------------
  std::vector<Time> exec;          ///< Nominal execution time (0 for comm).
  std::vector<Time> latency;       ///< Transfer latency (comm slots).
  std::vector<Time> eager_floor;   ///< Eager release floor (comp slots).
  std::vector<std::uint32_t> pinned;        ///< ProcId value or kInvalid.
  std::vector<std::uint32_t> waiting_init;  ///< Predecessor counts (comp).
  std::vector<std::uint32_t> comm_sink;     ///< Consumer id (comm slots).

  // --- CSR comm lists (offsets sized n_nodes + 1) ----------------------
  std::vector<std::uint32_t> pred_offset;  ///< Into pred_comms.
  std::vector<NodeId> pred_comms;  ///< Incoming comms, ascending by id.
  std::vector<std::uint32_t> succ_offset;  ///< Into succ_comms.
  std::vector<NodeId> succ_comms;  ///< Outgoing comms, insertion order.

  /// Computation-node ids in id order (the packed ↔ graph index map for
  /// lateness/stats reductions).
  std::vector<std::uint32_t> comp_ids;

  // --- selection-order cache (assignment-dependent) --------------------
  /// The scheduler's per-run precomputation — release floors, selection
  /// keys, the sorted priority order — depends only on the deadline
  /// windows and the run's policies, not on the machine, and the
  /// experiment pipeline replays one assignment across repetitions,
  /// processor counts and contention models.  prepare() memoizes all of it
  /// here, keyed by the raw window images: a run whose (release,
  /// rel_deadline) bit images equal the cached run's entry for entry under
  /// the same policy tag reuses floors and permutation outright (keys and
  /// floors are pure functions of the windows, the topology's static
  /// arrays and the policies, and the sort is deterministic, so everything
  /// cached is bit-identical to recomputing).  Mutable under the same
  /// thread contract as build(): one scheduling thread per topology
  /// instance.
  struct SelectionCache {
    std::vector<std::uint64_t> win_rel;  ///< Window release image per comp index.
    std::vector<std::uint64_t> win_dl;   ///< Window deadline image per comp index.
    std::vector<Time> floor;             ///< Release floor per node id (comp slots).
    std::vector<NodeId> order;           ///< Rank -> subtask id.
    std::vector<std::uint32_t> rank;     ///< Node id -> rank (comp slots).
    /// Initial ready bitset over ranks (subtasks with no predecessors).
    /// A pure function of (waiting_init, order), so it rides the same
    /// validation as the permutation itself.
    std::vector<std::uint64_t> seed_words;
    std::uint32_t seed_count = 0;        ///< Set bits in seed_words.
    /// (SelectionPolicy << 1) | time-driven-release; -1 empty.  Both
    /// policies participate: keys depend on selection, floors on release.
    int policy = -1;
  };
  mutable SelectionCache sel_cache;

 private:
  const TaskGraph* graph_ = nullptr;
  std::size_t graph_nodes_ = 0;
  double time_per_item_ = -1.0;
  int n_procs_ = 0;

  std::vector<double> items_;  ///< Message sizes, staged for the scale kernel.
};

/// Schedules with the optimized core over a prepared topology into a
/// caller-owned Schedule (already reset for the topology's graph and
/// machine).  The core of list_schedule and BatchScheduler::run; exposed
/// so arena-owning callers can compose the pieces.  Trace-identical to
/// list_schedule_ref under the contract of list_scheduler_detail.hpp.
void list_schedule_prepared(const PreparedTopology& topology,
                            const DeadlineAssignment& assignment,
                            const Machine& machine,
                            const SchedulerOptions& options,
                            SchedulerScratch& scratch, Schedule& out);

/// Batch scheduling entry point: shared arenas, zero per-run allocation in
/// steady state, preparation pipelined against placement.  Not
/// thread-safe; one instance per worker thread (run_once keeps one in TLS,
/// which is how run_cell, campaigns and serve workers pick it up).
class BatchScheduler {
 public:
  BatchScheduler() = default;

  /// Schedules graphs[i] under assignments[i] on (\p machine, \p options)
  /// for i in [0, count), invoking \p sink(i, schedule) after each run.
  /// The Schedule reference is owned by the arena and valid only during
  /// the callback.  Topologies are reused across calls slot for slot:
  /// passing the same batch again (the sweep/bench pattern) skips every
  /// graph preparation.
  void run(const TaskGraph* const* graphs,
           const DeadlineAssignment* const* assignments, std::size_t count,
           const Machine& machine, const SchedulerOptions& options,
           const std::function<void(std::size_t, const Schedule&)>& sink);

  /// Single-graph form sharing the same arenas: prepares (or reuses) one
  /// topology and returns the arena schedule, valid until the next call.
  /// This is run_once's fast path.
  const Schedule& run_one(const TaskGraph& graph,
                          const DeadlineAssignment& assignment,
                          const Machine& machine,
                          const SchedulerOptions& options);

 private:
  std::vector<PreparedTopology> topologies_;  ///< One per batch slot.
  PreparedTopology single_;                   ///< run_one's slot.
  SchedulerScratch scratch_;
  Schedule schedule_;
};

}  // namespace feast
