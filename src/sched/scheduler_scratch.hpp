/// \file scheduler_scratch.hpp
/// \brief Reusable working memory for the optimized list-scheduler core.
///
/// Profiling the experiment pipeline shows the list scheduler spending a
/// large share of its time in allocation: per graph it used to allocate
/// the waiting/ready sets, one busy timeline per processor (plus one per
/// processor pair under point-to-point links), and a fresh predecessor
/// vector per placement.  A figure-2 cell schedules 128 graphs back to
/// back with the same machine shape, so almost all of that capacity is
/// immediately re-requestable.
///
/// SchedulerScratch keeps those buffers alive between runs.  list_schedule
/// rebinds it to each new (graph, machine) pair — resizing only ever grows
/// capacity — so a worker thread sweeping a batch performs no steady-state
/// heap allocation inside the scheduler.  The contents are meaningless
/// between calls; only the capacity is retained.
///
/// Thread affinity: a scratch must not be shared by concurrent
/// list_schedule calls.  The zero-argument list_schedule overload uses one
/// thread_local instance, which composes with util/parallel.hpp's
/// persistent worker pool: each worker reuses its arena across every batch
/// of every sweep in the process.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/bus.hpp"
#include "taskgraph/ids.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Working memory reused across list_schedule runs.  All members are
/// internal to the optimized core; they are public only so the scheduler
/// implementation can reach them without friend boilerplate.
struct SchedulerScratch {
  // --- per-node state (sized node_count) -------------------------------
  // Static per-graph state (execution times, CSR comm lists, pinning)
  // lives in PreparedTopology (sched/batch.hpp), not here: it survives
  // across runs of the same graph, while everything below is per-run.
  std::vector<std::uint32_t> waiting;  ///< Unplaced-predecessor counts.
  // Release floors live in the topology's SelectionCache (sched/batch.hpp)
  // with the rest of the memoized per-assignment derivation, not here.

  // --- per-communication-node state (sized node_count; comm slots used).
  // Producer data is mirrored here when the producer commits, so the
  // per-candidate-processor evaluation loops read one flat packed array
  // instead of chasing Schedule/TaskGraph accessors (which dominated the
  // profile); packing keeps each predecessor lookup on one cache line.
  struct CommMirror {
    Time finish;         ///< Producer finish (valid once the producer placed).
    Time latency;        ///< Transfer latency (written every prepare()).
    Time depart;         ///< Bus-query result cached by the consumer's
                         ///< choose pass (valid only until the first
                         ///< reserve of the same placement; see commit()).
    std::uint32_t proc;  ///< Producer processor (with finish).
  };
  std::vector<CommMirror> comm;  ///< Per-comm mirror, indexed by node id.

  // --- ready queue ------------------------------------------------------
  // Selection keys are static per run, so the priority order is fixed up
  // front: one exact (key, release, id) sort assigns every subtask a dense
  // rank, and the ready set is a bitset over ranks.  Selecting the next
  // subtask is then find-first-set over a word or two instead of a
  // comparison-heap operation per step.
  // Keys are stored as order-preserving unsigned images of the doubles
  // (detail::time_order_key), so the sort comparator is pure integer
  // lexicographic comparison.
  struct ReadyEntry {
    std::uint64_t key;      ///< Selection key under the run's policy.
    std::uint64_t release;  ///< Assigned release (first tie-break).
    NodeId id;              ///< Node id (final tie-break).
  };
  // The sorted permutation itself (rank -> id, id -> rank) lives in the
  // topology's SelectionCache (sched/batch.hpp), where it is memoized
  // across runs; only the sort input is per-run scratch.
  std::vector<ReadyEntry> sort_buf;        ///< Per-run priority sort input.
  std::vector<std::uint64_t> ready_words;  ///< Ready bitset over ranks.

  // --- per-commit ordering buffer (CSR lists live in PreparedTopology) --
  std::vector<NodeId> commit_order;

  // --- machine timelines (sized n_procs / n_procs^2) --------------------
  std::vector<BusTimeline> procs;  ///< Per-processor busy timelines.
  std::vector<Time> proc_tail;     ///< Finish of the last appended subtask.
  BusTimeline bus;                 ///< Shared-bus timeline.
  std::vector<BusTimeline> links;  ///< Per-pair link timelines.

  /// Rebinds the arena to a run over \p node_count nodes with
  /// \p rank_count computation subtasks on \p n_procs processors
  /// (\p with_links: point-to-point pair timelines needed).  Grows
  /// capacity as required, clears contents, keeps allocations.
  void bind(std::size_t node_count, std::size_t rank_count, std::size_t n_procs,
            bool with_links);
};

}  // namespace feast
