/// \file scheduler_scratch.hpp
/// \brief Reusable working memory for the optimized list-scheduler core.
///
/// Profiling the experiment pipeline shows the list scheduler spending a
/// large share of its time in allocation: per graph it used to allocate
/// the waiting/ready sets, one busy timeline per processor (plus one per
/// processor pair under point-to-point links), and a fresh predecessor
/// vector per placement.  A figure-2 cell schedules 128 graphs back to
/// back with the same machine shape, so almost all of that capacity is
/// immediately re-requestable.
///
/// SchedulerScratch keeps those buffers alive between runs.  list_schedule
/// rebinds it to each new (graph, machine) pair — resizing only ever grows
/// capacity — so a worker thread sweeping a batch performs no steady-state
/// heap allocation inside the scheduler.  The contents are meaningless
/// between calls; only the capacity is retained.
///
/// Thread affinity: a scratch must not be shared by concurrent
/// list_schedule calls.  The zero-argument list_schedule overload uses one
/// thread_local instance, which composes with util/parallel.hpp's
/// persistent worker pool: each worker reuses its arena across every batch
/// of every sweep in the process.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/bus.hpp"
#include "taskgraph/ids.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Working memory reused across list_schedule runs.  All members are
/// internal to the optimized core; they are public only so the scheduler
/// implementation can reach them without friend boilerplate.
struct SchedulerScratch {
  // --- per-node state (sized node_count) -------------------------------
  std::vector<std::uint32_t> waiting;  ///< Unplaced-predecessor counts.
  std::vector<Time> floor;             ///< Release floor under the policy.
  std::vector<Time> exec;              ///< Nominal execution times.

  // --- per-communication-node state (sized node_count; comm slots used).
  // Producer data is mirrored here when the producer commits, so the
  // per-candidate-processor evaluation loops read one flat packed array
  // instead of chasing Schedule/TaskGraph accessors (which dominated the
  // profile); packing keeps each predecessor lookup on one cache line.
  struct CommMirror {
    Time finish;         ///< Producer finish (valid once the producer placed).
    Time latency;        ///< Transfer latency (written every prepare()).
    std::uint32_t proc;  ///< Producer processor (with finish).
  };
  std::vector<CommMirror> comm;  ///< Per-comm mirror, indexed by node id.

  // --- ready queue ------------------------------------------------------
  // Selection keys are static per run, so the priority order is fixed up
  // front: one exact (key, release, id) sort assigns every subtask a dense
  // rank, and the ready set is a bitset over ranks.  Selecting the next
  // subtask is then find-first-set over a word or two instead of a
  // comparison-heap operation per step.
  // Keys are stored as order-preserving unsigned images of the doubles
  // (detail::time_order_key), so the sort comparator is pure integer
  // lexicographic comparison.
  struct ReadyEntry {
    std::uint64_t key;      ///< Selection key under the run's policy.
    std::uint64_t release;  ///< Assigned release (first tie-break).
    NodeId id;              ///< Node id (final tie-break).
  };
  std::vector<ReadyEntry> sort_buf;        ///< Per-run priority sort input.
  std::vector<NodeId> order;               ///< Subtask at each rank.
  std::vector<std::uint32_t> rank;         ///< Rank of each subtask node.
  std::vector<std::uint64_t> ready_words;  ///< Ready bitset over ranks.

  // --- predecessor communication lists (CSR, ascending node id) ---------
  std::vector<std::uint32_t> pred_offset;  ///< node_count + 1 offsets.
  std::vector<NodeId> pred_comms;          ///< Flattened, id-sorted lists.
  std::vector<NodeId> commit_order;        ///< Per-commit ordering buffer.

  // --- machine timelines (sized n_procs / n_procs^2) --------------------
  std::vector<BusTimeline> procs;  ///< Per-processor busy timelines.
  std::vector<Time> proc_tail;     ///< Finish of the last appended subtask.
  BusTimeline bus;                 ///< Shared-bus timeline.
  std::vector<BusTimeline> links;  ///< Per-pair link timelines.

  // --- contention-free ready-time fast path (sized n_procs) -------------
  std::vector<Time> local_produced;        ///< Max producer finish per proc.
  std::vector<std::uint32_t> local_epoch;  ///< Validity marks for the above.
  std::uint32_t epoch = 0;                 ///< Current evaluation epoch.

  /// Rebinds the arena to a run over \p node_count nodes on \p n_procs
  /// processors (\p with_links: point-to-point pair timelines needed).
  /// Grows capacity as required, clears contents, keeps allocations.
  void bind(std::size_t node_count, std::size_t n_procs, bool with_links);
};

}  // namespace feast
