/// \file bus.hpp
/// \brief Serialized shared-bus timeline for the contention model.
///
/// The SharedBus communication model serializes every cross-processor
/// transfer on one bus.  The timeline keeps the committed transfer slots
/// sorted and answers first-fit queries: the earliest start >= `earliest`
/// at which a slot of `duration` fits into a gap.  Queries are side-effect
/// free so the scheduler can evaluate candidate processors before
/// committing one.
#pragma once

#include <algorithm>
#include <vector>

#include "util/contracts.hpp"
#include "util/time_types.hpp"

namespace feast {

/// One committed transfer slot.
struct BusSlot {
  Time start = 0.0;
  Time end = 0.0;
};

/// Single-resource timeline with first-fit gap allocation.
///
/// Gap search is accelerated for the scheduler's access pattern (queries
/// whose earliest bound grows with scheduling progress): a tail hint
/// answers at-or-past-the-end queries in O(1), and a binary search on the
/// sorted slot starts skips the committed prefix that a query can never
/// interact with, so GapSearch placement no longer re-walks the full busy
/// list per candidate processor.  Results are exactly those of the naive
/// front-to-back first-fit walk.
class BusTimeline {
 public:
  /// Earliest start >= \p earliest at which \p duration fits.  A zero
  /// duration always fits at \p earliest.  Defined inline: the scheduler
  /// issues one query per candidate processor per placement, and the call
  /// dominated its profile when out of line.
  Time query(Time earliest, Time duration) const {
    FEAST_REQUIRE(duration >= 0.0);
    if (duration <= 0.0) return earliest;
    // Tail hint: past the last committed slot every request fits at once.
    if (slots_.empty() || slots_.back().end <= earliest + kTimeEps) return earliest;
    // Short timelines (the per-processor busy lists of paper-sized runs
    // hold a handful of slots) beat the binary search with the plain walk:
    // same algorithm as query_linear, so results are trivially identical.
    if (slots_.size() <= 16) {
      Time candidate = earliest;
      for (const BusSlot& slot : slots_) {
        if (slot.end <= candidate + kTimeEps) continue;
        if (slot.start >= candidate + duration - kTimeEps) break;
        candidate = slot.end;
      }
      return candidate;
    }
    // Only the slot straddling `earliest` and those after it can collide.
    // Slot starts are strictly increasing and slots are disjoint up to
    // kTimeEps, so every slot before the predecessor of the first slot
    // starting at or after `earliest` ends by `earliest + kTimeEps` — the
    // first-fit walk would skip it without moving the candidate.
    auto it = std::lower_bound(
        slots_.begin(), slots_.end(), earliest,
        [](const BusSlot& slot, Time t) { return slot.start < t; });
    if (it != slots_.begin()) --it;
    Time candidate = earliest;
    for (; it != slots_.end(); ++it) {
      if (it->end <= candidate + kTimeEps) continue;  // gap is past this slot
      if (it->start >= candidate + duration - kTimeEps) break;  // fits before it
      candidate = it->end;  // collision: try right after this slot
    }
    return candidate;
  }

  /// The naive front-to-back first-fit walk — the reference semantics the
  /// accelerated query() must reproduce exactly.  Kept (a) for the
  /// reference scheduler core, so differential runs exercise both
  /// implementations against each other on every workload, and (b) as the
  /// oracle for BusTimeline's own equivalence tests.
  Time query_linear(Time earliest, Time duration) const {
    FEAST_REQUIRE(duration >= 0.0);
    if (duration <= 0.0) return earliest;
    Time candidate = earliest;
    for (const BusSlot& slot : slots_) {
      if (slot.end <= candidate + kTimeEps) continue;      // gap is past this slot
      if (slot.start >= candidate + duration - kTimeEps) break;  // fits before it
      candidate = slot.end;  // collision: try right after this slot
    }
    return candidate;
  }

  /// Commits a slot found by query(); returns its start.  The slot must
  /// not collide with committed slots (checked).
  Time reserve(Time earliest, Time duration);

  /// reserve() in the growth seed's form: the naive front-to-back gap walk
  /// followed by a sorted insert with no tail fast path.  Kept for the
  /// reference scheduler core, whose performance baseline must not ride
  /// the accelerated machinery it is compared against.  Result- and
  /// state-identical to reserve().
  Time reserve_linear(Time earliest, Time duration) {
    const Time start = query_linear(earliest, duration);
    if (duration > 0.0) {
      const BusSlot slot{start, start + duration};
      auto it = std::lower_bound(slots_.begin(), slots_.end(), slot,
                                 [](const BusSlot& a, const BusSlot& b) {
                                   return a.start < b.start;
                                 });
      if (it != slots_.begin()) {
        FEAST_ASSERT_MSG(time_le(std::prev(it)->end, slot.start),
                         "bus slot collision");
      }
      if (it != slots_.end()) {
        FEAST_ASSERT_MSG(time_le(slot.end, it->start), "bus slot collision");
      }
      slots_.insert(it, slot);
    }
    return start;
  }

  /// Commits the slot [\p start, \p start + \p duration) directly, when the
  /// caller already holds a fitting start from query() — the scheduler's
  /// processor commit, where re-running the gap query inside reserve()
  /// would only rediscover the start it was handed.  Inserts exactly the
  /// slot reserve() would have inserted.  Appends in O(1) when the slot
  /// lands at or past the tail (the overwhelmingly common case: execution
  /// starts grow with scheduling progress).
  void reserve_at(Time start, Time duration) {
    if (duration <= 0.0) return;
    const BusSlot slot{start, start + duration};
    if (slots_.empty() || slots_.back().end <= start + kTimeEps) {
      slots_.push_back(slot);
      return;
    }
    auto it = std::lower_bound(slots_.begin(), slots_.end(), slot,
                               [](const BusSlot& a, const BusSlot& b) {
                                 return a.start < b.start;
                               });
    if (it != slots_.begin()) {
      FEAST_ASSERT_MSG(time_le(std::prev(it)->end, slot.start), "bus slot collision");
    }
    if (it != slots_.end()) {
      FEAST_ASSERT_MSG(time_le(slot.end, it->start), "bus slot collision");
    }
    slots_.insert(it, slot);
  }

  /// Committed slots in time order.
  const std::vector<BusSlot>& slots() const noexcept { return slots_; }

  /// Total committed transfer time.
  Time total_busy() const noexcept;

  /// Drops all committed slots but keeps the allocation (scratch reuse).
  void clear() noexcept { slots_.clear(); }

 private:
  std::vector<BusSlot> slots_;  ///< Sorted by start, pairwise disjoint.
};

}  // namespace feast
