/// \file bus.hpp
/// \brief Serialized shared-bus timeline for the contention model.
///
/// The SharedBus communication model serializes every cross-processor
/// transfer on one bus.  The timeline keeps the committed transfer slots
/// sorted and answers first-fit queries: the earliest start >= `earliest`
/// at which a slot of `duration` fits into a gap.  Queries are side-effect
/// free so the scheduler can evaluate candidate processors before
/// committing one.
#pragma once

#include <vector>

#include "util/time_types.hpp"

namespace feast {

/// One committed transfer slot.
struct BusSlot {
  Time start = 0.0;
  Time end = 0.0;
};

/// Single-resource timeline with first-fit gap allocation.
class BusTimeline {
 public:
  /// Earliest start >= \p earliest at which \p duration fits.  A zero
  /// duration always fits at \p earliest.
  Time query(Time earliest, Time duration) const;

  /// Commits a slot found by query(); returns its start.  The slot must
  /// not collide with committed slots (checked).
  Time reserve(Time earliest, Time duration);

  /// Committed slots in time order.
  const std::vector<BusSlot>& slots() const noexcept { return slots_; }

  /// Total committed transfer time.
  Time total_busy() const noexcept;

 private:
  std::vector<BusSlot> slots_;  ///< Sorted by start, pairwise disjoint.
};

}  // namespace feast
