/// \file bus.hpp
/// \brief Serialized shared-bus timeline for the contention model.
///
/// The SharedBus communication model serializes every cross-processor
/// transfer on one bus.  The timeline keeps the committed transfer slots
/// sorted and answers first-fit queries: the earliest start >= `earliest`
/// at which a slot of `duration` fits into a gap.  Queries are side-effect
/// free so the scheduler can evaluate candidate processors before
/// committing one.
///
/// Storage is SoA — parallel `starts[]` / `ends[]` arrays rather than an
/// array of slot structs — so a gap probe walks one contiguous double
/// stream per comparison and the kernel backends (sched/kernels) can scan
/// it four lanes at a time.  The first-fit walk itself is the gap_scan
/// kernel; see kernels.hpp for the exactness contract that keeps every
/// backend's answer bit-identical to the naive walk.
#pragma once

#include <algorithm>
#include <vector>

#include "sched/kernels/kernels.hpp"
#include "util/contracts.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Single-resource timeline with first-fit gap allocation.
///
/// Gap search is accelerated for the scheduler's access pattern (queries
/// whose earliest bound grows with scheduling progress): a tail hint
/// answers at-or-past-the-end queries in O(1), and a binary search on the
/// sorted slot starts skips the committed prefix that a query can never
/// interact with, so GapSearch placement no longer re-walks the full busy
/// list per candidate processor.  Results are exactly those of the naive
/// front-to-back first-fit walk.
class BusTimeline {
 public:
  /// Earliest start >= \p earliest at which \p duration fits, scanning
  /// with \p ops (the scheduler passes its per-run kernel table so the
  /// dispatch lookup is not repeated per probe).  A zero duration always
  /// fits at \p earliest.  Defined inline: the scheduler issues one query
  /// per candidate processor per placement, and the call dominated its
  /// profile when out of line.
  Time query_with(const kernels::KernelOps& ops, Time earliest,
                  Time duration) const {
    FEAST_REQUIRE(duration >= 0.0);
    if (duration <= 0.0) return earliest;
    const std::size_t n = starts_.size();
    // Tail hint: past the last committed slot every request fits at once.
    if (n == 0 || ends_[n - 1] <= earliest + kTimeEps) return earliest;
    // Short timelines run the walk inline: the per-processor busy lists of
    // paper-sized runs hold a handful of slots, and at those lengths the
    // indirect kernel call costs more than the scan it would accelerate
    // (measured ~180 gap probes per run, most against 2-5 slot lists).
    // The loop is character-for-character the scalar kernel's, so the
    // answer is bit-identical regardless of which path a probe takes.
    if (n <= 16) {
      Time candidate = earliest;
      for (std::size_t i = 0; i < n; ++i) {
        if (ends_[i] <= candidate + kTimeEps) continue;
        if (starts_[i] >= candidate + duration - kTimeEps) break;
        candidate = ends_[i];
      }
      return candidate;
    }
    // Long timelines (the shared bus) position the scan past the prefix a
    // query can never interact with.  Only the slot straddling `earliest`
    // and those after it can collide: slot starts are strictly increasing
    // and slots are disjoint up to kTimeEps, so every slot before the
    // predecessor of the first slot starting at or after `earliest` ends
    // by `earliest + kTimeEps` — the first-fit walk would skip it without
    // moving the candidate.  Queries arrive with earliest bounds near the
    // committed tail (producer finishes grow with scheduling progress), so
    // a short backward gallop finds that position without the binary
    // search's data-dependent branches; the search remains the fallback
    // for the rare query landing deep in the prefix.
    std::size_t from;
    if (starts_[n - 8] <= earliest) {
      std::size_t i = n;  // <= 8 steps: starts_[n - 8] <= earliest bounds it
      while (i > 0 && starts_[i - 1] > earliest) --i;
      from = i > 0 ? i - 1 : 0;
    } else {
      from = static_cast<std::size_t>(
          std::lower_bound(starts_.begin(), starts_.end(), earliest) -
          starts_.begin());
      if (from > 0) --from;
    }
    // With few slots left past the position, the walk is again cheaper
    // inline than through the kernel call (same loop, same answer).
    if (n - from <= 16) {
      Time candidate = earliest;
      for (std::size_t i = from; i < n; ++i) {
        if (ends_[i] <= candidate + kTimeEps) continue;
        if (starts_[i] >= candidate + duration - kTimeEps) break;
        candidate = ends_[i];
      }
      return candidate;
    }
    return ops.gap_scan(starts_.data(), ends_.data(), n, from, earliest,
                        duration, kTimeEps);
  }

  /// query_with on the active kernel backend.
  Time query(Time earliest, Time duration) const {
    return query_with(kernels::active(), earliest, duration);
  }

  /// The naive front-to-back first-fit walk — the reference semantics the
  /// accelerated query() must reproduce exactly.  Kept (a) for the
  /// reference scheduler core, so differential runs exercise both
  /// implementations against each other on every workload, and (b) as the
  /// oracle for BusTimeline's own equivalence tests.  Deliberately a plain
  /// scalar loop, not a kernel call: the reference path must not ride the
  /// machinery it is the oracle for.
  Time query_linear(Time earliest, Time duration) const {
    FEAST_REQUIRE(duration >= 0.0);
    if (duration <= 0.0) return earliest;
    Time candidate = earliest;
    for (std::size_t i = 0; i < starts_.size(); ++i) {
      if (ends_[i] <= candidate + kTimeEps) continue;  // gap is past this slot
      if (starts_[i] >= candidate + duration - kTimeEps) break;  // fits before it
      candidate = ends_[i];  // collision: try right after this slot
    }
    return candidate;
  }

  /// Commits a slot found by query(); returns its start.  The slot must
  /// not collide with committed slots (checked).
  Time reserve(Time earliest, Time duration);

  /// reserve() scanning with \p ops (see query_with).
  Time reserve_with(const kernels::KernelOps& ops, Time earliest, Time duration) {
    const Time start = query_with(ops, earliest, duration);
    reserve_at(start, duration);
    return start;
  }

  /// reserve() in the growth seed's form: the naive front-to-back gap walk
  /// followed by a sorted insert with no tail fast path.  Kept for the
  /// reference scheduler core, whose performance baseline must not ride
  /// the accelerated machinery it is compared against.  Result- and
  /// state-identical to reserve().
  Time reserve_linear(Time earliest, Time duration) {
    const Time start = query_linear(earliest, duration);
    if (duration > 0.0) insert_slot(start, start + duration);
    return start;
  }

  /// Commits the slot [\p start, \p start + \p duration) directly, when the
  /// caller already holds a fitting start from query() — the scheduler's
  /// processor commit, where re-running the gap query inside reserve()
  /// would only rediscover the start it was handed.  Inserts exactly the
  /// slot reserve() would have inserted.  Appends in O(1) when the slot
  /// lands at or past the tail (the overwhelmingly common case: execution
  /// starts grow with scheduling progress).
  void reserve_at(Time start, Time duration) {
    if (duration <= 0.0) return;
    if (starts_.empty() || ends_.back() <= start + kTimeEps) {
      starts_.push_back(start);
      ends_.push_back(start + duration);
      return;
    }
    insert_slot(start, start + duration);
  }

  /// Number of committed slots.
  std::size_t size() const noexcept { return starts_.size(); }

  /// True when no slot is committed.
  bool empty() const noexcept { return starts_.empty(); }

  /// Committed slot starts, ascending (parallel to ends()).
  const std::vector<Time>& starts() const noexcept { return starts_; }

  /// Committed slot ends, ascending (parallel to starts()).
  const std::vector<Time>& ends() const noexcept { return ends_; }

  /// Total committed transfer time.
  Time total_busy() const noexcept;

  /// Drops all committed slots but keeps the allocation (scratch reuse).
  void clear() noexcept {
    starts_.clear();
    ends_.clear();
  }

 private:
  /// Sorted insert with collision checks (the non-tail path).
  void insert_slot(Time start, Time end) {
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(starts_.begin(), starts_.end(), start) -
        starts_.begin());
    if (pos > 0) {
      FEAST_ASSERT_MSG(time_le(ends_[pos - 1], start), "bus slot collision");
    }
    if (pos < starts_.size()) {
      FEAST_ASSERT_MSG(time_le(end, starts_[pos]), "bus slot collision");
    }
    starts_.insert(starts_.begin() + static_cast<std::ptrdiff_t>(pos), start);
    ends_.insert(ends_.begin() + static_cast<std::ptrdiff_t>(pos), end);
  }

  // Parallel SoA arrays: slot i occupies [starts_[i], ends_[i]).  Sorted
  // by start, pairwise disjoint (up to kTimeEps).
  std::vector<Time> starts_;
  std::vector<Time> ends_;
};

}  // namespace feast
