#include "sched/batch.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "sched/kernels/kernels.hpp"

namespace feast {

void PreparedTopology::build(const TaskGraph& graph, const Machine& machine) {
  const std::size_t n = graph.node_count();
  graph_ = &graph;
  graph_nodes_ = n;
  time_per_item_ = machine.time_per_item;
  n_procs_ = machine.n_procs;
  n_nodes = n;
  n_subtasks = static_cast<std::uint32_t>(graph.subtask_count());

  exec.assign(n, 0.0);
  eager_floor.assign(n, 0.0);
  pinned.assign(n, ProcId::kInvalid);
  waiting_init.assign(n, 0);
  comm_sink.assign(n, 0);
  pred_offset.assign(n + 1, 0);
  pred_comms.clear();
  succ_offset.assign(n + 1, 0);
  succ_comms.clear();
  comp_ids.clear();
  items_.assign(n, 0.0);
  latency.resize(n);

  for (std::uint32_t v = 0; v < n; ++v) {
    const NodeId id(v);
    const Node& node = graph.node(id);
    if (node.kind == NodeKind::Communication) {
      items_[v] = node.message_items;
      comm_sink[v] = graph.comm_sink(id).value;
      pred_offset[v + 1] = static_cast<std::uint32_t>(pred_comms.size());
      succ_offset[v + 1] = static_cast<std::uint32_t>(succ_comms.size());
      continue;
    }
    comp_ids.push_back(v);
    exec[v] = node.exec_time;
    eager_floor[v] =
        is_set(node.boundary_release) ? node.boundary_release : 0.0;
    const ProcId pin = node.pinned;
    FEAST_REQUIRE_MSG(
        !pin.valid() || static_cast<int>(pin.index()) < machine.n_procs,
        "pinned processor outside the machine");
    pinned[v] = pin.value;
    waiting_init[v] = static_cast<std::uint32_t>(node.preds.size());
    // Hoisted predecessor comm list, ascending by node id (the base
    // ordering of the trace contract's (finish, id) commit order).  Arc
    // insertion appends increasing comm ids, so this is a copy in the
    // common case; the insertion pass restores order otherwise.
    const std::size_t flat = pred_comms.size();
    for (const NodeId comm : node.preds) {
      pred_comms.push_back(comm);
      std::size_t j = pred_comms.size() - 1;
      while (j > flat && comm < pred_comms[j - 1]) {
        pred_comms[j] = pred_comms[j - 1];
        --j;
      }
      pred_comms[j] = comm;
    }
    pred_offset[v + 1] = static_cast<std::uint32_t>(pred_comms.size());
    for (const NodeId comm : node.succs) succ_comms.push_back(comm);
    succ_offset[v + 1] = static_cast<std::uint32_t>(succ_comms.size());
  }

  // latency[c] = message_items[c] × time_per_item: one contiguous pass
  // through the scale kernel (identical expression to
  // Machine::transfer_time per element).
  kernels::active().scale(items_.data(), n, machine.time_per_item,
                          latency.data());

  // The memoized selection order names this topology's node ids; a rebind
  // to a new graph must drop it even when the key images would collide.
  sel_cache.policy = -1;
}

bool PreparedTopology::matches(const TaskGraph& graph,
                               const Machine& machine) const noexcept {
  return graph_ == &graph && graph_nodes_ == graph.node_count() &&
         n_subtasks == graph.subtask_count() &&
         time_per_item_ == machine.time_per_item &&
         n_procs_ == machine.n_procs;
}

void BatchScheduler::run(
    const TaskGraph* const* graphs, const DeadlineAssignment* const* assignments,
    std::size_t count, const Machine& machine, const SchedulerOptions& options,
    const std::function<void(std::size_t, const Schedule&)>& sink) {
  if (count == 0) return;
  obs::SpanScope span(obs::active(), obs::Span::SchedBatch);
  if (topologies_.size() < count) topologies_.resize(count);
  if (!topologies_[0].matches(*graphs[0], machine)) {
    topologies_[0].build(*graphs[0], machine);
  }
  for (std::size_t i = 0; i < count; ++i) {
    // Pipelined preparation: the next slot's topology is built before this
    // slot's placement, so its SoA arrays are resident when placement gets
    // there — and on a repeated pass over the same batch (the sweep /
    // bench / policy-ablation pattern) every build is skipped outright.
    if (i + 1 < count && !topologies_[i + 1].matches(*graphs[i + 1], machine)) {
      topologies_[i + 1].build(*graphs[i + 1], machine);
    }
    schedule_.reset(*graphs[i], machine);
    list_schedule_prepared(topologies_[i], *assignments[i], machine, options,
                           scratch_, schedule_);
    sink(i, schedule_);
  }
}

const Schedule& BatchScheduler::run_one(const TaskGraph& graph,
                                        const DeadlineAssignment& assignment,
                                        const Machine& machine,
                                        const SchedulerOptions& options) {
  // Always rebuilt: an ad-hoc caller gives no identity guarantee (a new
  // graph can reuse a freed graph's address, which matches() cannot see).
  // The build is one flat walk; the arenas it fills are still reused.
  single_.build(graph, machine);
  schedule_.reset(graph, machine);
  list_schedule_prepared(single_, assignment, machine, options, scratch_,
                         schedule_);
  return schedule_;
}

}  // namespace feast
