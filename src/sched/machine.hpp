/// \file machine.hpp
/// \brief The target platform of §5.1: a homogeneous multiprocessor with a
///        time-multiplexed shared bus.
///
/// Communication between subtasks on the same processor goes through shared
/// memory at negligible cost; between processors it costs
/// `message items × time_per_item` (one time unit per data item in the
/// paper) and may proceed concurrently with computation.
#pragma once

#include <vector>

#include "util/contracts.hpp"
#include "util/time_types.hpp"

namespace feast {

/// How interprocessor messages share the interconnect.
enum class CommContention {
  /// Every message experiences exactly its transfer latency; the bus has
  /// unlimited concurrent capacity.  This is the classic list-scheduling
  /// communication-delay model [Lee et al.] and the paper's default.
  ContentionFree,
  /// A single shared bus serializes all transfers; message slots are
  /// allocated in scheduling order (which the deadline-driven scheduler
  /// makes EDF-ordered).  The contention-based extension of §8.
  SharedBus,
  /// A dedicated link per unordered processor pair: transfers between the
  /// same pair serialize (half-duplex), transfers between different pairs
  /// proceed in parallel.  The "different interconnection topologies"
  /// extension of §8.
  PointToPointLinks,
};

/// Returns "contention-free", "shared-bus" or "point-to-point".
inline const char* to_string(CommContention model) noexcept {
  switch (model) {
    case CommContention::ContentionFree: return "contention-free";
    case CommContention::SharedBus: return "shared-bus";
    case CommContention::PointToPointLinks: return "point-to-point";
  }
  return "?";
}

/// A multiprocessor, homogeneous by default (the paper's platform).
///
/// §8 raises heterogeneous systems as future work; FEAST models them with
/// per-processor speed factors: a subtask with worst-case execution time c
/// runs for c / speed on that processor.  Execution-time estimates used by
/// deadline distribution always refer to the *nominal* (speed 1) time —
/// distribution happens before assignment, so it cannot know the speed.
struct Machine {
  int n_procs = 2;
  double time_per_item = 1.0;  ///< Bus cost per transmitted data item.
  CommContention contention = CommContention::ContentionFree;

  /// Per-processor speed factors; empty means homogeneous speed 1.  When
  /// non-empty, must have n_procs positive entries.
  std::vector<double> speeds;

  /// Validates the configuration.
  void check() const {
    FEAST_REQUIRE_MSG(n_procs >= 1, "machine needs at least one processor");
    FEAST_REQUIRE_MSG(time_per_item >= 0.0, "bus rate must be non-negative");
    FEAST_REQUIRE_MSG(speeds.empty() ||
                          speeds.size() == static_cast<std::size_t>(n_procs),
                      "speeds must be empty or sized to the processor count");
    for (const double s : speeds) {
      FEAST_REQUIRE_MSG(s > 0.0, "processor speeds must be positive");
    }
  }

  /// True when every processor runs at the same (unit) speed.
  bool homogeneous() const noexcept { return speeds.empty(); }

  /// Speed of processor \p proc_index.
  double speed_of(std::size_t proc_index) const {
    if (speeds.empty()) return 1.0;
    FEAST_REQUIRE(proc_index < speeds.size());
    return speeds[proc_index];
  }

  /// Execution time of a subtask with nominal WCET \p nominal on
  /// processor \p proc_index.
  Time exec_time_on(Time nominal, std::size_t proc_index) const {
    return nominal / speed_of(proc_index);
  }

  /// Transfer latency of \p items data items across the bus.
  Time transfer_time(double items) const noexcept { return items * time_per_item; }
};

}  // namespace feast
