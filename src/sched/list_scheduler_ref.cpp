/// \file list_scheduler_ref.cpp
/// \brief The retained reference implementation of the §5.3 deadline-driven
///        list scheduler.
///
/// This is the paper-faithful core the optimized list_schedule is
/// differentially tested against: a per-step linear scan over the ready
/// set, per-run timeline state, the naive front-to-back gap walk and
/// seed-form reservations (BusTimeline::query_linear / reserve_linear — so
/// differential runs also pit the accelerated gap search against its
/// reference semantics on every workload, and the perf baseline never
/// rides the optimized machinery), and straight-line placement logic that
/// maps one-to-one onto
/// the algorithm description.  Keep it simple — its job is to be obviously
/// correct, not fast.  Every decision that can influence the trace goes
/// through list_scheduler_detail.hpp so the two cores cannot drift apart
/// silently.
#include <algorithm>
#include <vector>

#include "sched/bus.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/list_scheduler_detail.hpp"

namespace feast {

namespace {

/// Scheduling context threaded through the helper functions.
struct Context {
  const TaskGraph* graph;
  const DeadlineAssignment* assignment;
  const Machine* machine;
  SchedulerOptions options;
  Schedule* schedule;
  std::vector<BusTimeline> procs;  ///< Per-processor busy timelines.
  std::vector<Time> proc_tail;     ///< Finish of the last appended subtask.
  BusTimeline bus;                 ///< Shared-bus timeline.
  std::vector<BusTimeline> links;  ///< Per-pair link timelines (point-to-point).

  /// Timeline of the link between two distinct processors.
  BusTimeline& link_between(ProcId a, ProcId b) {
    FEAST_ASSERT(a != b);
    const std::size_t lo = std::min(a.index(), b.index());
    const std::size_t hi = std::max(a.index(), b.index());
    const std::size_t n = procs.size();
    return links[lo * n + hi];
  }

  /// Earliest start of a \p duration execution on \p proc, no earlier than
  /// \p ready, under the processor policy.
  Time proc_fit(ProcId proc, Time ready, Time duration) const {
    if (options.processor_policy == ProcessorPolicy::GapSearch) {
      return procs[proc.index()].query_linear(ready, duration);
    }
    return std::max(proc_tail[proc.index()], ready);
  }

  /// Commits the execution interval on \p proc.
  void proc_commit(ProcId proc, Time start, Time duration) {
    procs[proc.index()].reserve_linear(start, duration);
    proc_tail[proc.index()] = std::max(proc_tail[proc.index()], start + duration);
  }
};

/// The time-driven lower bound on a subtask's start.
Time release_floor(const Context& ctx, NodeId id) {
  if (ctx.options.release_policy == ReleasePolicy::TimeDriven) {
    return ctx.assignment->release(id);
  }
  // Eager mode still honours the physical availability of inputs.
  const Time boundary = ctx.graph->node(id).boundary_release;
  return is_set(boundary) ? boundary : 0.0;
}

/// Arrival time of the message through comm node \p comm if the consumer
/// ran on \p proc.  Side-effect free.
Time arrival_on(Context& ctx, NodeId comm, ProcId proc) {
  const NodeId producer = ctx.graph->comm_source(comm);
  const TaskPlacement& pp = ctx.schedule->placement(producer);
  const Time produced = pp.finish;
  if (pp.proc == proc) return produced;
  const Time latency = ctx.machine->transfer_time(ctx.graph->node(comm).message_items);
  switch (ctx.machine->contention) {
    case CommContention::SharedBus:
      return ctx.bus.query_linear(produced, latency) + latency;
    case CommContention::PointToPointLinks:
      return ctx.link_between(pp.proc, proc).query_linear(produced, latency) + latency;
    case CommContention::ContentionFree:
      break;
  }
  return produced + latency;
}

/// Earliest start of \p id on \p proc (evaluation only).
Time earliest_start_on(Context& ctx, NodeId id, ProcId proc) {
  Time ready = release_floor(ctx, id);
  for (const NodeId comm : ctx.graph->preds(id)) {
    ready = std::max(ready, arrival_on(ctx, comm, proc));
  }
  return ctx.proc_fit(proc, ready,
                      ctx.machine->exec_time_on(ctx.graph->node(id).exec_time,
                                                proc.index()));
}

/// Commits \p id to \p proc: reserves bus slots, records transfers, places
/// the subtask.
void commit(Context& ctx, NodeId id, ProcId proc) {
  Time ready = release_floor(ctx, id);

  // Commit incoming transfers in (producer finish, comm id) order — the
  // trace contract's deterministic shared-bus reservation order.
  std::vector<NodeId> comms = ctx.graph->preds(id);
  std::sort(comms.begin(), comms.end());
  detail::order_comms_by_finish(comms, *ctx.graph, *ctx.schedule);
  for (const NodeId comm : comms) {
    const NodeId producer = ctx.graph->comm_source(comm);
    const TaskPlacement& pp = ctx.schedule->placement(producer);
    if (pp.proc == proc) {
      ctx.schedule->record_transfer(comm, pp.finish, pp.finish, /*crossed_bus=*/false);
      ready = std::max(ready, pp.finish);
      continue;
    }
    const Time latency = ctx.machine->transfer_time(ctx.graph->node(comm).message_items);
    Time depart = pp.finish;
    switch (ctx.machine->contention) {
      case CommContention::SharedBus:
        depart = ctx.bus.reserve_linear(pp.finish, latency);
        break;
      case CommContention::PointToPointLinks:
        depart = ctx.link_between(pp.proc, proc).reserve_linear(pp.finish, latency);
        break;
      case CommContention::ContentionFree:
        break;
    }
    const Time arrive = depart + latency;
    ctx.schedule->record_transfer(comm, depart, arrive, /*crossed_bus=*/true);
    ready = std::max(ready, arrive);
  }

  const Time exec =
      ctx.machine->exec_time_on(ctx.graph->node(id).exec_time, proc.index());
  const Time start = ctx.proc_fit(proc, ready, exec);
  ctx.schedule->place(id, proc, start, start + exec);
  ctx.proc_commit(proc, start, exec);
}

/// True when \p a should be selected before \p b under the policy
/// (contract point 1: exact lexicographic (key, release, id) order).
bool select_before(const Context& ctx, NodeId a, NodeId b) {
  const DeadlineAssignment& asg = *ctx.assignment;
  return detail::select_less(
      detail::selection_key(ctx.options.selection, *ctx.graph, asg, a), asg.release(a),
      a, detail::selection_key(ctx.options.selection, *ctx.graph, asg, b),
      asg.release(b), b);
}

}  // namespace

Schedule list_schedule_ref(const TaskGraph& graph, const DeadlineAssignment& assignment,
                           const Machine& machine, const SchedulerOptions& options) {
  machine.check();
  FEAST_REQUIRE_MSG(assignment.complete(), "assignment must cover every node");
  for (const NodeId id : graph.computation_nodes()) {
    const ProcId pin = graph.node(id).pinned;
    FEAST_REQUIRE_MSG(!pin.valid() || static_cast<int>(pin.index()) < machine.n_procs,
                      "pinned processor outside the machine");
  }

  Schedule schedule(graph, machine);
  const auto n_procs = static_cast<std::size_t>(machine.n_procs);
  Context ctx{&graph,
              &assignment,
              &machine,
              options,
              &schedule,
              std::vector<BusTimeline>(n_procs),
              std::vector<Time>(n_procs, 0.0),
              BusTimeline{},
              std::vector<BusTimeline>(
                  machine.contention == CommContention::PointToPointLinks
                      ? n_procs * n_procs
                      : 0)};

  // A computation subtask is schedulable once all producer subtasks
  // feeding it are placed.
  std::vector<std::size_t> waiting(graph.node_count(), 0);
  std::vector<NodeId> ready;
  for (const NodeId id : graph.computation_nodes()) {
    waiting[id.index()] = graph.preds(id).size();
    if (waiting[id.index()] == 0) ready.push_back(id);
  }

  std::size_t placed = 0;
  while (!ready.empty()) {
    // Select the next subtask (EDF by default) among all schedulable ones.
    std::size_t best = 0;
    for (std::size_t i = 1; i < ready.size(); ++i) {
      if (select_before(ctx, ready[i], ready[best])) best = i;
    }
    const NodeId chosen = ready[best];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));

    // Place it on the processor yielding the earliest start time.
    const ProcId pin = graph.node(chosen).pinned;
    ProcId target;
    if (pin.valid()) {
      target = pin;
    } else {
      Time best_est = kInfiniteTime;
      for (int p = 0; p < machine.n_procs; ++p) {
        const ProcId proc(static_cast<std::uint32_t>(p));
        const Time est = earliest_start_on(ctx, chosen, proc);
        if (est < best_est - kTimeEps) {
          best_est = est;
          target = proc;
        }
      }
    }
    commit(ctx, chosen, target);
    ++placed;

    // Newly schedulable consumers: each comm successor has one consumer.
    for (const NodeId comm : graph.succs(chosen)) {
      const NodeId consumer = graph.comm_sink(comm);
      FEAST_ASSERT(waiting[consumer.index()] > 0);
      if (--waiting[consumer.index()] == 0) ready.push_back(consumer);
    }
  }

  FEAST_ENSURE_MSG(placed == graph.subtask_count(),
                   "scheduler failed to place every subtask");
  FEAST_ENSURE(schedule.complete(graph));
  return schedule;
}

}  // namespace feast
