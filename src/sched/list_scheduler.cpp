/// \file list_scheduler.cpp
/// \brief The optimized list-scheduler core.
///
/// Trace-identical to list_schedule_ref (see list_scheduler_detail.hpp for
/// the contract, tests/test_sched_differential.cpp and `feastc diffsched`
/// for the enforcement) but built for the experiment hot path, where one
/// campaign cell schedules 128 graphs back to back:
///
///  - all static graph state is read from a PreparedTopology (sched/
///    batch.hpp): flat SoA execution times, transfer latencies, pinning
///    and CSR comm lists, built once per graph and reused across runs —
///    placement never touches the AoS TaskGraph;
///  - selection keys are static per run under all three policies, so the
///    priority order is fixed by one exact sort up front and the ready set
///    becomes a bitset over priority ranks (find-first-set selection),
///    replacing the per-step linear scan;
///  - all working memory lives in a SchedulerScratch arena that is rebound,
///    not reallocated, between runs;
///  - the hot loops — ready-bitset scans, timeline gap probes, packed
///    reductions — run on the pluggable kernel backend (sched/kernels),
///    resolved once per run; every backend is bit-exact by contract, so
///    the trace is backend-independent;
///  - under the contention-free model the per-processor ready time is
///    assembled from one pass over the predecessors (top-two crossing
///    arrivals by producer processor + per-processor producer maxima)
///    instead of one pass per candidate processor;
///  - Schedule writes use the unchecked fast-path writers; the per-run
///    completeness postcondition, the validator and the differential
///    oracle carry the safety the per-write checks used to.
#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "obs/obs.hpp"
#include "sched/batch.hpp"
#include "sched/bus.hpp"
#include "sched/kernels/kernels.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/list_scheduler_detail.hpp"

namespace feast {

const char* to_string(ReleasePolicy policy) noexcept {
  switch (policy) {
    case ReleasePolicy::TimeDriven: return "time-driven";
    case ReleasePolicy::Eager: return "eager";
  }
  return "?";
}

const char* to_string(SelectionPolicy policy) noexcept {
  switch (policy) {
    case SelectionPolicy::Edf: return "EDF";
    case SelectionPolicy::Fifo: return "FIFO";
    case SelectionPolicy::StaticLaxity: return "static-laxity";
  }
  return "?";
}

const char* to_string(ProcessorPolicy policy) noexcept {
  switch (policy) {
    case ProcessorPolicy::GapSearch: return "gap-search";
    case ProcessorPolicy::QueueAtEnd: return "queue-at-end";
  }
  return "?";
}

const char* to_string(SchedulerCore core) noexcept {
  switch (core) {
    case SchedulerCore::Fast: return "fast";
    case SchedulerCore::Reference: return "reference";
  }
  return "?";
}

namespace {

/// One scheduling run of the optimized core over a prepared topology and
/// a bound scratch arena.
class FastRun {
 public:
  FastRun(const PreparedTopology& topology, const DeadlineAssignment& assignment,
          const Machine& machine, const SchedulerOptions& options,
          Schedule& schedule, SchedulerScratch& s)
      : t_(topology),
        assignment_(assignment),
        machine_(machine),
        options_(options),
        schedule_(schedule),
        s_(s),
        k_(kernels::active()),
        n_procs_(static_cast<std::size_t>(machine.n_procs)) {}

  void run() {
    // One sink resolution per run, not per query: at ~150-200 timeline
    // probes per paper-sized graph a per-probe atomic load would be
    // measurable, so the hot loops bump plain members and the totals are
    // flushed once here.
    obs::Sink* const sink = obs::active();
    {
      obs::SpanScope span(sink, obs::Span::SchedPrepare);
      prepare();
    }
    obs::SpanScope place_span(sink, obs::Span::SchedPlace);
    std::uint32_t placed = 0;
    while (ready_count_ > 0) {
      const NodeId chosen = ready_pop();
      const std::uint32_t pin = t_.pinned[chosen.index()];
      hint_valid_ = false;
      depart_cache_valid_ = false;
      departs_lb_valid_ = false;
      const ProcId psel = pin != ProcId::kInvalid ? ProcId(pin) : choose_proc(chosen);
      commit(chosen, psel);
      ++placed;
      const std::uint32_t sb = t_.succ_offset[chosen.index()];
      const std::uint32_t se = t_.succ_offset[chosen.index() + 1];
      for (std::uint32_t i = sb; i < se; ++i) {
        // Mirror the producer's result onto each outgoing comm so the
        // consumer's evaluation loops never touch the Schedule.
        const NodeId comm = t_.succ_comms[i];
        SchedulerScratch::CommMirror& mirror = s_.comm[comm.index()];
        mirror.finish = committed_finish_;
        mirror.proc = committed_proc_;
        mirror.latency = t_.latency[comm.index()];
        const std::uint32_t consumer = t_.comm_sink[comm.index()];
        FEAST_ASSERT(s_.waiting[consumer] > 0);
        if (--s_.waiting[consumer] == 0) ready_push(rank_[consumer]);
      }
    }
    FEAST_ENSURE_MSG(placed == t_.n_subtasks,
                     "scheduler failed to place every subtask");
    if (sink != nullptr) {
      obs::count_on(sink, obs::Counter::ReadyPush, push_count_);
      obs::count_on(sink, obs::Counter::BusGapProbe, probe_count_);
      obs::count_on(sink, obs::Counter::BusReserve, reserve_count_);
      obs::count_on(sink, std::strcmp(k_.name, "avx2") == 0
                              ? obs::Counter::KernelAvx2Run
                              : obs::Counter::KernelScalarRun);
    }
  }

 private:
  // --- per-run precomputation ------------------------------------------

  void prepare() {
    s_.bind(t_.n_nodes, t_.comp_ids.size(), n_procs_,
            machine_.contention == CommContention::PointToPointLinks);
    std::copy_n(t_.waiting_init.data(), t_.n_nodes, s_.waiting.data());

    // Everything else prepare() derives — release floors, selection keys,
    // the sorted priority order, the initial ready set — is a pure
    // function of the deadline windows, the topology's static arrays and
    // the run's policies.  All of it is memoized on the topology, keyed by
    // the raw window bit images: the experiment pipeline replays one
    // assignment across repetitions and machine axes, so most runs find
    // their windows unchanged and skip the whole derivation.  The
    // validation compares every fresh window against the cached image
    // (exact integer compare of the double bits), so a hit reuses values
    // recomputation would reproduce bit for bit, and a run that changed
    // any window pays one re-derivation.  Measured: fill + sort were ~16%
    // of a contention-free run before memoization.
    const bool time_driven = options_.release_policy == ReleasePolicy::TimeDriven;
    const std::size_t n_comps = t_.comp_ids.size();
    PreparedTopology::SelectionCache& cache = t_.sel_cache;
    const int policy_tag = (static_cast<int>(options_.selection) << 1) |
                           static_cast<int>(time_driven);
    bool hit = cache.policy == policy_tag;
    if (hit) {
      // Branchless validation walk: XOR-accumulate the image differences
      // over both window fields and test once at the end.
      std::uint64_t diff = 0;
      for (std::size_t i = 0; i < n_comps; ++i) {
        const NodeWindow& w =
            assignment_.window_unchecked(NodeId(t_.comp_ids[i]));
        diff |= (std::bit_cast<std::uint64_t>(w.release) ^ cache.win_rel[i]) |
                (std::bit_cast<std::uint64_t>(w.rel_deadline) ^ cache.win_dl[i]);
      }
      hit = diff == 0;
    }
    const std::size_t n_words = (n_comps + 63) / 64;
    if (!hit) {
      cache.policy = policy_tag;
      if (cache.win_rel.size() < n_comps) {
        cache.win_rel.resize(n_comps);
        cache.win_dl.resize(n_comps);
        cache.order.resize(n_comps);
      }
      if (cache.rank.size() < t_.n_nodes) {
        cache.rank.resize(t_.n_nodes);
        cache.floor.resize(t_.n_nodes);
      }
      if (cache.seed_words.size() < n_words) cache.seed_words.resize(n_words);

      // Floors and selection keys from the packed windows.  The key
      // expressions are those of detail::selection_key over the same
      // doubles (abs_deadline = release + rel_deadline; static laxity =
      // rel_deadline − exec), so the sorted order is the contract's.
      // Policy dispatch hoisted out of the loop: ~50 subtasks per run pay
      // one branch here instead of one switch each.  Indexed writes into
      // the pre-sized buffers, not push_back: the capacity branch per
      // element was visible at this call rate.
      const auto fill = [&](auto&& key_of) {
        std::size_t si = 0;
        for (const std::uint32_t v : t_.comp_ids) {
          const NodeId id(v);
          const NodeWindow& w = assignment_.window_unchecked(id);
          cache.win_rel[si] = std::bit_cast<std::uint64_t>(w.release);
          cache.win_dl[si] = std::bit_cast<std::uint64_t>(w.rel_deadline);
          cache.floor[v] = time_driven ? w.release : t_.eager_floor[v];
          s_.sort_buf[si++] = {detail::time_order_key(key_of(v, w)),
                               detail::time_order_key(w.release), id};
        }
      };
      switch (options_.selection) {
        case SelectionPolicy::Edf:
          fill([](std::uint32_t, const NodeWindow& w) {
            return w.release + w.rel_deadline;
          });
          break;
        case SelectionPolicy::Fifo:
          fill([](std::uint32_t, const NodeWindow& w) { return w.release; });
          break;
        case SelectionPolicy::StaticLaxity:
          fill([this](std::uint32_t v, const NodeWindow& w) {
            return w.rel_deadline - t_.exec[v];
          });
          break;
      }

      // Fix the selection order once: the contract's (key, release, id)
      // comparison is an exact total order (ids are unique), so the sorted
      // permutation is unique and rank order reproduces the reference's
      // per-step minimum search decision (contract point 1).  Entries
      // carry time_order_key images, so the comparison is pure integer
      // lexicographic.
      // Insertion sort: deadlines grow along paths and nodes are numbered
      // roughly topologically, so inputs carry some presortedness and the
      // sizes are small (n <= ~60 subtasks).
      const auto less = [](const SchedulerScratch::ReadyEntry& a,
                           const SchedulerScratch::ReadyEntry& b) {
        if (a.key != b.key) return a.key < b.key;
        if (a.release != b.release) return a.release < b.release;
        return a.id < b.id;
      };
      for (std::size_t i = 1; i < n_comps; ++i) {
        const SchedulerScratch::ReadyEntry entry = s_.sort_buf[i];
        std::size_t j = i;
        while (j > 0 && less(entry, s_.sort_buf[j - 1])) {
          s_.sort_buf[j] = s_.sort_buf[j - 1];
          --j;
        }
        s_.sort_buf[j] = entry;
      }
      for (std::uint32_t r = 0; r < n_comps; ++r) {
        const NodeId id = s_.sort_buf[r].id;
        cache.order[r] = id;
        cache.rank[id.index()] = r;
      }
      // Initial ready set: ranks whose subtask has no predecessor.  A
      // function of the cached permutation and the static predecessor
      // counts, so it is memoized alongside (the waiting counters hold
      // their initial values here — nothing has been placed).
      std::fill_n(cache.seed_words.data(), n_words, 0);
      std::uint32_t seeded = 0;
      for (std::uint32_t r = 0; r < n_comps; ++r) {
        if (s_.waiting[cache.order[r].index()] == 0) {
          cache.seed_words[r >> 6] |= std::uint64_t{1} << (r & 63);
          ++seeded;
        }
      }
      cache.seed_count = seeded;
    }
    order_ = cache.order.data();
    rank_ = cache.rank.data();
    floor_ = cache.floor.data();
    std::copy_n(cache.seed_words.data(), n_words, s_.ready_words.data());
    ready_count_ = cache.seed_count;
    push_count_ += cache.seed_count;  // same obs totals as per-push counting
  }

  // --- ready queue: bitset over static priority ranks -------------------

  void ready_push(std::uint32_t rank) {
    s_.ready_words[rank >> 6] |= std::uint64_t{1} << (rank & 63);
    ++ready_count_;
    ++push_count_;
  }

  NodeId ready_pop() {
    // Lowest set rank = the contract's selection minimum.  At paper sizes
    // the rank bitset spans two or three words, where the indirect kernel
    // call costs more than the scan itself — run the scalar walk inline
    // (the caller guarantees a set bit exists) and dispatch the first_set
    // kernel only when the bitset is long enough for wide scanning to pay
    // (the AVX2 backend skips four empty words per step).
    const std::uint64_t* const words = s_.ready_words.data();
    const std::size_t n_words = s_.ready_words.size();
    std::size_t bit;
    if (n_words == 1) {
      bit = static_cast<std::size_t>(std::countr_zero(words[0]));
    } else if (n_words <= 4) {
      std::size_t w = 0;
      while (words[w] == 0) ++w;
      bit = (w << 6) + static_cast<std::size_t>(std::countr_zero(words[w]));
    } else {
      bit = k_.first_set(words, n_words);
    }
    const std::uint64_t word = s_.ready_words[bit >> 6];
    s_.ready_words[bit >> 6] = word & (word - 1);
    --ready_count_;
    return order_[bit];
  }

  // --- machine model ----------------------------------------------------

  Time exec_on(NodeId id, std::size_t proc) const {
    return machine_.homogeneous() ? t_.exec[id.index()]
                                  : t_.exec[id.index()] / machine_.speeds[proc];
  }

  BusTimeline& link_between(ProcId a, ProcId b) {
    FEAST_ASSERT(a != b);
    const std::size_t lo = std::min(a.index(), b.index());
    const std::size_t hi = std::max(a.index(), b.index());
    return s_.links[lo * n_procs_ + hi];
  }

  Time proc_fit(std::size_t proc, Time ready, Time duration) {
    if (options_.processor_policy == ProcessorPolicy::GapSearch) {
      ++probe_count_;
      return s_.procs[proc].query_with(k_, ready, duration);
    }
    return std::max(s_.proc_tail[proc], ready);
  }

  void proc_commit(std::size_t proc, Time start, Time duration) {
    // The start always comes from proc_fit over the same timeline state, so
    // it is known to fit: reserve_at skips the redundant gap re-search (and,
    // under queue-at-end, hits the O(1) tail-append path every time).
    s_.procs[proc].reserve_at(start, duration);
    s_.proc_tail[proc] = std::max(s_.proc_tail[proc], start + duration);
    ++reserve_count_;
  }

  // --- processor choice -------------------------------------------------

  /// The lowest-indexed processor whose earliest start beats the incumbent
  /// by more than kTimeEps (contract point 3).
  ProcId choose_proc(NodeId id) {
    return machine_.contention == CommContention::PointToPointLinks
               ? choose_proc_links(id)
               : choose_proc_uniform_crossing(id);
  }

  /// Point-to-point links: the crossing arrival depends on the (producer
  /// processor, candidate processor) pair, so every pair must be queried —
  /// but the producer data comes from the mirrored arrays, not the
  /// Schedule.
  ProcId choose_proc_links(NodeId id) {
    const std::uint32_t begin = t_.pred_offset[id.index()];
    const std::uint32_t end = t_.pred_offset[id.index() + 1];
    // Every candidate's ready time is at least each producer's bare finish
    // (a crossing arrival only adds latency on top), so max(floor, max
    // produced) bounds every earliest start.  As below, once the incumbent
    // reaches this bound within kTimeEps the scan can stop early without
    // changing the winner.
    Time lower = floor_[id.index()];
    for (std::uint32_t i = begin; i < end; ++i) {
      lower = std::max(lower, s_.comm[t_.pred_comms[i].index()].finish);
    }
    // Homogeneous machines (the paper's) execute a subtask in the same
    // time everywhere; hoist it out of the candidate loop.
    const bool uniform = machine_.homogeneous();
    const Time uniform_exec = uniform ? t_.exec[id.index()] : 0.0;
    Time best_est = kInfiniteTime;
    ProcId target;
    for (std::size_t p = 0; p < n_procs_; ++p) {
      const ProcId proc(static_cast<std::uint32_t>(p));
      Time ready = floor_[id.index()];
      for (std::uint32_t i = begin; i < end; ++i) {
        const SchedulerScratch::CommMirror& m = s_.comm[t_.pred_comms[i].index()];
        const ProcId pp(m.proc);
        Time arrival = m.finish;
        if (pp != proc) {
          ++probe_count_;
          arrival =
              link_between(pp, proc).query_with(k_, m.finish, m.latency) + m.latency;
        }
        ready = std::max(ready, arrival);
      }
      // A start can never precede the ready time, so a candidate whose
      // ready time already fails the improvement test cannot win; skip its
      // gap query.
      if (ready >= best_est - kTimeEps) continue;
      const Time est = proc_fit(p, ready, uniform ? uniform_exec : exec_on(id, p));
      if (est < best_est - kTimeEps) {
        best_est = est;
        target = proc;
        if (best_est <= lower + kTimeEps) break;
      }
    }
    return target;
  }

  /// Contention-free and shared-bus fast path: in both models the crossing
  /// arrival of a predecessor is independent of the candidate processor
  /// (contention-free: finish + latency; shared bus: one bus query from
  /// the producer's finish — the reference evaluates it per candidate, but
  /// queries are side-effect free so every candidate sees the same value).
  /// One pass over the predecessors therefore suffices.  A predecessor
  /// contributes its crossing arrival to every processor except its own,
  /// where it contributes the bare finish.  The maximum crossing arrival
  /// excluding processor p is the global top value unless p is the top
  /// value's processor, in which case it is the best value from any
  /// *other* processor — so tracking the top two by distinct producer
  /// processor plus a per-processor producer-finish maximum reconstructs
  /// every per-processor ready time exactly (the same set of doubles feeds
  /// the same max, so values are bit-identical to the reference walk).
  ProcId choose_proc_uniform_crossing(NodeId id) {
    const std::uint32_t begin = t_.pred_offset[id.index()];
    const std::uint32_t end = t_.pred_offset[id.index() + 1];
    const bool shared_bus = machine_.contention == CommContention::SharedBus;
    Time top1 = -kInfiniteTime;
    Time top2 = -kInfiniteTime;
    Time local_t1 = -kInfiniteTime;
    std::uint32_t top1_proc = ProcId::kInvalid;
    if (end - begin == 1) {
      // Single predecessor — the most common join shape at paper sizes
      // (mean in-degree < 2): the top-two fold degenerates, so skip both
      // passes below.
      SchedulerScratch::CommMirror& m = s_.comm[t_.pred_comms[begin].index()];
      const Time produced = m.finish;
      Time crossing = produced + m.latency;
      if (shared_bus) {
        ++probe_count_;
        m.depart = s_.bus.query_with(k_, produced, m.latency);
        crossing = m.depart + m.latency;
      }
      top1 = crossing;
      top1_proc = m.proc;
      local_t1 = produced;
    } else {
      for (std::uint32_t i = begin; i < end; ++i) {
        SchedulerScratch::CommMirror& m = s_.comm[t_.pred_comms[i].index()];
        const Time produced = m.finish;
        Time crossing = produced + m.latency;
        if (shared_bus) {
          ++probe_count_;
          // Cache the query for commit: until the first reservation of this
          // placement the bus is unchanged, so the first crossing transfer
          // committed reuses this answer instead of re-running the scan.
          m.depart = s_.bus.query_with(k_, produced, m.latency);
          crossing = m.depart + m.latency;
        }
        const std::uint32_t p = m.proc;
        if (crossing > top1) {
          if (top1_proc != p) top2 = top1;
          top1 = crossing;
          top1_proc = p;
        } else if (p != top1_proc && crossing > top2) {
          top2 = crossing;
        }
      }

      // Producer maximum on top1's own processor — the only per-processor
      // local value the candidate fold below ever needs, so it comes from a
      // short second pass over the mirrors (already in cache) instead of a
      // per-processor array.  Max of doubles is order-insensitive, so the
      // fold equals the reference's.
      if (top1_proc != ProcId::kInvalid) {
        for (std::uint32_t i = begin; i < end; ++i) {
          const SchedulerScratch::CommMirror& m = s_.comm[t_.pred_comms[i].index()];
          if (m.proc == top1_proc && m.finish > local_t1) local_t1 = m.finish;
        }
      }
    }
    const Time floor = floor_[id.index()];
    // Lower bound on every candidate's earliest start — and exactly the
    // ready time of top1's own processor.  For p != top1's processor the
    // ready time is at least top1; for top1's own it is
    // max(floor, top2, local_t1), and both top2 and local_t1 are <= top1
    // (a crossing arrival dominates its bare finish), so this bounds every
    // candidate.  Once the incumbent start is within kTimeEps of this
    // bound, no higher-indexed processor can beat it by more than
    // kTimeEps, and the scan stops.  Queries are side-effect free, so
    // skipping them changes nothing; the winner — and therefore the trace
    // — is exactly the full scan's.
    Time lower = floor;
    if (top1_proc != ProcId::kInvalid) {
      lower = std::max(lower, std::max(top2, local_t1));
    }
    // Second cutoff: every candidate other than top1's own processor sees
    // the top crossing arrival, so its ready time is at least
    // rb = max(floor, top1).  Once the incumbent start is within kTimeEps
    // of rb, those candidates all fail the improvement test before their
    // gap query (est >= ready >= rb >= best - eps) — only top1's processor
    // can still win, so the scan jumps straight to it.
    const Time rb = std::max(floor, top1);
    // Homogeneous machines (the paper's) execute a subtask in the same
    // time everywhere; hoist it out of the candidate loop.
    const bool uniform = machine_.homogeneous();
    const Time uniform_exec = uniform ? t_.exec[id.index()] : 0.0;
    Time best_est = kInfiniteTime;
    ProcId target;
    for (std::size_t p = 0; p < n_procs_; ++p) {
      // Only two ready times occur.  For p != top1's processor the fold is
      // max(floor, top1, local[p]) — and local[p] <= top1 always (a bare
      // finish never exceeds its own crossing arrival, which never exceeds
      // the global top), so it collapses to rb.  For top1's own processor
      // it is lower's fold exactly.  Same maxima over the same doubles as
      // the reference's per-candidate walk, just folded once up front.
      const Time ready = p == top1_proc ? lower : rb;
      // A start can never precede the ready time: a candidate whose ready
      // time already fails the improvement test cannot win, so its gap
      // query is skipped outright.
      if (ready >= best_est - kTimeEps) continue;
      const Time est = proc_fit(p, ready, uniform ? uniform_exec : exec_on(id, p));
      if (est < best_est - kTimeEps) {
        best_est = est;
        target = ProcId(static_cast<std::uint32_t>(p));
        chosen_est_ = est;
        chosen_ready_ = ready;
        if (best_est <= lower + kTimeEps) break;
        if (rb >= best_est - kTimeEps) {
          // Everyone but top1's processor is pre-filtered from here on; the
          // fold over the remaining candidates reduces to evaluating it
          // alone (when it is still ahead), exactly as the full scan would.
          const std::size_t q = top1_proc;
          if (top1_proc != ProcId::kInvalid && q > p &&
              lower < best_est - kTimeEps) {
            const Time eq =
                proc_fit(q, lower, uniform ? uniform_exec : exec_on(id, q));
            if (eq < best_est - kTimeEps) {
              best_est = eq;
              target = ProcId(top1_proc);
              chosen_est_ = eq;
              chosen_ready_ = lower;
            }
          }
          break;
        }
      }
    }
    // Commit recomputes the winner's ready time from the same mirrored
    // values and would issue the same final gap query — hand it the start
    // instead (bit-identical: identical expression over identical
    // doubles).  Under ContentionFree the hint is unconditionally valid;
    // under SharedBus commit's reservations can push a later transfer past
    // the depart this pass queried, so commit compares its recomputed
    // ready against chosen_ready_ before trusting the hint.  The per-pred
    // departs cached above stay valid until commit's first reservation.
    hint_valid_ = true;
    depart_cache_valid_ = shared_bus;
    departs_lb_valid_ = shared_bus;
    return target;
  }

  // --- placement --------------------------------------------------------

  void commit(NodeId id, ProcId proc) {
    if (machine_.contention == CommContention::ContentionFree) {
      commit_contention_free(id, proc);
      return;
    }
    Time ready = floor_[id.index()];

    // Commit incoming transfers in (producer finish, comm id) order — the
    // trace contract's deterministic reservation order.  The CSR list is
    // already ascending by id; the stable finish sort supplies the rest.
    // Typical consumers have one to three predecessors, so the sort runs
    // over a small stack buffer; the scratch vector only backs the rare
    // wide join (same insertion sort, same order either way).
    const std::uint32_t begin = t_.pred_offset[id.index()];
    const std::uint32_t n_preds = t_.pred_offset[id.index() + 1] - begin;
    NodeId stack_order[8];
    const NodeId* order = stack_order;
    if (n_preds <= 8) {
      for (std::uint32_t i = 0; i < n_preds; ++i) {
        const NodeId comm = t_.pred_comms[begin + i];
        const Time finish = s_.comm[comm.index()].finish;
        std::uint32_t j = i;
        for (; j > 0 && s_.comm[stack_order[j - 1].index()].finish > finish; --j) {
          stack_order[j] = stack_order[j - 1];
        }
        stack_order[j] = comm;
      }
    } else {
      s_.commit_order.assign(t_.pred_comms.begin() + begin,
                             t_.pred_comms.begin() + begin + n_preds);
      detail::order_comms_by_finish_with(s_.commit_order, [this](NodeId comm) {
        return s_.comm[comm.index()].finish;
      });
      order = s_.commit_order.data();
    }
    for (std::uint32_t oi = 0; oi < n_preds; ++oi) {
      const NodeId comm = order[oi];
      const SchedulerScratch::CommMirror& m = s_.comm[comm.index()];
      const Time produced = m.finish;
      const ProcId pp(m.proc);
      if (pp == proc) {
        schedule_.record_transfer_unchecked(comm, produced, produced,
                                            /*crossed_bus=*/false);
        ready = std::max(ready, produced);
        continue;
      }
      const Time latency = m.latency;
      Time depart = produced;
      switch (machine_.contention) {
        case CommContention::SharedBus:
          if (depart_cache_valid_) {
            // First reservation of this placement: the bus is exactly as
            // choose_proc saw it, so its cached query answer is the query
            // reserve_with would re-run.  Any reservation invalidates the
            // remaining cached departs (the bus changed under them).
            depart = m.depart;
            s_.bus.reserve_at(depart, latency);
          } else {
            // Later reservations: the bus only gained busy time since
            // choose_proc's query, so no feasible start can have appeared
            // before the cached depart — it is a valid lower bound, and
            // starting the gap scan there skips the slots the query
            // already walked.  The earliest feasible start at or past the
            // bound is the same slot boundary either way, so the depart
            // is bit-identical to a scan from the bare finish.
            depart = s_.bus.reserve_with(
                k_, departs_lb_valid_ ? m.depart : produced, latency);
          }
          ++reserve_count_;
          break;
        case CommContention::PointToPointLinks:
          depart = link_between(pp, proc).reserve_with(k_, produced, latency);
          ++reserve_count_;
          break;
        case CommContention::ContentionFree:
          break;
      }
      const Time arrive = depart + latency;
      depart_cache_valid_ = false;  // the reservation moved the bus
      schedule_.record_transfer_unchecked(comm, depart, arrive,
                                          /*crossed_bus=*/true);
      ready = std::max(ready, arrive);
    }

    const Time exec = exec_on(id, proc.index());
    // Reservations above only touched the bus/link timelines; the chosen
    // processor's timeline is exactly as choose_proc queried it.  When the
    // recomputed ready time equals the winner's (it can only grow, when a
    // reservation pushed a transfer past its queried depart), the final
    // gap query would repeat choose_proc's — reuse its answer.
    const Time start = hint_valid_ && ready == chosen_ready_
                           ? chosen_est_
                           : proc_fit(proc.index(), ready, exec);
    schedule_.place_unchecked(id, proc, start, start + exec);
    proc_commit(proc.index(), start, exec);
    committed_finish_ = start + exec;
    committed_proc_ = proc.value;
  }

  /// ContentionFree commit: nothing is reserved on a shared resource, so
  /// the contract's (finish, id) commit order has no observable effect —
  /// transfers are recorded per communication node and the ready time is a
  /// max over the same values in any order.  The CSR walk therefore skips
  /// the ordering sort, and when choose_proc already evaluated this
  /// processor its start is reused instead of re-queried.
  void commit_contention_free(NodeId id, ProcId proc) {
    const std::uint32_t begin = t_.pred_offset[id.index()];
    const std::uint32_t end = t_.pred_offset[id.index() + 1];
    const std::uint32_t pv = proc.value;
    Time ready = floor_[id.index()];
    for (std::uint32_t i = begin; i < end; ++i) {
      const NodeId comm = t_.pred_comms[i];
      const SchedulerScratch::CommMirror& m = s_.comm[comm.index()];
      const Time produced = m.finish;
      if (m.proc == pv) {
        schedule_.record_transfer_unchecked(comm, produced, produced,
                                            /*crossed_bus=*/false);
        if (produced > ready) ready = produced;
      } else {
        const Time arrive = produced + m.latency;
        schedule_.record_transfer_unchecked(comm, produced, arrive,
                                            /*crossed_bus=*/true);
        if (arrive > ready) ready = arrive;
      }
    }
    const Time exec = exec_on(id, proc.index());
    const Time start =
        hint_valid_ ? chosen_est_ : proc_fit(proc.index(), ready, exec);
    schedule_.place_unchecked(id, proc, start, start + exec);
    proc_commit(proc.index(), start, exec);
    committed_finish_ = start + exec;
    committed_proc_ = proc.value;
  }

  const PreparedTopology& t_;
  const DeadlineAssignment& assignment_;
  const Machine& machine_;
  const SchedulerOptions options_;
  Schedule& schedule_;
  SchedulerScratch& s_;
  const kernels::KernelOps& k_;  ///< Kernel backend, resolved once per run.
  const std::size_t n_procs_;
  // Selection order for this run: the topology's memoized (or freshly
  // sorted) permutation, bound by prepare().
  const NodeId* order_ = nullptr;        ///< Rank -> subtask id.
  const std::uint32_t* rank_ = nullptr;  ///< Node id -> rank.
  const Time* floor_ = nullptr;          ///< Node id -> release floor.
  std::uint32_t ready_count_ = 0;    ///< Set bits in the ready bitset.
  // Plain per-run obs counters, flushed once at the end of run() so the
  // placement loops never touch an atomic (see the note in run()).
  std::uint32_t push_count_ = 0;     ///< obs::Counter::ReadyPush.
  std::uint32_t probe_count_ = 0;    ///< obs::Counter::BusGapProbe.
  std::uint32_t reserve_count_ = 0;  ///< obs::Counter::BusReserve.
  bool hint_valid_ = false;          ///< choose_proc start hint usable.
  bool depart_cache_valid_ = false;  ///< CommMirror::depart still current.
  bool departs_lb_valid_ = false;    ///< CommMirror::depart a lower bound.
  Time chosen_est_ = 0.0;            ///< Winner's start from choose_proc.
  Time chosen_ready_ = 0.0;          ///< Winner's ready time with it.
  Time committed_finish_ = 0.0;      ///< Last commit, for succ mirroring.
  std::uint32_t committed_proc_ = 0; ///< Last commit, for succ mirroring.
};

}  // namespace

void list_schedule_prepared(const PreparedTopology& topology,
                            const DeadlineAssignment& assignment,
                            const Machine& machine, const SchedulerOptions& options,
                            SchedulerScratch& scratch, Schedule& out) {
  machine.check();
  FEAST_REQUIRE_MSG(assignment.complete(), "assignment must cover every node");
  const TaskGraph* const graph = topology.source_graph();
  FEAST_REQUIRE_MSG(graph != nullptr && topology.matches(*graph, machine),
                    "topology not built for this graph and machine");
  FastRun(topology, assignment, machine, options, out, scratch).run();
  // The unchecked Schedule writers shift the per-write contract here: a
  // double placement or a missed node both leave complete() false.
  FEAST_ENSURE(out.complete(*graph));
}

Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options,
                       SchedulerScratch& scratch) {
  // One prepared topology per thread, rebuilt per call: the ad-hoc entry
  // point gives no graph-identity guarantee, so only the buffers are
  // reused (BatchScheduler is the entry point that also reuses contents).
  thread_local PreparedTopology topology;
  topology.build(graph, machine);
  Schedule schedule(graph, machine);
  list_schedule_prepared(topology, assignment, machine, options, scratch, schedule);
  return schedule;
}

Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options) {
  // One arena per thread: batch sweeps running on util/parallel.hpp's
  // persistent pool reuse their buffers across every sample and cell.
  thread_local SchedulerScratch scratch;
  return list_schedule(graph, assignment, machine, options, scratch);
}

Schedule list_schedule_with(SchedulerCore core, const TaskGraph& graph,
                            const DeadlineAssignment& assignment, const Machine& machine,
                            const SchedulerOptions& options) {
  return core == SchedulerCore::Reference
             ? list_schedule_ref(graph, assignment, machine, options)
             : list_schedule(graph, assignment, machine, options);
}

}  // namespace feast
