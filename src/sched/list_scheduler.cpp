/// \file list_scheduler.cpp
/// \brief The optimized list-scheduler core.
///
/// Trace-identical to list_schedule_ref (see list_scheduler_detail.hpp for
/// the contract, tests/test_sched_differential.cpp and `feastc diffsched`
/// for the enforcement) but built for the experiment hot path, where one
/// campaign cell schedules 128 graphs back to back:
///
///  - selection keys are static per run under all three policies, so the
///    priority order is fixed by one exact sort up front and the ready set
///    becomes a bitset over priority ranks (find-first-set selection),
///    replacing the per-step linear scan;
///  - all working memory lives in a SchedulerScratch arena that is rebound,
///    not reallocated, between runs;
///  - predecessor communication lists are hoisted into a CSR layout sorted
///    by node id once per run, so per-placement ordering is a stable
///    insertion sort into a reused buffer instead of allocate + std::sort;
///  - under the contention-free model the per-processor ready time is
///    assembled from one pass over the predecessors (top-two crossing
///    arrivals by producer processor + per-processor producer maxima)
///    instead of one pass per candidate processor;
///  - gap queries ride BusTimeline's tail-hint/binary-search acceleration.
#include <algorithm>
#include <bit>
#include <vector>

#include "obs/obs.hpp"
#include "sched/bus.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/list_scheduler_detail.hpp"

namespace feast {

const char* to_string(ReleasePolicy policy) noexcept {
  switch (policy) {
    case ReleasePolicy::TimeDriven: return "time-driven";
    case ReleasePolicy::Eager: return "eager";
  }
  return "?";
}

const char* to_string(SelectionPolicy policy) noexcept {
  switch (policy) {
    case SelectionPolicy::Edf: return "EDF";
    case SelectionPolicy::Fifo: return "FIFO";
    case SelectionPolicy::StaticLaxity: return "static-laxity";
  }
  return "?";
}

const char* to_string(ProcessorPolicy policy) noexcept {
  switch (policy) {
    case ProcessorPolicy::GapSearch: return "gap-search";
    case ProcessorPolicy::QueueAtEnd: return "queue-at-end";
  }
  return "?";
}

const char* to_string(SchedulerCore core) noexcept {
  switch (core) {
    case SchedulerCore::Fast: return "fast";
    case SchedulerCore::Reference: return "reference";
  }
  return "?";
}

namespace {

/// One scheduling run of the optimized core over a bound scratch arena.
class FastRun {
 public:
  FastRun(const TaskGraph& graph, const DeadlineAssignment& assignment,
          const Machine& machine, const SchedulerOptions& options,
          Schedule& schedule, SchedulerScratch& s)
      : graph_(graph),
        assignment_(assignment),
        machine_(machine),
        options_(options),
        schedule_(schedule),
        s_(s),
        n_procs_(static_cast<std::size_t>(machine.n_procs)) {}

  void run() {
    // One sink resolution per run, not per query: at ~150-200 timeline
    // probes per paper-sized graph a per-probe atomic load would be
    // measurable, so the hot loops bump plain members and the totals are
    // flushed once here.
    obs::Sink* const sink = obs::active();
    {
      obs::SpanScope span(sink, obs::Span::SchedPrepare);
      prepare();
    }
    obs::SpanScope place_span(sink, obs::Span::SchedPlace);
    std::size_t placed = 0;
    while (ready_count_ > 0) {
      const NodeId chosen = ready_pop();
      const ProcId pin = graph_.node(chosen).pinned;
      hint_valid_ = false;
      commit(chosen, pin.valid() ? pin : choose_proc(chosen));
      ++placed;
      for (const NodeId comm : graph_.succs(chosen)) {
        // Mirror the producer's result onto each outgoing comm so the
        // consumer's evaluation loops never touch the Schedule.
        SchedulerScratch::CommMirror& mirror = s_.comm[comm.index()];
        mirror.finish = committed_finish_;
        mirror.proc = committed_proc_;
        const NodeId consumer = graph_.comm_sink(comm);
        FEAST_ASSERT(s_.waiting[consumer.index()] > 0);
        if (--s_.waiting[consumer.index()] == 0) ready_push(s_.rank[consumer.index()]);
      }
    }
    FEAST_ENSURE_MSG(placed == graph_.subtask_count(),
                     "scheduler failed to place every subtask");
    if (sink != nullptr) {
      obs::count_on(sink, obs::Counter::ReadyPush, push_count_);
      obs::count_on(sink, obs::Counter::BusGapProbe, probe_count_);
      obs::count_on(sink, obs::Counter::BusReserve, reserve_count_);
    }
  }

 private:
  // --- per-run precomputation ------------------------------------------

  void prepare() {
    s_.bind(graph_.node_count(), n_procs_,
            machine_.contention == CommContention::PointToPointLinks);

    const bool time_driven = options_.release_policy == ReleasePolicy::TimeDriven;
    std::uint32_t flat = 0;
    for (std::uint32_t v = 0; v < graph_.node_count(); ++v) {
      const NodeId id(v);
      if (!graph_.is_computation(id)) {
        s_.comm[v].latency = machine_.transfer_time(graph_.node(id).message_items);
        s_.pred_offset[v + 1] = flat;
        continue;
      }
      {
        const Node& node = graph_.node(id);
        const ProcId pin = node.pinned;
        FEAST_REQUIRE_MSG(
            !pin.valid() || static_cast<int>(pin.index()) < machine_.n_procs,
            "pinned processor outside the machine");
        s_.exec[v] = node.exec_time;
        const Time release = assignment_.release(id);
        s_.floor[v] = time_driven
                          ? release
                          : (is_set(node.boundary_release) ? node.boundary_release : 0.0);
        s_.sort_buf.push_back(
            {detail::time_order_key(
                 detail::selection_key(options_.selection, graph_, assignment_, id)),
             detail::time_order_key(release), id});
        // Hoisted predecessor comm list, ascending by node id (the base
        // ordering of the trace contract's (finish, id) commit order).
        // Arc insertion appends increasing comm ids, so this is a copy in
        // the common case; the insertion pass restores order otherwise.
        for (const NodeId comm : node.preds) {
          s_.pred_comms.push_back(comm);
          std::size_t j = s_.pred_comms.size() - 1;
          while (j > static_cast<std::size_t>(flat) && comm < s_.pred_comms[j - 1]) {
            s_.pred_comms[j] = s_.pred_comms[j - 1];
            --j;
          }
          s_.pred_comms[j] = comm;
        }
        s_.waiting[v] = static_cast<std::uint32_t>(node.preds.size());
      }
      flat = static_cast<std::uint32_t>(s_.pred_comms.size());
      s_.pred_offset[v + 1] = flat;
    }

    // Fix the selection order once: the contract's (key, release, id)
    // comparison is an exact total order (ids are unique), so the sorted
    // permutation is unique and rank order reproduces the reference's
    // per-step minimum search decision (contract point 1).  Entries carry
    // time_order_key images, so the comparison is pure integer
    // lexicographic.  Insertion sort: generated graphs number nodes
    // topologically and deadlines grow along paths, so the input is nearly
    // sorted already and O(n + inversions) beats std::sort at these sizes
    // (n <= ~60 subtasks; measured ~5% of the whole core).
    {
      const auto less = [](const SchedulerScratch::ReadyEntry& a,
                           const SchedulerScratch::ReadyEntry& b) {
        if (a.key != b.key) return a.key < b.key;
        if (a.release != b.release) return a.release < b.release;
        return a.id < b.id;
      };
      for (std::size_t i = 1; i < s_.sort_buf.size(); ++i) {
        const SchedulerScratch::ReadyEntry entry = s_.sort_buf[i];
        std::size_t j = i;
        while (j > 0 && less(entry, s_.sort_buf[j - 1])) {
          s_.sort_buf[j] = s_.sort_buf[j - 1];
          --j;
        }
        s_.sort_buf[j] = entry;
      }
    }
    s_.order.resize(s_.sort_buf.size());
    for (std::uint32_t r = 0; r < s_.sort_buf.size(); ++r) {
      const NodeId id = s_.sort_buf[r].id;
      s_.order[r] = id;
      s_.rank[id.index()] = r;
    }
    ready_count_ = 0;
    for (std::uint32_t r = 0; r < s_.order.size(); ++r) {
      if (s_.waiting[s_.order[r].index()] == 0) ready_push(r);
    }
  }

  // --- ready queue: bitset over static priority ranks -------------------

  void ready_push(std::uint32_t rank) {
    s_.ready_words[rank >> 6] |= std::uint64_t{1} << (rank & 63);
    ++ready_count_;
    ++push_count_;
  }

  NodeId ready_pop() {
    // Lowest set rank = the contract's selection minimum.  Paper-sized
    // graphs have at most a few dozen subtasks, so this scans one or two
    // words where the heap did a handful of double comparisons per level.
    for (std::size_t w = 0;; ++w) {
      const std::uint64_t word = s_.ready_words[w];
      if (word == 0) continue;
      const std::uint32_t rank =
          static_cast<std::uint32_t>(w * 64 +
                                     static_cast<std::uint32_t>(std::countr_zero(word)));
      s_.ready_words[w] = word & (word - 1);
      --ready_count_;
      return s_.order[rank];
    }
  }

  // --- machine model ----------------------------------------------------

  Time exec_on(NodeId id, std::size_t proc) const {
    return machine_.homogeneous() ? s_.exec[id.index()]
                                  : s_.exec[id.index()] / machine_.speeds[proc];
  }

  BusTimeline& link_between(ProcId a, ProcId b) {
    FEAST_ASSERT(a != b);
    const std::size_t lo = std::min(a.index(), b.index());
    const std::size_t hi = std::max(a.index(), b.index());
    return s_.links[lo * n_procs_ + hi];
  }

  Time proc_fit(std::size_t proc, Time ready, Time duration) {
    if (options_.processor_policy == ProcessorPolicy::GapSearch) {
      ++probe_count_;
      return s_.procs[proc].query(ready, duration);
    }
    return std::max(s_.proc_tail[proc], ready);
  }

  void proc_commit(std::size_t proc, Time start, Time duration) {
    // The start always comes from proc_fit over the same timeline state, so
    // it is known to fit: reserve_at skips the redundant gap re-search (and,
    // under queue-at-end, hits the O(1) tail-append path every time).
    s_.procs[proc].reserve_at(start, duration);
    s_.proc_tail[proc] = std::max(s_.proc_tail[proc], start + duration);
    ++reserve_count_;
  }

  // --- processor choice -------------------------------------------------

  /// The lowest-indexed processor whose earliest start beats the incumbent
  /// by more than kTimeEps (contract point 3).
  ProcId choose_proc(NodeId id) {
    return machine_.contention == CommContention::PointToPointLinks
               ? choose_proc_links(id)
               : choose_proc_uniform_crossing(id);
  }

  /// Point-to-point links: the crossing arrival depends on the (producer
  /// processor, candidate processor) pair, so every pair must be queried —
  /// but the producer data comes from the mirrored arrays, not the
  /// Schedule.
  ProcId choose_proc_links(NodeId id) {
    const std::uint32_t begin = s_.pred_offset[id.index()];
    const std::uint32_t end = s_.pred_offset[id.index() + 1];
    // Every candidate's ready time is at least each producer's bare finish
    // (a crossing arrival only adds latency on top), so max(floor, max
    // produced) bounds every earliest start.  As below, once the incumbent
    // reaches this bound within kTimeEps the scan can stop early without
    // changing the winner.
    Time lower = s_.floor[id.index()];
    for (std::uint32_t i = begin; i < end; ++i) {
      lower = std::max(lower, s_.comm[s_.pred_comms[i].index()].finish);
    }
    // Homogeneous machines (the paper's) execute a subtask in the same
    // time everywhere; hoist it out of the candidate loop.
    const bool uniform = machine_.homogeneous();
    const Time uniform_exec = uniform ? s_.exec[id.index()] : 0.0;
    Time best_est = kInfiniteTime;
    ProcId target;
    for (std::size_t p = 0; p < n_procs_; ++p) {
      const ProcId proc(static_cast<std::uint32_t>(p));
      Time ready = s_.floor[id.index()];
      for (std::uint32_t i = begin; i < end; ++i) {
        const SchedulerScratch::CommMirror& m = s_.comm[s_.pred_comms[i].index()];
        const ProcId pp(m.proc);
        Time arrival = m.finish;
        if (pp != proc) {
          ++probe_count_;
          arrival = link_between(pp, proc).query(m.finish, m.latency) + m.latency;
        }
        ready = std::max(ready, arrival);
      }
      // A start can never precede the ready time, so a candidate whose
      // ready time already fails the improvement test cannot win; skip its
      // gap query.
      if (ready >= best_est - kTimeEps) continue;
      const Time est = proc_fit(p, ready, uniform ? uniform_exec : exec_on(id, p));
      if (est < best_est - kTimeEps) {
        best_est = est;
        target = proc;
        if (best_est <= lower + kTimeEps) break;
      }
    }
    return target;
  }

  /// Contention-free and shared-bus fast path: in both models the crossing
  /// arrival of a predecessor is independent of the candidate processor
  /// (contention-free: finish + latency; shared bus: one bus query from
  /// the producer's finish — the reference evaluates it per candidate, but
  /// queries are side-effect free so every candidate sees the same value).
  /// One pass over the predecessors therefore suffices.  A predecessor
  /// contributes its crossing arrival to every processor except its own,
  /// where it contributes the bare finish.  The maximum crossing arrival
  /// excluding processor p is the global top value unless p is the top
  /// value's processor, in which case it is the best value from any
  /// *other* processor — so tracking the top two by distinct producer
  /// processor plus a per-processor producer-finish maximum reconstructs
  /// every per-processor ready time exactly (the same set of doubles feeds
  /// the same max, so values are bit-identical to the reference walk).
  ProcId choose_proc_uniform_crossing(NodeId id) {
    const std::uint32_t begin = s_.pred_offset[id.index()];
    const std::uint32_t end = s_.pred_offset[id.index() + 1];
    const bool shared_bus = machine_.contention == CommContention::SharedBus;
    Time top1 = -kInfiniteTime;
    Time top2 = -kInfiniteTime;
    std::uint32_t top1_proc = ProcId::kInvalid;
    ++s_.epoch;
    for (std::uint32_t i = begin; i < end; ++i) {
      const SchedulerScratch::CommMirror& m = s_.comm[s_.pred_comms[i].index()];
      const Time produced = m.finish;
      Time crossing = produced + m.latency;
      if (shared_bus) {
        ++probe_count_;
        crossing = s_.bus.query(produced, m.latency) + m.latency;
      }
      const std::uint32_t p = m.proc;
      if (crossing > top1) {
        if (top1_proc != p) top2 = top1;
        top1 = crossing;
        top1_proc = p;
      } else if (p != top1_proc && crossing > top2) {
        top2 = crossing;
      }
      if (s_.local_epoch[p] != s_.epoch) {
        s_.local_epoch[p] = s_.epoch;
        s_.local_produced[p] = produced;
      } else if (produced > s_.local_produced[p]) {
        s_.local_produced[p] = produced;
      }
    }

    const Time floor = s_.floor[id.index()];
    // Lower bound on every candidate's earliest start.  For p != top1's
    // processor the ready time is at least top1; for top1's own processor
    // it is at least max(top2, its local producer maximum) — and both of
    // those are <= top1 (a crossing arrival dominates its bare finish), so
    // max(floor, top2, local[top1_proc]) bounds every candidate.  Once the
    // incumbent start is within kTimeEps of this bound, no higher-indexed
    // processor can beat it by more than kTimeEps, and the scan stops.
    // Queries are side-effect free, so skipping them changes nothing; the
    // winner — and therefore the trace — is exactly the full scan's.
    Time lower = floor;
    if (top1_proc != ProcId::kInvalid) {
      lower = std::max(lower, std::max(top2, s_.local_produced[top1_proc]));
    }
    // Second cutoff: every candidate other than top1's own processor sees
    // the top crossing arrival, so its ready time is at least
    // rb = max(floor, top1).  Once the incumbent start is within kTimeEps
    // of rb, those candidates all fail the improvement test before their
    // gap query (est >= ready >= rb >= best - eps) — only top1's processor
    // can still win, so the scan jumps straight to it.
    const Time rb = std::max(floor, top1);
    // Homogeneous machines (the paper's) execute a subtask in the same
    // time everywhere; hoist it out of the candidate loop.
    const bool uniform = machine_.homogeneous();
    const Time uniform_exec = uniform ? s_.exec[id.index()] : 0.0;
    Time best_est = kInfiniteTime;
    ProcId target;
    for (std::size_t p = 0; p < n_procs_; ++p) {
      Time ready = floor;
      const Time crossing = p == top1_proc ? top2 : top1;
      if (crossing > ready) ready = crossing;
      if (s_.local_epoch[p] == s_.epoch && s_.local_produced[p] > ready) {
        ready = s_.local_produced[p];
      }
      // A start can never precede the ready time: a candidate whose ready
      // time already fails the improvement test cannot win, so its gap
      // query is skipped outright.
      if (ready >= best_est - kTimeEps) continue;
      const Time est = proc_fit(p, ready, uniform ? uniform_exec : exec_on(id, p));
      if (est < best_est - kTimeEps) {
        best_est = est;
        target = ProcId(static_cast<std::uint32_t>(p));
        chosen_est_ = est;
        if (best_est <= lower + kTimeEps) break;
        if (rb >= best_est - kTimeEps) {
          // Everyone but top1's processor is pre-filtered from here on; the
          // fold over the remaining candidates reduces to evaluating it
          // alone (when it is still ahead), exactly as the full scan would.
          const std::size_t q = top1_proc;
          if (top1_proc != ProcId::kInvalid && q > p) {
            Time rq = floor;
            if (top2 > rq) rq = top2;
            if (s_.local_epoch[q] == s_.epoch && s_.local_produced[q] > rq) {
              rq = s_.local_produced[q];
            }
            if (rq < best_est - kTimeEps) {
              const Time eq =
                  proc_fit(q, rq, uniform ? uniform_exec : exec_on(id, q));
              if (eq < best_est - kTimeEps) {
                best_est = eq;
                target = ProcId(top1_proc);
                chosen_est_ = eq;
              }
            }
          }
          break;
        }
      }
    }
    // Under ContentionFree, commit recomputes the winner's ready time from
    // the same mirrored values and would issue the same final gap query —
    // hand it the start instead (bit-identical: identical expression over
    // identical doubles).
    hint_valid_ = !shared_bus;
    return target;
  }

  // --- placement --------------------------------------------------------

  void commit(NodeId id, ProcId proc) {
    if (machine_.contention == CommContention::ContentionFree) {
      commit_contention_free(id, proc);
      return;
    }
    Time ready = s_.floor[id.index()];

    // Commit incoming transfers in (producer finish, comm id) order — the
    // trace contract's deterministic reservation order.  The CSR list is
    // already ascending by id; the stable finish sort supplies the rest.
    s_.commit_order.assign(s_.pred_comms.begin() + s_.pred_offset[id.index()],
                           s_.pred_comms.begin() + s_.pred_offset[id.index() + 1]);
    detail::order_comms_by_finish_with(
        s_.commit_order, [this](NodeId comm) { return s_.comm[comm.index()].finish; });
    for (const NodeId comm : s_.commit_order) {
      const SchedulerScratch::CommMirror& m = s_.comm[comm.index()];
      const Time produced = m.finish;
      const ProcId pp(m.proc);
      if (pp == proc) {
        schedule_.record_transfer(comm, produced, produced, /*crossed_bus=*/false);
        ready = std::max(ready, produced);
        continue;
      }
      const Time latency = m.latency;
      Time depart = produced;
      switch (machine_.contention) {
        case CommContention::SharedBus:
          depart = s_.bus.reserve(produced, latency);
          ++reserve_count_;
          break;
        case CommContention::PointToPointLinks:
          depart = link_between(pp, proc).reserve(produced, latency);
          ++reserve_count_;
          break;
        case CommContention::ContentionFree:
          break;
      }
      const Time arrive = depart + latency;
      schedule_.record_transfer(comm, depart, arrive, /*crossed_bus=*/true);
      ready = std::max(ready, arrive);
    }

    const Time exec = exec_on(id, proc.index());
    const Time start = proc_fit(proc.index(), ready, exec);
    schedule_.place(id, proc, start, start + exec);
    proc_commit(proc.index(), start, exec);
    committed_finish_ = start + exec;
    committed_proc_ = proc.value;
  }

  /// ContentionFree commit: nothing is reserved on a shared resource, so
  /// the contract's (finish, id) commit order has no observable effect —
  /// transfers are recorded per communication node and the ready time is a
  /// max over the same values in any order.  The CSR walk therefore skips
  /// the ordering sort, and when choose_proc already evaluated this
  /// processor its start is reused instead of re-queried.
  void commit_contention_free(NodeId id, ProcId proc) {
    const std::uint32_t begin = s_.pred_offset[id.index()];
    const std::uint32_t end = s_.pred_offset[id.index() + 1];
    const std::uint32_t pv = proc.value;
    Time ready = s_.floor[id.index()];
    for (std::uint32_t i = begin; i < end; ++i) {
      const NodeId comm = s_.pred_comms[i];
      const SchedulerScratch::CommMirror& m = s_.comm[comm.index()];
      const Time produced = m.finish;
      if (m.proc == pv) {
        schedule_.record_transfer(comm, produced, produced, /*crossed_bus=*/false);
        if (produced > ready) ready = produced;
      } else {
        const Time arrive = produced + m.latency;
        schedule_.record_transfer(comm, produced, arrive, /*crossed_bus=*/true);
        if (arrive > ready) ready = arrive;
      }
    }
    const Time exec = exec_on(id, proc.index());
    const Time start =
        hint_valid_ ? chosen_est_ : proc_fit(proc.index(), ready, exec);
    schedule_.place(id, proc, start, start + exec);
    proc_commit(proc.index(), start, exec);
    committed_finish_ = start + exec;
    committed_proc_ = proc.value;
  }

  const TaskGraph& graph_;
  const DeadlineAssignment& assignment_;
  const Machine& machine_;
  const SchedulerOptions options_;
  Schedule& schedule_;
  SchedulerScratch& s_;
  const std::size_t n_procs_;
  std::uint32_t ready_count_ = 0;    ///< Set bits in the ready bitset.
  // Plain per-run obs counters, flushed once at the end of run() so the
  // placement loops never touch an atomic (see the note in run()).
  std::uint32_t push_count_ = 0;     ///< obs::Counter::ReadyPush.
  std::uint32_t probe_count_ = 0;    ///< obs::Counter::BusGapProbe.
  std::uint32_t reserve_count_ = 0;  ///< obs::Counter::BusReserve.
  bool hint_valid_ = false;          ///< choose_proc start hint usable.
  Time chosen_est_ = 0.0;            ///< Winner's start from choose_proc.
  Time committed_finish_ = 0.0;      ///< Last commit, for succ mirroring.
  std::uint32_t committed_proc_ = 0; ///< Last commit, for succ mirroring.
};

}  // namespace

Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options,
                       SchedulerScratch& scratch) {
  machine.check();
  FEAST_REQUIRE_MSG(assignment.complete(), "assignment must cover every node");
  // Pin validity is checked inside FastRun::prepare(), before any placement
  // happens (computation_nodes() would allocate a fresh vector per run).

  Schedule schedule(graph, machine);
  FastRun(graph, assignment, machine, options, schedule, scratch).run();
  FEAST_ENSURE(schedule.complete(graph));
  return schedule;
}

Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options) {
  // One arena per thread: batch sweeps running on util/parallel.hpp's
  // persistent pool reuse their buffers across every sample and cell.
  thread_local SchedulerScratch scratch;
  return list_schedule(graph, assignment, machine, options, scratch);
}

Schedule list_schedule_with(SchedulerCore core, const TaskGraph& graph,
                            const DeadlineAssignment& assignment, const Machine& machine,
                            const SchedulerOptions& options) {
  return core == SchedulerCore::Reference
             ? list_schedule_ref(graph, assignment, machine, options)
             : list_schedule(graph, assignment, machine, options);
}

}  // namespace feast
