#include "sched/bus.hpp"

namespace feast {

Time BusTimeline::reserve(Time earliest, Time duration) {
  const Time start = query(earliest, duration);
  reserve_at(start, duration);
  return start;
}

Time BusTimeline::total_busy() const noexcept {
  Time busy = 0.0;
  for (std::size_t i = 0; i < starts_.size(); ++i) busy += ends_[i] - starts_[i];
  return busy;
}

}  // namespace feast
