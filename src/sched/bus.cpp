#include "sched/bus.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace feast {

Time BusTimeline::reserve(Time earliest, Time duration) {
  const Time start = query(earliest, duration);
  reserve_at(start, duration);
  return start;
}

Time BusTimeline::total_busy() const noexcept {
  Time busy = 0.0;
  for (const BusSlot& slot : slots_) busy += slot.end - slot.start;
  return busy;
}

}  // namespace feast
