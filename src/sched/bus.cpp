#include "sched/bus.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace feast {

Time BusTimeline::query(Time earliest, Time duration) const {
  FEAST_REQUIRE(duration >= 0.0);
  if (duration <= 0.0) return earliest;
  Time candidate = earliest;
  for (const BusSlot& slot : slots_) {
    if (slot.end <= candidate + kTimeEps) continue;      // gap is past this slot
    if (slot.start >= candidate + duration - kTimeEps) break;  // fits before it
    candidate = slot.end;  // collision: try right after this slot
  }
  return candidate;
}

Time BusTimeline::reserve(Time earliest, Time duration) {
  const Time start = query(earliest, duration);
  if (duration > 0.0) {
    const BusSlot slot{start, start + duration};
    auto it = std::lower_bound(slots_.begin(), slots_.end(), slot,
                               [](const BusSlot& a, const BusSlot& b) {
                                 return a.start < b.start;
                               });
    if (it != slots_.begin()) {
      FEAST_ASSERT_MSG(time_le(std::prev(it)->end, slot.start), "bus slot collision");
    }
    if (it != slots_.end()) {
      FEAST_ASSERT_MSG(time_le(slot.end, it->start), "bus slot collision");
    }
    slots_.insert(it, slot);
  }
  return start;
}

Time BusTimeline::total_busy() const noexcept {
  Time busy = 0.0;
  for (const BusSlot& slot : slots_) busy += slot.end - slot.start;
  return busy;
}

}  // namespace feast
