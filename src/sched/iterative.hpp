/// \file iterative.hpp
/// \brief Iterative redistribution: feed the assignment back into the
///        deadline distribution (the improvement loop of Gutiérrez García
///        & González Harbour [3], realized with slicing).
///
/// The paper breaks the circular dependency between deadline distribution
/// and task assignment by distributing first, with *estimated*
/// communication costs.  Once a schedule exists, though, the assignment is
/// known — so the distribution can be repeated with exact communication
/// costs (AssignmentAwareEstimator), which may yield a different, better
/// schedule, whose assignment can be fed back again:
///
///     distribute(est) → schedule → distribute(assignment₁) → schedule → …
///
/// The loop keeps the best result seen (by maximum task lateness) and
/// stops after max_rounds or when a round stops improving.
#pragma once

#include <vector>

#include "core/comm_estimator.hpp"
#include "core/metrics.hpp"
#include "sched/lateness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Configuration of the feedback loop.
struct IterativeOptions {
  int max_rounds = 4;            ///< Total distribute→schedule rounds (>= 1).
  bool stop_when_stalled = true; ///< Stop early when a round does not improve.
  SchedulerOptions scheduler;    ///< Passed to every scheduling pass.
};

/// Outcome of the loop.
struct IterativeResult {
  DeadlineAssignment assignment;  ///< Best round's windows.
  Schedule schedule;              ///< Best round's schedule.
  LatenessStats lateness;         ///< Best round's lateness statistics.
  int best_round = 0;             ///< 0-based index of the winning round.
  std::vector<Time> history;      ///< Max lateness of every executed round.
};

/// Runs the feedback loop on \p graph with metric \p metric.  Round 0 uses
/// \p initial_estimator (plus any pins, via AssignmentAwareEstimator);
/// later rounds use the previous round's full assignment.  The metric is
/// re-prepared every round.
IterativeResult iterate_distribution(const TaskGraph& graph, SliceMetric& metric,
                                     const CommCostEstimator& initial_estimator,
                                     const Machine& machine,
                                     const IterativeOptions& options = {});

}  // namespace feast
