/// \file schedule.hpp
/// \brief The result of task assignment and scheduling.
///
/// A Schedule maps every computation subtask to a processor and an
/// execution interval, and every communication subtask to a transfer
/// interval (zero-width when its endpoints are co-located).  It is produced
/// by the list scheduler and consumed by the lateness analysis, the
/// validator and the Gantt renderer.
#pragma once

#include <vector>

#include "sched/machine.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Placement of one computation subtask.
struct TaskPlacement {
  ProcId proc;
  Time start = kUnsetTime;
  Time finish = kUnsetTime;

  bool placed() const noexcept { return proc.valid() && is_set(start); }
};

/// Transfer record of one communication subtask.
struct TransferRecord {
  Time start = kUnsetTime;   ///< Departure (producer finish, or bus slot start).
  Time finish = kUnsetTime;  ///< Arrival at the consumer's processor.
  bool crossed_bus = false;  ///< False when endpoints were co-located.

  bool recorded() const noexcept { return is_set(start); }
};

/// A complete schedule over one task graph and machine.
class Schedule {
 public:
  Schedule() = default;

  /// Creates an empty schedule sized for \p graph on \p machine.
  Schedule(const TaskGraph& graph, const Machine& machine)
      : placements_(graph.node_count()),
        transfers_(graph.node_count()),
        n_procs_(machine.n_procs) {}

  /// Number of processors of the machine this schedule targets.
  int n_procs() const noexcept { return n_procs_; }

  /// Records the placement of a computation subtask.
  void place(NodeId id, ProcId proc, Time start, Time finish);

  /// Records the transfer of a communication subtask.
  void record_transfer(NodeId id, Time start, Time finish, bool crossed_bus);

  /// Placement of a computation subtask (must be placed).
  const TaskPlacement& placement(NodeId id) const;

  /// Transfer record of a communication subtask (must be recorded).
  const TransferRecord& transfer(NodeId id) const;

  /// True when \p id has been placed/recorded.
  bool scheduled(NodeId id) const {
    FEAST_REQUIRE(id.index() < placements_.size());
    return placements_[id.index()].placed() || transfers_[id.index()].recorded();
  }

  /// True when every node of \p graph is covered.
  bool complete(const TaskGraph& graph) const;

  /// Completion time of the latest computation subtask; 0 when empty.
  Time makespan() const noexcept;

  /// Computation subtasks on \p proc, sorted by start time.
  std::vector<NodeId> tasks_on(ProcId proc) const;

  /// Total busy time of \p proc.
  Time busy_time(ProcId proc) const;

  /// Fraction of [0, makespan] each processor computes, averaged.
  double average_utilization() const;

 private:
  std::vector<TaskPlacement> placements_;
  std::vector<TransferRecord> transfers_;
  int n_procs_ = 0;
};

}  // namespace feast
