/// \file schedule.hpp
/// \brief The result of task assignment and scheduling.
///
/// A Schedule maps every computation subtask to a processor and an
/// execution interval, and every communication subtask to a transfer
/// interval (zero-width when its endpoints are co-located).  It is produced
/// by the list scheduler and consumed by the lateness analysis, the
/// validator and the Gantt renderer.
#pragma once

#include <vector>

#include "sched/machine.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Placement of one computation subtask.
struct TaskPlacement {
  ProcId proc;
  Time start = kUnsetTime;
  Time finish = kUnsetTime;

  bool placed() const noexcept { return proc.valid() && is_set(start); }
};

/// Transfer record of one communication subtask.
struct TransferRecord {
  Time start = kUnsetTime;   ///< Departure (producer finish, or bus slot start).
  Time finish = kUnsetTime;  ///< Arrival at the consumer's processor.
  bool crossed_bus = false;  ///< False when endpoints were co-located.

  bool recorded() const noexcept { return is_set(start); }
};

/// A complete schedule over one task graph and machine.
class Schedule {
 public:
  Schedule() = default;

  /// Creates an empty schedule sized for \p graph on \p machine.
  Schedule(const TaskGraph& graph, const Machine& machine)
      : placements_(graph.node_count()),
        transfers_(graph.node_count()),
        n_procs_(machine.n_procs) {}

  /// Number of processors of the machine this schedule targets.
  int n_procs() const noexcept { return n_procs_; }

  /// Records the placement of a computation subtask.  Inline: called once
  /// per subtask on the scheduler hot path, and the precondition checks
  /// alone are worth keeping out of a call.
  void place(NodeId id, ProcId proc, Time start, Time finish) {
    FEAST_REQUIRE(id.index() < placements_.size());
    FEAST_REQUIRE(proc.valid() && static_cast<int>(proc.index()) < n_procs_);
    FEAST_REQUIRE(is_set(start) && is_set(finish));
    FEAST_REQUIRE_MSG(time_le(start, finish), "finish precedes start");
    FEAST_REQUIRE_MSG(!placements_[id.index()].placed(), "subtask already placed");
    ++placed_count_;
    placements_[id.index()] = TaskPlacement{proc, start, finish};
    if (finish > makespan_) makespan_ = finish;
  }

  /// Records the transfer of a communication subtask (also hot; see place).
  void record_transfer(NodeId id, Time start, Time finish, bool crossed_bus) {
    FEAST_REQUIRE(id.index() < transfers_.size());
    FEAST_REQUIRE(is_set(start) && is_set(finish));
    FEAST_REQUIRE_MSG(time_le(start, finish), "transfer finish precedes start");
    FEAST_REQUIRE_MSG(!transfers_[id.index()].recorded(), "transfer already recorded");
    ++transfer_count_;
    transfers_[id.index()] = TransferRecord{start, finish, crossed_bus};
  }

  /// place() without the per-call contract checks — the optimized core's
  /// commit path, where ids and intervals come from the scheduler's own
  /// arrays and ~200 checked writes per run were measurable.  Safety is
  /// retained one level up: list_schedule postconditions complete(), the
  /// validator re-derives every interval, and the differential oracle
  /// pins the whole trace against the checked reference core.
  void place_unchecked(NodeId id, ProcId proc, Time start, Time finish) noexcept {
    // Count only first placements (branchless), so the O(1) complete()
    // below cannot be fooled by a double write to one slot.
    placed_count_ += placements_[id.index()].placed() ? 0 : 1;
    placements_[id.index()] = TaskPlacement{proc, start, finish};
    if (finish > makespan_) makespan_ = finish;
  }

  /// record_transfer() without the per-call contract checks (see
  /// place_unchecked).
  void record_transfer_unchecked(NodeId id, Time start, Time finish,
                                 bool crossed_bus) noexcept {
    transfer_count_ += transfers_[id.index()].recorded() ? 0 : 1;
    transfers_[id.index()] = TransferRecord{start, finish, crossed_bus};
  }

  /// Re-empties the schedule for \p graph on \p machine, reusing the
  /// existing allocations (batch arenas reschedule through one Schedule
  /// with zero steady-state allocation).  Observationally the post-state
  /// is that of Schedule(graph, machine): when the node count is unchanged
  /// only the placed()/recorded() markers are cleared, and every accessor
  /// gates on those markers, so the stale interval fields of a previous
  /// run are unreachable until overwritten.
  void reset(const TaskGraph& graph, const Machine& machine) {
    if (placements_.size() == graph.node_count()) {
      for (TaskPlacement& p : placements_) p.proc = ProcId();
      for (TransferRecord& t : transfers_) t.start = kUnsetTime;
    } else {
      placements_.assign(graph.node_count(), TaskPlacement{});
      transfers_.assign(graph.node_count(), TransferRecord{});
    }
    n_procs_ = machine.n_procs;
    makespan_ = 0.0;
    placed_count_ = 0;
    transfer_count_ = 0;
  }

  /// Placement of a computation subtask (must be placed).
  const TaskPlacement& placement(NodeId id) const;

  /// Transfer record of a communication subtask (must be recorded).
  const TransferRecord& transfer(NodeId id) const;

  /// True when \p id has been placed/recorded.
  bool scheduled(NodeId id) const {
    FEAST_REQUIRE(id.index() < placements_.size());
    return placements_[id.index()].placed() || transfers_[id.index()].recorded();
  }

  /// True when every node of \p graph is covered.
  bool complete(const TaskGraph& graph) const;

  /// Completion time of the latest computation subtask; 0 when empty.
  /// O(1): place() maintains the running maximum (placements are never
  /// retracted, so the incremental and recomputed maxima coincide).
  Time makespan() const noexcept { return makespan_; }

  /// Computation subtasks on \p proc, sorted by start time.
  std::vector<NodeId> tasks_on(ProcId proc) const;

  /// Total busy time of \p proc.
  Time busy_time(ProcId proc) const;

  /// Fraction of [0, makespan] each processor computes, averaged.
  double average_utilization() const;

 private:
  std::vector<TaskPlacement> placements_;
  std::vector<TransferRecord> transfers_;
  int n_procs_ = 0;
  Time makespan_ = 0.0;  ///< Running max of placed finishes.
  // Distinct placed/recorded nodes, for the O(1) complete() fast path
  // (complete() runs as a postcondition on every scheduled graph, and the
  // full walk was measurable on the batch hot path).
  std::size_t placed_count_ = 0;
  std::size_t transfer_count_ = 0;
};

}  // namespace feast
