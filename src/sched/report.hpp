/// \file report.hpp
/// \brief Quality reports over distributions and schedules.
///
/// The lateness headline (§4.1) compresses a run into one number; these
/// reports expose the structure behind it — how the slack was spread over
/// the subtasks, how evenly the processors were loaded, how busy the
/// interconnect was — for the CLI, the examples and debugging sessions.
#pragma once

#include <ostream>
#include <string>

#include "core/annotation.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Distribution-quality measures (before scheduling).
struct DistributionReport {
  std::size_t subtasks = 0;
  std::size_t sliced_paths = 0;
  Time min_laxity = 0.0;
  Time mean_laxity = 0.0;
  Time median_laxity = 0.0;
  Time max_laxity = 0.0;
  /// Arcs whose windows overlap (predecessor deadline past successor
  /// release) — 0 under respect_interior_bounds; see §4.2 discussion.
  std::size_t arc_window_overlaps = 0;
  /// Share of the end-to-end window granted to computation (vs messages),
  /// averaged over sliced paths.
  double computation_share = 0.0;
};

/// Builds the distribution report.
DistributionReport analyze_distribution(const TaskGraph& graph,
                                        const DeadlineAssignment& assignment);

/// Renders it as aligned text.
void print_distribution_report(std::ostream& out, const DistributionReport& report);

/// Schedule-quality measures (after scheduling).
struct ScheduleQualityReport {
  Time makespan = 0.0;
  double avg_utilization = 0.0;
  double min_proc_utilization = 0.0;
  double max_proc_utilization = 0.0;
  /// Largest single idle gap on any processor before its last task.
  Time largest_idle_gap = 0.0;
  std::size_t crossing_messages = 0;
  std::size_t local_messages = 0;
  Time total_transfer_time = 0.0;
  /// Mean start delay beyond the assigned release over computation nodes.
  Time mean_queueing = 0.0;
  Time max_queueing = 0.0;
};

/// Builds the schedule report.
ScheduleQualityReport analyze_schedule(const TaskGraph& graph,
                                       const DeadlineAssignment& assignment,
                                       const Schedule& schedule);

/// Renders it as aligned text.
void print_schedule_report(std::ostream& out, const ScheduleQualityReport& report);

}  // namespace feast
