/// \file gantt.hpp
/// \brief Human-readable schedule rendering.
///
/// Renders a schedule as an ASCII Gantt chart (one row per processor plus a
/// bus row under the shared-bus model) and as CSV for external plotting.
/// Used by the examples and by failing tests to show what went wrong.
#pragma once

#include <ostream>
#include <string>

#include "core/annotation.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Options of the ASCII renderer.
struct GanttOptions {
  int width = 100;          ///< Character columns for the time axis.
  bool show_bus = true;     ///< Render a row with crossing transfers.
  bool show_names = true;   ///< Print the per-row task lists underneath.
};

/// Writes the ASCII Gantt chart.
void write_gantt(std::ostream& out, const TaskGraph& graph, const Schedule& schedule,
                 const GanttOptions& options = {});

/// Returns the chart as a string.
std::string gantt_to_string(const TaskGraph& graph, const Schedule& schedule,
                            const GanttOptions& options = {});

/// Writes the schedule as CSV rows:
///   kind,name,proc,start,finish,release,abs_deadline,lateness
/// (transfer rows use proc "bus" or "local" and empty deadline columns).
void write_schedule_csv(std::ostream& out, const TaskGraph& graph,
                        const DeadlineAssignment& assignment, const Schedule& schedule);

}  // namespace feast
