/// \file list_scheduler.hpp
/// \brief Deadline-driven list scheduling (§5.3 of the paper).
///
/// The task-assignment stage FEAST evaluates deadline distributions with:
/// a deadline-driven variant of the list scheduler of Lee, Hwang, Chow and
/// Anger.  Each step selects one subtask among all schedulable subtasks
/// (those whose predecessors have been scheduled) by earliest absolute
/// deadline, then places it on the processor yielding the earliest start
/// time, under a non-preemptive time-driven run-time model — a subtask may
/// not start before the release time its execution window assigned
/// (slices have static positions in time, as in BST's time-triggered
/// model).
///
/// Strict locality constraints are honoured: a pinned subtask only
/// considers its designated processor.  Relaxed subtasks consider all.
///
/// Policy knobs (used by the ablation benches):
///  - ReleasePolicy::Eager drops the start >= r_i constraint (subtasks may
///    run as soon as data arrives), isolating how much of a metric's effect
///    flows through window positions versus EDF ordering;
///  - SelectionPolicy::{Fifo, StaticLaxity} replace the EDF pick.
#pragma once

#include "core/annotation.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "sched/scheduler_scratch.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Whether assigned release times bind the start of execution.
enum class ReleasePolicy {
  TimeDriven,  ///< start >= r_i (paper default; slices are static).
  Eager,       ///< start as soon as data and a processor are available.
};

/// How the next subtask is selected among the schedulable set.
enum class SelectionPolicy {
  Edf,           ///< Earliest absolute deadline first (paper default).
  Fifo,          ///< Earliest assigned release first.
  StaticLaxity,  ///< Smallest pre-scheduling laxity (d_i − c_i) first.
};

/// Where on a processor's timeline a subtask may be placed.
enum class ProcessorPolicy {
  /// First-fit into idle gaps (insertion scheduling).  The time-driven
  /// release constraint leaves holes in the timeline; short subtasks
  /// backfill them while long subtasks must wait for a gap of their own
  /// size — the processor-contention asymmetry that motivates the AST
  /// metrics' extra slack for long subtasks.
  GapSearch,
  /// Append after the last placed subtask only (no backfilling).
  QueueAtEnd,
};

/// Which scheduler core evaluates a run.  The two cores are trace-identical
/// by contract (see list_scheduler_detail.hpp and docs/SCHEDULER.md); the
/// reference core exists as the paper-faithful oracle the optimized core is
/// differentially tested against.
enum class SchedulerCore {
  Fast,       ///< Indexed ready-queue core with scratch-arena reuse.
  Reference,  ///< Retained §5.3 implementation (linear scan, per-run state).
};

const char* to_string(ReleasePolicy policy) noexcept;
const char* to_string(SelectionPolicy policy) noexcept;
const char* to_string(ProcessorPolicy policy) noexcept;
const char* to_string(SchedulerCore core) noexcept;

/// List-scheduler configuration.
struct SchedulerOptions {
  ReleasePolicy release_policy = ReleasePolicy::TimeDriven;
  SelectionPolicy selection = SelectionPolicy::Edf;
  ProcessorPolicy processor_policy = ProcessorPolicy::GapSearch;
};

/// Schedules \p graph on \p machine using the windows in \p assignment.
/// Preconditions: the assignment is complete for the graph; pinned subtasks
/// name processors within the machine.  Postcondition: the schedule is
/// complete and passes validate_schedule().
///
/// This is the optimized core: precomputed selection keys feed a binary
/// min-heap ready queue, predecessor communication lists are hoisted out of
/// the placement loop, and all working memory comes from \p scratch, which
/// may be reused across runs of any size (see scheduler_scratch.hpp).
Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options,
                       SchedulerScratch& scratch);

/// As above with a thread-local scratch arena: repeated calls on one thread
/// (e.g. a batch sweep worker) reuse the same buffers automatically.
Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options = {});

/// The retained reference implementation of the §5.3 scheduler: per-step
/// linear scan of the ready set, per-run timeline state.  Produces a trace
/// byte-identical to list_schedule on every input — `feastc diffsched`
/// replays randomized workloads across all policy combinations to enforce
/// this.  Use it as the oracle in tests and benchmarks, not in hot paths.
Schedule list_schedule_ref(const TaskGraph& graph, const DeadlineAssignment& assignment,
                           const Machine& machine, const SchedulerOptions& options = {});

/// Dispatches on \p core; the result is core-independent by contract.
Schedule list_schedule_with(SchedulerCore core, const TaskGraph& graph,
                            const DeadlineAssignment& assignment, const Machine& machine,
                            const SchedulerOptions& options = {});

}  // namespace feast
