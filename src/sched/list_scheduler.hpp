/// \file list_scheduler.hpp
/// \brief Deadline-driven list scheduling (§5.3 of the paper).
///
/// The task-assignment stage FEAST evaluates deadline distributions with:
/// a deadline-driven variant of the list scheduler of Lee, Hwang, Chow and
/// Anger.  Each step selects one subtask among all schedulable subtasks
/// (those whose predecessors have been scheduled) by earliest absolute
/// deadline, then places it on the processor yielding the earliest start
/// time, under a non-preemptive time-driven run-time model — a subtask may
/// not start before the release time its execution window assigned
/// (slices have static positions in time, as in BST's time-triggered
/// model).
///
/// Strict locality constraints are honoured: a pinned subtask only
/// considers its designated processor.  Relaxed subtasks consider all.
///
/// Policy knobs (used by the ablation benches):
///  - ReleasePolicy::Eager drops the start >= r_i constraint (subtasks may
///    run as soon as data arrives), isolating how much of a metric's effect
///    flows through window positions versus EDF ordering;
///  - SelectionPolicy::{Fifo, StaticLaxity} replace the EDF pick.
#pragma once

#include "core/annotation.hpp"
#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast {

/// Whether assigned release times bind the start of execution.
enum class ReleasePolicy {
  TimeDriven,  ///< start >= r_i (paper default; slices are static).
  Eager,       ///< start as soon as data and a processor are available.
};

/// How the next subtask is selected among the schedulable set.
enum class SelectionPolicy {
  Edf,           ///< Earliest absolute deadline first (paper default).
  Fifo,          ///< Earliest assigned release first.
  StaticLaxity,  ///< Smallest pre-scheduling laxity (d_i − c_i) first.
};

/// Where on a processor's timeline a subtask may be placed.
enum class ProcessorPolicy {
  /// First-fit into idle gaps (insertion scheduling).  The time-driven
  /// release constraint leaves holes in the timeline; short subtasks
  /// backfill them while long subtasks must wait for a gap of their own
  /// size — the processor-contention asymmetry that motivates the AST
  /// metrics' extra slack for long subtasks.
  GapSearch,
  /// Append after the last placed subtask only (no backfilling).
  QueueAtEnd,
};

const char* to_string(ReleasePolicy policy) noexcept;
const char* to_string(SelectionPolicy policy) noexcept;
const char* to_string(ProcessorPolicy policy) noexcept;

/// List-scheduler configuration.
struct SchedulerOptions {
  ReleasePolicy release_policy = ReleasePolicy::TimeDriven;
  SelectionPolicy selection = SelectionPolicy::Edf;
  ProcessorPolicy processor_policy = ProcessorPolicy::GapSearch;
};

/// Schedules \p graph on \p machine using the windows in \p assignment.
/// Preconditions: the assignment is complete for the graph; pinned subtasks
/// name processors within the machine.  Postcondition: the schedule is
/// complete and passes validate_schedule().
Schedule list_schedule(const TaskGraph& graph, const DeadlineAssignment& assignment,
                       const Machine& machine, const SchedulerOptions& options = {});

}  // namespace feast
