#include "sched/trace.hpp"

#include <cstring>
#include <sstream>

namespace feast {

namespace {

/// FNV-1a over raw bytes.
std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t mix_time(std::uint64_t hash, Time t) noexcept {
  if (t == 0.0) t = 0.0;  // canonicalize -0.0 (value-equal ⇒ digest-equal)
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(t));
  std::memcpy(&bits, &t, sizeof(bits));
  return fnv1a(hash, &bits, sizeof(bits));
}

std::uint64_t mix_u32(std::uint64_t hash, std::uint32_t v) noexcept {
  return fnv1a(hash, &v, sizeof(v));
}

}  // namespace

bool schedule_trace_equal(const TaskGraph& graph, const Schedule& a, const Schedule& b,
                          std::string* why) {
  for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
    const NodeId id(v);
    if (graph.is_computation(id)) {
      const TaskPlacement& pa = a.placement(id);
      const TaskPlacement& pb = b.placement(id);
      if (pa.proc == pb.proc && pa.start == pb.start && pa.finish == pb.finish) {
        continue;
      }
      if (why != nullptr) {
        std::ostringstream os;
        os << "subtask " << v << ": proc " << pa.proc.value << " ["
           << pa.start << ", " << pa.finish << ") vs proc " << pb.proc.value
           << " [" << pb.start << ", " << pb.finish << ")";
        *why = os.str();
      }
      return false;
    }
    const TransferRecord& ta = a.transfer(id);
    const TransferRecord& tb = b.transfer(id);
    if (ta.start == tb.start && ta.finish == tb.finish &&
        ta.crossed_bus == tb.crossed_bus) {
      continue;
    }
    if (why != nullptr) {
      std::ostringstream os;
      os << "comm " << v << ": [" << ta.start << ", " << ta.finish << ") crossed="
         << ta.crossed_bus << " vs [" << tb.start << ", " << tb.finish
         << ") crossed=" << tb.crossed_bus;
      *why = os.str();
    }
    return false;
  }
  return true;
}

std::uint64_t schedule_trace_digest(const TaskGraph& graph, const Schedule& schedule) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (std::uint32_t v = 0; v < graph.node_count(); ++v) {
    const NodeId id(v);
    if (graph.is_computation(id)) {
      const TaskPlacement& p = schedule.placement(id);
      hash = mix_u32(hash, p.proc.value);
      hash = mix_time(hash, p.start);
      hash = mix_time(hash, p.finish);
    } else {
      const TransferRecord& t = schedule.transfer(id);
      hash = mix_u32(hash, t.crossed_bus ? 1U : 0U);
      hash = mix_time(hash, t.start);
      hash = mix_time(hash, t.finish);
    }
  }
  return hash;
}

}  // namespace feast
