/// \file list_scheduler_detail.hpp
/// \brief The trace contract shared by the reference and optimized
///        scheduler cores (internal header).
///
/// The optimized core (list_schedule) is only shippable because it is
/// *provably trace-identical* to the retained reference core
/// (list_schedule_ref).  That proof rests on both cores agreeing, to the
/// last bit, on every decision that can influence a Schedule.  This header
/// is the single place those decisions are defined:
///
///  1. **Selection order.**  The next subtask among the schedulable set is
///     the lexicographic minimum of (policy key, assigned release, node id)
///     under *exact* double comparison.  Exact comparison — not the
///     epsilon-tolerant time_eq used for schedule bookkeeping — because a
///     tolerant comparison is not transitive and therefore not a strict
///     weak ordering: a binary heap and a linear scan could legally
///     disagree on near-ties, and the tie-break would depend on container
///     order (and thus on the standard library).  With the exact total
///     order the minimum is unique, so any correct algorithm finds the
///     same one.
///
///  2. **Predecessor commit order.**  Incoming transfers of a subtask are
///     committed in (producer finish, communication-node id) order, again
///     under exact comparison.  This makes shared-bus and link slot
///     reservations deterministic across libstdc++/libc++ sort
///     implementations: the comparator is a total order (node ids are
///     unique), so the permutation is unique.  Implementation-wise both
///     cores start from the predecessor list sorted ascending by node id
///     and apply a *stable* sort keyed by producer finish alone, which
///     yields exactly the (finish, id) order.
///
///  3. **Processor choice.**  Among candidate processors the winner is the
///     lowest-indexed one whose earliest start beats the incumbent by more
///     than kTimeEps (the paper's earliest-start rule with a deterministic
///     index tie-break).  Both cores use literally this comparison.
///
/// Anything else (ready-set data structure, scratch reuse, gap-search
/// acceleration) may differ freely between the cores: the differential
/// harness (`feastc diffsched`, tests/test_sched_differential.cpp) checks
/// byte-identical traces over randomized workloads to keep it that way.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/annotation.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"

namespace feast::detail {

/// Order-preserving unsigned image of a time value: for non-NaN a, b,
/// a < b  ⟺  time_order_key(a) < time_order_key(b), and
/// a == b ⟺  time_order_key(a) == time_order_key(b).
///
/// The standard IEEE-754 trick — flip all bits of negatives, set the sign
/// bit of non-negatives — is strictly monotone across the full double
/// range, so comparing images with integer `<` decides exactly what
/// comparing the doubles would.  The one equality hazard, -0.0 == +0.0
/// with distinct bit patterns, is removed by canonicalizing -0.0 to +0.0
/// first.  Selection keys and releases are never NaN (assignment accessors
/// require set values, and the keys are finite arithmetic over them), so
/// the optimized core may sort on these images and still realize the
/// contract's exact (key, release, id) order.
inline std::uint64_t time_order_key(Time t) noexcept {
  if (t == 0.0) t = 0.0;  // collapse -0.0 onto +0.0
  std::uint64_t bits;
  std::memcpy(&bits, &t, sizeof bits);
  return (bits & 0x8000000000000000ull) ? ~bits
                                        : bits | 0x8000000000000000ull;
}

/// The selection key of \p id under \p policy (contract point 1).  Static
/// per run: none of the three policies depends on scheduling state, which
/// is what lets the optimized core precompute keys and use a plain binary
/// heap with no invalidation.
inline Time selection_key(SelectionPolicy policy, const TaskGraph& graph,
                          const DeadlineAssignment& assignment, NodeId id) {
  switch (policy) {
    case SelectionPolicy::Edf: return assignment.abs_deadline(id);
    case SelectionPolicy::Fifo: return assignment.release(id);
    case SelectionPolicy::StaticLaxity:
      return assignment.rel_deadline(id) - graph.node(id).exec_time;
  }
  return 0.0;
}

/// Exact lexicographic (key, release, id) order (contract point 1).
inline bool select_less(Time key_a, Time release_a, NodeId a, Time key_b,
                        Time release_b, NodeId b) noexcept {
  if (key_a != key_b) return key_a < key_b;
  if (release_a != release_b) return release_a < release_b;
  return a < b;
}

/// Sorts \p comms — the predecessor communication nodes of one subtask,
/// already ascending by node id — into (producer finish, id) order
/// (contract point 2), with \p finish_of mapping a comm node to its
/// producer's finish.  Stable insertion sort keyed by exact finish:
/// allocation-free, and stability over the id-sorted input supplies the id
/// tie-break.  Predecessor lists are small (fan-in ≤ ~3 in the paper's
/// workloads), where insertion sort beats std::sort anyway.
template <typename FinishOf>
inline void order_comms_by_finish_with(std::vector<NodeId>& comms,
                                       FinishOf&& finish_of) {
  for (std::size_t i = 1; i < comms.size(); ++i) {
    const NodeId comm = comms[i];
    const Time finish = finish_of(comm);
    std::size_t j = i;
    while (j > 0 && finish_of(comms[j - 1]) > finish) {
      comms[j] = comms[j - 1];
      --j;
    }
    comms[j] = comm;
  }
}

/// As above, reading producer finishes straight from the schedule (the
/// reference core's form).
inline void order_comms_by_finish(std::vector<NodeId>& comms, const TaskGraph& graph,
                                  const Schedule& schedule) {
  order_comms_by_finish_with(comms, [&](NodeId comm) {
    return schedule.placement(graph.comm_source(comm)).finish;
  });
}

}  // namespace feast::detail
