#include "sched/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace feast {

namespace {

/// Scales a time to a column within [0, width].
int column_of(Time t, Time span, int width) {
  if (span <= 0.0) return 0;
  const int col = static_cast<int>(static_cast<double>(width) * t / span);
  return std::clamp(col, 0, width);
}

/// Paints [start, finish) with a glyph on a row.
void paint(std::string& row, Time start, Time finish, Time span, int width, char glyph) {
  const int a = column_of(start, span, width);
  const int b = std::max(a + 1, column_of(finish, span, width));
  for (int c = a; c < b && c < static_cast<int>(row.size()); ++c) {
    row[static_cast<std::size_t>(c)] = glyph;
  }
}

/// Glyph for the i-th task on a row: letters cycle a..z, A..Z, 0..9.
char glyph_for(std::size_t i) {
  static const char kGlyphs[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  return kGlyphs[i % (sizeof(kGlyphs) - 1)];
}

}  // namespace

void write_gantt(std::ostream& out, const TaskGraph& graph, const Schedule& schedule,
                 const GanttOptions& options) {
  const Time span = schedule.makespan();
  out << "makespan = " << format_compact(span, 3) << " time units\n";
  for (int p = 0; p < schedule.n_procs(); ++p) {
    const ProcId proc(static_cast<std::uint32_t>(p));
    const std::vector<NodeId> tasks = schedule.tasks_on(proc);
    std::string row(static_cast<std::size_t>(options.width), '.');
    std::vector<std::string> legend;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const TaskPlacement& place = schedule.placement(tasks[i]);
      const char glyph = glyph_for(i);
      paint(row, place.start, place.finish, span, options.width, glyph);
      if (options.show_names) {
        legend.push_back(std::string(1, glyph) + "=" + graph.node(tasks[i]).name);
      }
    }
    out << "P" << p << " |" << row << "|\n";
    if (options.show_names && !legend.empty()) {
      out << "     " << join(legend, " ") << "\n";
    }
  }
  if (options.show_bus) {
    std::string row(static_cast<std::size_t>(options.width), '.');
    bool any = false;
    for (const NodeId comm : graph.communication_nodes()) {
      const TransferRecord& t = schedule.transfer(comm);
      if (!t.crossed_bus || t.finish - t.start <= kTimeEps) continue;
      any = true;
      paint(row, t.start, t.finish, span, options.width, '#');
    }
    if (any) out << "bus|" << row << "|\n";
  }
}

std::string gantt_to_string(const TaskGraph& graph, const Schedule& schedule,
                            const GanttOptions& options) {
  std::ostringstream oss;
  write_gantt(oss, graph, schedule, options);
  return oss.str();
}

void write_schedule_csv(std::ostream& out, const TaskGraph& graph,
                        const DeadlineAssignment& assignment, const Schedule& schedule) {
  CsvWriter csv(out);
  csv.write_row({"kind", "name", "proc", "start", "finish", "release", "abs_deadline",
                 "lateness"});
  for (const NodeId id : graph.computation_nodes()) {
    const TaskPlacement& p = schedule.placement(id);
    csv.write_row({"computation", graph.node(id).name,
                   "P" + std::to_string(p.proc.value), format_compact(p.start, 6),
                   format_compact(p.finish, 6),
                   format_compact(assignment.release(id), 6),
                   format_compact(assignment.abs_deadline(id), 6),
                   format_compact(p.finish - assignment.abs_deadline(id), 6)});
  }
  for (const NodeId id : graph.communication_nodes()) {
    const TransferRecord& t = schedule.transfer(id);
    csv.write_row({"communication", graph.node(id).name,
                   t.crossed_bus ? "bus" : "local", format_compact(t.start, 6),
                   format_compact(t.finish, 6),
                   format_compact(assignment.release(id), 6),
                   format_compact(assignment.abs_deadline(id), 6), ""});
  }
}

}  // namespace feast
