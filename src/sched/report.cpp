#include "sched/report.hpp"

#include <algorithm>
#include <vector>

#include "core/distribution_validate.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace feast {

DistributionReport analyze_distribution(const TaskGraph& graph,
                                        const DeadlineAssignment& assignment) {
  DistributionReport report;
  report.subtasks = graph.subtask_count();
  report.sliced_paths = assignment.paths().size();
  report.arc_window_overlaps = count_arc_window_overlaps(graph, assignment);

  std::vector<double> laxities;
  laxities.reserve(graph.subtask_count());
  for (const NodeId id : graph.computation_nodes()) {
    laxities.push_back(assignment.laxity(graph, id));
  }
  if (!laxities.empty()) {
    report.min_laxity = *std::min_element(laxities.begin(), laxities.end());
    report.max_laxity = *std::max_element(laxities.begin(), laxities.end());
    report.mean_laxity = mean_of(laxities);
    report.median_laxity = quantile(laxities, 0.5);
  }

  // Share of each sliced path's window granted to computation windows.
  double share_sum = 0.0;
  std::size_t shares = 0;
  for (const SlicedPath& path : assignment.paths()) {
    const Time window = path.window_end - path.window_start;
    if (window <= kTimeEps) continue;
    Time computation = 0.0;
    for (const NodeId id : path.nodes) {
      if (graph.is_computation(id)) computation += assignment.rel_deadline(id);
    }
    share_sum += computation / window;
    ++shares;
  }
  report.computation_share = shares > 0 ? share_sum / static_cast<double>(shares) : 0.0;
  return report;
}

void print_distribution_report(std::ostream& out, const DistributionReport& report) {
  out << "distribution quality\n";
  out << "  subtasks:            " << report.subtasks << "\n";
  out << "  sliced paths:        " << report.sliced_paths << "\n";
  out << "  laxity min/med/mean/max: " << format_fixed(report.min_laxity, 2) << " / "
      << format_fixed(report.median_laxity, 2) << " / "
      << format_fixed(report.mean_laxity, 2) << " / "
      << format_fixed(report.max_laxity, 2) << "\n";
  out << "  window overlaps:     " << report.arc_window_overlaps << " arcs\n";
  out << "  computation share:   " << format_fixed(report.computation_share * 100.0, 1)
      << "% of path windows\n";
}

ScheduleQualityReport analyze_schedule(const TaskGraph& graph,
                                       const DeadlineAssignment& assignment,
                                       const Schedule& schedule) {
  ScheduleQualityReport report;
  report.makespan = schedule.makespan();
  report.avg_utilization = schedule.average_utilization();

  double min_util = 1.0;
  double max_util = 0.0;
  for (int p = 0; p < schedule.n_procs(); ++p) {
    const ProcId proc(static_cast<std::uint32_t>(p));
    const double util =
        report.makespan > 0.0 ? schedule.busy_time(proc) / report.makespan : 0.0;
    min_util = std::min(min_util, util);
    max_util = std::max(max_util, util);

    // Largest idle gap between consecutive tasks on this processor.
    const std::vector<NodeId> tasks = schedule.tasks_on(proc);
    Time prev_finish = 0.0;
    for (const NodeId id : tasks) {
      const TaskPlacement& placement = schedule.placement(id);
      report.largest_idle_gap =
          std::max(report.largest_idle_gap, placement.start - prev_finish);
      prev_finish = placement.finish;
    }
  }
  report.min_proc_utilization = schedule.n_procs() > 0 ? min_util : 0.0;
  report.max_proc_utilization = max_util;

  for (const NodeId comm : graph.communication_nodes()) {
    const TransferRecord& t = schedule.transfer(comm);
    if (t.crossed_bus) {
      ++report.crossing_messages;
      report.total_transfer_time += t.finish - t.start;
    } else {
      ++report.local_messages;
    }
  }

  RunningStats queueing;
  for (const NodeId id : graph.computation_nodes()) {
    queueing.add(schedule.placement(id).start - assignment.release(id));
  }
  report.mean_queueing = queueing.mean();
  report.max_queueing = queueing.max();
  return report;
}

void print_schedule_report(std::ostream& out, const ScheduleQualityReport& report) {
  out << "schedule quality\n";
  out << "  makespan:            " << format_fixed(report.makespan, 2) << "\n";
  out << "  utilization avg/min/max: "
      << format_fixed(report.avg_utilization * 100.0, 1) << "% / "
      << format_fixed(report.min_proc_utilization * 100.0, 1) << "% / "
      << format_fixed(report.max_proc_utilization * 100.0, 1) << "%\n";
  out << "  largest idle gap:    " << format_fixed(report.largest_idle_gap, 2) << "\n";
  out << "  messages local/crossing: " << report.local_messages << " / "
      << report.crossing_messages << "\n";
  out << "  transfer time:       " << format_fixed(report.total_transfer_time, 2)
      << "\n";
  out << "  queueing mean/max:   " << format_fixed(report.mean_queueing, 2) << " / "
      << format_fixed(report.max_queueing, 2) << "\n";
}

}  // namespace feast
