#include "sched/scheduler_scratch.hpp"

namespace feast {

void SchedulerScratch::bind(std::size_t node_count, std::size_t n_procs,
                            bool with_links) {
  // No fill for the per-node arrays either: prepare() writes waiting,
  // floor and exec for every computation node before the run loop reads
  // them, and communication-node entries are never read.
  if (waiting.size() < node_count) waiting.resize(node_count);
  if (floor.size() < node_count) floor.resize(node_count);
  if (exec.size() < node_count) exec.resize(node_count);

  // No fill: latency is written for every comm node in prepare(), and
  // finish/proc only become readable once the producer commits (a consumer
  // is evaluated only after all its producers placed).
  if (comm.size() < node_count) comm.resize(node_count);

  sort_buf.clear();
  order.clear();
  // rank is fully written in prepare() before any read, so no fill.
  if (rank.size() < node_count) rank.resize(node_count);
  ready_words.assign((node_count + 63) / 64, 0);

  // prepare() writes pred_offset[v + 1] for every node; only [0] needs
  // presetting.
  if (pred_offset.size() < node_count + 1) pred_offset.resize(node_count + 1);
  pred_offset[0] = 0;
  pred_comms.clear();
  commit_order.clear();

  // Timelines keep their slot capacity across runs: resize only adds or
  // drops whole timelines, clear() empties each without releasing memory.
  if (procs.size() < n_procs) procs.resize(n_procs);
  for (std::size_t p = 0; p < n_procs; ++p) procs[p].clear();
  proc_tail.assign(n_procs, 0.0);
  bus.clear();
  const std::size_t n_links = with_links ? n_procs * n_procs : 0;
  if (links.size() < n_links) links.resize(n_links);
  for (std::size_t l = 0; l < n_links; ++l) links[l].clear();

  local_produced.assign(n_procs, 0.0);
  local_epoch.assign(n_procs, 0);
  epoch = 0;
}

}  // namespace feast
