#include "sched/scheduler_scratch.hpp"

namespace feast {

void SchedulerScratch::bind(std::size_t node_count, std::size_t rank_count,
                            std::size_t n_procs, bool with_links) {
  // No fill: prepare() writes waiting for every computation node before
  // the run loop reads it, and communication-node entries are never read.
  if (waiting.size() < node_count) waiting.resize(node_count);

  // No fill: latency is written for every comm node in prepare(), and
  // finish/proc only become readable once the producer commits (a consumer
  // is evaluated only after all its producers placed).
  if (comm.size() < node_count) comm.resize(node_count);

  // sort_buf is fully written in prepare() before any read (prepare loops
  // run over the graph's computation count, not the buffer size), so
  // binding only guarantees capacity — no clear, no fill.
  if (sort_buf.size() < node_count) sort_buf.resize(node_count);
  // Ranks only span the computation subtasks, not all nodes — the bitset
  // is a word or two at paper sizes, which keeps the pop scan inline.
  ready_words.assign((rank_count + 63) / 64, 0);

  commit_order.clear();

  // Timelines keep their slot capacity across runs: resize only adds or
  // drops whole timelines, clear() empties each without releasing memory.
  if (procs.size() < n_procs) procs.resize(n_procs);
  for (std::size_t p = 0; p < n_procs; ++p) procs[p].clear();
  proc_tail.assign(n_procs, 0.0);
  bus.clear();
  const std::size_t n_links = with_links ? n_procs * n_procs : 0;
  if (links.size() < n_links) links.resize(n_links);
  for (std::size_t l = 0; l < n_links; ++l) links[l].clear();
}

}  // namespace feast
