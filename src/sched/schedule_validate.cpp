#include "sched/schedule_validate.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace feast {

std::string ScheduleReport::to_string() const { return join(problems, "\n"); }

namespace {
std::string node_label(const TaskGraph& graph, NodeId id) {
  return "node #" + std::to_string(id.value) + " ('" + graph.node(id).name + "')";
}
}  // namespace

ScheduleReport validate_schedule(const TaskGraph& graph,
                                 const DeadlineAssignment& assignment,
                                 const Machine& machine, const Schedule& schedule,
                                 const SchedulerOptions& options) {
  ScheduleReport report;
  auto problem = [&](const std::string& msg) { report.problems.push_back(msg); };

  if (!schedule.complete(graph)) {
    problem("schedule does not cover every node");
    return report;
  }

  // Placement sanity, pinning, release policy, execution duration.
  for (const NodeId id : graph.computation_nodes()) {
    const TaskPlacement& p = schedule.placement(id);
    if (static_cast<int>(p.proc.index()) >= machine.n_procs) {
      problem(node_label(graph, id) + ": placed on a processor outside the machine");
    }
    const ProcId pin = graph.node(id).pinned;
    if (pin.valid() && p.proc != pin) {
      problem(node_label(graph, id) + ": violates its strict locality constraint");
    }
    const Time expected_exec =
        machine.exec_time_on(graph.node(id).exec_time, p.proc.index());
    if (!time_eq(p.finish - p.start, expected_exec)) {
      problem(node_label(graph, id) + ": executes for " +
              format_compact(p.finish - p.start) + " instead of " +
              format_compact(expected_exec));
    }
    if (options.release_policy == ReleasePolicy::TimeDriven &&
        time_lt(p.start, assignment.release(id))) {
      problem(node_label(graph, id) + ": starts before its assigned release time");
    }
    const Time boundary = graph.node(id).boundary_release;
    if (is_set(boundary) && time_lt(p.start, boundary)) {
      problem(node_label(graph, id) + ": starts before its boundary release");
    }
  }

  // Processor exclusivity.
  for (int pi = 0; pi < machine.n_procs; ++pi) {
    const std::vector<NodeId> tasks = schedule.tasks_on(ProcId(static_cast<std::uint32_t>(pi)));
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      const TaskPlacement& prev = schedule.placement(tasks[i - 1]);
      const TaskPlacement& cur = schedule.placement(tasks[i]);
      if (time_lt(cur.start, prev.finish)) {
        problem("processor P" + std::to_string(pi) + ": " + node_label(graph, tasks[i]) +
                " overlaps " + node_label(graph, tasks[i - 1]));
      }
    }
  }

  // Precedence, transfers and communication latency.
  for (const NodeId comm : graph.communication_nodes()) {
    const NodeId producer = graph.comm_source(comm);
    const NodeId consumer = graph.comm_sink(comm);
    const TaskPlacement& pp = schedule.placement(producer);
    const TaskPlacement& cp = schedule.placement(consumer);
    const TransferRecord& t = schedule.transfer(comm);

    const bool crossing = pp.proc != cp.proc;
    if (t.crossed_bus != crossing) {
      problem(node_label(graph, comm) + ": transfer record disagrees with placement on crossing");
    }
    if (time_lt(t.start, pp.finish)) {
      problem(node_label(graph, comm) + ": departs before the producer finishes");
    }
    const Time expected_latency =
        crossing ? machine.transfer_time(graph.node(comm).message_items) : 0.0;
    if (!time_eq(t.finish - t.start, expected_latency)) {
      problem(node_label(graph, comm) + ": transfer lasts " +
              format_compact(t.finish - t.start) + " instead of " +
              format_compact(expected_latency));
    }
    if (time_lt(cp.start, t.finish)) {
      problem(node_label(graph, comm) + ": consumer starts before the message arrives");
    }
  }

  // Interconnect exclusivity: one serial resource under the shared bus,
  // one per unordered processor pair under point-to-point links.
  if (machine.contention != CommContention::ContentionFree) {
    auto resource_of = [&](NodeId comm) -> std::size_t {
      if (machine.contention == CommContention::SharedBus) return 0;
      const std::size_t a = schedule.placement(graph.comm_source(comm)).proc.index();
      const std::size_t b = schedule.placement(graph.comm_sink(comm)).proc.index();
      return std::min(a, b) * static_cast<std::size_t>(machine.n_procs) +
             std::max(a, b);
    };
    std::vector<NodeId> crossing;
    for (const NodeId comm : graph.communication_nodes()) {
      const TransferRecord& t = schedule.transfer(comm);
      if (t.crossed_bus && t.finish - t.start > kTimeEps) crossing.push_back(comm);
    }
    std::sort(crossing.begin(), crossing.end(), [&](NodeId a, NodeId b) {
      if (resource_of(a) != resource_of(b)) return resource_of(a) < resource_of(b);
      return schedule.transfer(a).start < schedule.transfer(b).start;
    });
    for (std::size_t i = 1; i < crossing.size(); ++i) {
      if (resource_of(crossing[i]) != resource_of(crossing[i - 1])) continue;
      const TransferRecord& prev = schedule.transfer(crossing[i - 1]);
      const TransferRecord& cur = schedule.transfer(crossing[i]);
      if (time_lt(cur.start, prev.finish)) {
        problem("interconnect: transfer " + node_label(graph, crossing[i]) +
                " overlaps " + node_label(graph, crossing[i - 1]));
      }
    }
  }

  return report;
}

void require_valid(const ScheduleReport& report) {
  FEAST_REQUIRE_MSG(report.ok(), report.to_string());
}

}  // namespace feast
