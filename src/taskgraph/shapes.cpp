#include "taskgraph/shapes.hpp"

#include <string>
#include <vector>

#include "taskgraph/algorithms.hpp"
#include "taskgraph/validate.hpp"

namespace feast {

namespace {

/// Shared RNG-driven attribute sampling for the structured families.
class ShapeBuilder {
 public:
  ShapeBuilder(const ShapeConfig& config, Pcg32& rng) : config_(config), rng_(&rng) {
    FEAST_REQUIRE(config.mean_exec_time > 0.0);
    FEAST_REQUIRE(config.exec_spread >= 0.0 && config.exec_spread < 1.0);
    FEAST_REQUIRE(config.ccr >= 0.0);
    FEAST_REQUIRE(config.message_spread >= 0.0 && config.message_spread <= 1.0);
  }

  NodeId add(TaskGraph& graph, const std::string& name) {
    const Time lo = config_.mean_exec_time * (1.0 - config_.exec_spread);
    const Time hi = config_.mean_exec_time * (1.0 + config_.exec_spread);
    return graph.add_subtask(name, rng_->uniform_real(lo, hi));
  }

  void connect(TaskGraph& graph, NodeId from, NodeId to) {
    const double mean_items = config_.ccr * config_.mean_exec_time;
    double items = 0.0;
    if (mean_items > 0.0) {
      items = rng_->uniform_real(mean_items * (1.0 - config_.message_spread),
                                 mean_items * (1.0 + config_.message_spread));
    }
    graph.add_precedence(from, to, items);
  }

  void finish(TaskGraph& graph) const {
    Time basis = 0.0;
    switch (config_.olr_basis) {
      case OlrBasis::TotalWorkload: basis = graph.total_workload(); break;
      case OlrBasis::CriticalPath:
        basis = longest_path_length(graph, computation_cost);
        break;
    }
    const Time deadline = config_.olr * basis;
    for (const NodeId id : graph.inputs()) graph.set_boundary_release(id, 0.0);
    for (const NodeId id : graph.outputs()) graph.set_boundary_deadline(id, deadline);
    require_valid(validate_for_distribution(graph));
  }

 private:
  ShapeConfig config_;
  Pcg32* rng_;
};

/// Number of nodes on tree level k (0 = widest level of an in-tree).
int tree_level_width(int depth, int branching, int level) {
  int width = 1;
  for (int i = 0; i < depth - 1 - level; ++i) width *= branching;
  return width;
}

}  // namespace

TaskGraph make_chain(int length, const ShapeConfig& config, Pcg32& rng) {
  FEAST_REQUIRE(length >= 1);
  ShapeBuilder b(config, rng);
  TaskGraph graph;
  NodeId prev;
  for (int i = 0; i < length; ++i) {
    const NodeId cur = b.add(graph, "c" + std::to_string(i));
    if (prev.valid()) b.connect(graph, prev, cur);
    prev = cur;
  }
  b.finish(graph);
  return graph;
}

TaskGraph make_in_tree(int depth, int branching, const ShapeConfig& config, Pcg32& rng) {
  FEAST_REQUIRE(depth >= 1);
  FEAST_REQUIRE(branching >= 1);
  ShapeBuilder b(config, rng);
  TaskGraph graph;
  std::vector<NodeId> prev_level;
  for (int lvl = 0; lvl < depth; ++lvl) {
    const int width = tree_level_width(depth, branching, lvl);
    std::vector<NodeId> level;
    level.reserve(static_cast<std::size_t>(width));
    for (int k = 0; k < width; ++k) {
      level.push_back(b.add(graph, "n" + std::to_string(lvl) + "_" + std::to_string(k)));
    }
    // Children lvl-1 merge in groups of `branching` into each parent.
    for (std::size_t i = 0; i < prev_level.size(); ++i) {
      b.connect(graph, prev_level[i], level[i / static_cast<std::size_t>(branching)]);
    }
    prev_level = std::move(level);
  }
  b.finish(graph);
  return graph;
}

TaskGraph make_out_tree(int depth, int branching, const ShapeConfig& config, Pcg32& rng) {
  FEAST_REQUIRE(depth >= 1);
  FEAST_REQUIRE(branching >= 1);
  ShapeBuilder b(config, rng);
  TaskGraph graph;
  std::vector<NodeId> prev_level;
  for (int lvl = 0; lvl < depth; ++lvl) {
    // Mirror image of the in-tree: level 0 has one node.
    const int width = tree_level_width(depth, branching, depth - 1 - lvl);
    std::vector<NodeId> level;
    level.reserve(static_cast<std::size_t>(width));
    for (int k = 0; k < width; ++k) {
      level.push_back(b.add(graph, "n" + std::to_string(lvl) + "_" + std::to_string(k)));
    }
    for (std::size_t i = 0; i < level.size(); ++i) {
      if (!prev_level.empty()) {
        b.connect(graph, prev_level[i / static_cast<std::size_t>(branching)], level[i]);
      }
    }
    prev_level = std::move(level);
  }
  b.finish(graph);
  return graph;
}

TaskGraph make_fork_join(int stages, int width, int branch_length,
                         const ShapeConfig& config, Pcg32& rng) {
  FEAST_REQUIRE(stages >= 1);
  FEAST_REQUIRE(width >= 1);
  FEAST_REQUIRE(branch_length >= 1);
  ShapeBuilder b(config, rng);
  TaskGraph graph;
  NodeId join;  // sink of the previous stage
  for (int s = 0; s < stages; ++s) {
    const std::string tag = "s" + std::to_string(s);
    const NodeId fork = b.add(graph, tag + "_fork");
    if (join.valid()) b.connect(graph, join, fork);
    join = b.add(graph, tag + "_join");
    for (int w = 0; w < width; ++w) {
      NodeId prev = fork;
      for (int k = 0; k < branch_length; ++k) {
        const NodeId cur =
            b.add(graph, tag + "_b" + std::to_string(w) + "_" + std::to_string(k));
        b.connect(graph, prev, cur);
        prev = cur;
      }
      b.connect(graph, prev, join);
    }
  }
  b.finish(graph);
  return graph;
}

TaskGraph make_diamond(int width, const ShapeConfig& config, Pcg32& rng) {
  return make_fork_join(1, width, 1, config, rng);
}

}  // namespace feast
