#include "taskgraph/dot.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace feast {

namespace {
std::string escape_label(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void write_dot(std::ostream& out, const TaskGraph& graph, const NodeLabelFn& extra_label) {
  out << "digraph taskgraph {\n";
  out << "  rankdir=TB;\n";
  for (const NodeId id : graph.all_nodes()) {
    const Node& n = graph.node(id);
    std::string label = escape_label(n.name);
    if (n.kind == NodeKind::Computation) {
      label += "\\nc=" + format_compact(n.exec_time, 3);
      if (n.pinned.valid()) label += "\\npin=P" + std::to_string(n.pinned.value);
      if (is_set(n.boundary_release)) {
        label += "\\nrel=" + format_compact(n.boundary_release, 3);
      }
      if (is_set(n.boundary_deadline)) {
        label += "\\nD=" + format_compact(n.boundary_deadline, 3);
      }
    } else {
      label += "\\nm=" + format_compact(n.message_items, 3);
    }
    if (extra_label) {
      const std::string extra = extra_label(id);
      if (!extra.empty()) label += "\\n" + escape_label(extra);
    }
    out << "  n" << id.value << " [label=\"" << label << "\", shape="
        << (n.kind == NodeKind::Computation ? "box" : "ellipse") << "];\n";
  }
  for (const NodeId id : graph.all_nodes()) {
    for (const NodeId succ : graph.succs(id)) {
      out << "  n" << id.value << " -> n" << succ.value << ";\n";
    }
  }
  out << "}\n";
}

std::string to_dot(const TaskGraph& graph, const NodeLabelFn& extra_label) {
  std::ostringstream oss;
  write_dot(oss, graph, extra_label);
  return oss.str();
}

}  // namespace feast
