/// \file serialize.hpp
/// \brief Plain-text serialization of task graphs.
///
/// Format (line-oriented, '#' comments):
///
///   feast-taskgraph v1
///   subtask <exec> <pin|-> <release|-> <deadline|-> <name>
///   arc <from-subtask-index> <to-subtask-index> <message-items>
///
/// Subtask indices refer to `subtask` lines in file order (0-based).
/// Communication nodes are reconstructed by `arc` lines, so the round trip
/// preserves structure, attributes and boundary timing exactly (doubles are
/// printed with max_digits10).
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "taskgraph/task_graph.hpp"

namespace feast {

/// Thrown when parsing malformed task-graph text.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Writes \p graph in the v1 text format.
void write_task_graph(std::ostream& out, const TaskGraph& graph);

/// Serializes to a string.
std::string task_graph_to_string(const TaskGraph& graph);

/// Parses the v1 text format; throws ParseError on malformed input.
TaskGraph read_task_graph(std::istream& in);

/// Parses from a string.
TaskGraph task_graph_from_string(const std::string& text);

}  // namespace feast
