/// \file shapes.hpp
/// \brief Structured task-graph families from §8 of the paper.
///
/// The paper's discussion section calls for evaluating AST on
/// commonly-encountered structures: in-trees, out-trees and fork-join
/// graphs.  These generators build such graphs with the same workload
/// parameterization (MET, spread, CCR, OLR) as the random generator so the
/// bench `sec8_structured` can compare metrics across families.
#pragma once

#include "taskgraph/generator.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/rng.hpp"

namespace feast {

/// Workload knobs shared by the structured generators.
struct ShapeConfig {
  Time mean_exec_time = 20.0;
  double exec_spread = 0.50;
  double olr = 1.5;
  OlrBasis olr_basis = OlrBasis::TotalWorkload;
  double ccr = 1.0;
  double message_spread = 0.5;
};

/// A purely sequential chain of \p length subtasks.
TaskGraph make_chain(int length, const ShapeConfig& config, Pcg32& rng);

/// A complete in-tree (many inputs reducing to one output) of the given
/// \p depth (levels) and \p branching factor: level k has branching^(d-1-k)
/// nodes and every node's children merge into one parent.
TaskGraph make_in_tree(int depth, int branching, const ShapeConfig& config, Pcg32& rng);

/// A complete out-tree (one input expanding to many outputs); the mirror
/// image of make_in_tree.
TaskGraph make_out_tree(int depth, int branching, const ShapeConfig& config, Pcg32& rng);

/// A fork-join graph: a source forks into \p width parallel branches of
/// \p branch_length sequential subtasks each, joining into a sink; repeated
/// \p stages times end to end.
TaskGraph make_fork_join(int stages, int width, int branch_length,
                         const ShapeConfig& config, Pcg32& rng);

/// A diamond: source → width parallel subtasks → sink (fork-join with one
/// stage and branch length 1).
TaskGraph make_diamond(int width, const ShapeConfig& config, Pcg32& rng);

}  // namespace feast
