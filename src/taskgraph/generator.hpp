/// \file generator.hpp
/// \brief Random layered task-graph generator reproducing §5.2 of the paper.
///
/// Workload defaults (all configurable):
///  - 40–60 computation subtasks per graph;
///  - graph depth 8–12 levels;
///  - per-subtask fan-in/fan-out target range 1–3;
///  - execution times uniform around MET = 20 with a scenario-dependent
///    spread: LDET ±25%, MDET ±50%, HDET ±99%;
///  - one end-to-end deadline per input–output pair with an overall laxity
///    ratio (OLR) of 1.5 against the accumulated task-graph workload;
///  - message sizes sized so the communication-to-computation ratio (CCR)
///    between mean message cost and mean execution time is 1.0.
#pragma once

#include "taskgraph/task_graph.hpp"
#include "util/rng.hpp"

namespace feast {

/// The paper's three execution-time-spread scenarios.
enum class ExecSpreadScenario { LDET, MDET, HDET };

/// Maximum relative deviation from the mean execution time per scenario.
double exec_spread_of(ExecSpreadScenario scenario) noexcept;

/// Scenario name ("LDET"/"MDET"/"HDET").
const char* to_string(ExecSpreadScenario scenario) noexcept;

/// How the overall laxity ratio translates into end-to-end deadlines.
enum class OlrBasis {
  TotalWorkload,  ///< D = OLR × Σ c_i over all subtasks (paper default).
  CriticalPath    ///< D = OLR × longest path in execution time.
};

/// Tunable parameters of the random generator.
struct RandomGraphConfig {
  int min_subtasks = 40;
  int max_subtasks = 60;
  int min_depth = 8;
  int max_depth = 12;
  int min_degree = 1;  ///< Minimum predecessors per non-input subtask.
  int max_degree = 3;  ///< Maximum predecessors per non-input subtask and
                       ///< target cap on successors.
  /// Variance of the per-level width profile: extras beyond one node per
  /// level follow symmetric Dirichlet(α) weights.  α = 1 (default) gives
  /// high-variance profiles with pronounced wide levels (contention hot
  /// spots); large α approaches uniform widths.
  double level_width_alpha = 1.0;

  /// Fan-in discipline of the coverage pass.  Default (false): graphs are
  /// strictly layered and successor-less nodes funnel into the next level
  /// even where that exceeds max_degree predecessors — wide-to-narrow
  /// transitions then form high-fan-in join points.  True: the cap is
  /// inviolable; orphans search later levels for spare fan-in (skip-level
  /// arcs) and otherwise remain additional output subtasks.
  bool strict_fanin_cap = false;

  Time mean_exec_time = 20.0;   ///< MET.
  double exec_spread = 0.50;    ///< ±fraction around MET (MDET default).
  double olr = 1.5;             ///< Overall laxity ratio.
  OlrBasis olr_basis = OlrBasis::TotalWorkload;
  double ccr = 1.0;             ///< Mean message cost / mean execution time.
  double message_spread = 0.5;  ///< ±fraction around the mean message size.

  /// Convenience: applies a scenario's execution-time spread.
  void set_scenario(ExecSpreadScenario scenario) noexcept {
    exec_spread = exec_spread_of(scenario);
  }
};

/// Generates one random task graph.  The result is structurally valid and
/// ready for deadline distribution (inputs released at 0, outputs carrying
/// the OLR-derived end-to-end deadline).  Deterministic in (config, rng
/// state).
TaskGraph generate_random_graph(const RandomGraphConfig& config, Pcg32& rng);

/// Pins a uniformly random fraction of the computation subtasks to random
/// processors among \p n_procs, modelling the strict subset of a system with
/// relaxed locality constraints.  \p fraction in [0, 1].
void pin_random_fraction(TaskGraph& graph, double fraction, int n_procs, Pcg32& rng);

}  // namespace feast
