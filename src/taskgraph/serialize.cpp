#include "taskgraph/serialize.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <vector>

#include "util/strings.hpp"

namespace feast {

namespace {

constexpr const char* kHeader = "feast-taskgraph v1";

std::string format_time_field(Time t) {
  if (!is_set(t)) return "-";
  std::ostringstream oss;
  oss << std::setprecision(std::numeric_limits<double>::max_digits10) << t;
  return oss.str();
}

double parse_double(const std::string& token, int line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(line_no) + ": bad number '" + token + "'");
  }
}

int parse_int(const std::string& token, int line_no) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return v;
  } catch (const std::exception&) {
    throw ParseError("line " + std::to_string(line_no) + ": bad integer '" + token + "'");
  }
}

}  // namespace

void write_task_graph(std::ostream& out, const TaskGraph& graph) {
  out << kHeader << "\n";
  const std::vector<NodeId> subtasks = graph.computation_nodes();
  // Map node id -> subtask index for arc lines.
  std::vector<std::size_t> sub_index(graph.node_count(), 0);
  for (std::size_t i = 0; i < subtasks.size(); ++i) sub_index[subtasks[i].index()] = i;

  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const NodeId id : subtasks) {
    const Node& n = graph.node(id);
    out << "subtask " << n.exec_time << ' '
        << (n.pinned.valid() ? std::to_string(n.pinned.value) : std::string("-")) << ' '
        << format_time_field(n.boundary_release) << ' '
        << format_time_field(n.boundary_deadline) << ' ' << n.name << "\n";
  }
  for (const NodeId comm : graph.communication_nodes()) {
    out << "arc " << sub_index[graph.comm_source(comm).index()] << ' '
        << sub_index[graph.comm_sink(comm).index()] << ' '
        << graph.node(comm).message_items << "\n";
  }
}

std::string task_graph_to_string(const TaskGraph& graph) {
  std::ostringstream oss;
  write_task_graph(oss, graph);
  return oss.str();
}

TaskGraph read_task_graph(std::istream& in) {
  std::string line;
  int line_no = 0;
  bool saw_header = false;
  TaskGraph graph;
  std::vector<NodeId> subtasks;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    if (!saw_header) {
      if (text != kHeader) {
        throw ParseError("line " + std::to_string(line_no) + ": expected header '" +
                         kHeader + "'");
      }
      saw_header = true;
      continue;
    }
    std::istringstream fields(text);
    std::string keyword;
    fields >> keyword;
    if (keyword == "subtask") {
      std::string exec_s;
      std::string pin_s;
      std::string rel_s;
      std::string dl_s;
      if (!(fields >> exec_s >> pin_s >> rel_s >> dl_s)) {
        throw ParseError("line " + std::to_string(line_no) + ": malformed subtask line");
      }
      std::string name;
      std::getline(fields, name);
      name = trim(name);
      if (name.empty()) {
        throw ParseError("line " + std::to_string(line_no) + ": subtask lacks a name");
      }
      const NodeId id = graph.add_subtask(name, parse_double(exec_s, line_no));
      if (pin_s != "-") {
        graph.pin(id, ProcId(static_cast<std::uint32_t>(parse_int(pin_s, line_no))));
      }
      if (rel_s != "-") graph.set_boundary_release(id, parse_double(rel_s, line_no));
      if (dl_s != "-") graph.set_boundary_deadline(id, parse_double(dl_s, line_no));
      subtasks.push_back(id);
    } else if (keyword == "arc") {
      std::string from_s;
      std::string to_s;
      std::string items_s;
      if (!(fields >> from_s >> to_s >> items_s)) {
        throw ParseError("line " + std::to_string(line_no) + ": malformed arc line");
      }
      const int from = parse_int(from_s, line_no);
      const int to = parse_int(to_s, line_no);
      if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= subtasks.size() ||
          static_cast<std::size_t>(to) >= subtasks.size()) {
        throw ParseError("line " + std::to_string(line_no) + ": arc index out of range");
      }
      graph.add_precedence(subtasks[static_cast<std::size_t>(from)],
                           subtasks[static_cast<std::size_t>(to)],
                           parse_double(items_s, line_no));
    } else {
      throw ParseError("line " + std::to_string(line_no) + ": unknown keyword '" +
                       keyword + "'");
    }
  }
  if (!saw_header) throw ParseError("missing header line");
  return graph;
}

TaskGraph task_graph_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_task_graph(iss);
}

}  // namespace feast
