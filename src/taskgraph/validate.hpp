/// \file validate.hpp
/// \brief Structural and timing validation of task graphs.
///
/// Generators, file loaders and hand-built graphs are validated before use:
/// experiments must never run on malformed inputs, and the distribution
/// algorithm's preconditions (boundary releases on inputs, end-to-end
/// deadlines on outputs) are checked here rather than deep inside it.
#pragma once

#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace feast {

/// Result of a validation pass: empty `problems` means valid.
struct ValidationReport {
  std::vector<std::string> problems;

  bool ok() const noexcept { return problems.empty(); }

  /// All problems joined with newlines (empty string when valid).
  std::string to_string() const;
};

/// Checks the structural invariants documented on TaskGraph: acyclicity,
/// communication-node arity/kind, alternation of node kinds along arcs,
/// non-negative execution times and message sizes.
ValidationReport validate_structure(const TaskGraph& graph);

/// Checks that the graph is ready for deadline distribution: structure is
/// valid, every input subtask has a boundary release, every output subtask
/// has a boundary deadline, and every boundary deadline exceeds every
/// boundary release reaching it.
ValidationReport validate_for_distribution(const TaskGraph& graph);

/// Throws ContractViolation with the report text when \p report is not ok.
void require_valid(const ValidationReport& report);

}  // namespace feast
