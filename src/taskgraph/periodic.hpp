/// \file periodic.hpp
/// \brief LCM-hyperperiod unrolling of periodic tasks (paper §3).
///
/// The paper's task model is non-periodic; §3 notes that a periodic
/// application is handled by transforming it into the set of task instances
/// released within one hyperperiod [0, L), L = lcm of all periods.  The
/// HyperperiodBuilder performs that transformation and exposes the
/// instance-node mapping so callers can add precedence/communication links
/// between subtasks of tasks with *different* periods — exactly the
/// capability the paper claims the transformation buys.
#pragma once

#include <string>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace feast {

/// One periodic task: a template graph plus its period.
///
/// The template's boundary release times and deadlines are interpreted
/// relative to the start of each period instance; a template whose outputs
/// carry deadline D yields instance k deadlines k·period + D.
struct PeriodicTaskSpec {
  std::string name;
  const TaskGraph* graph = nullptr;  ///< Non-owning; must outlive the builder.
  long long period = 0;              ///< Integral period in time units.
};

/// Least common multiple of positive integers; throws on overflow.
long long lcm_of(const std::vector<long long>& values);

/// Unrolls a set of periodic tasks into one non-periodic hyperperiod graph.
class HyperperiodBuilder {
 public:
  /// Builds the unrolled graph immediately.  Every task must have a valid
  /// template graph and a positive period.
  explicit HyperperiodBuilder(std::vector<PeriodicTaskSpec> tasks);

  /// The hyperperiod L.
  long long hyperperiod() const noexcept { return hyperperiod_; }

  /// Number of instances of task \p task_index within the hyperperiod.
  int instance_count(std::size_t task_index) const;

  /// The unrolled node corresponding to (task, instance, template node).
  NodeId instance_node(std::size_t task_index, int instance, NodeId template_node) const;

  /// Adds a precedence/communication arc between subtasks of two (possibly
  /// different-period) task instances in the unrolled graph.
  NodeId link(std::size_t from_task, int from_instance, NodeId from_node,
              std::size_t to_task, int to_instance, NodeId to_node,
              double message_items = 0.0);

  /// Read access to the unrolled graph.
  const TaskGraph& graph() const noexcept { return graph_; }

  /// Takes ownership of the unrolled graph; the builder must not be used
  /// afterwards except for destruction.
  TaskGraph take_graph() { return std::move(graph_); }

 private:
  struct TaskLayout {
    int instances = 0;
    /// node_map[instance][template node index] = unrolled node id.
    std::vector<std::vector<NodeId>> node_map;
  };

  std::vector<PeriodicTaskSpec> tasks_;
  std::vector<TaskLayout> layouts_;
  long long hyperperiod_ = 0;
  TaskGraph graph_;
};

}  // namespace feast
