/// \file ids.hpp
/// \brief Strong identifier types for graph nodes and processors.
///
/// NodeId indexes into a TaskGraph's node table; ProcId indexes into a
/// Machine's processor table.  Distinct types prevent the classic bug of
/// passing a processor index where a node index is expected.
#pragma once

#include <cstdint>
#include <functional>

namespace feast {

/// Identifier of a task-graph node (computation or communication subtask).
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffU;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const noexcept { return value != kInvalid; }
  constexpr std::size_t index() const noexcept { return value; }

  friend constexpr bool operator==(NodeId a, NodeId b) noexcept { return a.value == b.value; }
  friend constexpr bool operator!=(NodeId a, NodeId b) noexcept { return a.value != b.value; }
  friend constexpr bool operator<(NodeId a, NodeId b) noexcept { return a.value < b.value; }
};

/// Identifier of a processor in the machine model.
struct ProcId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffU;

  constexpr ProcId() = default;
  constexpr explicit ProcId(std::uint32_t v) : value(v) {}

  constexpr bool valid() const noexcept { return value != kInvalid; }
  constexpr std::size_t index() const noexcept { return value; }

  friend constexpr bool operator==(ProcId a, ProcId b) noexcept { return a.value == b.value; }
  friend constexpr bool operator!=(ProcId a, ProcId b) noexcept { return a.value != b.value; }
  friend constexpr bool operator<(ProcId a, ProcId b) noexcept { return a.value < b.value; }
};

}  // namespace feast

template <>
struct std::hash<feast::NodeId> {
  std::size_t operator()(feast::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<feast::ProcId> {
  std::size_t operator()(feast::ProcId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
