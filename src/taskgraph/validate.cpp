#include "taskgraph/validate.hpp"

#include <algorithm>

#include "taskgraph/algorithms.hpp"
#include "util/strings.hpp"

namespace feast {

std::string ValidationReport::to_string() const { return join(problems, "\n"); }

namespace {
std::string node_label(const TaskGraph& graph, NodeId id) {
  return "node #" + std::to_string(id.value) + " ('" + graph.node(id).name + "')";
}
}  // namespace

ValidationReport validate_structure(const TaskGraph& graph) {
  ValidationReport report;
  auto problem = [&](const std::string& msg) { report.problems.push_back(msg); };

  for (const NodeId id : graph.all_nodes()) {
    const Node& n = graph.node(id);
    if (n.exec_time < 0.0) {
      problem(node_label(graph, id) + ": negative execution time");
    }
    if (n.message_items < 0.0) {
      problem(node_label(graph, id) + ": negative message size");
    }
    if (n.kind == NodeKind::Communication) {
      if (n.preds.size() != 1 || n.succs.size() != 1) {
        problem(node_label(graph, id) + ": communication node must have exactly one predecessor and one successor");
        continue;
      }
      if (!graph.is_computation(n.preds.front()) || !graph.is_computation(n.succs.front())) {
        problem(node_label(graph, id) + ": communication node endpoints must be computation subtasks");
      }
      if (n.exec_time != 0.0) {
        problem(node_label(graph, id) + ": communication node carries an execution time");
      }
    } else {
      for (const NodeId adj : n.preds) {
        if (!graph.is_communication(adj)) {
          problem(node_label(graph, id) + ": computation node has a non-communication predecessor");
        }
      }
      for (const NodeId adj : n.succs) {
        if (!graph.is_communication(adj)) {
          problem(node_label(graph, id) + ": computation node has a non-communication successor");
        }
      }
      if (n.pinned.valid() && n.kind != NodeKind::Computation) {
        problem(node_label(graph, id) + ": only computation subtasks may be pinned");
      }
    }
    // Adjacency symmetry.
    for (const NodeId succ : n.succs) {
      const auto& back = graph.preds(succ);
      if (std::find(back.begin(), back.end(), id) == back.end()) {
        problem(node_label(graph, id) + ": successor link without matching predecessor link");
      }
    }
  }

  if (!is_acyclic(graph)) problem("graph contains a cycle");
  return report;
}

ValidationReport validate_for_distribution(const TaskGraph& graph) {
  ValidationReport report = validate_structure(graph);
  if (!report.ok()) return report;
  auto problem = [&](const std::string& msg) { report.problems.push_back(msg); };

  if (graph.subtask_count() == 0) {
    problem("graph has no computation subtasks");
    return report;
  }

  for (const NodeId id : graph.inputs()) {
    if (!is_set(graph.node(id).boundary_release)) {
      problem(node_label(graph, id) + ": input subtask lacks a boundary release time");
    }
  }
  for (const NodeId id : graph.outputs()) {
    if (!is_set(graph.node(id).boundary_deadline)) {
      problem(node_label(graph, id) + ": output subtask lacks an end-to-end deadline");
    }
  }
  if (!report.ok()) return report;

  // Every (input, output) pair connected by a path must leave a positive
  // window: deadline(output) > release(input).
  for (const NodeId in : graph.inputs()) {
    for (const NodeId out : graph.outputs()) {
      if (!reachable(graph, in, out)) continue;
      const Time release = graph.node(in).boundary_release;
      const Time deadline = graph.node(out).boundary_deadline;
      if (!time_lt(release, deadline)) {
        problem("end-to-end window of pair (" + graph.node(in).name + ", " +
                graph.node(out).name + ") is empty: release " +
                format_compact(release) + " >= deadline " + format_compact(deadline));
      }
    }
  }
  return report;
}

void require_valid(const ValidationReport& report) {
  FEAST_REQUIRE_MSG(report.ok(), report.to_string());
}

}  // namespace feast
