#include "taskgraph/task_graph.hpp"

#include <algorithm>

namespace feast {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Computation: return "computation";
    case NodeKind::Communication: return "communication";
  }
  return "?";
}

NodeId TaskGraph::add_subtask(std::string name, Time exec_time) {
  FEAST_REQUIRE_MSG(exec_time >= 0.0, "execution time must be non-negative");
  Node n;
  n.kind = NodeKind::Computation;
  n.name = std::move(name);
  n.exec_time = exec_time;
  nodes_.push_back(std::move(n));
  ++subtask_count_;
  return NodeId(static_cast<std::uint32_t>(nodes_.size() - 1));
}

NodeId TaskGraph::add_precedence(NodeId from, NodeId to, double message_items) {
  FEAST_REQUIRE(from.index() < nodes_.size());
  FEAST_REQUIRE(to.index() < nodes_.size());
  FEAST_REQUIRE_MSG(from != to, "self-arcs are not allowed");
  FEAST_REQUIRE_MSG(is_computation(from) && is_computation(to),
                    "precedence arcs connect computation subtasks");
  FEAST_REQUIRE_MSG(message_items >= 0.0, "message size must be non-negative");
  // Reject duplicate arcs: from's successors are comm nodes; check sinks.
  for (const NodeId comm : node(from).succs) {
    FEAST_REQUIRE_MSG(comm_sink(comm) != to, "duplicate precedence arc");
  }

  Node comm;
  comm.kind = NodeKind::Communication;
  comm.name = node(from).name + "->" + node(to).name;
  comm.message_items = message_items;
  comm.preds.push_back(from);
  comm.succs.push_back(to);
  nodes_.push_back(std::move(comm));
  const NodeId comm_id(static_cast<std::uint32_t>(nodes_.size() - 1));
  mutable_node(from).succs.push_back(comm_id);
  mutable_node(to).preds.push_back(comm_id);
  return comm_id;
}

void TaskGraph::pin(NodeId id, ProcId proc) {
  FEAST_REQUIRE_MSG(is_computation(id), "only computation subtasks can be pinned");
  FEAST_REQUIRE(proc.valid());
  mutable_node(id).pinned = proc;
}

void TaskGraph::set_boundary_release(NodeId id, Time release) {
  FEAST_REQUIRE_MSG(is_computation(id), "boundary release applies to computation subtasks");
  FEAST_REQUIRE(is_set(release));
  mutable_node(id).boundary_release = release;
}

void TaskGraph::set_boundary_deadline(NodeId id, Time deadline) {
  FEAST_REQUIRE_MSG(is_computation(id), "boundary deadline applies to computation subtasks");
  FEAST_REQUIRE(is_set(deadline));
  mutable_node(id).boundary_deadline = deadline;
}

NodeId TaskGraph::comm_source(NodeId comm) const {
  FEAST_REQUIRE(is_communication(comm));
  FEAST_ASSERT(node(comm).preds.size() == 1);
  return node(comm).preds.front();
}

NodeId TaskGraph::comm_sink(NodeId comm) const {
  FEAST_REQUIRE(is_communication(comm));
  FEAST_ASSERT(node(comm).succs.size() == 1);
  return node(comm).succs.front();
}

std::vector<NodeId> TaskGraph::inputs() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::Computation && nodes_[i].preds.empty()) {
      out.push_back(NodeId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

std::vector<NodeId> TaskGraph::outputs() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::Computation && nodes_[i].succs.empty()) {
      out.push_back(NodeId(static_cast<std::uint32_t>(i)));
    }
  }
  return out;
}

std::vector<NodeId> TaskGraph::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    out.push_back(NodeId(static_cast<std::uint32_t>(i)));
  return out;
}

std::vector<NodeId> TaskGraph::computation_nodes() const {
  std::vector<NodeId> out;
  out.reserve(subtask_count_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::Computation)
      out.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

std::vector<NodeId> TaskGraph::communication_nodes() const {
  std::vector<NodeId> out;
  out.reserve(comm_count());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::Communication)
      out.push_back(NodeId(static_cast<std::uint32_t>(i)));
  }
  return out;
}

Time TaskGraph::total_workload() const noexcept {
  Time sum = 0.0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::Computation) sum += n.exec_time;
  }
  return sum;
}

Time TaskGraph::mean_exec_time() const noexcept {
  if (subtask_count_ == 0) return 0.0;
  return total_workload() / static_cast<Time>(subtask_count_);
}

void TaskGraph::apply_overall_laxity_ratio(double olr) {
  FEAST_REQUIRE_MSG(olr > 0.0, "overall laxity ratio must be positive");
  const Time deadline = olr * total_workload();
  for (const NodeId id : inputs()) set_boundary_release(id, 0.0);
  for (const NodeId id : outputs()) set_boundary_deadline(id, deadline);
}

}  // namespace feast
