#include "taskgraph/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace feast {

Time computation_cost(const TaskGraph& graph, NodeId id) {
  const Node& n = graph.node(id);
  return n.kind == NodeKind::Computation ? n.exec_time : 0.0;
}

std::optional<std::vector<NodeId>> topological_order(const TaskGraph& graph) {
  const std::size_t n = graph.node_count();
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = graph.preds(NodeId(static_cast<std::uint32_t>(i))).size();
  }
  // Min-heap on node id for deterministic output.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>, std::greater<>> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(static_cast<std::uint32_t>(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId id(ready.top());
    ready.pop();
    order.push_back(id);
    for (const NodeId succ : graph.succs(id)) {
      if (--indegree[succ.index()] == 0) ready.push(succ.value);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const TaskGraph& graph) { return topological_order(graph).has_value(); }

std::vector<int> computation_levels(const TaskGraph& graph) {
  const auto order = topological_order(graph);
  FEAST_REQUIRE_MSG(order.has_value(), "computation_levels requires an acyclic graph");
  std::vector<int> level(graph.node_count(), 0);
  for (const NodeId id : *order) {
    int lvl = 0;
    const bool is_comp = graph.is_computation(id);
    for (const NodeId pred : graph.preds(id)) {
      // Crossing into a computation node advances one level; communication
      // nodes inherit their producer's level.
      lvl = std::max(lvl, level[pred.index()] + (is_comp ? 1 : 0));
    }
    level[id.index()] = graph.preds(id).empty() ? 0 : lvl;
  }
  return level;
}

int depth(const TaskGraph& graph) {
  if (graph.node_count() == 0) return 0;
  const std::vector<int> level = computation_levels(graph);
  int max_level = 0;
  for (const NodeId id : graph.computation_nodes()) {
    max_level = std::max(max_level, level[id.index()]);
  }
  return max_level + 1;
}

namespace {

/// Computes, for every node, the max path cost ending at that node
/// (inclusive) and the predecessor along one such path.
struct LongestPathTable {
  std::vector<Time> cost_to;
  std::vector<NodeId> via;
};

LongestPathTable longest_path_table(const TaskGraph& graph, const NodeCostFn& cost) {
  const auto order = topological_order(graph);
  FEAST_REQUIRE_MSG(order.has_value(), "longest path requires an acyclic graph");
  LongestPathTable t;
  t.cost_to.assign(graph.node_count(), 0.0);
  t.via.assign(graph.node_count(), NodeId());
  for (const NodeId id : *order) {
    Time best = 0.0;
    NodeId best_pred;
    for (const NodeId pred : graph.preds(id)) {
      if (t.cost_to[pred.index()] > best || !best_pred.valid()) {
        best = t.cost_to[pred.index()];
        best_pred = pred;
      }
    }
    t.cost_to[id.index()] = best + cost(graph, id);
    t.via[id.index()] = best_pred;
  }
  return t;
}

}  // namespace

Time longest_path_length(const TaskGraph& graph, const NodeCostFn& cost) {
  if (graph.node_count() == 0) return 0.0;
  const LongestPathTable t = longest_path_table(graph, cost);
  return *std::max_element(t.cost_to.begin(), t.cost_to.end());
}

std::vector<NodeId> longest_path(const TaskGraph& graph, const NodeCostFn& cost) {
  FEAST_REQUIRE(graph.node_count() > 0);
  const LongestPathTable t = longest_path_table(graph, cost);
  std::size_t best = 0;
  for (std::size_t i = 1; i < t.cost_to.size(); ++i) {
    if (t.cost_to[i] > t.cost_to[best]) best = i;
  }
  std::vector<NodeId> path;
  for (NodeId cur(static_cast<std::uint32_t>(best)); cur.valid(); cur = t.via[cur.index()]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double average_parallelism(const TaskGraph& graph) {
  const Time workload = graph.total_workload();
  if (workload <= 0.0) return 1.0;
  const Time cp = longest_path_length(graph, computation_cost);
  if (cp <= 0.0) return 1.0;
  return workload / cp;
}

bool reachable(const TaskGraph& graph, NodeId from, NodeId to) {
  FEAST_REQUIRE(from.index() < graph.node_count());
  FEAST_REQUIRE(to.index() < graph.node_count());
  if (from == to) return true;
  std::vector<bool> seen(graph.node_count(), false);
  std::vector<NodeId> stack{from};
  seen[from.index()] = true;
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    for (const NodeId succ : graph.succs(cur)) {
      if (succ == to) return true;
      if (!seen[succ.index()]) {
        seen[succ.index()] = true;
        stack.push_back(succ);
      }
    }
  }
  return false;
}

long long count_source_sink_paths(const TaskGraph& graph) {
  const auto order = topological_order(graph);
  FEAST_REQUIRE_MSG(order.has_value(), "path counting requires an acyclic graph");
  constexpr long long kCap = std::numeric_limits<long long>::max() / 2;
  std::vector<long long> ways(graph.node_count(), 0);
  long long total = 0;
  for (const NodeId id : *order) {
    long long w = 0;
    if (graph.preds(id).empty()) {
      w = graph.is_computation(id) ? 1 : 0;  // paths start at computation sources
    } else {
      for (const NodeId pred : graph.preds(id)) {
        w = std::min(kCap, w + ways[pred.index()]);
      }
    }
    ways[id.index()] = w;
    if (graph.is_computation(id) && graph.succs(id).empty()) {
      total = std::min(kCap, total + w);
    }
  }
  return total;
}

namespace {
void enumerate_rec(const TaskGraph& graph, NodeId cur, std::vector<NodeId>& prefix,
                   std::vector<std::vector<NodeId>>& out, std::size_t limit) {
  if (out.size() >= limit) return;
  prefix.push_back(cur);
  if (graph.succs(cur).empty()) {
    out.push_back(prefix);
  } else {
    for (const NodeId succ : graph.succs(cur)) {
      enumerate_rec(graph, succ, prefix, out, limit);
      if (out.size() >= limit) break;
    }
  }
  prefix.pop_back();
}
}  // namespace

std::vector<std::vector<NodeId>> enumerate_source_sink_paths(const TaskGraph& graph,
                                                             std::size_t limit) {
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> prefix;
  for (const NodeId src : graph.inputs()) {
    enumerate_rec(graph, src, prefix, out, limit);
    if (out.size() >= limit) break;
  }
  return out;
}

}  // namespace feast
