#include "taskgraph/periodic.hpp"

#include <limits>
#include <numeric>

#include "taskgraph/validate.hpp"

namespace feast {

long long lcm_of(const std::vector<long long>& values) {
  FEAST_REQUIRE(!values.empty());
  long long acc = 1;
  for (const long long v : values) {
    FEAST_REQUIRE_MSG(v > 0, "periods must be positive");
    const long long g = std::gcd(acc, v);
    const long long factor = v / g;
    FEAST_REQUIRE_MSG(acc <= std::numeric_limits<long long>::max() / factor,
                      "hyperperiod overflow");
    acc *= factor;
  }
  return acc;
}

HyperperiodBuilder::HyperperiodBuilder(std::vector<PeriodicTaskSpec> tasks)
    : tasks_(std::move(tasks)) {
  FEAST_REQUIRE(!tasks_.empty());
  std::vector<long long> periods;
  periods.reserve(tasks_.size());
  for (const PeriodicTaskSpec& t : tasks_) {
    FEAST_REQUIRE_MSG(t.graph != nullptr, "periodic task lacks a template graph");
    require_valid(validate_for_distribution(*t.graph));
    periods.push_back(t.period);
  }
  hyperperiod_ = lcm_of(periods);

  layouts_.resize(tasks_.size());
  for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
    const PeriodicTaskSpec& spec = tasks_[ti];
    const TaskGraph& tpl = *spec.graph;
    TaskLayout& layout = layouts_[ti];
    layout.instances = static_cast<int>(hyperperiod_ / spec.period);
    layout.node_map.resize(static_cast<std::size_t>(layout.instances));

    for (int inst = 0; inst < layout.instances; ++inst) {
      const Time offset = static_cast<Time>(inst) * static_cast<Time>(spec.period);
      auto& node_map = layout.node_map[static_cast<std::size_t>(inst)];
      node_map.assign(tpl.node_count(), NodeId());

      // First pass: clone computation subtasks with shifted boundary times.
      for (const NodeId id : tpl.computation_nodes()) {
        const Node& n = tpl.node(id);
        const std::string name =
            spec.name + "[" + std::to_string(inst) + "]." + n.name;
        const NodeId clone = graph_.add_subtask(name, n.exec_time);
        if (n.pinned.valid()) graph_.pin(clone, n.pinned);
        if (is_set(n.boundary_release)) {
          graph_.set_boundary_release(clone, n.boundary_release + offset);
        }
        if (is_set(n.boundary_deadline)) {
          graph_.set_boundary_deadline(clone, n.boundary_deadline + offset);
        }
        node_map[id.index()] = clone;
      }
      // Second pass: clone precedence arcs (communication subtasks).
      for (const NodeId comm : tpl.communication_nodes()) {
        const NodeId from = node_map[tpl.comm_source(comm).index()];
        const NodeId to = node_map[tpl.comm_sink(comm).index()];
        node_map[comm.index()] =
            graph_.add_precedence(from, to, tpl.node(comm).message_items);
      }
    }
  }
}

int HyperperiodBuilder::instance_count(std::size_t task_index) const {
  FEAST_REQUIRE(task_index < layouts_.size());
  return layouts_[task_index].instances;
}

NodeId HyperperiodBuilder::instance_node(std::size_t task_index, int instance,
                                         NodeId template_node) const {
  FEAST_REQUIRE(task_index < layouts_.size());
  const TaskLayout& layout = layouts_[task_index];
  FEAST_REQUIRE(instance >= 0 && instance < layout.instances);
  const auto& node_map = layout.node_map[static_cast<std::size_t>(instance)];
  FEAST_REQUIRE(template_node.index() < node_map.size());
  const NodeId id = node_map[template_node.index()];
  FEAST_ASSERT(id.valid());
  return id;
}

NodeId HyperperiodBuilder::link(std::size_t from_task, int from_instance, NodeId from_node,
                                std::size_t to_task, int to_instance, NodeId to_node,
                                double message_items) {
  const NodeId from = instance_node(from_task, from_instance, from_node);
  const NodeId to = instance_node(to_task, to_instance, to_node);
  return graph_.add_precedence(from, to, message_items);
}

}  // namespace feast
