/// \file task_graph.hpp
/// \brief The task-graph model of §3 of the paper.
///
/// A real-time application is a directed acyclic graph whose nodes are
/// *subtasks*.  FEAST represents both kinds of subtasks from the paper as
/// graph nodes:
///
///  - **computation subtasks** τ_i with worst-case execution time c_i, and
///  - **communication subtasks** χ_ij with maximum message size m_ij,
///    inserted on every precedence arc τ_i → τ_j.
///
/// Modelling messages as first-class nodes is what lets the deadline
/// distribution algorithm assign release times and deadlines to messages
/// (enabling deadline-driven bus scheduling) and lets the communication-cost
/// estimators treat unknown assignment uniformly: the *cost* of a
/// communication node is unknown until task assignment decides whether its
/// endpoints are co-located.
///
/// Boundary timing lives on the graph: input subtasks carry a release time,
/// output subtasks carry an end-to-end (absolute) deadline.  Per-subtask
/// release times and relative deadlines produced by deadline distribution
/// live in a separate DeadlineAssignment (see core/annotation.hpp), keeping
/// the graph immutable during experiments.
#pragma once

#include <string>
#include <vector>

#include "taskgraph/ids.hpp"
#include "util/contracts.hpp"
#include "util/time_types.hpp"

namespace feast {

/// Discriminates the two node kinds of the task graph.
enum class NodeKind : std::uint8_t {
  Computation,   ///< An ordinary subtask τ_i with execution time c_i.
  Communication  ///< A message subtask χ_ij with message size m_ij.
};

/// Returns a human-readable name for a node kind.
const char* to_string(NodeKind kind) noexcept;

/// One node of the task graph.  Plain data; invariants are enforced by
/// TaskGraph's mutators.
struct Node {
  NodeKind kind = NodeKind::Computation;
  std::string name;

  /// Worst-case execution time c_i (computation nodes only; 0 for comm).
  Time exec_time = 0.0;

  /// Maximum message size m_ij in data items (communication nodes only).
  double message_items = 0.0;

  /// Strict locality constraint: processor this subtask must run on, or
  /// invalid for relaxed subtasks (the scheduler chooses).  Computation only.
  ProcId pinned;

  /// Boundary release time; set on input subtasks (earliest start of the
  /// application), unset elsewhere.
  Time boundary_release = kUnsetTime;

  /// Boundary absolute deadline; set on output subtasks (the end-to-end
  /// deadline D of the pair ⟨τ_1, τ_n⟩), unset elsewhere.
  Time boundary_deadline = kUnsetTime;

  std::vector<NodeId> preds;
  std::vector<NodeId> succs;
};

/// A directed acyclic graph of computation and communication subtasks.
///
/// Structural invariants maintained by the mutators:
///  - no self-arcs, no duplicate arcs;
///  - every communication node has exactly one predecessor and one
///    successor, both computation nodes;
///  - computation nodes are only adjacent to communication nodes (every
///    precedence constraint is mediated by a communication subtask, whose
///    message size may be zero for pure control dependences).
///
/// Acyclicity is not enforced per-arc (that would be quadratic); call
/// validate_structure() after construction, as generators and tests do.
class TaskGraph {
 public:
  /// Adds a computation subtask with execution time \p exec_time >= 0.
  NodeId add_subtask(std::string name, Time exec_time);

  /// Adds a precedence constraint \p from → \p to mediated by a new
  /// communication subtask carrying \p message_items >= 0 data items.
  /// Returns the id of the communication node.
  NodeId add_precedence(NodeId from, NodeId to, double message_items = 0.0);

  /// Pins a computation subtask to a processor (strict locality constraint).
  void pin(NodeId id, ProcId proc);

  /// Sets the boundary release time of an input subtask.
  void set_boundary_release(NodeId id, Time release);

  /// Sets the end-to-end (absolute) deadline of an output subtask.
  void set_boundary_deadline(NodeId id, Time deadline);

  /// Total number of nodes (computation + communication).
  std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Number of computation subtasks.
  std::size_t subtask_count() const noexcept { return subtask_count_; }

  /// Number of communication subtasks (== number of precedence arcs).
  std::size_t comm_count() const noexcept { return nodes_.size() - subtask_count_; }

  /// Read access to a node.
  const Node& node(NodeId id) const {
    FEAST_REQUIRE(id.index() < nodes_.size());
    return nodes_[id.index()];
  }

  /// Node kind shorthand.
  NodeKind kind(NodeId id) const { return node(id).kind; }

  /// True when \p id is a computation subtask.
  bool is_computation(NodeId id) const { return kind(id) == NodeKind::Computation; }

  /// True when \p id is a communication subtask.
  bool is_communication(NodeId id) const { return kind(id) == NodeKind::Communication; }

  /// Predecessors of a node.
  const std::vector<NodeId>& preds(NodeId id) const { return node(id).preds; }

  /// Successors of a node.
  const std::vector<NodeId>& succs(NodeId id) const { return node(id).succs; }

  /// For a communication node, the producing computation subtask.
  NodeId comm_source(NodeId comm) const;

  /// For a communication node, the consuming computation subtask.
  NodeId comm_sink(NodeId comm) const;

  /// Computation subtasks with no predecessors (input subtasks).
  std::vector<NodeId> inputs() const;

  /// Computation subtasks with no successors (output subtasks).
  std::vector<NodeId> outputs() const;

  /// All node ids in insertion order.
  std::vector<NodeId> all_nodes() const;

  /// All computation-node ids in insertion order.
  std::vector<NodeId> computation_nodes() const;

  /// All communication-node ids in insertion order.
  std::vector<NodeId> communication_nodes() const;

  /// Sum of execution times over all computation subtasks (the paper's
  /// "accumulated task graph workload").
  Time total_workload() const noexcept;

  /// Mean execution time over computation subtasks (0 for an empty graph).
  Time mean_exec_time() const noexcept;

  /// Applies every boundary deadline D = olr × total_workload() to all
  /// output subtasks and release 0 to all input subtasks, reproducing the
  /// paper's overall-laxity-ratio workload parameterization (§5.2).
  void apply_overall_laxity_ratio(double olr);

 private:
  Node& mutable_node(NodeId id) {
    FEAST_REQUIRE(id.index() < nodes_.size());
    return nodes_[id.index()];
  }

  std::vector<Node> nodes_;
  std::size_t subtask_count_ = 0;
};

}  // namespace feast
