/// \file algorithms.hpp
/// \brief Graph algorithms shared by the generator, distributor, scheduler
///        and analysis code.
///
/// All algorithms operate on the full node set (computation *and*
/// communication nodes).  Where a node "cost" is needed, callers pass a
/// NodeCostFn so the same longest-path machinery serves both the CCNE view
/// (communication costs zero) and the CCAA view (communication costs equal
/// to estimated bus time).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "taskgraph/task_graph.hpp"

namespace feast {

/// Maps a node to its cost for path-length purposes.
using NodeCostFn = std::function<Time(const TaskGraph&, NodeId)>;

/// Cost function: execution time for computation nodes, zero for
/// communication nodes (the CCNE world view; also the paper's definition of
/// path length "in execution time" for the parallelism metric ξ).
Time computation_cost(const TaskGraph& graph, NodeId id);

/// Returns a topological order over all nodes, or std::nullopt when the
/// graph contains a cycle.  Kahn's algorithm; ties broken by node id so the
/// order is deterministic.
std::optional<std::vector<NodeId>> topological_order(const TaskGraph& graph);

/// True when the graph is acyclic.
bool is_acyclic(const TaskGraph& graph);

/// Longest-path level of every node counting only computation nodes:
/// input subtasks are level 0; a computation node's level is 1 + the max
/// level of its computation predecessors; a communication node inherits its
/// producer's level.  Precondition: acyclic.
std::vector<int> computation_levels(const TaskGraph& graph);

/// Number of levels spanned by the computation subtasks (the paper's graph
/// "depth"); 0 for an empty graph.
int depth(const TaskGraph& graph);

/// Length of the longest path under \p cost (sum of node costs along the
/// path, maximized over all paths).  Precondition: acyclic.
Time longest_path_length(const TaskGraph& graph, const NodeCostFn& cost);

/// Extracts one longest path (sequence of node ids, sources to sinks) under
/// \p cost.  Precondition: acyclic, non-empty.
std::vector<NodeId> longest_path(const TaskGraph& graph, const NodeCostFn& cost);

/// The paper's average task-graph parallelism ξ: total workload divided by
/// the length, in execution time, of the longest path.  Returns 1 for an
/// empty or zero-workload graph.
double average_parallelism(const TaskGraph& graph);

/// True when \p to is reachable from \p from following arcs forward.
bool reachable(const TaskGraph& graph, NodeId from, NodeId to);

/// Number of distinct computation-to-computation source→sink paths.  Counts
/// through communication nodes but reports paths between computation
/// endpoints; useful for test assertions on generated shapes.  Saturates at
/// std::numeric_limits<long long>::max() / 2 to avoid overflow on dense
/// graphs.  Precondition: acyclic.
long long count_source_sink_paths(const TaskGraph& graph);

/// Enumerates every source→sink path as a node sequence.  Exponential in the
/// worst case; intended for tests and validation on small graphs only.
/// \p limit aborts the enumeration (returning what was found) once reached.
std::vector<std::vector<NodeId>> enumerate_source_sink_paths(const TaskGraph& graph,
                                                             std::size_t limit = 100000);

}  // namespace feast
