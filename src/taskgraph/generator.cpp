#include "taskgraph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "taskgraph/algorithms.hpp"
#include "taskgraph/validate.hpp"

namespace feast {

double exec_spread_of(ExecSpreadScenario scenario) noexcept {
  switch (scenario) {
    case ExecSpreadScenario::LDET: return 0.25;
    case ExecSpreadScenario::MDET: return 0.50;
    case ExecSpreadScenario::HDET: return 0.99;
  }
  return 0.50;
}

const char* to_string(ExecSpreadScenario scenario) noexcept {
  switch (scenario) {
    case ExecSpreadScenario::LDET: return "LDET";
    case ExecSpreadScenario::MDET: return "MDET";
    case ExecSpreadScenario::HDET: return "HDET";
  }
  return "?";
}

namespace {

/// Distributes \p total nodes over \p levels levels, at least one per level.
///
/// The extra nodes beyond the mandatory one per level are split according
/// to symmetric Dirichlet(α) weights (stick breaking over exponential
/// draws).  \p alpha controls width variance: large α approaches uniform
/// widths; α = 1 (the default) yields high-variance profiles whose widest
/// levels hold 2–3× the mean — the processor-contention hot spots that
/// drive the paper's small-system results.
std::vector<int> level_sizes(int total, int levels, double alpha, Pcg32& rng) {
  const auto n = static_cast<std::size_t>(levels);
  std::vector<int> sizes(n, 1);
  int extra = total - levels;
  if (extra <= 0) return sizes;

  // Gamma(α, 1) draws; for α >= 1 use the sum-of-exponentials approximation
  // by Marsaglia-Tsang-free simple method: for our purposes (shaping level
  // widths) a Weibull-style transform of a uniform is adequate and exactly
  // reproducible: g = (-ln u)^(1/alpha) has the right qualitative spread.
  std::vector<double> weights(n);
  double sum = 0.0;
  for (double& w : weights) {
    const double u = std::max(rng.uniform_real(0.0, 1.0), 1e-12);
    w = std::pow(-std::log(u), 1.0 / alpha);
    sum += w;
  }
  // Largest-remainder apportionment of the extras over the weights.
  std::vector<double> exact(n);
  std::vector<std::size_t> order(n);
  int assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    exact[i] = static_cast<double>(extra) * weights[i] / sum;
    sizes[i] += static_cast<int>(exact[i]);
    assigned += static_cast<int>(exact[i]);
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double fa = exact[a] - std::floor(exact[a]);
    const double fb = exact[b] - std::floor(exact[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  });
  for (std::size_t k = 0; assigned < extra; ++k, ++assigned) {
    sizes[order[k % n]] += 1;
  }
  return sizes;
}

}  // namespace

TaskGraph generate_random_graph(const RandomGraphConfig& config, Pcg32& rng) {
  FEAST_REQUIRE(config.min_subtasks >= 1);
  FEAST_REQUIRE(config.min_subtasks <= config.max_subtasks);
  FEAST_REQUIRE(config.min_depth >= 1);
  FEAST_REQUIRE(config.min_depth <= config.max_depth);
  FEAST_REQUIRE(config.min_degree >= 1);
  FEAST_REQUIRE(config.min_degree <= config.max_degree);
  FEAST_REQUIRE(config.mean_exec_time > 0.0);
  FEAST_REQUIRE(config.exec_spread >= 0.0 && config.exec_spread < 1.0);
  FEAST_REQUIRE(config.ccr >= 0.0);
  FEAST_REQUIRE(config.message_spread >= 0.0 && config.message_spread <= 1.0);

  FEAST_REQUIRE(config.level_width_alpha > 0.0);
  const int n = rng.uniform_int(config.min_subtasks, config.max_subtasks);
  const int levels = std::min(n, rng.uniform_int(config.min_depth, config.max_depth));
  const std::vector<int> sizes = level_sizes(n, levels, config.level_width_alpha, rng);

  TaskGraph graph;
  std::vector<std::vector<NodeId>> by_level(sizes.size());
  int counter = 0;
  for (std::size_t lvl = 0; lvl < sizes.size(); ++lvl) {
    for (int k = 0; k < sizes[lvl]; ++k) {
      const Time lo = config.mean_exec_time * (1.0 - config.exec_spread);
      const Time hi = config.mean_exec_time * (1.0 + config.exec_spread);
      const Time c = rng.uniform_real(lo, hi);
      by_level[lvl].push_back(graph.add_subtask("t" + std::to_string(counter++), c));
    }
  }

  const double mean_items = config.ccr * config.mean_exec_time;
  auto message_size = [&]() {
    if (mean_items <= 0.0) return 0.0;
    const double lo = mean_items * (1.0 - config.message_spread);
    const double hi = mean_items * (1.0 + config.message_spread);
    return rng.uniform_real(lo, hi);
  };

  // Track out-degrees so fan-out stays within the target cap when possible.
  std::vector<int> out_degree(graph.node_count(), 0);
  auto connect = [&](NodeId from, NodeId to) {
    graph.add_precedence(from, to, message_size());
    ++out_degree[from.index()];
  };

  // Wire each node at level l >= 1 to 1..max_degree predecessors on the
  // previous level, preferring predecessors that still have spare fan-out.
  for (std::size_t lvl = 1; lvl < by_level.size(); ++lvl) {
    const std::vector<NodeId>& prev = by_level[lvl - 1];
    for (const NodeId node : by_level[lvl]) {
      const int want = std::min<int>(rng.uniform_int(config.min_degree, config.max_degree),
                                     static_cast<int>(prev.size()));
      std::vector<NodeId> candidates = prev;
      rng.shuffle(candidates);
      std::stable_sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
        return out_degree[a.index()] < out_degree[b.index()];
      });
      for (int k = 0; k < want; ++k) connect(candidates[static_cast<std::size_t>(k)], node);
    }
  }

  // Give successor-less nodes a consumer.  In the default (layered) mode,
  // orphans connect into the immediately following level — preferring
  // nodes with spare fan-in but exceeding the cap when a wide level feeds
  // a narrow one.  The resulting high-fan-in join points are the
  // synchronization structures whose contention the AST metrics are
  // designed around.  In strict mode the fan-in cap is inviolable: orphans
  // search later levels for capacity and otherwise remain sinks
  // (additional output subtasks).
  for (std::size_t lvl = 0; lvl + 1 < by_level.size(); ++lvl) {
    for (const NodeId node : by_level[lvl]) {
      if (out_degree[node.index()] > 0) continue;
      NodeId target;
      const std::size_t last_level =
          config.strict_fanin_cap ? by_level.size() - 1 : lvl + 1;
      for (std::size_t next = lvl + 1; next <= last_level && !target.valid(); ++next) {
        std::vector<NodeId> candidates;
        for (const NodeId cand : by_level[next]) {
          if (static_cast<int>(graph.preds(cand).size()) < config.max_degree) {
            candidates.push_back(cand);
          }
        }
        if (!candidates.empty()) target = rng.pick(candidates);
      }
      if (!target.valid() && !config.strict_fanin_cap) {
        target = rng.pick(by_level[lvl + 1]);
      }
      if (target.valid()) connect(node, target);
    }
  }

  // Boundary timing per the OLR parameterization.
  Time basis = 0.0;
  switch (config.olr_basis) {
    case OlrBasis::TotalWorkload: basis = graph.total_workload(); break;
    case OlrBasis::CriticalPath: basis = longest_path_length(graph, computation_cost); break;
  }
  const Time deadline = config.olr * basis;
  for (const NodeId id : graph.inputs()) graph.set_boundary_release(id, 0.0);
  for (const NodeId id : graph.outputs()) graph.set_boundary_deadline(id, deadline);

  require_valid(validate_for_distribution(graph));
  return graph;
}

void pin_random_fraction(TaskGraph& graph, double fraction, int n_procs, Pcg32& rng) {
  FEAST_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  FEAST_REQUIRE(n_procs >= 1);
  std::vector<NodeId> nodes = graph.computation_nodes();
  rng.shuffle(nodes);
  const auto n_pinned = static_cast<std::size_t>(fraction * static_cast<double>(nodes.size()) + 0.5);
  for (std::size_t i = 0; i < n_pinned && i < nodes.size(); ++i) {
    graph.pin(nodes[i], ProcId(static_cast<std::uint32_t>(rng.uniform_int(0, n_procs - 1))));
  }
}

}  // namespace feast
