/// \file dot.hpp
/// \brief Graphviz (DOT) export of task graphs for inspection and docs.
#pragma once

#include <functional>
#include <ostream>
#include <string>

#include "taskgraph/task_graph.hpp"

namespace feast {

/// Optional per-node extra label lines (e.g. assigned windows).  Return an
/// empty string for no extra text.
using NodeLabelFn = std::function<std::string(NodeId)>;

/// Writes the graph in DOT format.  Computation subtasks render as boxes
/// labelled with name and execution time; communication subtasks render as
/// ellipses labelled with message size.  Pinned subtasks note their
/// processor.
void write_dot(std::ostream& out, const TaskGraph& graph,
               const NodeLabelFn& extra_label = nullptr);

/// Convenience: DOT text as a string.
std::string to_dot(const TaskGraph& graph, const NodeLabelFn& extra_label = nullptr);

}  // namespace feast
