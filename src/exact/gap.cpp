#include "exact/gap.hpp"

#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exact/exact.hpp"
#include "obs/obs.hpp"
#include "sched/lateness.hpp"
#include "sched/list_scheduler.hpp"
#include "taskgraph/generator.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace feast::exact {
namespace {

/// Per-sample observations, gathered in parallel and reduced afterwards so
/// a violation can be reported (and thrown) deterministically by sample
/// index rather than by thread arrival order.
struct GapSample {
  Time heuristic = 0.0;
  Time optimal = 0.0;
  Time tolerance = 0.0;
  std::uint64_t nodes = 0;
  bool proven = false;
};

std::string full(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

std::string gap_cell_label(const std::string& strategy_label, std::uint64_t node_budget) {
  if (strategy_label.empty()) return "";
  return "gap[" + strategy_label + ";nodes=" + std::to_string(node_budget) + "]";
}

CellStats run_gap_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                       int n_procs, const BatchConfig& batch,
                       const RunContext& context, std::uint64_t node_budget) {
  FEAST_REQUIRE(batch.samples >= 1);
  FEAST_REQUIRE(n_procs >= 1);

  obs::Sink* const sink = context.sink != nullptr ? context.sink : obs::active();
  std::optional<obs::ScopedSink> scoped;
  if (sink != nullptr && sink != obs::active()) scoped.emplace(*sink);
  obs::SpanScope cell_span(sink, obs::Span::CellRun);

  // Machine derivation is identical to run_custom_cell: gap cells see the
  // exact same machines (and, below, the exact same graphs) as the
  // lateness cells of the same batch.
  Machine machine;
  machine.n_procs = n_procs;
  machine.time_per_item = batch.time_per_item;
  machine.contention = batch.contention;
  if (batch.shape_machine) batch.shape_machine(machine);

  const auto n = static_cast<std::size_t>(batch.samples);
  std::vector<GapSample> samples(n);

  parallel_for(n, [&](std::size_t sample) {
    TaskGraph graph = [&] {
      obs::SpanScope span(sink, obs::Span::Generate);
      Pcg32 rng(seed_for(batch.seed, {0, sample}), /*stream=*/sample);
      return generate_random_graph(workload, rng);
    }();
    if (batch.pinned_fraction > 0.0) {
      Pcg32 pin_rng(seed_for(batch.seed, {1, sample, static_cast<std::uint64_t>(n_procs)}),
                    /*stream=*/sample);
      pin_random_fraction(graph, batch.pinned_fraction, n_procs, pin_rng);
    }

    const auto distributor = strategy.make(n_procs);
    const DeadlineAssignment assignment = [&] {
      obs::SpanScope span(sink, obs::Span::Distribute);
      return distributor->distribute(graph);
    }();
    const Schedule schedule = [&] {
      obs::SpanScope span(sink, obs::Span::Schedule);
      return list_schedule_with(context.core, graph, assignment, machine,
                                context.scheduler);
    }();

    GapSample& out = samples[sample];
    out.heuristic = computation_lateness(graph, assignment, schedule).max_lateness;

    ExactOptions options;
    options.node_budget = node_budget;
    options.seeds.push_back(seed_from_schedule(graph, schedule));
    const ExactResult exact = solve_exact(graph, machine, options);
    out.optimal = exact.optimal;
    out.nodes = exact.nodes;
    out.proven = exact.proven;

    // Certified tolerance: how far the distribution's assigned deadlines
    // overshoot the effective deadlines the oracle optimises against (the
    // precedence-window checker admits up to 1e-7 of slack per window).
    const std::vector<Time> eds = effective_deadlines(graph);
    Time slack = 0.0;
    for (NodeId id : graph.computation_nodes()) {
      if (!assignment.window(id).assigned()) continue;
      const Time s = assignment.abs_deadline(id) - eds[id.index()];
      if (s > slack) slack = s;
    }
    out.tolerance = slack + kGapCheckEps;
  });

  RunningStats heuristic;
  RunningStats optimal;
  RunningStats gap;
  RunningStats nodes;
  std::size_t unproven = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const GapSample& s = samples[i];
    if (s.optimal > s.heuristic + s.tolerance) {
      throw std::runtime_error(
          "gap: optimal exceeds heuristic for strategy " + strategy.label +
          " at sample " + std::to_string(i) + " (graph seed " +
          std::to_string(seed_for(batch.seed, {0, i})) + "): optimal=" +
          full(s.optimal) + " heuristic=" + full(s.heuristic) + " tolerance=" +
          full(s.tolerance));
    }
    heuristic.add(s.heuristic);
    optimal.add(s.optimal);
    gap.add(s.heuristic - s.optimal);
    nodes.add(static_cast<double>(s.nodes));
    if (!s.proven) ++unproven;
  }

  CellStats stats;
  stats.max_lateness = heuristic.summary();
  stats.end_to_end = optimal.summary();
  stats.makespan = gap.summary();
  stats.min_laxity = nodes.summary();
  stats.infeasible_runs = unproven;
  return stats;
}

ExecutedCell execute_gap_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                              int n_procs, const BatchConfig& batch,
                              const RunContext& context, std::uint64_t node_budget,
                              CellCache* cache) {
  obs::Sink* const sink = context.sink != nullptr ? context.sink : obs::active();

  ExecutedCell result;
  if (cache != nullptr) {
    result.canonical_key = describe_cell(workload, gap_cell_label(strategy.label, node_budget),
                                         n_procs, batch, context);
    if (!result.canonical_key.empty()) {
      CellStats cached;
      const bool hit = [&] {
        obs::SpanScope span(sink, obs::Span::CacheLookup);
        return cache->lookup(result.canonical_key, cached);
      }();
      if (hit) {
        obs::count_on(sink, obs::Counter::CacheHit);
        result.stats = cached;
        result.from_cache = true;
        return result;
      }
      obs::count_on(sink, obs::Counter::CacheMiss);
    }
  }

  result.stats = run_gap_cell(workload, strategy, n_procs, batch, context, node_budget);

  if (cache != nullptr && !result.canonical_key.empty()) {
    obs::SpanScope span(sink, obs::Span::CacheStore);
    cache->store(result.canonical_key, result.stats);
    obs::count_on(sink, obs::Counter::CacheStore);
  }
  return result;
}

}  // namespace feast::exact
