/// \file exact.hpp
/// \brief Exact branch-and-bound oracle for joint deadline distribution and
/// list-schedule placement on small instances.
///
/// The heuristics in src/core (NORM/PURE/THRES/ADAPT and the baselines)
/// decompose the problem into two phases: slice the end-to-end deadline into
/// per-subtask windows, then list-schedule against those windows.  The paper
/// never reports how far that decomposition sits from optimal because no
/// exact solver existed for the joint problem.  This module closes that gap
/// for small instances (<= 20 computation subtasks, <= 16 processors).
///
/// ## Model solved
///
/// The oracle minimises the *end-to-end maximum lateness*: for every
/// computation subtask v let ED(v) be its effective deadline — the tightest
/// boundary deadline reachable from v (min over v's own boundary deadline
/// and the ED of its successors).  A schedule's objective is
/// max_v (finish(v) - ED(v)), which equals the classic end-to-end max
/// lateness over output subtasks because finish times are monotone along
/// precedence arcs.  Any deadline distribution that satisfies the
/// precedence-window invariant assigns abs deadlines <= ED pointwise (up to
/// the checker's epsilon), so the heuristic's computation max-lateness is an
/// upper bound on the oracle objective — `optimal <= heuristic` is the
/// ground-truth invariant this module feeds the property harness.
///
/// ## Relaxation
///
/// Placement is explored in a contention-free, append-only model: a task
/// starts at the max of its boundary release, its processor's current tail,
/// and its predecessors' arrival times (finish + latency when crossing
/// processors, finish when co-located).  For ContentionFree machines this is
/// exact: any feasible list schedule can be left-shifted into this form
/// without increasing any finish time.  For SharedBus / PointToPointLinks
/// machines every contended schedule is still feasible in the relaxation
/// (bus slots only delay arrivals), so the returned optimum is a certified
/// *lower bound*; ExactResult::contention_relaxed reports this.
///
/// ## Search (McSplit idiom)
///
/// Depth-first branch and bound over (task, processor) placements with
/// bitset domains, incremental lower bounds (critical-path relaxation and a
/// speed-weighted demand waterfilling bound), dominance pruning over
/// (scheduled-set, live-placement) states, empty-processor symmetry
/// breaking on homogeneous machines, and an anytime node/time budget that
/// returns (incumbent, certified bound, proven flag).  All candidate
/// orderings are deterministic, so node counts are reproducible for a fixed
/// instance and node budget.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sched/machine.hpp"
#include "sched/schedule.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/time_types.hpp"

namespace feast::exact {

/// Hard instance-size ceilings.  Beyond these the search space (and the
/// 32-bit scheduled-set masks) would be meaningless; solve_exact throws.
inline constexpr int kMaxExactSubtasks = 20;
inline constexpr int kMaxExactProcs = 16;

/// A warm-start: computation subtasks in placement order with their target
/// processors.  Seeds are replayed through the oracle's own placement rule
/// (left-shifted), so a seed derived from any contention-free-feasible
/// schedule yields an incumbent no worse than that schedule's lateness.
struct ExactSeed {
  std::vector<std::pair<NodeId, ProcId>> order;
};

/// Search limits and warm starts.
struct ExactOptions {
  /// Maximum number of search-tree nodes to expand; 0 means unlimited.
  /// Node counts (and hence results) are deterministic for a fixed budget.
  std::uint64_t node_budget = 0;
  /// Wall-clock limit in seconds; 0 disables.  Nondeterministic — intended
  /// for interactive use, not tests.
  double time_budget_s = 0.0;
  /// Cap on dominance-memo entries before insertion stops (lookups continue).
  std::size_t memo_limit = 1u << 20;
  /// Warm-start placements (e.g. from seed_from_schedule).  Invalid seeds
  /// (wrong node set, precedence violation, disallowed processor) throw.
  std::vector<ExactSeed> seeds;
};

/// One placed computation subtask of the incumbent schedule.
struct ExactPlacement {
  NodeId node;
  ProcId proc;
  Time start = 0.0;
  Time finish = 0.0;
};

/// Outcome of a solve: the incumbent objective, a certified lower bound on
/// the true optimum, and search statistics.
struct ExactResult {
  /// Best (smallest) max lateness found.  With at least one computation
  /// subtask this is always a real schedule's objective (the greedy seed
  /// runs before the search); for an empty graph it is -infinity.
  Time optimal = -kInfiniteTime;
  /// Certified lower bound on the true optimal max lateness.  Equals
  /// `optimal` when `proven`; otherwise min(incumbent, smallest lower bound
  /// of any unexplored frontier branch).  Never worsens as node_budget
  /// grows.
  Time bound = -kInfiniteTime;
  /// True when the search completed within budget: `optimal` is the true
  /// optimum of the (possibly relaxed) model.
  bool proven = false;
  /// True when the machine has contention (SharedBus/PointToPointLinks) and
  /// the oracle therefore solved the contention-free relaxation: `optimal`
  /// is then a lower bound on the contended optimum, not attainable per se.
  bool contention_relaxed = false;
  /// Search-tree nodes expanded (deterministic for fixed node_budget).
  std::uint64_t nodes = 0;
  /// Branches cut by the lower bounds (critical path / demand / partial).
  std::uint64_t pruned_bound = 0;
  /// Branches cut by dominance against the memo.
  std::uint64_t pruned_dominated = 0;
  /// Wall-clock time of the solve.
  double wall_ms = 0.0;
  /// Incumbent placements in the order the search placed them.
  std::vector<ExactPlacement> placement;
};

/// Effective deadline per node: ED(v) = min(v's boundary deadline if set,
/// min over successors ED(succ)); +infinity for nodes with no deadline on
/// any path.  Indexed by NodeId::index() over all nodes (communication
/// nodes are transparent carriers).  Public so the check layer can certify
/// the `optimal <= heuristic` tolerance against the same quantity the
/// oracle optimises.
std::vector<Time> effective_deadlines(const TaskGraph& graph);

/// Derives a warm-start seed from a schedule produced by the list scheduler:
/// computation subtasks ordered by (start time, node id).
ExactSeed seed_from_schedule(const TaskGraph& graph, const Schedule& schedule);

/// Runs the branch-and-bound search.  Throws std::invalid_argument when the
/// instance exceeds kMaxExactSubtasks/kMaxExactProcs, when a pinned node
/// references an out-of-range processor, or when a seed is malformed.
ExactResult solve_exact(const TaskGraph& graph, const Machine& machine,
                        const ExactOptions& options = {});

/// Exhaustively enumerates every placement order and processor choice (no
/// pruning, no symmetry breaking, no budget) and returns the true optimum.
/// The oracle's own oracle: shares the placement arithmetic with
/// solve_exact, so on identical instances the two agree bitwise.  Guarded
/// to <= 10 subtasks and <= 4 processors; throws beyond that.
ExactResult enumerate_optimal(const TaskGraph& graph, const Machine& machine);

}  // namespace feast::exact
