#include "exact/exact.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "check/fault.hpp"
#include "obs/obs.hpp"
#include "taskgraph/algorithms.hpp"

namespace feast::exact {
namespace {

/// Dense view of one computation subtask: indices are topological positions
/// among computation nodes, so a forward pass over the array is a forward
/// pass over the precedence order.
struct DenseTask {
  NodeId id;
  Time exec = 0.0;       ///< Nominal execution time.
  Time exec_min = 0.0;   ///< exec on the fastest processor this task may use.
  Time floor = 0.0;      ///< Boundary release, or 0 when unset.
  Time ed = kInfiniteTime;  ///< Effective deadline.
  int pin = -1;          ///< Pinned processor, or -1 when relaxed.
  std::uint32_t pred_mask = 0;
  std::uint32_t succ_mask = 0;
  std::vector<std::pair<int, Time>> preds;  ///< (dense pred index, latency).
};

struct Problem {
  const Machine* machine = nullptr;
  int n = 0;        ///< Computation-subtask count.
  int n_procs = 0;
  std::uint32_t full_mask = 0;
  bool symmetric = false;  ///< Homogeneous machine, no pins: break proc symmetry.
  std::vector<DenseTask> tasks;            ///< In topological order.
  std::vector<int> dense_of;               ///< NodeId::index() -> dense index or -1.
};

/// Mutable search state: which tasks are placed where, per-processor tails,
/// and the running partial objective max(finish - ED) over placed tasks.
struct SearchState {
  std::uint32_t scheduled = 0;
  std::uint32_t used_procs = 0;
  std::array<Time, kMaxExactProcs> tail{};
  std::array<Time, kMaxExactSubtasks> finish{};
  std::array<std::uint8_t, kMaxExactSubtasks> proc{};
  Time partial = -kInfiniteTime;
};

/// The one placement rule shared by the branch-and-bound, the enumerator,
/// the greedy seed and seed replays: append task \p v to processor \p p.
/// Keeping a single arithmetic path is what makes "B&B == enumeration"
/// a bitwise statement rather than an epsilon one.
struct Placed {
  Time start;
  Time finish;
};

Placed place_on(const Problem& prob, const SearchState& s, int v, int p) {
  const DenseTask& t = prob.tasks[static_cast<std::size_t>(v)];
  Time start = t.floor;
  if (s.tail[static_cast<std::size_t>(p)] > start) start = s.tail[static_cast<std::size_t>(p)];
  for (const auto& [u, lat] : t.preds) {
    Time arrival = s.finish[static_cast<std::size_t>(u)];
    if (s.proc[static_cast<std::size_t>(u)] != static_cast<std::uint8_t>(p)) arrival += lat;
    if (arrival > start) start = arrival;
  }
  const Time finish = start + prob.machine->exec_time_on(t.exec, p);
  return {start, finish};
}

void apply(const Problem& prob, SearchState& s, int v, int p, const Placed& placed) {
  s.scheduled |= (1u << v);
  s.used_procs |= (1u << p);
  s.tail[static_cast<std::size_t>(p)] = placed.finish;
  s.finish[static_cast<std::size_t>(v)] = placed.finish;
  s.proc[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>(p);
  const Time late = placed.finish - prob.tasks[static_cast<std::size_t>(v)].ed;
  if (late > s.partial) s.partial = late;
}

Problem build_problem(const TaskGraph& graph, const Machine& machine) {
  machine.check();
  if (graph.subtask_count() > static_cast<std::size_t>(kMaxExactSubtasks)) {
    throw std::invalid_argument("exact: instance has " +
                                std::to_string(graph.subtask_count()) +
                                " subtasks; the oracle handles at most " +
                                std::to_string(kMaxExactSubtasks));
  }
  if (machine.n_procs > kMaxExactProcs) {
    throw std::invalid_argument("exact: machine has " + std::to_string(machine.n_procs) +
                                " processors; the oracle handles at most " +
                                std::to_string(kMaxExactProcs));
  }

  const auto topo = topological_order(graph);
  if (!topo.has_value()) throw std::invalid_argument("exact: task graph is cyclic");

  Problem prob;
  prob.machine = &machine;
  prob.n_procs = machine.n_procs;
  prob.dense_of.assign(graph.node_count(), -1);
  const std::vector<Time> eds = effective_deadlines(graph);

  for (NodeId id : *topo) {
    if (!graph.is_computation(id)) continue;
    const Node& node = graph.node(id);
    DenseTask t;
    t.id = id;
    t.exec = node.exec_time;
    t.floor = is_set(node.boundary_release) ? node.boundary_release : 0.0;
    t.ed = eds[id.index()];
    if (node.pinned.valid()) {
      if (node.pinned.index() >= static_cast<std::size_t>(machine.n_procs)) {
        throw std::invalid_argument("exact: subtask '" + node.name +
                                    "' is pinned to processor " +
                                    std::to_string(node.pinned.index()) +
                                    " but the machine has only " +
                                    std::to_string(machine.n_procs));
      }
      t.pin = static_cast<int>(node.pinned.index());
    }
    prob.dense_of[id.index()] = static_cast<int>(prob.tasks.size());
    prob.tasks.push_back(std::move(t));
  }
  prob.n = static_cast<int>(prob.tasks.size());
  prob.full_mask = prob.n == 32 ? 0xffffffffu : ((1u << prob.n) - 1u);

  bool any_pinned = false;
  for (int v = 0; v < prob.n; ++v) {
    DenseTask& t = prob.tasks[static_cast<std::size_t>(v)];
    if (t.pin >= 0) any_pinned = true;
    // Fastest processor this task may run on (for critical-path bounds).
    Time best = kInfiniteTime;
    if (t.pin >= 0) {
      best = machine.exec_time_on(t.exec, t.pin);
    } else {
      for (int p = 0; p < prob.n_procs; ++p) {
        const Time e = machine.exec_time_on(t.exec, p);
        if (e < best) best = e;
      }
    }
    t.exec_min = best;
    // Predecessor computation subtasks, through the mediating comm node.
    for (NodeId comm : graph.preds(t.id)) {
      const NodeId src = graph.comm_source(comm);
      const int u = prob.dense_of[src.index()];
      // Topological order guarantees the predecessor was densified already.
      const Time lat = machine.transfer_time(graph.node(comm).message_items);
      t.preds.emplace_back(u, lat);
      t.pred_mask |= (1u << u);
      prob.tasks[static_cast<std::size_t>(u)].succ_mask |= (1u << v);
    }
  }
  prob.symmetric = machine.homogeneous() && !any_pinned;
  return prob;
}

/// Subtracts a relative safety margin so that a bound computed with
/// different floating-point associativity than the leaf values can never
/// overshoot and prune a strictly better completion.
Time shave(Time x) noexcept {
  if (!std::isfinite(x)) return x;
  return x - (1e-9 + 1e-12 * std::fabs(x));
}

/// Dominance-memo key: the scheduled set plus the processor of every *live*
/// placed task (one with an unscheduled successor).  Tasks whose successors
/// are all placed no longer influence any future placement, so two states
/// differing only in where such tasks ran are interchangeable.
struct MemoKey {
  std::uint64_t lo = 0;  ///< Proc nibbles of dense tasks 0..15.
  std::uint64_t hi = 0;  ///< Proc nibbles of 16..19, plus the scheduled mask.

  friend bool operator==(const MemoKey& a, const MemoKey& b) noexcept {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = (h ^ k.lo) * 0x100000001b3ull;
    h = (h ^ k.hi) * 0x100000001b3ull;
    return static_cast<std::size_t>(h);
  }
};

/// Memo payload: the components of a state that do influence the future.
/// An entry *dominates* a state when every component is <=; floating-point
/// max/+ are monotone, so any completion of the dominated state is matched
/// by a pointwise-<= completion of the dominator.
struct MemoEntry {
  std::array<Time, kMaxExactProcs> tail;
  std::vector<Time> live_finish;  ///< Finishes of live tasks, ascending index.
  Time partial;
};

struct Candidate {
  int v;
  int p;
  Placed placed;
  Time lb;  ///< Lower bound on any completion through this placement.
};

class Searcher {
 public:
  Searcher(const Problem& prob, const ExactOptions& options)
      : prob_(prob),
        budget_(options.node_budget == 0 ? std::numeric_limits<std::uint64_t>::max()
                                         : options.node_budget),
        memo_limit_(options.memo_limit),
        started_(std::chrono::steady_clock::now()) {
    if (options.time_budget_s > 0.0) {
      deadline_ = started_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(options.time_budget_s));
      has_deadline_ = true;
    }
  }

  /// Replays a fixed placement order, updating the incumbent.  Used for the
  /// greedy seed and for caller-provided warm starts.
  void offer(const std::vector<std::pair<int, int>>& order, const char* what) {
    SearchState s;
    std::vector<int> placed_order;
    placed_order.reserve(order.size());
    for (const auto& [v, p] : order) {
      if (v < 0 || v >= prob_.n || p < 0 || p >= prob_.n_procs)
        throw std::invalid_argument(std::string("exact: ") + what + " references an out-of-range task or processor");
      const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
      if ((s.scheduled & (1u << v)) != 0)
        throw std::invalid_argument(std::string("exact: ") + what + " places a subtask twice");
      if ((t.pred_mask & ~s.scheduled) != 0)
        throw std::invalid_argument(std::string("exact: ") + what + " violates precedence order");
      if (t.pin >= 0 && t.pin != p)
        throw std::invalid_argument(std::string("exact: ") + what + " contradicts a pinned subtask");
      apply(prob_, s, v, p, place_on(prob_, s, v, p));
      placed_order.push_back(v);
    }
    if (s.scheduled != prob_.full_mask)
      throw std::invalid_argument(std::string("exact: ") + what + " does not cover every subtask");
    note_leaf(s, placed_order);
  }

  /// Greedy warm start: repeatedly place the ready task with the tightest
  /// effective deadline on the processor finishing it earliest.  Consistent
  /// with the symmetry-breaking rule, so the incumbent it produces is always
  /// reachable by the search proper.
  void greedy_seed() {
    SearchState s;
    std::vector<int> placed_order;
    placed_order.reserve(static_cast<std::size_t>(prob_.n));
    while (s.scheduled != prob_.full_mask) {
      int best_v = -1;
      for (int v = 0; v < prob_.n; ++v) {
        if ((s.scheduled & (1u << v)) != 0) continue;
        const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
        if ((t.pred_mask & ~s.scheduled) != 0) continue;
        if (best_v < 0 || t.ed < prob_.tasks[static_cast<std::size_t>(best_v)].ed) best_v = v;
      }
      int best_p = -1;
      Placed best{};
      for (int p : allowed_procs(s, best_v)) {
        const Placed cand = place_on(prob_, s, best_v, p);
        if (best_p < 0 || cand.finish < best.finish) {
          best_p = p;
          best = cand;
        }
      }
      apply(prob_, s, best_v, best_p, best);
      placed_order.push_back(best_v);
    }
    note_leaf(s, placed_order);
  }

  void run() {
    if (prob_.n == 0) {
      proven_ = true;
      return;
    }
    SearchState root;
    path_.clear();
    path_.reserve(static_cast<std::size_t>(prob_.n));
    ++nodes_;
    dfs(root, -kInfiniteTime);
    proven_ = !stopped_;
  }

  ExactResult result() const {
    ExactResult r;
    r.proven = proven_;
    r.nodes = nodes_;
    r.pruned_bound = pruned_bound_;
    r.pruned_dominated = pruned_dominated_;
    if (prob_.n == 0) {
      r.optimal = -kInfiniteTime;
      r.bound = -kInfiniteTime;
      return r;
    }
    r.optimal = incumbent_;
    r.bound = proven_ ? incumbent_ : std::min(incumbent_, frontier_min_);
    r.placement.reserve(inc_order_.size());
    for (int v : inc_order_) {
      const std::size_t sv = static_cast<std::size_t>(v);
      ExactPlacement p;
      p.node = prob_.tasks[sv].id;
      p.proc = ProcId(static_cast<std::uint32_t>(inc_proc_[sv]));
      p.start = inc_start_[sv];
      p.finish = inc_finish_[sv];
      r.placement.push_back(p);
    }
    return r;
  }

 private:
  /// Processors task \p v may be appended to, honouring pins and (on
  /// symmetric instances) considering only the lowest-indexed never-used
  /// processor among the empty ones.
  std::vector<int> allowed_procs(const SearchState& s, int v) const {
    const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
    std::vector<int> procs;
    if (t.pin >= 0) {
      procs.push_back(t.pin);
      return procs;
    }
    bool fresh_taken = false;
    for (int p = 0; p < prob_.n_procs; ++p) {
      if (prob_.symmetric && (s.used_procs & (1u << p)) == 0) {
        if (fresh_taken) continue;
        fresh_taken = true;
      }
      procs.push_back(p);
    }
    return procs;
  }

  /// Critical-path relaxation: earliest-start pass over the unscheduled
  /// tasks assuming every relaxed task may use the least-loaded processor
  /// and co-locate with any unfixed predecessor.  Floating-point monotone
  /// against every true completion, so usable unshaved.
  Time lb_critical_path(const SearchState& s) const {
    Time min_tail = kInfiniteTime;
    for (int p = 0; p < prob_.n_procs; ++p) {
      if (s.tail[static_cast<std::size_t>(p)] < min_tail) min_tail = s.tail[static_cast<std::size_t>(p)];
    }
    Time lb = -kInfiniteTime;
    std::array<Time, kMaxExactSubtasks> est{};
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) != 0) continue;
      const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
      Time e = t.floor;
      const Time avail = t.pin >= 0 ? s.tail[static_cast<std::size_t>(t.pin)] : min_tail;
      if (avail > e) e = avail;
      for (const auto& [u, lat] : t.preds) {
        Time a;
        if ((s.scheduled & (1u << u)) != 0) {
          a = s.finish[static_cast<std::size_t>(u)];
          if (t.pin >= 0 && s.proc[static_cast<std::size_t>(u)] != static_cast<std::uint8_t>(t.pin)) a += lat;
        } else {
          const DenseTask& tu = prob_.tasks[static_cast<std::size_t>(u)];
          a = est[static_cast<std::size_t>(u)] + tu.exec_min;
          if (t.pin >= 0 && tu.pin >= 0 && tu.pin != t.pin) a += lat;
        }
        if (a > e) e = a;
      }
      est[static_cast<std::size_t>(v)] = e;
      const Time l = e + t.exec_min - t.ed;
      if (l > lb) lb = l;
    }
    return lb;
  }

  /// Demand relaxation: water-fill the remaining nominal workload over the
  /// processor tails at their speeds; the resulting completion time minus
  /// the loosest remaining effective deadline bounds the final lateness.
  /// Involves sums and divisions with no monotone relation to leaf
  /// arithmetic, so callers must shave() it.
  Time lb_demand(const SearchState& s) const {
    Time work = 0.0;
    Time max_ed = -kInfiniteTime;
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) != 0) continue;
      work += prob_.tasks[static_cast<std::size_t>(v)].exec;
      const Time ed = prob_.tasks[static_cast<std::size_t>(v)].ed;
      if (ed > max_ed) max_ed = ed;
    }
    if (work <= 0.0 || !std::isfinite(max_ed)) return -kInfiniteTime;

    std::array<std::pair<Time, double>, kMaxExactProcs> procs{};  // (tail, speed)
    for (int p = 0; p < prob_.n_procs; ++p) {
      procs[static_cast<std::size_t>(p)] = {s.tail[static_cast<std::size_t>(p)],
                                            prob_.machine->speed_of(p)};
    }
    std::sort(procs.begin(), procs.begin() + prob_.n_procs);
    // Sweep the water level T upward across tail thresholds.
    double speed_sum = 0.0;
    Time level = procs[0].first;
    Time absorbed = 0.0;  // Work absorbed when the level reaches procs[i].first.
    int i = 0;
    while (i < prob_.n_procs) {
      // Raise the level to the next tail (or to completion) with the
      // processors activated so far.
      const Time next = procs[static_cast<std::size_t>(i)].first;
      if (speed_sum > 0.0) {
        const Time capacity = speed_sum * (next - level);
        if (absorbed + capacity >= work) break;
        absorbed += capacity;
      }
      level = next;
      speed_sum += procs[static_cast<std::size_t>(i)].second;
      ++i;
    }
    const Time finish = level + (work - absorbed) / speed_sum;
    return finish - max_ed;
  }

  MemoKey memo_key(const SearchState& s) const {
    MemoKey key;
    key.hi = static_cast<std::uint64_t>(s.scheduled) << 32;
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) == 0) continue;
      if ((prob_.tasks[static_cast<std::size_t>(v)].succ_mask & ~s.scheduled) == 0) continue;
      // A plain proc nibble is unambiguous: the scheduled mask (in hi)
      // determines the live set, so a 0 nibble is only ever compared
      // against another state's same-meaning position.
      const std::uint64_t nibble = static_cast<std::uint64_t>(s.proc[static_cast<std::size_t>(v)]);
      if (v < 16) {
        key.lo |= nibble << (4 * v);
      } else {
        key.hi |= nibble << (4 * (v - 16));
      }
    }
    return key;
  }

  /// Returns true when a previously expanded state dominates \p s (prune);
  /// otherwise records \p s for future dominance checks, capacity allowing.
  bool dominated_or_record(const SearchState& s) {
    MemoEntry entry;
    entry.tail = s.tail;
    entry.partial = s.partial;
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) == 0) continue;
      if ((prob_.tasks[static_cast<std::size_t>(v)].succ_mask & ~s.scheduled) == 0) continue;
      entry.live_finish.push_back(s.finish[static_cast<std::size_t>(v)]);
    }
    const MemoKey key = memo_key(s);
    auto& bucket = memo_[key];
    for (const MemoEntry& e : bucket) {
      if (e.partial > entry.partial) continue;
      bool dominates = true;
      for (int p = 0; p < prob_.n_procs && dominates; ++p) {
        if (e.tail[static_cast<std::size_t>(p)] > entry.tail[static_cast<std::size_t>(p)]) dominates = false;
      }
      for (std::size_t j = 0; j < entry.live_finish.size() && dominates; ++j) {
        if (e.live_finish[j] > entry.live_finish[j]) dominates = false;
      }
      if (dominates) return true;
    }
    if (bucket.size() < kMemoBucketCap && memo_entries_ < memo_limit_) {
      bucket.push_back(std::move(entry));
      ++memo_entries_;
    }
    return false;
  }

  void note_leaf(const SearchState& s, const std::vector<int>& order) {
    if (has_incumbent_ && !(s.partial < incumbent_)) return;
    has_incumbent_ = true;
    incumbent_ = s.partial;
    inc_order_ = order;
    inc_proc_ = s.proc;
    inc_finish_ = s.finish;
    // Recover the exact starts by replaying (cheap: n appends); deriving
    // them as finish - exec could differ from the placed start by rounding.
    SearchState replay;
    for (int v : order) {
      const std::size_t sv = static_cast<std::size_t>(v);
      const Placed placed = place_on(prob_, replay, v, inc_proc_[sv]);
      inc_start_[sv] = placed.start;
      apply(prob_, replay, v, static_cast<int>(inc_proc_[sv]), placed);
    }
  }

  bool out_of_time() {
    if (!has_deadline_ || time_up_) return time_up_;
    if ((nodes_ & 0x3f) == 0 && std::chrono::steady_clock::now() >= deadline_) time_up_ = true;
    return time_up_;
  }

  void dfs(SearchState& s, Time inherited_lb) {
    if (s.scheduled == prob_.full_mask) {
      note_leaf(s, path_);
      return;
    }

    Time node_lb = inherited_lb;
    if (s.partial > node_lb) node_lb = s.partial;
    const Time lb_cp = lb_critical_path(s);
    if (lb_cp > node_lb) node_lb = lb_cp;
    const Time lb_dem = shave(lb_demand(s));
    if (lb_dem > node_lb) node_lb = lb_dem;
    if (has_incumbent_ && node_lb >= incumbent_) {
      ++pruned_bound_;
      return;
    }
    if (dominated_or_record(s)) {
      ++pruned_dominated_;
      return;
    }

    std::vector<Candidate> cands;
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) != 0) continue;
      const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
      if ((t.pred_mask & ~s.scheduled) != 0) continue;
      for (int p : allowed_procs(s, v)) {
        Candidate c;
        c.v = v;
        c.p = p;
        c.placed = place_on(prob_, s, v, p);
        const Time late = c.placed.finish - t.ed;
        c.lb = node_lb;
        if (late > c.lb) c.lb = late;
        cands.push_back(c);
      }
    }
    std::sort(cands.begin(), cands.end(), [this](const Candidate& a, const Candidate& b) {
      if (a.lb != b.lb) return a.lb < b.lb;
      const Time eda = prob_.tasks[static_cast<std::size_t>(a.v)].ed;
      const Time edb = prob_.tasks[static_cast<std::size_t>(b.v)].ed;
      if (eda != edb) return eda < edb;
      if (a.v != b.v) return a.v < b.v;
      return a.p < b.p;
    });

    for (const Candidate& c : cands) {
      if (has_incumbent_ && c.lb >= incumbent_) {
        ++pruned_bound_;
        continue;
      }
      if (stopped_ || nodes_ >= budget_ || out_of_time()) {
        stopped_ = true;
        if (c.lb < frontier_min_) frontier_min_ = c.lb;
        continue;
      }
      ++nodes_;
      SearchState child = s;
      apply(prob_, child, c.v, c.p, c.placed);
      path_.push_back(c.v);
      dfs(child, c.lb);
      path_.pop_back();
    }
  }

  static constexpr std::size_t kMemoBucketCap = 16;

  const Problem& prob_;
  std::uint64_t budget_;
  std::size_t memo_limit_;
  std::chrono::steady_clock::time_point started_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  bool time_up_ = false;

  std::uint64_t nodes_ = 0;
  std::uint64_t pruned_bound_ = 0;
  std::uint64_t pruned_dominated_ = 0;
  bool stopped_ = false;
  bool proven_ = false;

  bool has_incumbent_ = false;
  Time incumbent_ = kInfiniteTime;
  Time frontier_min_ = kInfiniteTime;
  std::vector<int> inc_order_;
  std::array<std::uint8_t, kMaxExactSubtasks> inc_proc_{};
  std::array<Time, kMaxExactSubtasks> inc_start_{};
  std::array<Time, kMaxExactSubtasks> inc_finish_{};

  std::vector<int> path_;
  std::size_t memo_entries_ = 0;
  std::unordered_map<MemoKey, std::vector<MemoEntry>, MemoKeyHash> memo_;
};

/// Exhaustive enumerator sharing place_on/apply with the search.  No
/// pruning, no symmetry breaking, no memo, no budget: the trust anchor.
class Enumerator {
 public:
  Enumerator(const Problem& prob) : prob_(prob) {}

  void run() {
    if (prob_.n == 0) return;
    SearchState root;
    path_.reserve(static_cast<std::size_t>(prob_.n));
    ++nodes_;
    walk(root);
  }

  ExactResult result() const {
    ExactResult r;
    r.proven = true;
    r.nodes = nodes_;
    if (prob_.n == 0) {
      r.optimal = -kInfiniteTime;
      r.bound = -kInfiniteTime;
      return r;
    }
    r.optimal = best_;
    r.bound = best_;
    for (int v : best_order_) {
      const std::size_t sv = static_cast<std::size_t>(v);
      ExactPlacement p;
      p.node = prob_.tasks[sv].id;
      p.proc = ProcId(static_cast<std::uint32_t>(best_proc_[sv]));
      p.start = best_start_[sv];
      p.finish = best_finish_[sv];
      r.placement.push_back(p);
    }
    return r;
  }

 private:
  void walk(SearchState& s) {
    if (s.scheduled == prob_.full_mask) {
      if (!has_best_ || s.partial < best_) {
        has_best_ = true;
        best_ = s.partial;
        best_order_ = path_;
        best_proc_ = s.proc;
        best_finish_ = s.finish;
        SearchState replay;
        for (int v : path_) {
          const std::size_t sv = static_cast<std::size_t>(v);
          const Placed placed = place_on(prob_, replay, v, static_cast<int>(s.proc[sv]));
          best_start_[sv] = placed.start;
          apply(prob_, replay, v, static_cast<int>(s.proc[sv]), placed);
        }
      }
      return;
    }
    for (int v = 0; v < prob_.n; ++v) {
      if ((s.scheduled & (1u << v)) != 0) continue;
      const DenseTask& t = prob_.tasks[static_cast<std::size_t>(v)];
      if ((t.pred_mask & ~s.scheduled) != 0) continue;
      const int lo = t.pin >= 0 ? t.pin : 0;
      const int hi = t.pin >= 0 ? t.pin + 1 : prob_.n_procs;
      for (int p = lo; p < hi; ++p) {
        ++nodes_;
        SearchState child = s;
        apply(prob_, child, v, p, place_on(prob_, s, v, p));
        path_.push_back(v);
        walk(child);
        path_.pop_back();
      }
    }
  }

  const Problem& prob_;
  std::uint64_t nodes_ = 0;
  bool has_best_ = false;
  Time best_ = kInfiniteTime;
  std::vector<int> best_order_;
  std::array<std::uint8_t, kMaxExactSubtasks> best_proc_{};
  std::array<Time, kMaxExactSubtasks> best_start_{};
  std::array<Time, kMaxExactSubtasks> best_finish_{};
  std::vector<int> path_;
};

std::vector<std::pair<int, int>> densify_seed(const Problem& prob, const TaskGraph& graph,
                                              const ExactSeed& seed) {
  std::vector<std::pair<int, int>> order;
  order.reserve(seed.order.size());
  for (const auto& [id, proc] : seed.order) {
    if (id.index() >= graph.node_count() || prob.dense_of[id.index()] < 0)
      throw std::invalid_argument("exact: seed references a non-computation node");
    order.emplace_back(prob.dense_of[id.index()],
                       proc.valid() ? static_cast<int>(proc.index()) : -1);
  }
  return order;
}

}  // namespace

std::vector<Time> effective_deadlines(const TaskGraph& graph) {
  const auto topo = topological_order(graph);
  if (!topo.has_value()) throw std::invalid_argument("exact: task graph is cyclic");
  std::vector<Time> ed(graph.node_count(), kInfiniteTime);
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const NodeId id = *it;
    Time e = kInfiniteTime;
    const Node& node = graph.node(id);
    if (node.kind == NodeKind::Computation && is_set(node.boundary_deadline))
      e = node.boundary_deadline;
    for (NodeId succ : node.succs) {
      if (ed[succ.index()] < e) e = ed[succ.index()];
    }
    ed[id.index()] = e;
  }
  return ed;
}

ExactSeed seed_from_schedule(const TaskGraph& graph, const Schedule& schedule) {
  const auto topo = topological_order(graph);
  if (!topo.has_value()) throw std::invalid_argument("exact: task graph is cyclic");
  std::vector<std::size_t> topo_pos(graph.node_count(), 0);
  for (std::size_t i = 0; i < topo->size(); ++i) topo_pos[(*topo)[i].index()] = i;

  ExactSeed seed;
  for (NodeId id : graph.computation_nodes()) {
    const TaskPlacement& p = schedule.placement(id);
    if (!p.placed()) throw std::invalid_argument("exact: schedule does not place every subtask");
    seed.order.emplace_back(id, p.proc);
  }
  std::sort(seed.order.begin(), seed.order.end(),
            [&](const std::pair<NodeId, ProcId>& a, const std::pair<NodeId, ProcId>& b) {
              const Time sa = schedule.placement(a.first).start;
              const Time sb = schedule.placement(b.first).start;
              if (sa != sb) return sa < sb;
              return topo_pos[a.first.index()] < topo_pos[b.first.index()];
            });
  return seed;
}

ExactResult solve_exact(const TaskGraph& graph, const Machine& machine,
                        const ExactOptions& options) {
  if (const auto fault = check::fire(check::FaultSite::ExactSolve)) {
    check::execute(*fault, "exact-solve");
  }
  const auto t0 = std::chrono::steady_clock::now();
  obs::SpanScope span(obs::Span::ExactSolve);

  const Problem prob = build_problem(graph, machine);
  Searcher searcher(prob, options);
  if (prob.n > 0) {
    searcher.greedy_seed();
    for (const ExactSeed& seed : options.seeds) {
      searcher.offer(densify_seed(prob, graph, seed), "seed");
    }
  }
  searcher.run();

  ExactResult result = searcher.result();
  result.contention_relaxed = machine.contention != CommContention::ContentionFree;
  result.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                       .count();
  obs::count(obs::Counter::ExactNode, result.nodes);
  obs::count(obs::Counter::ExactPruned, result.pruned_bound + result.pruned_dominated);
  return result;
}

ExactResult enumerate_optimal(const TaskGraph& graph, const Machine& machine) {
  if (graph.subtask_count() > 10) {
    throw std::invalid_argument("exact: enumerate_optimal handles at most 10 subtasks");
  }
  if (machine.n_procs > 4) {
    throw std::invalid_argument("exact: enumerate_optimal handles at most 4 processors");
  }
  const auto t0 = std::chrono::steady_clock::now();
  const Problem prob = build_problem(graph, machine);
  Enumerator enumerator(prob);
  enumerator.run();
  ExactResult result = enumerator.result();
  result.contention_relaxed = machine.contention != CommContention::ContentionFree;
  result.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                       .count();
  return result;
}

}  // namespace feast::exact
