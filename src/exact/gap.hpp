/// \file gap.hpp
/// \brief Optimality-gap cells: heuristic-vs-oracle evaluation batches.
///
/// A gap cell mirrors an ordinary experiment cell (same graphs, same
/// seeding, same machine derivation, same cache protocol) but evaluates
/// each sample twice: once with the heuristic strategy under test, and
/// once with the exact oracle of exact.hpp warm-started from the
/// heuristic's own schedule.  The per-sample invariant `optimal <=
/// heuristic` is enforced up to a certified tolerance derived from the
/// instance (see below); a violation aborts the cell with a replayable
/// error, which the campaign layer surfaces as a Failed cell.
///
/// ## Tolerance
///
/// The heuristics' computation lateness is measured against *assigned*
/// absolute deadlines; the oracle optimises against *effective* deadlines
/// (the tightest boundary deadline reachable from each node).  A valid
/// distribution assigns abs deadlines <= effective deadlines, but the
/// precedence-window checker admits up to 1e-7 of float slack per window —
/// so the certified per-instance tolerance is
/// max_v(assigned(v) - effective(v))+ plus a fixed epsilon.  Gap values
/// are reported raw and may be microscopically negative within that
/// tolerance.
///
/// ## CellStats field mapping
///
/// Gap cells reuse the campaign cache/manifest record unchanged:
///   max_lateness   <- heuristic max lateness per sample
///   end_to_end     <- oracle optimal (lower bound when budget-limited)
///   makespan       <- gap = heuristic - optimal
///   min_laxity     <- search-tree nodes expanded
///   infeasible_runs <- samples NOT proven optimal within the node budget
#pragma once

#include <cstdint>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/strategy.hpp"
#include "experiment/sweep.hpp"

namespace feast::exact {

/// Fixed epsilon added to the certified per-instance tolerance.
inline constexpr double kGapCheckEps = 1e-6;

/// Decorated strategy label for cache keys and manifests, e.g.
/// "gap[NORM+CCNE;nodes=250000]".  Distinct from every lateness-cell label,
/// so gap results can never collide with lateness results in the cell
/// cache or in a resumed manifest.
std::string gap_cell_label(const std::string& strategy_label, std::uint64_t node_budget);

/// Evaluates one gap cell: batch.samples graphs, heuristic vs oracle.
/// Throws std::runtime_error (naming the violating sample and seed) when a
/// sample's optimal exceeds its heuristic beyond the certified tolerance.
CellStats run_gap_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                       int n_procs, const BatchConfig& batch,
                       const RunContext& context, std::uint64_t node_budget);

/// Cache-aware entry point, mirroring execute_cell: consults \p cache under
/// the gap-decorated label, evaluates on a miss, stores the fresh result.
ExecutedCell execute_gap_cell(const RandomGraphConfig& workload, const Strategy& strategy,
                              int n_procs, const BatchConfig& batch,
                              const RunContext& context, std::uint64_t node_budget,
                              CellCache* cache);

}  // namespace feast::exact
