#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace feast {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

StatSummary RunningStats::summary() const noexcept {
  StatSummary s;
  s.count = n_;
  s.mean = mean();
  s.stddev = stddev();
  s.min = min();
  s.max = max();
  if (n_ >= 2) {
    s.ci95_half_width = 1.96 * s.stddev / std::sqrt(static_cast<double>(n_));
  }
  return s;
}

double quantile(std::vector<double> sample, double q) {
  FEAST_REQUIRE(!sample.empty());
  FEAST_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double mean_of(const std::vector<double>& sample) noexcept {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

}  // namespace feast
