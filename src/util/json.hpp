/// \file json.hpp
/// \brief A deliberately small JSON reader.
///
/// Covers the subset this repository writes — objects, arrays, strings
/// with basic escapes, numbers, booleans, null — so manifests, benchmark
/// records and Chrome traces can be read back without an external
/// dependency.  Extracted from the campaign manifest reader once the
/// observability tests needed to round-trip trace JSON too.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace feast {

/// One parsed JSON value (a tagged union kept deliberately plain).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named \p key, or nullptr (objects only).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Recursive-descent parser over a complete input string.  Throws
/// std::runtime_error with an offset on malformed input.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input (trailing content is an error).
  JsonValue parse();

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_literal(const char* literal);
  JsonValue parse_value();
  JsonValue parse_object();
  JsonValue parse_array();
  std::string parse_string();
  JsonValue parse_number();

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Convenience: parse a complete JSON document.
JsonValue parse_json(const std::string& text);

}  // namespace feast
