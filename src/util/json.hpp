/// \file json.hpp
/// \brief A deliberately small JSON reader.
///
/// Covers the subset this repository writes — objects, arrays, strings
/// with basic escapes, numbers, booleans, null — so manifests, benchmark
/// records and Chrome traces can be read back without an external
/// dependency.  Extracted from the campaign manifest reader once the
/// observability tests needed to round-trip trace JSON too.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace feast {

/// One parsed JSON value (a tagged union kept deliberately plain).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named \p key, or nullptr (objects only).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Resource bounds enforced while parsing.  The defaults are generous
/// enough for every file this repository writes (manifests, traces, bench
/// records); the serve daemon passes tighter ones because its input is
/// attacker-controlled bytes off a socket.
struct JsonLimits {
  /// Maximum nesting depth of arrays/objects.  A deeply nested `[[[[...`
  /// bomb otherwise turns the recursive-descent parser into a stack
  /// overflow — a remote crash, not a parse error.
  std::size_t max_depth = 128;
  /// Maximum input size in bytes; 0 means unlimited.  Checked up front so
  /// an oversized document is rejected before any work is done.
  std::size_t max_bytes = 0;
};

/// Recursive-descent parser over a complete input string.  Throws
/// std::runtime_error with an offset on malformed input or a violated
/// limit.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text, JsonLimits limits = {})
      : text_(text), limits_(limits) {}

  /// Parses the whole input (trailing content is an error).
  JsonValue parse();

 private:
  [[noreturn]] void fail(const std::string& what) const;
  void skip_ws();
  char peek();
  void expect(char c);
  bool consume_literal(const char* literal);
  JsonValue parse_value();
  JsonValue parse_object();
  JsonValue parse_array();
  std::string parse_string();
  JsonValue parse_number();

  const std::string& text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

/// Convenience: parse a complete JSON document.
JsonValue parse_json(const std::string& text, JsonLimits limits = {});

/// Escapes \p s for embedding inside a JSON string literal (quotes,
/// backslashes, control characters as \uXXXX).
std::string json_escape(const std::string& s);

}  // namespace feast
