#include "util/parallel.hpp"

#include <atomic>
#include <thread>

#include "campaign/pool.hpp"

namespace feast {

namespace {
std::atomic<unsigned> g_threads{0};

unsigned resolved_threads() noexcept {
  const unsigned configured = g_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}
}  // namespace

void set_parallelism(unsigned threads) noexcept {
  g_threads.store(threads, std::memory_order_relaxed);
}

unsigned parallelism() noexcept { return resolved_threads(); }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const unsigned workers = resolved_threads();
  if (workers <= 1 || n == 1) {
    // Serial path: exceptions propagate directly; n == 1 skips the pool
    // entirely so single-iteration loops stay allocation-free.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  WorkStealingPool& pool = WorkStealingPool::global();
  // Follow --threads / set_parallelism changes lazily.  A nested call from
  // inside a pool worker must not resize (it would join its own thread);
  // it simply runs at the pool's current width.
  if (pool.worker_count() != workers && !pool.on_worker_thread()) {
    pool.resize(workers);
  }
  pool.parallel_for(n, body);
}

}  // namespace feast
