#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace feast {

namespace {
std::atomic<unsigned> g_threads{0};

unsigned resolved_threads() noexcept {
  const unsigned configured = g_threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}
}  // namespace

void set_parallelism(unsigned threads) noexcept {
  g_threads.store(threads, std::memory_order_relaxed);
}

unsigned parallelism() noexcept { return resolved_threads(); }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(resolved_threads(), n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::atomic<bool> failed{false};

  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        // First failure wins; stop handing out work.
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) {
          error = std::current_exception();
        }
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(work);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace feast
