/// \file table.hpp
/// \brief Fixed-width text tables for bench output.
///
/// The bench binaries print paper-style series tables to stdout; this class
/// handles column sizing and alignment so every bench renders consistently.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace feast {

/// Accumulates rows, then renders with per-column auto-sizing.
class TextTable {
 public:
  /// Sets the header row; resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Appends a data row.  Rows may have differing lengths; short rows are
  /// padded with empty cells at render time.
  void add_row(std::vector<std::string> row);

  /// Convenience: first cell is a label, the rest are numbers.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  /// Renders the table with a header separator line.
  void render(std::ostream& out) const;

  /// Number of data rows.
  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace feast
