/// \file contracts.hpp
/// \brief Lightweight contract checking used across the FEAST library.
///
/// Contract violations indicate programming errors (broken invariants or
/// misuse of an API), not recoverable runtime conditions.  They throw
/// feast::ContractViolation so that unit tests can assert on misuse and so
/// that long experiment batches fail loudly with context instead of
/// corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace feast {

/// Thrown when a precondition, postcondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::string full = std::string(kind) + " failed: (" + expr + ") at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) full += " — " + msg;
  throw ContractViolation(full);
}
}  // namespace detail

}  // namespace feast

/// Precondition check: validates arguments / state on entry to a function.
#define FEAST_REQUIRE(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Precondition", #expr, __FILE__,        \
                                     __LINE__, "");                          \
  } while (0)

/// Precondition check with an explanatory message.
#define FEAST_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Precondition", #expr, __FILE__,        \
                                     __LINE__, (msg));                       \
  } while (0)

/// Postcondition check: validates results before returning.
#define FEAST_ENSURE(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Postcondition", #expr, __FILE__,       \
                                     __LINE__, "");                          \
  } while (0)

/// Postcondition check with an explanatory message.
#define FEAST_ENSURE_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Postcondition", #expr, __FILE__,       \
                                     __LINE__, (msg));                       \
  } while (0)

/// Internal invariant check.
#define FEAST_ASSERT(expr)                                                   \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Invariant", #expr, __FILE__, __LINE__, \
                                     "");                                    \
  } while (0)

/// Internal invariant check with an explanatory message.
#define FEAST_ASSERT_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr))                                                             \
      ::feast::detail::contract_fail("Invariant", #expr, __FILE__, __LINE__, \
                                     (msg));                                 \
  } while (0)
