#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "check/fault.hpp"

namespace feast::net {

namespace {

/// A Stall fault's delay: long enough to trip request deadlines and
/// exercise retry paths, short enough to keep chaos trials fast.
constexpr auto kStallDelay = std::chrono::milliseconds(1200);

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

/// "localhost" and the empty string mean loopback; anything else must be an
/// IPv4 dotted quad.  The daemon binds loopback by default, so a resolver
/// is deliberately out of scope.
bool parse_host(const std::string& host, in_addr* out) {
  if (host.empty() || host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

/// Waits for \p events on \p fd until \p deadline.  Returns true when the
/// fd is ready, false on timeout or poll error.
bool wait_ready(int fd, short events, double deadline) {
  for (;;) {
    const double remaining = deadline - now_s();
    if (remaining <= 0.0) return false;
    pollfd pfd{fd, events, 0};
    const int timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd, bool on) noexcept {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return fcntl(fd, F_SETFL, next) == 0;
}

TcpListener TcpListener::bind_and_listen(const std::string& host, std::uint16_t port,
                                         int backlog) {
  in_addr addr{};
  if (!parse_host(host, &addr)) {
    throw std::runtime_error("net: cannot parse host '" + host +
                             "' (IPv4 dotted quad or 'localhost')");
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    throw std::runtime_error(std::string("net: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr;
  sa.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    throw std::runtime_error("net: bind " + host + ":" + std::to_string(port) + ": " +
                             std::strerror(errno));
  }
  if (::listen(sock.fd(), backlog) != 0) {
    throw std::runtime_error(std::string("net: listen: ") + std::strerror(errno));
  }
  if (!set_nonblocking(sock.fd(), true)) {
    throw std::runtime_error(std::string("net: fcntl: ") + std::strerror(errno));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw std::runtime_error(std::string("net: getsockname: ") + std::strerror(errno));
  }

  TcpListener listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Socket TcpListener::accept() noexcept {
  const int fd =
      ::accept4(socket_.fd(), nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (fd < 0) return Socket{};
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(fd);
}

Socket tcp_connect(const std::string& host, std::uint16_t port, double timeout_s,
                   std::string* error) {
  in_addr addr{};
  if (!parse_host(host, &addr)) {
    if (error != nullptr) *error = "cannot parse host '" + host + "'";
    return Socket{};
  }
  // Fault site: a partitioned or blackholed peer.  Fires before the dial so
  // the caller's reconnect/backoff path sees an ordinary connect failure.
  if (const auto fault = check::fire(check::FaultSite::NetConnect)) {
    if (*fault == check::FaultAction::Die) {
      check::execute(*fault, "net-connect");
    } else if (*fault == check::FaultAction::Stall) {
      std::this_thread::sleep_for(kStallDelay);
    } else {
      if (error != nullptr) {
        *error = "injected fault (net-connect): peer blackholed";
      }
      return Socket{};
    }
  }
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    set_error(error, "socket");
    return Socket{};
  }
  // Connect nonblocking so the deadline applies, then flip back to blocking
  // for the request/response exchange.
  if (!set_nonblocking(sock.fd(), true)) {
    set_error(error, "fcntl");
    return Socket{};
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = addr;
  sa.sin_port = htons(port);
  const double deadline = now_s() + timeout_s;
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    if (errno != EINPROGRESS) {
      set_error(error, "connect");
      return Socket{};
    }
    if (!wait_ready(sock.fd(), POLLOUT, deadline)) {
      if (error != nullptr) *error = "connect timed out";
      return Socket{};
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      set_error(error, "connect");
      return Socket{};
    }
  }
  if (!set_nonblocking(sock.fd(), false)) {
    set_error(error, "fcntl");
    return Socket{};
  }
  const int one = 1;
  setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

int read_available(int fd, std::string& buffer, std::size_t max) {
  // Fault site: the inbound stream dies mid-frame.  ShortRead (and Throw)
  // surface as EOF — the reader is left holding a truncated delivery; Stall
  // delays the read; Die kills the reading process outright.
  if (const auto fault = check::fire(check::FaultSite::NetRecv)) {
    if (*fault == check::FaultAction::Die) {
      check::execute(*fault, "net-recv");
    } else if (*fault == check::FaultAction::Stall) {
      std::this_thread::sleep_for(kStallDelay);
    } else {
      return 0;
    }
  }
  char chunk[16 * 1024];
  const std::size_t want = max < sizeof(chunk) ? max : sizeof(chunk);
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, want, 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      return static_cast<int>(n);
    }
    if (n == 0) return 0;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return -2;
  }
}

bool write_all(int fd, std::string_view data, double timeout_s, std::string* error) {
  // Fault site: the outbound link fails.  PartialWrite pushes a prefix and
  // then reports the link dead (a torn frame reaches the peer); FailWrite/
  // Throw drop everything; Stall delays delivery; Die kills the sender.
  if (const auto fault = check::fire(check::FaultSite::NetSend)) {
    if (*fault == check::FaultAction::Die) {
      check::execute(*fault, "net-send");
    } else if (*fault == check::FaultAction::Stall) {
      std::this_thread::sleep_for(kStallDelay);
    } else {
      if (*fault == check::FaultAction::PartialWrite && !data.empty()) {
        const std::size_t torn = data.size() / 2;
        (void)!::send(fd, data.data(), torn == 0 ? 1 : torn, MSG_NOSIGNAL);
      }
      if (error != nullptr) {
        *error = std::string("injected fault (net-send): ") +
                 (*fault == check::FaultAction::PartialWrite ? "torn frame"
                                                             : "link dropped");
      }
      return false;
    }
  }
  const double deadline = now_s() + timeout_s;
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd, POLLOUT, deadline)) {
        if (error != nullptr) *error = "write timed out";
        return false;
      }
      continue;
    }
    set_error(error, "write");
    return false;
  }
  return true;
}

bool read_until_eof(int fd, std::string& out, double timeout_s, std::string* error) {
  const double deadline = now_s() + timeout_s;
  for (;;) {
    if (!wait_ready(fd, POLLIN, deadline)) {
      if (error != nullptr) *error = "read timed out";
      return false;
    }
    const int rc = read_available(fd, out);
    if (rc == 0) return true;
    if (rc == -2) {
      set_error(error, "read");
      return false;
    }
  }
}

bool unix_socketpair(Socket& a, Socket& b, std::string* error) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    set_error(error, "socketpair");
    return false;
  }
  a = Socket(fds[0]);
  b = Socket(fds[1]);
  return true;
}

}  // namespace feast::net
