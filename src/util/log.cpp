#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace feast {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[feast " << level_name(level) << "] " << message << '\n';
}

}  // namespace feast
