#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

#include "util/contracts.hpp"

namespace feast {

std::string format_fixed(double value, int precision) {
  FEAST_REQUIRE(precision >= 0 && precision <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_compact(double value, int precision) {
  std::string s = format_fixed(value, precision);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return std::string(w - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t w) {
  if (s.size() >= w) return s;
  return s + std::string(w - s.size(), ' ');
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

}  // namespace feast
