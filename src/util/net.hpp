/// \file net.hpp
/// \brief Minimal POSIX TCP socket layer for the serve subsystem.
///
/// Wraps exactly what a single-threaded poll()-driven daemon needs — a
/// nonblocking listener, RAII connection fds, bounded-time connect/read/
/// write helpers and a socketpair for loopback tests — with no external
/// dependencies.  Everything reports failure through return values plus an
/// optional error string; only listener setup throws (a daemon that cannot
/// bind has nothing to degrade to).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace feast::net {

/// RAII file-descriptor owner (sockets, pipes).  Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  /// Releases ownership (caller closes).
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Sets/clears O_NONBLOCK.  Returns false on fcntl failure.
bool set_nonblocking(int fd, bool on) noexcept;

/// Nonblocking listening TCP socket.  port 0 binds an ephemeral port;
/// port() reports the resolved one.
class TcpListener {
 public:
  TcpListener() = default;

  /// Binds + listens on \p host:\p port (IPv4 dotted quad or "localhost").
  /// Throws std::runtime_error on any failure.
  static TcpListener bind_and_listen(const std::string& host, std::uint16_t port,
                                     int backlog = 64);

  int fd() const noexcept { return socket_.fd(); }
  bool valid() const noexcept { return socket_.valid(); }
  std::uint16_t port() const noexcept { return port_; }
  void close() noexcept { socket_.close(); }

  /// Accepts one pending connection (CLOEXEC, nonblocking).  Returns an
  /// invalid Socket when none is pending (or on a transient error).
  Socket accept() noexcept;

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Blocking TCP connect with a deadline.  Returns an invalid Socket and
/// fills \p error (when non-null) on failure.  The returned socket is
/// blocking (clients use plain read/write with recv timeouts).
Socket tcp_connect(const std::string& host, std::uint16_t port, double timeout_s,
                   std::string* error = nullptr);

/// Reads once into \p buffer (up to \p max bytes), appending.  Returns
/// > 0 bytes appended, 0 on orderly EOF, -1 on would-block, -2 on error.
int read_available(int fd, std::string& buffer, std::size_t max = 64 * 1024);

/// Writes the whole buffer with a deadline (EINTR/short-write safe; waits
/// for writability on a nonblocking fd).  False on error or timeout.
bool write_all(int fd, std::string_view data, double timeout_s,
               std::string* error = nullptr);

/// Blocking read of everything until EOF or \p timeout_s of inactivity.
/// Appends to \p out; false on error/timeout before EOF.
bool read_until_eof(int fd, std::string& out, double timeout_s,
                    std::string* error = nullptr);

/// AF_UNIX socketpair (both ends blocking, CLOEXEC) for loopback tests of
/// byte-stream fragmentation.  False + \p error on failure.
bool unix_socketpair(Socket& a, Socket& b, std::string* error = nullptr);

}  // namespace feast::net
