#include "util/csv.hpp"

#include "util/strings.hpp"

namespace feast {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const double v : values) fields.push_back(format_compact(v, precision));
  write_row(fields);
}

}  // namespace feast
