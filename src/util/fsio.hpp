/// \file fsio.hpp
/// \brief Durable, collision-free file publication.
///
/// The campaign manifest and the cell cache both publish files with the
/// classic tmp+rename idiom.  Two failure modes survive the naive version:
///
///   * **Durability** — rename() orders metadata but not data on ext4/btrfs;
///     a power cut shortly after the rename can surface the *new* name with
///     *empty* contents.  atomic_write_file() fsyncs the temporary file and
///     then the containing directory, so once the call returns the bytes are
///     on stable storage under the final name.
///   * **Cross-process collision** — a fixed `path + ".tmp"` scratch name is
///     clobbered when two processes (e.g. two `feastc` runs sharing a
///     --cache-dir) write the same target concurrently.  unique_tmp_path()
///     embeds the pid plus a process-local counter, so concurrent writers
///     never share a temporary.
///
/// These helpers are deliberately split so callers that need to interleave
/// work between the write and the rename (the fault-injected manifest
/// writer) can compose the same guarantees by hand.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace feast {

/// A scratch name next to \p path that no concurrent process or thread
/// shares: `<path>.tmp.<pid>.<counter>`.
std::filesystem::path unique_tmp_path(const std::filesystem::path& path);

/// Writes \p contents to \p path, then fsyncs it (data reaches the disk
/// before the function returns).  Returns false and fills \p error (when
/// non-null) on any failure; the partially written file is removed.
bool write_file_synced(const std::filesystem::path& path, std::string_view contents,
                       std::string* error = nullptr);

/// fsyncs the directory containing \p path, making a preceding rename()
/// durable.  Returns false on failure (non-fatal on filesystems that reject
/// directory fsync; callers normally ignore the result).
bool fsync_parent_dir(const std::filesystem::path& path);

/// Durable atomic publication: writes \p contents to a unique temporary
/// next to \p path (fsynced), renames it over \p path, and fsyncs the
/// directory.  After a true return the file is complete and durable under
/// its final name; on failure the temporary is cleaned up and \p error
/// (when non-null) describes the first problem.  Concurrent callers — in
/// this process or another — never tear each other's writes.
bool atomic_write_file(const std::filesystem::path& path, std::string_view contents,
                       std::string* error = nullptr);

/// Advisory exclusive lock (flock) held for the object's lifetime on a
/// sidecar `<path>.lock` file.  Serializes cross-process writers of the
/// same target — e.g. two `feastc` processes storing the same cache record.
/// Failure to acquire (unsupported filesystem) degrades to unlocked rather
/// than failing the write: the rename is still atomic, the lock only
/// removes needless duplicate work and tmp-file churn.
///
/// The sidecar is unlinked on release, so a shared directory does not
/// accumulate one stray `.lock` per record.  Unlink-after-flock has a
/// classic race (a contender blocked on the old inode would hold a lock
/// nobody else can see), so acquisition re-checks that the locked fd is
/// still the file published under the path and retries otherwise.
class FileLock {
 public:
  explicit FileLock(const std::filesystem::path& target);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

  bool locked() const noexcept { return fd_ >= 0; }

 private:
  std::string lock_path_;
  int fd_ = -1;
};

}  // namespace feast
