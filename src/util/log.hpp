/// \file log.hpp
/// \brief Minimal leveled logging to stderr.
///
/// Experiment batches run thousands of simulations; the default level (Warn)
/// keeps them silent unless something is wrong.  Bench binaries raise the
/// level with --verbose.
#pragma once

#include <sstream>
#include <string>

namespace feast {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Returns the current global threshold.
LogLevel log_level() noexcept;

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;

/// Emits one line at \p level (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Builds a log line with streaming syntax, emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace feast

#define FEAST_LOG_DEBUG ::feast::detail::LogStream(::feast::LogLevel::Debug)
#define FEAST_LOG_INFO ::feast::detail::LogStream(::feast::LogLevel::Info)
#define FEAST_LOG_WARN ::feast::detail::LogStream(::feast::LogLevel::Warn)
#define FEAST_LOG_ERROR ::feast::detail::LogStream(::feast::LogLevel::Error)
