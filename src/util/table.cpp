#include "util/table.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace feast {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label, const std::vector<double>& values,
                        int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (const double v : values) row.push_back(format_fixed(v, precision));
  rows_.push_back(std::move(row));
}

void TextTable::render(std::ostream& out) const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  auto account = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  if (!header_.empty()) account(header_);
  for (const auto& row : rows_) account(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      // Left-align the first (label) column; right-align numeric columns.
      out << (i == 0 ? pad_right(cell, widths[i]) : pad_left(cell, widths[i]));
      if (i + 1 < cols) out << "  ";
    }
    out << '\n';
  };

  if (!header_.empty()) {
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cols; ++i) total += widths[i] + (i + 1 < cols ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) print_row(row);
}

}  // namespace feast
