/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for experiments.
///
/// FEAST experiments must be exactly reproducible from a seed: every figure
/// in EXPERIMENTS.md is regenerated from fixed seeds.  We implement PCG32
/// (O'Neill, 2014) rather than relying on std::mt19937 plus std::uniform_*
/// distributions, because the standard distributions are not guaranteed to
/// produce identical streams across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace feast {

/// PCG32: 64-bit state, 32-bit output, selectable stream.
///
/// Two generators with the same seed but different stream identifiers produce
/// statistically independent sequences, which FEAST uses to give every
/// (figure, scenario, graph-index) cell its own stream.
class Pcg32 {
 public:
  /// Seeds the generator.  \p stream selects one of 2^63 distinct sequences.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    reseed(seed, stream);
  }

  /// Re-seeds in place; equivalent to constructing a fresh generator.
  void reseed(std::uint64_t seed, std::uint64_t stream = 0xda3e39cb94b95bdbULL) noexcept {
    state_ = 0U;
    inc_ = (stream << 1U) | 1U;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Next raw 32-bit output.
  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
    const auto rot = static_cast<std::uint32_t>(old >> 59U);
    return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
  }

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
  }

  /// Uniform integer in [lo, hi] (inclusive).  Uses unbiased rejection.
  int uniform_int(int lo, int hi) {
    FEAST_REQUIRE(lo <= hi);
    const auto range = static_cast<std::uint32_t>(static_cast<std::int64_t>(hi) -
                                                  static_cast<std::int64_t>(lo) + 1);
    return lo + static_cast<int>(bounded(range));
  }

  /// Uniform std::size_t in [0, n).  \p n must be positive.
  std::size_t uniform_index(std::size_t n) {
    FEAST_REQUIRE(n > 0);
    FEAST_REQUIRE(n <= 0xffffffffULL);
    return bounded(static_cast<std::uint32_t>(n));
  }

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    FEAST_REQUIRE(lo <= hi);
    const double u = static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
    return lo + (hi - lo) * u;
  }

  /// Bernoulli trial with success probability \p p in [0, 1].
  bool bernoulli(double p) {
    FEAST_REQUIRE(p >= 0.0 && p <= 1.0);
    return uniform_real(0.0, 1.0) < p;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    FEAST_REQUIRE(!v.empty());
    return v[uniform_index(v.size())];
  }

 private:
  /// Unbiased bounded output in [0, bound) via Lemire-style rejection.
  std::uint32_t bounded(std::uint32_t bound) noexcept {
    const std::uint32_t threshold = (-bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

/// Derives a child seed from a parent seed and a sequence of indices.
///
/// Used to give each cell of a parameter sweep an independent, reproducible
/// stream: seed_for(root, {figure, scenario, nproc, sample}).
std::uint64_t seed_for(std::uint64_t root, const std::vector<std::uint64_t>& path);

}  // namespace feast
