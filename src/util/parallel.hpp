/// \file parallel.hpp
/// \brief Deterministic data-parallel loop for experiment batches.
///
/// Experiment cells evaluate 128 independent samples; parallel_for spreads
/// them over hardware threads.  Results stay deterministic because every
/// sample derives its own RNG seed and writes to its own output slot —
/// aggregation happens sequentially afterwards.
#pragma once

#include <cstddef>
#include <functional>

namespace feast {

/// Invokes body(i) for i in [0, n), distributing iterations over worker
/// threads.  The body must be thread-safe with respect to distinct i.
/// Exceptions thrown by the body are rethrown on the calling thread (the
/// first one encountered wins).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Overrides the worker count (0 = hardware concurrency).  Intended for
/// tests and for --threads bench flags.
void set_parallelism(unsigned threads) noexcept;

/// Currently configured worker count (resolved; at least 1).
unsigned parallelism() noexcept;

}  // namespace feast
