/// \file stats.hpp
/// \brief Streaming and batch statistics for experiment aggregation.
///
/// Every data point in the paper's figures is "the average over 128
/// simulation runs of the maximum task lateness".  RunningStats accumulates
/// such batches with Welford's numerically stable algorithm and reports the
/// summary (mean, stddev, min, max, 95% confidence half-width) that the
/// experiment framework prints.
#pragma once

#include <cstddef>
#include <vector>

namespace feast {

/// Summary statistics of a sample batch.
struct StatSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double ci95_half_width = 0.0;  ///< Normal-approximation 95% CI half-width.
};

/// Welford streaming accumulator.
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }

  /// Sample variance with n-1 denominator; 0 when fewer than 2 samples.
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Minimum observation; 0 when empty.
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }

  /// Maximum observation; 0 when empty.
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  /// Full summary including the 95% confidence half-width.
  StatSummary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Computes the q-th quantile (0 <= q <= 1) of a sample by linear
/// interpolation between order statistics.  The input is copied and sorted.
double quantile(std::vector<double> sample, double q);

/// Arithmetic mean of a sample; 0 for an empty sample.
double mean_of(const std::vector<double>& sample) noexcept;

}  // namespace feast
