/// \file strings.hpp
/// \brief Small string-formatting helpers used by table/CSV writers.
#pragma once

#include <string>
#include <vector>

namespace feast {

/// Formats a double with \p precision fractional digits (fixed notation).
std::string format_fixed(double value, int precision);

/// Formats a double compactly: fixed with up to \p precision digits, with
/// trailing zeros (and a trailing dot) removed.
std::string format_compact(double value, int precision = 6);

/// Joins string pieces with a separator.
std::string join(const std::vector<std::string>& pieces, const std::string& sep);

/// Left-pads \p s with spaces to width \p w (no-op if already wider).
std::string pad_left(const std::string& s, std::size_t w);

/// Right-pads \p s with spaces to width \p w (no-op if already wider).
std::string pad_right(const std::string& s, std::size_t w);

/// True when \p s starts with \p prefix.
bool starts_with(const std::string& s, const std::string& prefix);

/// Splits on a delimiter character; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Removes leading and trailing whitespace.
std::string trim(const std::string& s);

}  // namespace feast
