#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace feast {

JsonValue JsonParser::parse() {
  if (limits_.max_bytes != 0 && text_.size() > limits_.max_bytes) {
    fail("input exceeds byte budget (" + std::to_string(text_.size()) + " > " +
         std::to_string(limits_.max_bytes) + ")");
  }
  JsonValue value = parse_value();
  skip_ws();
  if (pos_ != text_.size()) fail("trailing content");
  return value;
}

void JsonParser::fail(const std::string& what) const {
  throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
}

void JsonParser::skip_ws() {
  while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                 text_[pos_] == '\n' || text_[pos_] == '\r')) {
    ++pos_;
  }
}

char JsonParser::peek() {
  if (pos_ >= text_.size()) fail("unexpected end of input");
  return text_[pos_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail(std::string("expected '") + c + "'");
  ++pos_;
}

bool JsonParser::consume_literal(const char* literal) {
  const std::size_t len = std::char_traits<char>::length(literal);
  if (text_.compare(pos_, len, literal) == 0) {
    pos_ += len;
    return true;
  }
  return false;
}

JsonValue JsonParser::parse_value() {
  skip_ws();
  switch (peek()) {
    case '{': return parse_object();
    case '[': return parse_array();
    case '"': {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.string = parse_string();
      return v;
    }
    case 't':
    case 'f': {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      if (consume_literal("true")) {
        v.boolean = true;
      } else if (consume_literal("false")) {
        v.boolean = false;
      } else {
        fail("bad literal");
      }
      return v;
    }
    case 'n': {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue{};
    }
    default: return parse_number();
  }
}

JsonValue JsonParser::parse_object() {
  // Depth is bounded here and in parse_array — the only two recursion
  // points — so a `[[[[...` or `{"a":{"a":...` bomb fails with an offset
  // instead of exhausting the call stack.
  if (++depth_ > limits_.max_depth) fail("nesting exceeds depth limit");
  expect('{');
  JsonValue v;
  v.type = JsonValue::Type::Object;
  skip_ws();
  if (peek() == '}') {
    ++pos_;
    --depth_;
    return v;
  }
  for (;;) {
    skip_ws();
    std::string key = parse_string();
    skip_ws();
    expect(':');
    v.object.emplace_back(std::move(key), parse_value());
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect('}');
    --depth_;
    return v;
  }
}

JsonValue JsonParser::parse_array() {
  if (++depth_ > limits_.max_depth) fail("nesting exceeds depth limit");
  expect('[');
  JsonValue v;
  v.type = JsonValue::Type::Array;
  skip_ws();
  if (peek() == ']') {
    ++pos_;
    --depth_;
    return v;
  }
  for (;;) {
    v.array.push_back(parse_value());
    skip_ws();
    if (peek() == ',') {
      ++pos_;
      continue;
    }
    expect(']');
    --depth_;
    return v;
  }
}

std::string JsonParser::parse_string() {
  expect('"');
  std::string out;
  for (;;) {
    if (pos_ >= text_.size()) fail("unterminated string");
    const char c = text_[pos_++];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos_ >= text_.size()) fail("unterminated escape");
    const char e = text_[pos_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = text_[pos_++];
          code <<= 4U;
          if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
          else fail("bad \\u escape");
        }
        // Our writers only emit \u00XX control escapes; decode the BMP
        // range as UTF-8 anyway for robustness.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6U));
          out += static_cast<char>(0x80 | (code & 0x3FU));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12U));
          out += static_cast<char>(0x80 | ((code >> 6U) & 0x3FU));
          out += static_cast<char>(0x80 | (code & 0x3FU));
        }
        break;
      }
      default: fail("unknown escape");
    }
  }
}

JsonValue JsonParser::parse_number() {
  const std::size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (start == pos_) fail("expected a value");
  JsonValue v;
  v.type = JsonValue::Type::Number;
  const std::string token = text_.substr(start, pos_ - start);
  std::size_t consumed = 0;
  try {
    v.number = std::stod(token, &consumed);
  } catch (const std::exception&) {
    fail("bad number");
  }
  // stod parses the longest valid prefix; "1e" or "1.2.3" must not pass.
  if (consumed != token.size()) fail("bad number");
  return v;
}

JsonValue parse_json(const std::string& text, JsonLimits limits) {
  return JsonParser(text, limits).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace feast
