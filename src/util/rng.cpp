#include "util/rng.hpp"

namespace feast {

namespace {
/// SplitMix64 step; the standard seed-expansion mixer.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27U)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31U);
}
}  // namespace

std::uint64_t seed_for(std::uint64_t root, const std::vector<std::uint64_t>& path) {
  std::uint64_t x = root;
  std::uint64_t out = splitmix64(x);
  for (const std::uint64_t step : path) {
    x ^= step + 0x9e3779b97f4a7c15ULL + (x << 6U) + (x >> 2U);
    out = splitmix64(x);
  }
  return out;
}

}  // namespace feast
