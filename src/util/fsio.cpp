#include "util/fsio.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <system_error>

namespace feast {

namespace {

std::string errno_message(const char* what, const std::filesystem::path& path) {
  return std::string(what) + " '" + path.string() + "': " + std::strerror(errno);
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// write() the whole buffer, retrying on short writes and EINTR.
bool write_all(int fd, std::string_view contents) {
  const char* data = contents.data();
  std::size_t left = contents.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::filesystem::path unique_tmp_path(const std::filesystem::path& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path.string() + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));
}

bool write_file_synced(const std::filesystem::path& path, std::string_view contents,
                       std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    set_error(error, errno_message("cannot open", path));
    return false;
  }
  bool ok = write_all(fd, contents);
  if (!ok) set_error(error, errno_message("cannot write", path));
  if (ok && ::fsync(fd) != 0) {
    set_error(error, errno_message("cannot fsync", path));
    ok = false;
  }
  ::close(fd);
  if (!ok) ::unlink(path.c_str());
  return ok;
}

bool fsync_parent_dir(const std::filesystem::path& path) {
  std::filesystem::path dir = path.parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

bool atomic_write_file(const std::filesystem::path& path, std::string_view contents,
                       std::string* error) {
  const std::filesystem::path tmp = unique_tmp_path(path);
  if (!write_file_synced(tmp, contents, error)) return false;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, errno_message("cannot rename", tmp));
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable.  Failure here (exotic filesystems) does
  // not un-publish the file, so it is not reported as a write failure.
  (void)fsync_parent_dir(path);
  return true;
}

FileLock::FileLock(const std::filesystem::path& target)
    : lock_path_(target.string() + ".lock") {
  // Bounded retries: each round can lose at most to a holder that unlinked
  // the sidecar; exhausting them degrades to unlocked, like open/flock
  // failure.
  for (int round = 0; round < 16; ++round) {
    fd_ = ::open(lock_path_.c_str(), O_RDONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0) return;
    if (::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    // The previous holder may have unlinked the sidecar between our open()
    // and the flock landing; a lock on that orphaned inode excludes nobody
    // who reopens the path.  Keep it only if it is still the published file.
    struct stat locked {}, published {};
    if (::fstat(fd_, &locked) == 0 && ::stat(lock_path_.c_str(), &published) == 0 &&
        locked.st_ino == published.st_ino && locked.st_dev == published.st_dev) {
      return;
    }
    ::close(fd_);  // Releases our flock; reopen the live file and try again.
    fd_ = -1;
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    // Unlink while still holding the lock: contenders either block on this
    // inode (and re-check identity after acquiring) or create a fresh file.
    ::unlink(lock_path_.c_str());
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace feast
