/// \file csv.hpp
/// \brief Minimal CSV emission for experiment results.
///
/// Every bench binary can dump its series as CSV (``--csv file``) so the
/// figures can be re-plotted with external tooling.  Quoting follows RFC
/// 4180: fields containing comma, quote or newline are quoted, quotes are
/// doubled.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace feast {

/// Escapes one field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Row-oriented CSV writer over any std::ostream.
class CsvWriter {
 public:
  /// Binds the writer to \p out; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header or data row of raw string fields.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: writes a row of doubles with compact formatting.
  void write_numeric_row(const std::vector<double>& values, int precision = 6);

  /// Number of rows written so far.
  std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

}  // namespace feast
