/// \file time_types.hpp
/// \brief Time representation shared by all FEAST modules.
///
/// The paper expresses all temporal quantities in abstract "time units"
/// (one unit = the shared-bus transfer cost of one data item).  FEAST uses a
/// continuous time base so that laxity-ratio metrics, which divide slack by
/// hop counts or execution sums, never lose precision to rounding.
#pragma once

#include <cmath>
#include <limits>

namespace feast {

/// Continuous time in abstract time units.
using Time = double;

/// Sentinel for "not yet assigned" temporal attributes.
inline constexpr Time kUnsetTime = std::numeric_limits<Time>::quiet_NaN();

/// Positive infinity, used for "no deadline" bounds during searches.
inline constexpr Time kInfiniteTime = std::numeric_limits<Time>::infinity();

/// Returns true when a temporal attribute has been assigned a real value.
inline bool is_set(Time t) noexcept { return !std::isnan(t); }

/// Absolute-tolerance comparison for schedule bookkeeping.  The workloads in
/// the paper use execution times around 20 units, so 1e-9 units is far below
/// any meaningful difference while absorbing double rounding.
inline constexpr Time kTimeEps = 1e-9;

/// True when |a - b| is within kTimeEps.
inline bool time_eq(Time a, Time b) noexcept { return std::fabs(a - b) <= kTimeEps; }

/// True when a <= b up to kTimeEps.
inline bool time_le(Time a, Time b) noexcept { return a <= b + kTimeEps; }

/// True when a < b beyond kTimeEps.
inline bool time_lt(Time a, Time b) noexcept { return a < b - kTimeEps; }

/// True when a >= b up to kTimeEps.
inline bool time_ge(Time a, Time b) noexcept { return a >= b - kTimeEps; }

}  // namespace feast
