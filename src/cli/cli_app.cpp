#include "cli/cli_app.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "campaign/campaign.hpp"

#include "check/chaos.hpp"
#include "check/fault.hpp"
#include "check/torture.hpp"
#include "core/annotation_io.hpp"
#include "experiment/figures.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"
#include "core/comm_estimator.hpp"
#include "core/demand.hpp"
#include "core/distribution_validate.hpp"
#include "core/metrics.hpp"
#include "core/slicing.hpp"
#include "exact/exact.hpp"
#include "exact/gap.hpp"
#include "serve/client.hpp"
#include "serve/remote_worker.hpp"
#include "serve/server.hpp"
#include "sim/runtime_sim.hpp"
#include "supervise/supervisor.hpp"
#include "sched/diffsched.hpp"
#include "sched/gantt.hpp"
#include "sched/lateness.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/report.hpp"
#include "sched/schedule_validate.hpp"
#include "taskgraph/algorithms.hpp"
#include "taskgraph/dot.hpp"
#include "taskgraph/generator.hpp"
#include "taskgraph/serialize.hpp"
#include "taskgraph/shapes.hpp"
#include "taskgraph/validate.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace feast {

namespace {

/// Exit codes.
constexpr int kOk = 0;
constexpr int kFailure = 1;
constexpr int kUsage = 2;
/// Supervised campaign completed but quarantined poison cells (degraded).
constexpr int kDegraded = 3;
/// A drain signal (SIGINT/SIGTERM) stopped a supervised campaign; the
/// manifest on disk is a resumable checkpoint.  128+SIGINT by convention.
constexpr int kInterrupted = 130;

/// Thrown on malformed command lines; carries the message for stderr.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

const char* kUsageText = R"(usage: feastc <command> [options]

commands:
  generate    emit a task graph in the FEAST text format
  info        statistics and validation of a graph
  distribute  assign execution windows (deadline distribution)
  schedule    distribute + schedule + lateness report
  simulate    execute the plan in the discrete-event runtime simulator
  campaign    run a declarative experiment campaign (cache + resume)
  exact       branch-and-bound optimality oracle (single instance or gap sweep)
  profile     instrumented sweep: per-phase timings, counters, Chrome trace
  diffsched   differential test of every (scheduler core x kernel backend)
  torture     crash-resume torture: kill campaigns at injected faults, resume,
              assert results identical to an uninterrupted run
  serve       long-lived evaluation daemon (HTTP/1.1 + JSON over TCP)
  submit      send a campaign or cell to a running serve daemon
  worker      remote worker: lease cells from a serve daemon over TCP
  chaos       networked torture of the distributed worker fabric: injected
              partitions, torn frames, worker kills and cross-worker poison
  dot         Graphviz export

common options:
  <graph>                 graph file, or '-' for stdin
  --metric M              pure | norm | thres | adapt   (default pure)
  --delta D               THRES surplus factor          (default 1)
  --threshold F           threshold factor x MET        (default 1.25)
  --estimator E           ccne | ccaa                   (default ccne)
  --procs N               system size                   (default 4)

generate options:
  --seed S                RNG seed                      (default 1)
  --shape K               random | chain | in-tree | out-tree | fork-join |
                          diamond                       (default random)
  --scenario X            LDET | MDET | HDET            (default MDET)
  --subtasks A:B          subtask-count range           (default 40:60)
  --depth A:B             level-count range             (default 8:12)
  --ccr C                 comm-to-computation ratio     (default 1.0)
  --olr O                 overall laxity ratio          (default 1.5)

distribute options:
  --format F              table | csv                   (default table)
  --windows-out FILE      also write the windows in the text format

schedule options:
  --contention C          free | bus | links            (default free)
  --release R             time-driven | eager           (default time-driven)
  --windows FILE          use pre-computed windows instead of distributing
  --gantt                 render an ASCII Gantt chart
  --csv                   emit the schedule as CSV instead of a summary
  --report                add distribution/schedule quality reports

simulate options (plus the distribute/schedule options):
  --runs N                simulated executions          (default 100)
  --overrun A:B           execution-time scale range    (default 1:1)
  --background U          background utilization        (default 0)
  --bg-service S          background job length         (default 10)
  --preemptive            preemptive EDF dispatching
  --sim-seed S            simulation RNG seed           (default 1)

campaign subcommands (spec format and manifest schema: docs/CAMPAIGN.md):
  campaign run <spec>     execute the campaign described by the spec file
  campaign resume <spec>  like run, but restore finished cells from the manifest
  campaign status <manifest>   print the state recorded in a manifest
  --json                  machine-readable status (same schema as /v1/status)
  --manifest FILE         checkpoint manifest            (default <name>.manifest.json)
  --cache-dir DIR         content-addressed result cache (default .feast-cache)
  --no-cache              disable the result cache
  --threads N             worker threads                 (default: keep current)
  --quiet                 suppress per-cell progress lines
  --trace-out FILE        write a Chrome trace of the run (docs/OBSERVABILITY.md)
  --faults SPEC           arm deterministic fault injection, e.g.
                          'cache-store:3:die' (docs/TESTING.md)

campaign supervision (docs/ROBUSTNESS.md; exit 3 = completed degraded,
130 = drained on SIGINT/SIGTERM with a resumable checkpoint):
  --isolate=process       run cells in supervised worker subprocesses
  --workers K             concurrent workers             (default 2)
  --cell-timeout S        watchdog deadline per attempt  (default 0 = off)
  --term-grace S          SIGTERM -> SIGKILL escalation  (default 2)
  --drain-grace S         drain wait for in-flight work  (default 10)
  --max-attempts N        retries before quarantine      (default 3)
  --backoff-base MS       retry backoff base             (default 250)
  --backoff-cap MS        retry backoff cap              (default 10000)
  --mem-limit MB          RLIMIT_AS per worker           (default 0 = off)
  --work-dir DIR          shard/log scratch              (default <manifest>.work)
  --keep-work             keep the scratch directory
  --inject SPEC           poison cells for testing, e.g. '0:hang,2:crash@1'
  --fault-cell CELL:SPEC  arm a fault plan inside one worker cell, e.g.
                          '0:exact-solve:1:die' (repeatable)

exact subcommands (search design and bound derivations: docs/EXACT.md):
  exact solve <graph>     heuristic vs oracle on one instance (metric options
                          apply; exit 1 when optimal > heuristic + tolerance)
  exact gap <spec>        campaign-driven gap sweep over a spec file (mode is
                          forced to gap; cache/manifest as campaign run)
  --budget N              oracle node budget per solve   (default: spec / unlimited)
  --out FILE              gap table CSV                  (default: stdout)
  --bench-out FILE        aggregate JSON: nodes/sec, proven-optimal rate
  --manifest FILE         checkpoint manifest            (default <name>.gap.manifest.json)
  --resume                restore finished cells from the manifest
  --time-budget S         wall-clock limit per solve (solve only)

profile options (span taxonomy: docs/OBSERVABILITY.md):
  --samples N             graphs per cell                (default 32)
  --seed S                batch seed                     (default 0xFEA57)
  --sizes A,B,...         processor counts               (default 2,4,...,16)
  --scenario X            LDET | MDET | HDET             (default MDET)
  --contention C          free | bus | links             (default free)
  --core K                fast | reference               (default fast)
  --threads N             worker threads                 (default: keep current)
  --trace-out FILE        write Chrome trace_event JSON (chrome://tracing,
                          ui.perfetto.dev)

diffsched options (trace contract: docs/SCHEDULER.md):
  --trials N              randomized workloads, each replayed through all 12
                          policy combinations on both cores, the fast core
                          once per available kernel backend (default 500)
  --seed S                root RNG seed                  (default 1)
  --quick                 smaller graphs/machines (smoke run)

serve options (protocol and endpoints: docs/SERVE.md; exit 130 = drained on
SIGINT/SIGTERM with resumable campaign checkpoints):
  --host H                bind address                   (default 127.0.0.1)
  --port P                TCP port (0 = ephemeral, printed on startup)
  --workers K             local worker subprocesses; 0 = remote-only, cells
                          wait for `feastc worker` peers  (default 2)
  --max-queue N           queued cells before 429        (default 64)
  --max-connections N     open sockets before 503        (default 128)
  --max-attempts N        worker attempts per cell       (default 3)
  --cell-timeout S        watchdog deadline per attempt  (default 0 = off)
  --term-grace S          SIGTERM -> SIGKILL escalation  (default 2)
  --drain-grace S         drain wait for in-flight work  (default 10)
  --header-timeout S      slow-loris request deadline    (default 5)
  --idle-timeout S        keep-alive idle close          (default 60)
  --mem-limit MB          RLIMIT_AS per worker           (default 0 = off)
  --threads N             --threads given to each worker (default 1)
  --work-dir DIR          specs/manifests/shard scratch  (default .feast-serve)
  --cache-dir DIR         content-addressed result cache (default .feast-cache)
  --no-cache              disable the result cache
  --max-body BYTES        request body cap               (default 1048576)
  --quiet                 suppress progress lines

serve distributed-worker fabric (docs/SERVE.md, "Distributed workers"):
  --heartbeat-timeout S   drop idle remote workers after (default 15)
  --lease-timeout S       per-lease deadline before the cell is requeued
                          uncharged (default 0 = cell-timeout + grace, or 60)
  --poison-deaths N       distinct dead workers before a cell is quarantined
                          as cross-worker poison [net]   (default 2)
  --retry-after S         Retry-After hint on 429/503    (default 1)
  --faults SPEC           arm daemon-side fault injection (docs/TESTING.md)

submit options (exit 3 = campaign completed degraded):
  submit <spec> [--cell N]   submit a campaign spec file (or one cell of it)
  --server HOST:PORT      daemon address                 (default 127.0.0.1:7433)
  --client NAME           fair-queue identity            (default $USER or anon)
  --status                fetch /v1/status instead of submitting
  --timeout S             request deadline               (default 600)
  --retries N             deterministic retry budget on 429/503, honoring
                          Retry-After                    (default 0 = none)
  --retry-base MS         retry backoff base             (default 250)
  --retry-cap MS          retry backoff cap              (default 10000)
  --retry-seed S          retry jitter seed              (default 0)
  --inject SPEC           poison campaign cells, e.g. '0:worker-die,2:crash'

worker options (remote peer of a serve daemon; docs/SERVE.md):
  --connect HOST:PORT     daemon address                 (required)
  --name NAME             stable worker identity         (default worker-<pid>)
  --slots N               concurrent leases              (default 1)
  --work-dir DIR          spec/shard scratch             (default .feast-worker)
  --cache-dir DIR         exec-cell result cache         (default .feast-cache)
  --no-cache              disable the result cache
  --threads N             --threads given to exec-cell   (default 1)
  --poll-ms MS            idle lease-poll interval       (default 50)
  --backoff-base MS       reconnect backoff base         (default 250)
  --backoff-cap MS        reconnect backoff cap          (default 10000)
  --max-reconnects N      give up after N reconnects     (default 0 = never)
  --max-cells N           exit after N results           (default 0 = never)
  --request-timeout S     per-HTTP-request deadline      (default 10)
  --feastc PATH           exec-cell binary               (default: this binary)
  --faults SPEC           arm worker-side fault injection (docs/TESTING.md)

torture options (protocol: docs/TESTING.md):
  --trials N              kill/resume/compare cycles     (default 5)
  --seed S                root RNG seed                  (default 42)
  --work-dir DIR          scratch directory              (default .feast-torture)
  --feastc PATH           binary to drive                (default: this binary)
  --keep                  keep the scratch directory on success

chaos options (networked fabric torture; docs/ROBUSTNESS.md):
  --trials N              fault-family trials            (default 8)
  --seed S                root RNG seed                  (default 42)
  --workers K             remote workers per trial       (default 2)
  --work-dir DIR          scratch directory              (default .feast-chaos)
  --feastc PATH           binary to drive                (default: this binary)
  --timeout S             deadline per distributed run   (default 300)
  --keep                  keep the scratch directory on success

run 'feastc <command> --help' for the relevant subset.
)";

/// Simple sequential argument cursor.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  bool done() const noexcept { return next_ >= args_.size(); }

  std::string pop() {
    FEAST_ASSERT(!done());
    return args_[next_++];
  }

  std::string value_for(const std::string& flag) {
    if (done()) throw UsageError("option " + flag + " needs a value");
    return pop();
  }

 private:
  std::vector<std::string> args_;
  std::size_t next_ = 0;
};

double parse_double_arg(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError("bad number for " + flag + ": '" + text + "'");
  }
}

long long parse_int_arg(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(text, &pos, 0);
    if (pos != text.size()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    throw UsageError("bad integer for " + flag + ": '" + text + "'");
  }
}

std::pair<int, int> parse_range_arg(const std::string& flag, const std::string& text) {
  const auto pieces = split(text, ':');
  if (pieces.size() != 2) throw UsageError(flag + " wants A:B, got '" + text + "'");
  const int a = static_cast<int>(parse_int_arg(flag, pieces[0]));
  const int b = static_cast<int>(parse_int_arg(flag, pieces[1]));
  if (a < 1 || b < a) throw UsageError(flag + " range is empty: '" + text + "'");
  return {a, b};
}

/// Distribution-related options shared by distribute/schedule.
struct MetricOptions {
  std::string metric = "pure";
  double delta = 1.0;
  double threshold = 1.25;
  std::string estimator = "ccne";
  int procs = 4;

  /// Consumes the flag if it belongs to this group; true when consumed.
  bool consume(const std::string& flag, Args& args) {
    if (flag == "--metric") {
      metric = args.value_for(flag);
      if (metric != "pure" && metric != "norm" && metric != "thres" &&
          metric != "adapt") {
        throw UsageError("unknown metric '" + metric + "'");
      }
      return true;
    }
    if (flag == "--delta") {
      delta = parse_double_arg(flag, args.value_for(flag));
      return true;
    }
    if (flag == "--threshold") {
      threshold = parse_double_arg(flag, args.value_for(flag));
      return true;
    }
    if (flag == "--estimator") {
      estimator = args.value_for(flag);
      if (estimator != "ccne" && estimator != "ccaa") {
        throw UsageError("unknown estimator '" + estimator + "'");
      }
      return true;
    }
    if (flag == "--procs") {
      procs = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (procs < 1) throw UsageError("--procs must be positive");
      return true;
    }
    return false;
  }

  std::unique_ptr<SliceMetric> make_metric() const {
    if (metric == "norm") return make_norm();
    if (metric == "thres") return make_thres(delta, threshold);
    if (metric == "adapt") return make_adapt(procs, threshold);
    return make_pure();
  }

  std::unique_ptr<CommCostEstimator> make_estimator() const {
    return estimator == "ccaa" ? make_ccaa() : make_ccne();
  }
};

/// Loads a graph from a path or stdin ("-").
TaskGraph load_graph(const std::string& path, std::istream& in) {
  if (path == "-") return read_task_graph(in);
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open '" + path + "'");
  return read_task_graph(file);
}

// ----------------------------------------------------------------- generate

int cmd_generate(Args& args, std::ostream& out) {
  std::uint64_t seed = 1;
  std::string shape = "random";
  RandomGraphConfig config;
  ShapeConfig shape_config;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--seed") {
      seed = static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--shape") {
      shape = args.value_for(flag);
    } else if (flag == "--scenario") {
      const std::string name = args.value_for(flag);
      if (name == "LDET") config.set_scenario(ExecSpreadScenario::LDET);
      else if (name == "MDET") config.set_scenario(ExecSpreadScenario::MDET);
      else if (name == "HDET") config.set_scenario(ExecSpreadScenario::HDET);
      else throw UsageError("unknown scenario '" + name + "'");
      shape_config.exec_spread = config.exec_spread;
    } else if (flag == "--subtasks") {
      std::tie(config.min_subtasks, config.max_subtasks) =
          parse_range_arg(flag, args.value_for(flag));
    } else if (flag == "--depth") {
      std::tie(config.min_depth, config.max_depth) =
          parse_range_arg(flag, args.value_for(flag));
    } else if (flag == "--ccr") {
      config.ccr = parse_double_arg(flag, args.value_for(flag));
      shape_config.ccr = config.ccr;
    } else if (flag == "--olr") {
      config.olr = parse_double_arg(flag, args.value_for(flag));
      shape_config.olr = config.olr;
    } else {
      throw UsageError("generate: unknown option '" + flag + "'");
    }
  }

  Pcg32 rng(seed);
  TaskGraph graph;
  if (shape == "random") graph = generate_random_graph(config, rng);
  else if (shape == "chain") graph = make_chain(20, shape_config, rng);
  else if (shape == "in-tree") graph = make_in_tree(5, 2, shape_config, rng);
  else if (shape == "out-tree") graph = make_out_tree(5, 2, shape_config, rng);
  else if (shape == "fork-join") graph = make_fork_join(3, 5, 2, shape_config, rng);
  else if (shape == "diamond") graph = make_diamond(8, shape_config, rng);
  else throw UsageError("unknown shape '" + shape + "'");

  write_task_graph(out, graph);
  return kOk;
}

// --------------------------------------------------------------------- info

int cmd_info(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  while (!args.done()) {
    const std::string flag = args.pop();
    if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) path = flag;
    else throw UsageError("info: unknown option '" + flag + "'");
  }
  if (!path) throw UsageError("info: missing graph argument");

  const TaskGraph graph = load_graph(*path, in);
  out << "subtasks:        " << graph.subtask_count() << "\n";
  out << "messages:        " << graph.comm_count() << "\n";
  out << "inputs/outputs:  " << graph.inputs().size() << " / " << graph.outputs().size()
      << "\n";
  out << "depth:           " << depth(graph) << " levels\n";
  out << "workload:        " << format_compact(graph.total_workload(), 3) << "\n";
  out << "mean exec time:  " << format_compact(graph.mean_exec_time(), 3) << "\n";
  out << "critical path:   "
      << format_compact(longest_path_length(graph, computation_cost), 3) << "\n";
  out << "parallelism xi:  " << format_fixed(average_parallelism(graph), 2) << "\n";
  std::size_t pinned = 0;
  for (const NodeId id : graph.computation_nodes()) {
    if (graph.node(id).pinned.valid()) ++pinned;
  }
  out << "pinned subtasks: " << pinned << "\n";

  const ValidationReport report = validate_for_distribution(graph);
  if (report.ok()) {
    out << "validation:      ok (ready for distribution)\n";
    return kOk;
  }
  out << "validation:      FAILED\n" << report.to_string() << "\n";
  return kFailure;
}

// --------------------------------------------------------------- distribute

int cmd_distribute(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  MetricOptions metric_options;
  std::string format = "table";
  std::optional<std::string> windows_out;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (metric_options.consume(flag, args)) continue;
    if (flag == "--format") {
      format = args.value_for(flag);
      if (format != "table" && format != "csv") {
        throw UsageError("unknown format '" + format + "'");
      }
    } else if (flag == "--windows-out") {
      windows_out = args.value_for(flag);
    } else if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) {
      path = flag;
    } else {
      throw UsageError("distribute: unknown option '" + flag + "'");
    }
  }
  if (!path) throw UsageError("distribute: missing graph argument");

  const TaskGraph graph = load_graph(*path, in);
  const auto metric = metric_options.make_metric();
  const auto estimator = metric_options.make_estimator();
  const DeadlineAssignment windows = distribute_deadlines(graph, *metric, *estimator);
  require_valid(check_assignment_basic(graph, windows));

  if (windows_out) {
    std::ofstream file(*windows_out);
    if (!file) throw std::runtime_error("cannot open '" + *windows_out + "'");
    write_assignment(file, graph, windows);
  }

  if (format == "csv") {
    CsvWriter csv(out);
    csv.write_row({"kind", "name", "release", "rel_deadline", "abs_deadline",
                   "laxity", "iteration"});
    for (const NodeId id : graph.all_nodes()) {
      const bool comp = graph.is_computation(id);
      csv.write_row({comp ? "computation" : "communication", graph.node(id).name,
                     format_compact(windows.release(id), 6),
                     format_compact(windows.rel_deadline(id), 6),
                     format_compact(windows.abs_deadline(id), 6),
                     comp ? format_compact(windows.laxity(graph, id), 6) : "",
                     std::to_string(windows.window(id).iteration)});
    }
    return kOk;
  }

  out << "strategy: " << metric->name() << "+" << estimator->name() << "\n";
  out << "critical paths sliced: " << windows.paths().size() << "\n";
  out << "minimum laxity: " << format_fixed(windows.min_laxity(graph), 2) << "\n";
  out << "demand check (" << metric_options.procs << " procs): "
      << analyze_demand(graph, windows, metric_options.procs).to_string() << "\n\n";
  TextTable table;
  table.set_header({"subtask", "release", "abs deadline", "laxity", "iter"});
  for (const NodeId id : graph.computation_nodes()) {
    table.add_row({graph.node(id).name, format_fixed(windows.release(id), 2),
                   format_fixed(windows.abs_deadline(id), 2),
                   format_fixed(windows.laxity(graph, id), 2),
                   std::to_string(windows.window(id).iteration)});
  }
  table.render(out);
  return kOk;
}

// ----------------------------------------------------------------- schedule

int cmd_schedule(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  MetricOptions metric_options;
  Machine machine;
  SchedulerOptions sched_options;
  bool gantt = false;
  bool csv = false;
  bool detailed_report = false;
  std::optional<std::string> windows_path;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (metric_options.consume(flag, args)) continue;
    if (flag == "--windows") {
      windows_path = args.value_for(flag);
    } else if (flag == "--contention") {
      const std::string name = args.value_for(flag);
      if (name == "free") machine.contention = CommContention::ContentionFree;
      else if (name == "bus") machine.contention = CommContention::SharedBus;
      else if (name == "links") machine.contention = CommContention::PointToPointLinks;
      else throw UsageError("unknown contention model '" + name + "'");
    } else if (flag == "--release") {
      const std::string name = args.value_for(flag);
      if (name == "time-driven") sched_options.release_policy = ReleasePolicy::TimeDriven;
      else if (name == "eager") sched_options.release_policy = ReleasePolicy::Eager;
      else throw UsageError("unknown release policy '" + name + "'");
    } else if (flag == "--gantt") {
      gantt = true;
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--report") {
      detailed_report = true;
    } else if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) {
      path = flag;
    } else {
      throw UsageError("schedule: unknown option '" + flag + "'");
    }
  }
  if (!path) throw UsageError("schedule: missing graph argument");

  const TaskGraph graph = load_graph(*path, in);
  machine.n_procs = metric_options.procs;
  const auto metric = metric_options.make_metric();
  const auto estimator = metric_options.make_estimator();
  std::string strategy_label = metric->name() + "+" + estimator->name();
  DeadlineAssignment windows;
  if (windows_path) {
    std::ifstream file(*windows_path);
    if (!file) throw std::runtime_error("cannot open '" + *windows_path + "'");
    windows = read_assignment(file, graph);
    strategy_label = "windows from " + *windows_path;
  } else {
    windows = distribute_deadlines(graph, *metric, *estimator);
  }
  const Schedule schedule = list_schedule(graph, windows, machine, sched_options);
  require_valid(validate_schedule(graph, windows, machine, schedule, sched_options));

  if (csv) {
    write_schedule_csv(out, graph, windows, schedule);
    return kOk;
  }

  const LatenessStats stats = computation_lateness(graph, windows, schedule);
  out << "strategy:         " << strategy_label << "\n";
  out << "machine:          " << machine.n_procs << " procs, "
      << to_string(machine.contention) << ", " << to_string(sched_options.release_policy)
      << "\n";
  out << "makespan:         " << format_fixed(schedule.makespan(), 2) << "\n";
  out << "utilization:      " << format_fixed(schedule.average_utilization() * 100.0, 1)
      << "%\n";
  out << "max lateness:     " << format_fixed(stats.max_lateness, 2) << " ("
      << graph.node(stats.argmax).name << ")\n";
  out << "mean lateness:    " << format_fixed(stats.mean_lateness, 2) << "\n";
  out << "missed windows:   " << stats.missed << " of " << stats.count << "\n";
  out << "e2e lateness:     " << format_fixed(end_to_end_lateness(graph, schedule), 2)
      << "\n";
  if (detailed_report) {
    out << "\n";
    print_distribution_report(out, analyze_distribution(graph, windows));
    out << "\n";
    print_schedule_report(out, analyze_schedule(graph, windows, schedule));
  }
  if (gantt) {
    out << "\n";
    write_gantt(out, graph, schedule);
  }
  return stats.feasible() ? kOk : kFailure;
}

// ----------------------------------------------------------------- simulate

int cmd_simulate(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  MetricOptions metric_options;
  RuntimeOptions runtime;
  int runs = 100;
  std::uint64_t sim_seed = 1;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (metric_options.consume(flag, args)) continue;
    if (flag == "--runs") {
      runs = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (runs < 1) throw UsageError("--runs must be positive");
    } else if (flag == "--overrun") {
      const std::string value = args.value_for(flag);
      const auto pieces = split(value, ':');
      if (pieces.size() != 2) throw UsageError("--overrun wants A:B");
      runtime.exec_scale_min = parse_double_arg(flag, pieces[0]);
      runtime.exec_scale_max = parse_double_arg(flag, pieces[1]);
      if (runtime.exec_scale_min <= 0.0 ||
          runtime.exec_scale_max < runtime.exec_scale_min) {
        throw UsageError("--overrun range is empty or non-positive");
      }
    } else if (flag == "--background") {
      runtime.background_utilization = parse_double_arg(flag, args.value_for(flag));
      if (runtime.background_utilization < 0.0 || runtime.background_utilization >= 1.0) {
        throw UsageError("--background must be in [0, 1)");
      }
    } else if (flag == "--bg-service") {
      runtime.background_service = parse_double_arg(flag, args.value_for(flag));
      if (runtime.background_service <= 0.0) {
        throw UsageError("--bg-service must be positive");
      }
    } else if (flag == "--preemptive") {
      runtime.preemptive = true;
    } else if (flag == "--sim-seed") {
      sim_seed = static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) {
      path = flag;
    } else {
      throw UsageError("simulate: unknown option '" + flag + "'");
    }
  }
  if (!path) throw UsageError("simulate: missing graph argument");

  const TaskGraph graph = load_graph(*path, in);
  Machine machine;
  machine.n_procs = metric_options.procs;
  const auto metric = metric_options.make_metric();
  const auto estimator = metric_options.make_estimator();
  const DeadlineAssignment windows = distribute_deadlines(graph, *metric, *estimator);
  const Schedule plan = list_schedule(graph, windows, machine);

  RunningStats max_lateness;
  RunningStats makespan;
  int missed_runs = 0;
  for (int run = 0; run < runs; ++run) {
    Pcg32 rng(seed_for(sim_seed, {static_cast<std::uint64_t>(run)}),
              static_cast<std::uint64_t>(run));
    const RuntimeResult result =
        simulate_runtime(graph, windows, plan, machine, runtime, rng);
    max_lateness.add(result.lateness.max_lateness);
    makespan.add(result.makespan);
    if (!result.lateness.feasible()) ++missed_runs;
  }

  out << "strategy:          " << metric->name() << "+" << estimator->name() << "\n";
  out << "machine:           " << machine.n_procs << " procs\n";
  out << "dispatcher:        " << (runtime.preemptive ? "preemptive" : "non-preemptive")
      << " EDF, "
      << (runtime.time_driven ? "time-driven releases" : "eager releases") << "\n";
  out << "disturbance:       exec x [" << format_compact(runtime.exec_scale_min, 3)
      << ", " << format_compact(runtime.exec_scale_max, 3) << "], background "
      << format_compact(runtime.background_utilization * 100.0, 1) << "% (jobs of "
      << format_compact(runtime.background_service, 3) << ")\n";
  out << "runs:              " << runs << "\n";
  const StatSummary lateness = max_lateness.summary();
  out << "max lateness:      mean " << format_fixed(lateness.mean, 2) << ", worst "
      << format_fixed(lateness.max, 2) << ", best " << format_fixed(lateness.min, 2)
      << "\n";
  out << "mean makespan:     " << format_fixed(makespan.mean(), 2) << "\n";
  out << "runs with misses:  " << missed_runs << " of " << runs << " ("
      << format_fixed(100.0 * missed_runs / runs, 1) << "%)\n";
  return missed_runs == 0 ? kOk : kFailure;
}

// ----------------------------------------------------------------- campaign

/// Worker verb of the supervised runner (spawned by the supervisor, not
/// documented in the usage text): executes exactly one cell and writes the
/// shard-result file the supervisor merges.
int cmd_campaign_exec_cell(Args& args) {
  std::optional<std::string> spec_path;
  std::optional<std::string> out_path;
  std::optional<std::size_t> cell;
  std::string cache_dir = ".feast-cache";
  std::string inject;
  std::string faults;
  bool no_cache = false;
  unsigned threads = 0;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--cell") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--cell must be non-negative");
      cell = static_cast<std::size_t>(n);
    } else if (flag == "--out") {
      out_path = args.value_for(flag);
    } else if (flag == "--cache-dir") {
      cache_dir = args.value_for(flag);
    } else if (flag == "--no-cache") {
      no_cache = true;
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--threads must be positive");
      threads = static_cast<unsigned>(n);
    } else if (flag == "--inject") {
      inject = args.value_for(flag);
    } else if (flag == "--faults") {
      faults = args.value_for(flag);
    } else if (!spec_path && (flag.empty() || flag[0] != '-')) {
      spec_path = flag;
    } else {
      throw UsageError("campaign exec-cell: unknown option '" + flag + "'");
    }
  }
  if (!spec_path) throw UsageError("campaign exec-cell: missing spec argument");
  if (!cell) throw UsageError("campaign exec-cell: missing --cell");
  if (!out_path) throw UsageError("campaign exec-cell: missing --out");

  if (threads > 0) set_parallelism(threads);
  const CampaignSpec spec = CampaignSpec::parse_file(*spec_path);
  return supervise::run_worker_cell(spec, *cell, *out_path,
                                    no_cache ? std::string() : cache_dir, inject,
                                    faults, std::cerr) == 0
             ? kOk
             : kFailure;
}

int cmd_campaign(Args& args, std::ostream& out) {
  if (args.done()) throw UsageError("campaign: expected run, resume or status");
  const std::string verb = args.pop();

  if (verb == "exec-cell") return cmd_campaign_exec_cell(args);
  if (verb == "status") {
    std::optional<std::string> manifest_path;
    bool json = false;
    while (!args.done()) {
      const std::string flag = args.pop();
      if (flag == "--json") json = true;
      else if (!manifest_path && (flag.empty() || flag[0] != '-')) manifest_path = flag;
      else throw UsageError("campaign status: unknown option '" + flag + "'");
    }
    if (!manifest_path) throw UsageError("campaign status: missing manifest argument");
    const Manifest manifest = read_manifest_file(*manifest_path);
    if (json) write_manifest_status_json(out, manifest);
    else print_manifest_status(out, manifest);
    return kOk;
  }
  if (verb != "run" && verb != "resume") {
    throw UsageError("campaign: unknown subcommand '" + verb + "'");
  }

  std::optional<std::string> spec_path;
  std::optional<std::string> manifest_path;
  std::optional<std::string> trace_path;
  std::string cache_dir = ".feast-cache";
  std::string fault_spec;
  bool no_cache = false;
  bool quiet = false;
  unsigned threads = 0;
  bool isolate = false;
  supervise::SupervisorOptions sup;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--manifest") {
      manifest_path = args.value_for(flag);
    } else if (flag == "--cache-dir") {
      cache_dir = args.value_for(flag);
    } else if (flag == "--no-cache") {
      no_cache = true;
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--threads must be non-negative");
      threads = static_cast<unsigned>(n);
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--trace-out") {
      trace_path = args.value_for(flag);
    } else if (flag == "--faults") {
      fault_spec = args.value_for(flag);
    } else if (flag == "--isolate" || flag.rfind("--isolate=", 0) == 0) {
      const std::string mode =
          flag == "--isolate" ? args.value_for(flag) : flag.substr(10);
      if (mode == "process") isolate = true;
      else if (mode == "none") isolate = false;
      else throw UsageError("--isolate wants process|none, got '" + mode + "'");
    } else if (flag == "--workers") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--workers must be positive");
      sup.workers = static_cast<int>(n);
    } else if (flag == "--cell-timeout") {
      sup.cell_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (sup.cell_timeout_s < 0.0) throw UsageError("--cell-timeout must be >= 0");
    } else if (flag == "--term-grace") {
      sup.term_grace_s = parse_double_arg(flag, args.value_for(flag));
      if (sup.term_grace_s < 0.0) throw UsageError("--term-grace must be >= 0");
    } else if (flag == "--drain-grace") {
      sup.drain_grace_s = parse_double_arg(flag, args.value_for(flag));
      if (sup.drain_grace_s < 0.0) throw UsageError("--drain-grace must be >= 0");
    } else if (flag == "--max-attempts") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--max-attempts must be positive");
      sup.max_attempts = static_cast<int>(n);
    } else if (flag == "--backoff-base") {
      sup.backoff.base_ms = parse_double_arg(flag, args.value_for(flag));
      if (sup.backoff.base_ms < 0.0) throw UsageError("--backoff-base must be >= 0");
    } else if (flag == "--backoff-cap") {
      sup.backoff.cap_ms = parse_double_arg(flag, args.value_for(flag));
      if (sup.backoff.cap_ms < 0.0) throw UsageError("--backoff-cap must be >= 0");
    } else if (flag == "--mem-limit") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--mem-limit must be non-negative");
      sup.memory_limit_mb = static_cast<std::uint64_t>(n);
    } else if (flag == "--work-dir") {
      sup.work_dir = args.value_for(flag);
    } else if (flag == "--keep-work") {
      sup.keep_work_dir = true;
    } else if (flag == "--inject") {
      try {
        sup.inject = supervise::parse_inject_spec(args.value_for(flag));
      } catch (const std::invalid_argument& e) {
        throw UsageError(std::string("--inject: ") + e.what());
      }
    } else if (flag == "--fault-cell") {
      // CELL:FAULT-SPEC — the first ':' splits the cell index from the
      // fault-plan spec (which itself contains colons).
      const std::string value = args.value_for(flag);
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos || colon == 0 || colon + 1 == value.size()) {
        throw UsageError("--fault-cell wants CELL:SPEC, got '" + value + "'");
      }
      const long long n = parse_int_arg(flag, value.substr(0, colon));
      if (n < 0) throw UsageError("--fault-cell index must be non-negative");
      sup.fault_cells[static_cast<std::size_t>(n)] = value.substr(colon + 1);
    } else if (!spec_path && (flag.empty() || flag[0] != '-')) {
      spec_path = flag;
    } else {
      throw UsageError("campaign " + verb + ": unknown option '" + flag + "'");
    }
  }
  if (!spec_path) throw UsageError("campaign " + verb + ": missing spec argument");

  CampaignSpec spec = CampaignSpec::parse_file(*spec_path);
  std::optional<check::FaultPlan> faults;
  if (!fault_spec.empty()) {
    try {
      faults.emplace(fault_spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(std::string("--faults: ") + e.what());
    }
    spec.context.faults = &*faults;
  }
  CampaignOptions options;
  options.manifest_path = manifest_path.value_or(spec.name + ".manifest.json");
  options.resume = verb == "resume";
  options.threads = threads;
  std::unique_ptr<ResultCache> cache;
  if (!no_cache) {
    cache = std::make_unique<ResultCache>(cache_dir);
    options.cache = cache.get();
  }
  if (!quiet) options.progress = &out;

  if (isolate) {
    sup.spec_path = *spec_path;
    sup.cache_dir = cache_dir;
    sup.no_cache = no_cache;
    if (threads > 0) sup.worker_threads = threads;
  }

  obs::Sink sink(/*capture_events=*/trace_path.has_value());
  const CampaignResult result = [&] {
    obs::ScopedSink scoped(sink);
    return isolate ? supervise::run_supervised_campaign(spec, options, sup)
                   : run_campaign(spec, options);
  }();
  if (trace_path) {
    // Every cell has been harvested, so the sink is quiescent.
    std::ofstream trace(*trace_path);
    if (!trace) throw std::runtime_error("cannot open '" + *trace_path + "'");
    sink.write_chrome_trace(trace);
  }

  out << "\ncampaign:   " << result.name << " (spec " << result.spec_hash_hex << ")\n";
  out << "cells:      " << result.cells.size() << " — " << result.computed
      << " computed, " << result.cached << " cached, " << result.failed
      << " failed, " << result.quarantined << " quarantined\n";
  out << "wall:       " << format_compact(result.wall_ms, 1) << " ms ("
      << format_compact(result.cells_per_sec, 2) << " cells/s, "
      << format_compact(result.runs_per_sec, 2) << " computed runs/s)\n";
  if (cache) {
    out << "cache:      " << cache->hits() << " hits, " << cache->misses()
        << " misses, " << cache->stores() << " stores (" << cache_dir << ")\n";
  }
  out << "manifest:   " << options.manifest_path << "\n";
  if (result.interrupted) {
    out << "interrupted: drained on signal; resume with `feastc campaign "
           "resume`\n";
    return kInterrupted;
  }
  if (result.degraded()) {
    out << "DEGRADED:   " << result.quarantined
        << " poison cell(s) quarantined; see `feastc campaign status` and "
           "docs/ROBUSTNESS.md\n";
    return kDegraded;
  }
  return result.ok() ? kOk : kFailure;
}

// -------------------------------------------------------------------- exact

/// `exact solve <graph>`: one instance, heuristic vs the branch-and-bound
/// oracle (docs/EXACT.md).  Exits non-zero when the oracle beats the
/// certified `optimal <= heuristic` tolerance — the CLI face of the
/// property-harness invariant.
int cmd_exact_solve(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  MetricOptions metric_options;
  Machine machine;
  SchedulerOptions sched_options;
  std::uint64_t budget = 0;
  double time_budget = 0.0;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (metric_options.consume(flag, args)) continue;
    if (flag == "--contention") {
      const std::string name = args.value_for(flag);
      if (name == "free") machine.contention = CommContention::ContentionFree;
      else if (name == "bus") machine.contention = CommContention::SharedBus;
      else if (name == "links") machine.contention = CommContention::PointToPointLinks;
      else throw UsageError("unknown contention model '" + name + "'");
    } else if (flag == "--release") {
      const std::string name = args.value_for(flag);
      if (name == "time-driven") sched_options.release_policy = ReleasePolicy::TimeDriven;
      else if (name == "eager") sched_options.release_policy = ReleasePolicy::Eager;
      else throw UsageError("unknown release policy '" + name + "'");
    } else if (flag == "--budget") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--budget must be non-negative");
      budget = static_cast<std::uint64_t>(n);
    } else if (flag == "--time-budget") {
      time_budget = parse_double_arg(flag, args.value_for(flag));
      if (time_budget < 0.0) throw UsageError("--time-budget must be >= 0");
    } else if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) {
      path = flag;
    } else {
      throw UsageError("exact solve: unknown option '" + flag + "'");
    }
  }
  if (!path) throw UsageError("exact solve: missing graph argument");

  const TaskGraph graph = load_graph(*path, in);
  machine.n_procs = metric_options.procs;
  const auto metric = metric_options.make_metric();
  const auto estimator = metric_options.make_estimator();
  const DeadlineAssignment windows = distribute_deadlines(graph, *metric, *estimator);
  const Schedule schedule = list_schedule(graph, windows, machine, sched_options);
  const LatenessStats stats = computation_lateness(graph, windows, schedule);

  exact::ExactOptions options;
  options.node_budget = budget;
  options.time_budget_s = time_budget;
  options.seeds.push_back(exact::seed_from_schedule(graph, schedule));
  const exact::ExactResult result = exact::solve_exact(graph, machine, options);

  // Same certified tolerance as the gap cells: assigned-vs-effective
  // deadline slack plus the fixed epsilon (exact/gap.hpp).
  const std::vector<Time> eds = exact::effective_deadlines(graph);
  Time slack = 0.0;
  for (NodeId id : graph.computation_nodes()) {
    if (!windows.window(id).assigned()) continue;
    const Time s = windows.abs_deadline(id) - eds[id.index()];
    if (s > slack) slack = s;
  }
  const Time tolerance = slack + exact::kGapCheckEps;

  out << "strategy:         " << metric->name() << "+" << estimator->name() << "\n";
  out << "machine:          " << machine.n_procs << " procs, "
      << to_string(machine.contention) << "\n";
  out << "subtasks:         " << graph.subtask_count() << "\n";
  out << "heuristic:        " << format_fixed(stats.max_lateness, 4) << " max lateness\n";
  out << "optimal:          " << format_fixed(result.optimal, 4)
      << (result.proven ? " (proven)" : " (incumbent)") << "\n";
  out << "bound:            " << format_fixed(result.bound, 4) << "\n";
  out << "gap:              " << format_fixed(stats.max_lateness - result.optimal, 4)
      << "\n";
  out << "nodes:            " << result.nodes << " (pruned " << result.pruned_bound
      << " bound, " << result.pruned_dominated << " dominated)\n";
  out << "wall:             " << format_compact(result.wall_ms, 2) << " ms\n";
  if (result.contention_relaxed) {
    out << "note:             contention-free relaxation — optimal is a lower bound "
           "on the contended optimum\n";
  }
  if (result.optimal > stats.max_lateness + tolerance) {
    out << "VIOLATION:        optimal exceeds heuristic beyond the certified "
           "tolerance " << format_compact(tolerance, 6) << "\n";
    return kFailure;
  }
  return kOk;
}

/// `exact gap <spec>`: campaign-driven optimality-gap sweep.  Forces the
/// spec into Gap mode, rides the ordinary cache/manifest machinery, writes
/// the gap table (write_gap_csv) and an optional benchmark JSON with the
/// aggregate nodes/sec and proven-optimal rate.
int cmd_exact_gap(Args& args, std::ostream& out) {
  std::optional<std::string> spec_path;
  std::optional<std::string> manifest_path;
  std::optional<std::string> csv_path;
  std::optional<std::string> bench_path;
  std::optional<std::uint64_t> budget;
  std::string cache_dir = ".feast-cache";
  bool no_cache = false;
  bool quiet = false;
  bool resume = false;
  unsigned threads = 0;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--manifest") {
      manifest_path = args.value_for(flag);
    } else if (flag == "--out") {
      csv_path = args.value_for(flag);
    } else if (flag == "--bench-out") {
      bench_path = args.value_for(flag);
    } else if (flag == "--budget") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--budget must be non-negative");
      budget = static_cast<std::uint64_t>(n);
    } else if (flag == "--cache-dir") {
      cache_dir = args.value_for(flag);
    } else if (flag == "--no-cache") {
      no_cache = true;
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--threads must be non-negative");
      threads = static_cast<unsigned>(n);
    } else if (flag == "--quiet") {
      quiet = true;
    } else if (flag == "--resume") {
      resume = true;
    } else if (!spec_path && (flag.empty() || flag[0] != '-')) {
      spec_path = flag;
    } else {
      throw UsageError("exact gap: unknown option '" + flag + "'");
    }
  }
  if (!spec_path) throw UsageError("exact gap: missing spec argument");

  CampaignSpec spec = CampaignSpec::parse_file(*spec_path);
  spec.mode = CampaignMode::Gap;
  if (budget) spec.exact_nodes = *budget;

  CampaignOptions options;
  options.manifest_path = manifest_path.value_or(spec.name + ".gap.manifest.json");
  options.resume = resume;
  options.threads = threads;
  std::unique_ptr<ResultCache> cache;
  if (!no_cache) {
    cache = std::make_unique<ResultCache>(cache_dir);
    options.cache = cache.get();
  }
  if (!quiet) options.progress = &out;

  const CampaignResult result = run_campaign(spec, options);

  out << "\ngap sweep:  " << result.name << " (spec " << result.spec_hash_hex
      << ", budget " << spec.exact_nodes << " nodes)\n";
  out << "cells:      " << result.cells.size() << " — " << result.computed
      << " computed, " << result.cached << " cached, " << result.failed
      << " failed\n";
  out << "wall:       " << format_compact(result.wall_ms, 1) << " ms\n";

  // Aggregate oracle statistics over the finished cells (CellStats field
  // mapping in exact/gap.hpp: min_laxity <- nodes, infeasible <- unproven).
  double total_nodes = 0.0;
  double computed_nodes = 0.0;
  std::size_t total_samples = 0;
  std::size_t unproven = 0;
  double mean_gap = 0.0;
  double max_gap = 0.0;
  std::size_t finished = 0;
  for (const CellOutcome& cell : result.cells) {
    if (cell.state != CellState::Computed && cell.state != CellState::Cached) continue;
    ++finished;
    const double cell_nodes =
        cell.stats.min_laxity.mean * static_cast<double>(cell.stats.min_laxity.count);
    total_nodes += cell_nodes;
    if (cell.state == CellState::Computed) computed_nodes += cell_nodes;
    total_samples += cell.stats.min_laxity.count;
    unproven += cell.stats.infeasible_runs;
    mean_gap += cell.stats.makespan.mean;
    if (cell.stats.makespan.max > max_gap) max_gap = cell.stats.makespan.max;
  }
  if (finished > 0) mean_gap /= static_cast<double>(finished);
  const double proven_rate =
      total_samples > 0
          ? 1.0 - static_cast<double>(unproven) / static_cast<double>(total_samples)
          : 0.0;
  const double nodes_per_sec =
      result.wall_ms > 0.0 ? computed_nodes / (result.wall_ms / 1000.0) : 0.0;

  out << "samples:    " << total_samples << " (" << unproven << " unproven, proven rate "
      << format_fixed(proven_rate * 100.0, 1) << "%)\n";
  out << "gap:        mean " << format_compact(mean_gap, 4) << ", worst "
      << format_compact(max_gap, 4) << "\n";
  out << "search:     " << format_compact(total_nodes, 0) << " nodes ("
      << format_compact(nodes_per_sec, 0) << " nodes/s computed)\n";

  if (csv_path) {
    std::ofstream csv(*csv_path);
    if (!csv) throw std::runtime_error("cannot open '" + *csv_path + "'");
    write_gap_csv(csv, spec, result);
    out << "table:      " << *csv_path << "\n";
  } else {
    out << "\n";
    write_gap_csv(out, spec, result);
  }

  if (bench_path) {
    std::ofstream bench(*bench_path);
    if (!bench) throw std::runtime_error("cannot open '" + *bench_path + "'");
    bench << "{\n"
          << "  \"bench\": \"exact\",\n"
          << "  \"spec\": \"" << result.spec_hash_hex << "\",\n"
          << "  \"node_budget\": " << spec.exact_nodes << ",\n"
          << "  \"cells\": " << finished << ",\n"
          << "  \"samples\": " << total_samples << ",\n"
          << "  \"unproven\": " << unproven << ",\n"
          << "  \"proven_rate\": " << format_compact(proven_rate, 6) << ",\n"
          << "  \"total_nodes\": " << format_compact(total_nodes, 1) << ",\n"
          << "  \"nodes_per_sec\": " << format_compact(nodes_per_sec, 1) << ",\n"
          << "  \"mean_gap\": " << format_compact(mean_gap, 6) << ",\n"
          << "  \"max_gap\": " << format_compact(max_gap, 6) << ",\n"
          << "  \"wall_ms\": " << format_compact(result.wall_ms, 1) << "\n"
          << "}\n";
    out << "bench:      " << *bench_path << "\n";
  }

  return result.ok() ? kOk : kFailure;
}

int cmd_exact(Args& args, std::istream& in, std::ostream& out) {
  if (args.done()) throw UsageError("exact: expected solve or gap");
  const std::string verb = args.pop();
  if (verb == "solve") return cmd_exact_solve(args, in, out);
  if (verb == "gap") return cmd_exact_gap(args, out);
  throw UsageError("exact: unknown subcommand '" + verb + "'");
}

// -------------------------------------------------------------------- serve

int cmd_serve(Args& args, std::ostream& out) {
  serve::ServeOptions options;
  options.work_dir = ".feast-serve";
  bool quiet = false;
  std::string fault_spec;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--host") {
      options.host = args.value_for(flag);
    } else if (flag == "--port") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0 || n > 65535) throw UsageError("--port wants 0..65535");
      options.port = static_cast<std::uint16_t>(n);
    } else if (flag == "--workers") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--workers must be >= 0 (0 = remote-only)");
      options.workers = static_cast<int>(n);
    } else if (flag == "--max-queue") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--max-queue must be positive");
      options.max_queue = static_cast<int>(n);
    } else if (flag == "--max-connections") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--max-connections must be positive");
      options.max_connections = static_cast<int>(n);
    } else if (flag == "--max-attempts") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--max-attempts must be positive");
      options.max_attempts = static_cast<int>(n);
    } else if (flag == "--cell-timeout") {
      options.cell_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.cell_timeout_s < 0.0) throw UsageError("--cell-timeout must be >= 0");
    } else if (flag == "--term-grace") {
      options.term_grace_s = parse_double_arg(flag, args.value_for(flag));
      if (options.term_grace_s < 0.0) throw UsageError("--term-grace must be >= 0");
    } else if (flag == "--drain-grace") {
      options.drain_grace_s = parse_double_arg(flag, args.value_for(flag));
      if (options.drain_grace_s < 0.0) throw UsageError("--drain-grace must be >= 0");
    } else if (flag == "--header-timeout") {
      options.header_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.header_timeout_s <= 0.0) throw UsageError("--header-timeout must be > 0");
    } else if (flag == "--idle-timeout") {
      options.idle_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.idle_timeout_s <= 0.0) throw UsageError("--idle-timeout must be > 0");
    } else if (flag == "--mem-limit") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--mem-limit must be non-negative");
      options.memory_limit_mb = static_cast<std::uint64_t>(n);
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--threads must be positive");
      options.worker_threads = static_cast<unsigned>(n);
    } else if (flag == "--work-dir") {
      options.work_dir = args.value_for(flag);
    } else if (flag == "--cache-dir") {
      options.cache_dir = args.value_for(flag);
    } else if (flag == "--no-cache") {
      options.no_cache = true;
    } else if (flag == "--max-body") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--max-body must be positive");
      options.http.max_body_bytes = static_cast<std::size_t>(n);
    } else if (flag == "--heartbeat-timeout") {
      options.heartbeat_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.heartbeat_timeout_s <= 0.0) {
        throw UsageError("--heartbeat-timeout must be > 0");
      }
    } else if (flag == "--lease-timeout") {
      options.lease_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.lease_timeout_s < 0.0) {
        throw UsageError("--lease-timeout must be >= 0");
      }
    } else if (flag == "--poison-deaths") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--poison-deaths must be positive");
      options.poison_worker_deaths = static_cast<int>(n);
    } else if (flag == "--retry-after") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--retry-after must be non-negative");
      options.retry_after_s = static_cast<int>(n);
    } else if (flag == "--faults") {
      fault_spec = args.value_for(flag);
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      throw UsageError("serve: unknown option '" + flag + "'");
    }
  }
  if (!quiet) options.log = &out;

  std::optional<check::FaultPlan> faults;
  std::optional<check::ScopedFaultPlan> scoped_faults;
  if (!fault_spec.empty()) {
    try {
      faults.emplace(fault_spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(std::string("--faults: ") + e.what());
    }
    scoped_faults.emplace(&*faults);
  }

  serve::Server server(std::move(options));
  server.start();
  // Scripts scrape this line to discover an ephemeral (--port 0) port, so it
  // is printed unconditionally and flushed before the reactor starts.
  out << "feastc serve: listening on " << server.port() << std::endl;
  return server.run();
}

// ------------------------------------------------------------------- submit

/// Pulls `"quarantined": N` out of a campaign manifest reply.  Returns 0
/// when the field is absent (cell replies, status bodies).
long long parse_quarantined_count(const std::string& body) {
  const std::string needle = "\"quarantined\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoll(body.c_str() + at + needle.size(), nullptr, 10);
}

int cmd_submit(Args& args, std::istream& in, std::ostream& out) {
  std::string server_addr = "127.0.0.1:7433";
  std::string client;
  std::optional<std::string> spec_path;
  std::optional<long long> cell;
  bool status_only = false;
  double timeout_s = 600.0;
  int retries = 0;
  supervise::BackoffPolicy retry_backoff;
  std::string inject;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--server") {
      server_addr = args.value_for(flag);
    } else if (flag == "--client") {
      client = args.value_for(flag);
    } else if (flag == "--cell") {
      cell = parse_int_arg(flag, args.value_for(flag));
      if (*cell < 0) throw UsageError("--cell must be non-negative");
    } else if (flag == "--status") {
      status_only = true;
    } else if (flag == "--timeout") {
      timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (timeout_s <= 0.0) throw UsageError("--timeout must be > 0");
    } else if (flag == "--retries") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--retries must be non-negative");
      retries = static_cast<int>(n);
    } else if (flag == "--retry-base") {
      retry_backoff.base_ms = parse_double_arg(flag, args.value_for(flag));
      if (retry_backoff.base_ms <= 0.0) throw UsageError("--retry-base must be > 0");
    } else if (flag == "--retry-cap") {
      retry_backoff.cap_ms = parse_double_arg(flag, args.value_for(flag));
      if (retry_backoff.cap_ms <= 0.0) throw UsageError("--retry-cap must be > 0");
    } else if (flag == "--retry-seed") {
      retry_backoff.seed =
          static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--inject") {
      inject = args.value_for(flag);
    } else if (!spec_path && (flag.empty() || flag[0] != '-')) {
      spec_path = flag;
    } else if (flag == "-" && !spec_path) {
      spec_path = flag;
    } else {
      throw UsageError("submit: unknown option '" + flag + "'");
    }
  }
  std::string host;
  std::uint16_t port = 0;
  if (!serve::parse_host_port(server_addr, host, port)) {
    throw UsageError("--server wants HOST:PORT, got '" + server_addr + "'");
  }
  if (client.empty()) {
    const char* user = std::getenv("USER");
    client = (user != nullptr && *user != '\0') ? user : "anon";
  }

  std::string method = "GET";
  std::string target = "/v1/status";
  std::string body;
  if (!status_only) {
    if (!spec_path) throw UsageError("submit: missing spec argument");
    std::string spec_text;
    if (*spec_path == "-") {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      spec_text = buffer.str();
    } else {
      std::ifstream file(*spec_path);
      if (!file) throw std::runtime_error("cannot open '" + *spec_path + "'");
      std::ostringstream buffer;
      buffer << file.rdbuf();
      spec_text = buffer.str();
    }
    method = "POST";
    target = cell ? "/v1/cell" : "/v1/campaign";
    body = "{\"spec\": \"" + json_escape(spec_text) + "\"";
    if (cell) body += ", \"cell\": " + std::to_string(*cell);
    if (!inject.empty()) body += ", \"inject\": \"" + json_escape(inject) + "\"";
    body += "}";
  }

  serve::HttpReply reply;
  for (int attempt = 1;; ++attempt) {
    reply = serve::http_request(host, port, method, target, body, client,
                                timeout_s);
    const bool busy =
        reply.ok() && (reply.status == 429 || reply.status == 503);
    if (!busy || attempt > retries) break;
    // Deterministic exponential backoff with seeded jitter, floored by the
    // daemon's own Retry-After hint when it sent one.
    double delay_ms = supervise::backoff_delay_ms(retry_backoff, 0, attempt);
    if (reply.retry_after_s >= 0) {
      delay_ms = std::max(delay_ms, reply.retry_after_s * 1000.0);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long long>(delay_ms)));
  }
  if (!reply.ok()) {
    throw std::runtime_error("submit: " + server_addr + ": " + reply.error);
  }
  out << reply.body;
  if (!reply.body.empty() && reply.body.back() != '\n') out << "\n";
  if (reply.status != 200) return kFailure;
  // A campaign that settled with quarantined cells completed, but degraded:
  // exit 3 so scripts (and the chaos driver) can tell poison from success.
  if (!status_only && !cell && parse_quarantined_count(reply.body) > 0) {
    return kDegraded;
  }
  return kOk;
}

// ------------------------------------------------------------------- worker

int cmd_worker(Args& args, std::ostream& out) {
  serve::RemoteWorkerOptions options;
  options.work_dir = ".feast-worker";
  options.allow_process_exit = true;
  std::string connect;
  std::string fault_spec;
  bool quiet = false;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--connect") {
      connect = args.value_for(flag);
    } else if (flag == "--name") {
      options.name = args.value_for(flag);
    } else if (flag == "--slots") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1 || n > 64) throw UsageError("--slots wants 1..64");
      options.slots = static_cast<int>(n);
    } else if (flag == "--work-dir") {
      options.work_dir = args.value_for(flag);
    } else if (flag == "--cache-dir") {
      options.cache_dir = args.value_for(flag);
    } else if (flag == "--no-cache") {
      options.no_cache = true;
    } else if (flag == "--feastc") {
      options.feastc_path = args.value_for(flag);
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--threads must be positive");
      options.threads = static_cast<unsigned>(n);
    } else if (flag == "--poll-ms") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--poll-ms must be positive");
      options.poll_ms = static_cast<int>(n);
    } else if (flag == "--backoff-base") {
      options.backoff.base_ms = parse_double_arg(flag, args.value_for(flag));
      if (options.backoff.base_ms <= 0.0) throw UsageError("--backoff-base must be > 0");
    } else if (flag == "--backoff-cap") {
      options.backoff.cap_ms = parse_double_arg(flag, args.value_for(flag));
      if (options.backoff.cap_ms <= 0.0) throw UsageError("--backoff-cap must be > 0");
    } else if (flag == "--max-reconnects") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--max-reconnects must be non-negative");
      options.max_reconnects = static_cast<int>(n);
    } else if (flag == "--max-cells") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 0) throw UsageError("--max-cells must be non-negative");
      options.max_cells = static_cast<std::uint64_t>(n);
    } else if (flag == "--request-timeout") {
      options.request_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.request_timeout_s <= 0.0) {
        throw UsageError("--request-timeout must be > 0");
      }
    } else if (flag == "--faults") {
      fault_spec = args.value_for(flag);
    } else if (flag == "--quiet") {
      quiet = true;
    } else {
      throw UsageError("worker: unknown option '" + flag + "'");
    }
  }
  if (connect.empty()) throw UsageError("worker: --connect HOST:PORT is required");
  if (!serve::parse_host_port(connect, options.host, options.port)) {
    throw UsageError("--connect wants HOST:PORT, got '" + connect + "'");
  }
  if (!quiet) options.log = &out;

  std::optional<check::FaultPlan> faults;
  std::optional<check::ScopedFaultPlan> scoped_faults;
  if (!fault_spec.empty()) {
    try {
      faults.emplace(fault_spec);
    } catch (const std::invalid_argument& e) {
      throw UsageError(std::string("--faults: ") + e.what());
    }
    scoped_faults.emplace(&*faults);
  }

  return serve::run_remote_worker(options);
}

// ------------------------------------------------------------------ profile

int cmd_profile(Args& args, std::ostream& out) {
  BatchConfig batch;
  batch.samples = 32;
  RunContext context;
  ExecSpreadScenario scenario = ExecSpreadScenario::MDET;
  std::vector<int> sizes = paper_sizes();
  std::optional<std::string> trace_path;
  unsigned threads = 0;

  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--samples") {
      batch.samples = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (batch.samples < 1) throw UsageError("--samples must be positive");
    } else if (flag == "--seed") {
      batch.seed = static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--sizes") {
      sizes.clear();
      for (const std::string& piece : split(args.value_for(flag), ',')) {
        const long long n = parse_int_arg(flag, trim(piece));
        if (n < 1) throw UsageError("--sizes must be positive");
        sizes.push_back(static_cast<int>(n));
      }
      if (sizes.empty()) throw UsageError("--sizes is empty");
    } else if (flag == "--scenario") {
      const std::string name = args.value_for(flag);
      if (name == "LDET") scenario = ExecSpreadScenario::LDET;
      else if (name == "MDET") scenario = ExecSpreadScenario::MDET;
      else if (name == "HDET") scenario = ExecSpreadScenario::HDET;
      else throw UsageError("unknown scenario '" + name + "'");
    } else if (flag == "--contention") {
      const std::string name = args.value_for(flag);
      if (name == "free") batch.contention = CommContention::ContentionFree;
      else if (name == "bus") batch.contention = CommContention::SharedBus;
      else if (name == "links") batch.contention = CommContention::PointToPointLinks;
      else throw UsageError("unknown contention model '" + name + "'");
    } else if (flag == "--core") {
      const std::string name = args.value_for(flag);
      if (name == "fast") context.core = SchedulerCore::Fast;
      else if (name == "reference") context.core = SchedulerCore::Reference;
      else throw UsageError("unknown core '" + name + "'");
    } else if (flag == "--threads") {
      const long long n = parse_int_arg(flag, args.value_for(flag));
      if (n < 1) throw UsageError("--threads must be positive");
      threads = static_cast<unsigned>(n);
    } else if (flag == "--trace-out") {
      trace_path = args.value_for(flag);
    } else {
      throw UsageError("profile: unknown option '" + flag + "'");
    }
  }

  if (threads > 0) set_parallelism(threads);

  const std::vector<Strategy> strategies{
      strategy_pure(EstimatorKind::CCNE),
      strategy_adapt(1.25),
  };

  obs::Sink sink(/*capture_events=*/trace_path.has_value());
  const auto start = std::chrono::steady_clock::now();
  const SweepResult sweep = [&] {
    obs::ScopedSink scoped(sink);
    return sweep_strategies(std::string("profile — ") + to_string(scenario) +
                                " scenario, " + to_string(batch.contention),
                            paper_workload(scenario), strategies, sizes, batch,
                            context);
  }();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  sweep.print(out);
  out << "\n";
  const obs::Report report = sink.report();
  report.print(out);

  // The top-level pipeline phases partition a run; on a single-threaded
  // sweep their sum accounts for nearly all of the wall time (the gap is
  // per-sample glue: RNG seeding, strategy construction, aggregation).
  const double phase_ms =
      report.total_ms({obs::Span::Generate, obs::Span::Distribute,
                       obs::Span::Validate, obs::Span::Schedule, obs::Span::Stats});
  out << "\nwall:             " << format_compact(wall_ms, 1) << " ms\n";
  out << "phase total:      " << format_compact(phase_ms, 1) << " ms ("
      << format_fixed(wall_ms > 0.0 ? 100.0 * phase_ms / wall_ms : 0.0, 1)
      << "% of wall)\n";

  if (trace_path) {
    std::ofstream trace(*trace_path);
    if (!trace) throw std::runtime_error("cannot open '" + *trace_path + "'");
    sink.write_chrome_trace(trace);
    out << "trace:            " << *trace_path
        << " (chrome://tracing or ui.perfetto.dev)\n";
  }
  return kOk;
}

// ---------------------------------------------------------------------- dot

int cmd_dot(Args& args, std::istream& in, std::ostream& out) {
  std::optional<std::string> path;
  while (!args.done()) {
    const std::string flag = args.pop();
    if (!path && (flag == "-" || flag.empty() || flag[0] != '-')) path = flag;
    else throw UsageError("dot: unknown option '" + flag + "'");
  }
  if (!path) throw UsageError("dot: missing graph argument");
  write_dot(out, load_graph(*path, in));
  return kOk;
}

// ---------------------------------------------------------------- diffsched

int cmd_diffsched(Args& args, std::ostream& out) {
  DiffSchedConfig config;
  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--trials") {
      config.trials = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (config.trials < 1) throw UsageError("--trials must be positive");
    } else if (flag == "--seed") {
      config.seed =
          static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--quick") {
      config.quick = true;
    } else {
      throw UsageError("diffsched: unknown option '" + flag + "'");
    }
  }
  const DiffSchedResult result = run_diffsched(config, &out);
  return result.ok() ? kOk : kFailure;
}

// ------------------------------------------------------------------ torture

int cmd_torture(Args& args, std::ostream& out) {
  check::TortureOptions options;
  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--trials") {
      options.trials = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (options.trials < 1) throw UsageError("--trials must be positive");
    } else if (flag == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--work-dir") {
      options.work_dir = args.value_for(flag);
    } else if (flag == "--feastc") {
      options.feastc_path = args.value_for(flag);
    } else if (flag == "--keep") {
      options.keep_work_dir = true;
    } else {
      throw UsageError("torture: unknown option '" + flag + "'");
    }
  }

  options.log = &out;
  const check::TortureResult result = check::run_torture(options);
  out << "torture: " << (result.trials.size() - result.failures()) << "/"
      << result.trials.size() << " trials survived kill + resume\n";
  return result.ok() ? kOk : kFailure;
}

// -------------------------------------------------------------------- chaos

int cmd_chaos(Args& args, std::ostream& out) {
  check::ChaosOptions options;
  while (!args.done()) {
    const std::string flag = args.pop();
    if (flag == "--trials") {
      options.trials = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (options.trials < 1) throw UsageError("--trials must be positive");
    } else if (flag == "--seed") {
      options.seed =
          static_cast<std::uint64_t>(parse_int_arg(flag, args.value_for(flag)));
    } else if (flag == "--workers") {
      options.workers = static_cast<int>(parse_int_arg(flag, args.value_for(flag)));
      if (options.workers < 1) throw UsageError("--workers must be positive");
    } else if (flag == "--work-dir") {
      options.work_dir = args.value_for(flag);
    } else if (flag == "--feastc") {
      options.feastc_path = args.value_for(flag);
    } else if (flag == "--timeout") {
      options.subprocess_timeout_s = parse_double_arg(flag, args.value_for(flag));
      if (options.subprocess_timeout_s <= 0.0) {
        throw UsageError("--timeout must be > 0");
      }
    } else if (flag == "--keep") {
      options.keep_work_dir = true;
    } else {
      throw UsageError("chaos: unknown option '" + flag + "'");
    }
  }

  options.log = &out;
  const check::ChaosResult result = check::run_chaos(options);
  out << "chaos: " << (result.trials.size() - result.failures()) << "/"
      << result.trials.size()
      << " trials matched the in-process baseline under network faults\n";
  return result.ok() ? kOk : kFailure;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
            std::ostream& err) {
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h" || args[0] == "help") {
      out << kUsageText;
      return args.empty() ? kUsage : kOk;
    }
    const std::string command = args[0];
    for (const std::string& arg : args) {
      if (arg == "--help" || arg == "-h") {
        out << kUsageText;
        return kOk;
      }
    }
    Args rest(std::vector<std::string>(args.begin() + 1, args.end()));

    if (command == "generate") return cmd_generate(rest, out);
    if (command == "info") return cmd_info(rest, in, out);
    if (command == "distribute") return cmd_distribute(rest, in, out);
    if (command == "schedule") return cmd_schedule(rest, in, out);
    if (command == "simulate") return cmd_simulate(rest, in, out);
    if (command == "campaign") return cmd_campaign(rest, out);
    if (command == "exact") return cmd_exact(rest, in, out);
    if (command == "profile") return cmd_profile(rest, out);
    if (command == "diffsched") return cmd_diffsched(rest, out);
    if (command == "torture") return cmd_torture(rest, out);
    if (command == "chaos") return cmd_chaos(rest, out);
    if (command == "serve") return cmd_serve(rest, out);
    if (command == "submit") return cmd_submit(rest, in, out);
    if (command == "worker") return cmd_worker(rest, out);
    if (command == "dot") return cmd_dot(rest, in, out);
    throw UsageError("unknown command '" + command + "'");
  } catch (const UsageError& e) {
    err << "feastc: " << e.what() << "\n";
    err << "run 'feastc --help' for usage\n";
    return kUsage;
  } catch (const std::exception& e) {
    err << "feastc: " << e.what() << "\n";
    return kFailure;
  }
}

}  // namespace feast
