/// \file cli_app.hpp
/// \brief The `feastc` command-line tool, as a testable library.
///
/// Subcommands:
///   generate    emit a task graph (random §5.2 workload or a structured
///               family) in the text format
///   info        statistics and validation of a graph file
///   distribute  assign execution windows with a chosen metric/estimator
///   schedule    distribute + schedule + lateness report (+ Gantt)
///   dot         Graphviz export
///
/// All commands read a graph from a file argument or "-" (stdin) and write
/// to stdout, so they compose:
///
///   feastc generate --seed 7 | feastc schedule - --metric adapt --procs 4
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace feast {

/// Runs the tool.  \p args are the command-line arguments *without* the
/// program name.  Output goes to \p out, diagnostics to \p err, and graph
/// input from "-" is read from \p in.  Returns the process exit code
/// (0 success, 2 usage error, 1 runtime failure).
int run_cli(const std::vector<std::string>& args, std::istream& in, std::ostream& out,
            std::ostream& err);

}  // namespace feast
