/// \file obs.hpp
/// \brief Low-overhead observability: scoped spans, named counters, and
///        two exporters (aggregate tables, Chrome trace_event JSON).
///
/// Everything funnels through one process-wide `Sink*` held in an atomic:
/// when no sink is installed, a SpanScope or count() is a single relaxed
/// atomic load and a branch — tens of ns at worst, no allocation, no
/// clock read — so instrumentation can stay compiled into hot paths
/// permanently (CI gates the disabled overhead; see bench/perf_obs.cpp).
/// When a sink is installed, every thread records into its own
/// ThreadBuffer (registered with the sink on first use, cached in TLS),
/// so recording never takes a lock after the first event per thread.
///
/// Aggregation is merge-at-export: Sink::report() and
/// write_chrome_trace() walk all thread buffers under the sink's mutex,
/// and every individual record takes its buffer's own (uncontended in
/// steady state) mutex — so a straggler thread closing its last span
/// while the driver exports serializes instead of racing; anything it
/// records after the snapshot is simply not included.  Drivers should
/// still join their parallel work first so the export is complete.
///
/// Span taxonomy and counter catalogue: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace feast::obs {

/// The fixed span taxonomy.  Spans nest (Schedule contains SchedPrepare
/// and SchedPlace; CellRun contains everything per-sample), so totals of
/// nested spans are included in their parents'.
enum class Span : std::uint8_t {
  Generate,     ///< Random-graph generation (one sample).
  Distribute,   ///< Deadline distribution (one run).
  Validate,     ///< Assignment + schedule validation (one run).
  Schedule,     ///< List scheduling, whole run (either core).
  SchedPrepare, ///< Fast core: arena bind, CSR hoist, priority sort.
  SchedPlace,   ///< Fast core: the placement loop.
  Stats,        ///< Lateness/measure extraction (one run).
  CellRun,      ///< One experiment cell (a full batch of samples).
  CacheLookup,  ///< Cell-cache consult.
  CacheStore,   ///< Cell-cache store.
  PoolTask,     ///< One work-stealing-pool task execution.
  SuperviseAttempt,  ///< One worker-subprocess attempt (spawn → harvest).
  ServeRequest,      ///< Serve: one HTTP request, accept-parse → reply.
  ServeDispatch,     ///< Serve: one cell job, enqueue → terminal state.
  ExactSolve,        ///< One exact branch-and-bound solve (src/exact).
  SchedBatch,        ///< One BatchScheduler::run over a graph batch.
  ServeLease,        ///< Serve: one remote-worker lease, grant → settle.
};
inline constexpr std::size_t kSpanCount = 17;

/// Named event counters for decisions that have no duration.
enum class Counter : std::uint8_t {
  CacheHit,     ///< Cell served from the result cache.
  CacheMiss,    ///< Cell cache consulted without a usable record.
  CacheStore,   ///< Cell result written to the cache.
  CacheCorrupt, ///< Cell-cache record failed parse/checksum (read as miss).
  ReadyPush,    ///< Fast core: subtask entered the ready bitset.
  BusGapProbe,  ///< Fast core: bus/link/processor timeline gap query.
  BusReserve,   ///< Fast core: timeline reservation committed.
  PoolSteal,    ///< Pool: task acquired from another worker's deque.
  PoolSleep,    ///< Pool: worker went idle (blocked on the sleep cv).
  SuperviseSpawn,       ///< Supervisor: worker subprocess spawned.
  SuperviseRetry,       ///< Supervisor: failed attempt requeued (backoff).
  SuperviseKill,        ///< Supervisor: watchdog SIGTERM/SIGKILL issued.
  SuperviseQuarantine,  ///< Supervisor: cell quarantined (retry budget spent).
  ShardCorrupt,    ///< Shard result rejected: checksum/field corruption.
  ShardTruncated,  ///< Shard result rejected: short read / missing tail.
  ServeAccept,     ///< Serve: TCP connection accepted.
  ServeParseError, ///< Serve: request rejected by the HTTP/JSON parser.
  ServeShed,       ///< Serve: admission control returned 429.
  ServeDedup,      ///< Serve: request coalesced onto an in-flight cell.
  ServeDispatch,   ///< Serve: cell handed to a leased worker.
  ServeReply,      ///< Serve: response written back to a client.
  ServeDisconnect, ///< Serve: client went away before its reply.
  ExactNode,       ///< Exact oracle: search-tree nodes expanded.
  ExactPruned,     ///< Exact oracle: branches cut by bounds or dominance.
  KernelScalarRun, ///< Fast core: run executed on the scalar kernel backend.
  KernelAvx2Run,   ///< Fast core: run executed on the AVX2 kernel backend.
  ServeWorkerRegister, ///< Serve: remote worker registered (or re-registered).
  ServeWorkerLease,    ///< Serve: cell leased to a remote worker.
  ServeWorkerResult,   ///< Serve: remote worker result frame accepted.
  ServeWorkerLost,     ///< Serve: remote worker declared lost (heartbeat or
                       ///< lease deadline missed; its cells requeue uncharged).
};
inline constexpr std::size_t kCounterCount = 30;

const char* to_string(Span span) noexcept;
const char* to_string(Counter counter) noexcept;

class Sink;

namespace detail {

/// Per-(thread, sink) recording buffer.  Owned by the Sink; written by
/// exactly one thread under `mutex`, which exports also take — so a late
/// record and a concurrent export serialize instead of racing.
struct ThreadBuffer {
  std::mutex mutex;  ///< Guards every field below against a concurrent export.
  std::uint64_t span_count[kSpanCount] = {};
  std::uint64_t span_total_ns[kSpanCount] = {};
  std::vector<std::uint64_t> durations_ns[kSpanCount];  ///< For p95.
  std::uint64_t counters[kCounterCount] = {};

  struct Event {
    std::uint8_t span = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };
  std::vector<Event> events;  ///< Only filled when the sink captures events.

  std::uint32_t tid = 0;  ///< Process-unique recording-thread number.
  std::string label;      ///< From set_thread_label(), may be empty.
};

extern std::atomic<Sink*> g_active;

/// The calling thread's buffer in \p sink (registered on first use).
ThreadBuffer& buffer_for(Sink& sink);

/// Nanoseconds since \p sink's epoch.
std::uint64_t now_ns(const Sink& sink) noexcept;

/// Closes a span: aggregates and (when capturing) appends a trace event.
void record_span(Sink& sink, Span span, std::uint64_t start_ns) noexcept;

}  // namespace detail

/// The installed process-wide sink, or nullptr when observability is off.
inline Sink* active() noexcept {
  return detail::g_active.load(std::memory_order_acquire);
}

/// Merged aggregates of one sink: per-span count/total/mean/p95 and
/// counter totals, in enum order, zero entries omitted.
struct Report {
  struct SpanRow {
    Span span = Span::Generate;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double mean_us = 0.0;
    double p95_us = 0.0;
  };
  struct CounterRow {
    Counter counter = Counter::CacheHit;
    std::uint64_t value = 0;
  };
  std::vector<SpanRow> spans;
  std::vector<CounterRow> counters;

  /// Sum of total_ms over \p which (absent spans contribute 0).
  double total_ms(std::initializer_list<Span> which) const noexcept;

  /// Count of one counter (0 when absent).
  std::uint64_t counter_value(Counter counter) const noexcept;

  /// Renders the per-phase table and the counter table.
  void print(std::ostream& out) const;
};

/// Collects spans and counters from every recording thread.  Construct,
/// install with ScopedSink (or pass explicitly via RunContext::sink),
/// run the workload, then export with report()/write_chrome_trace().
/// Must outlive its installation and any recording; not copyable.
class Sink {
 public:
  /// \p capture_events additionally records every span as a timestamped
  /// event for the Chrome trace exporter (more memory: one 24-byte event
  /// per span instance).
  explicit Sink(bool capture_events = false);
  ~Sink();
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  bool captures_events() const noexcept { return capture_events_; }

  /// Merged aggregates.  Requires quiescence: no thread may be recording
  /// into this sink concurrently.
  Report report() const;

  /// Chrome trace_event JSON ("X" complete events, µs timestamps), one
  /// row per recording thread — loadable in chrome://tracing and
  /// ui.perfetto.dev.  Requires capture_events and quiescence.
  void write_chrome_trace(std::ostream& out) const;

 private:
  friend detail::ThreadBuffer& detail::buffer_for(Sink& sink);
  friend std::uint64_t detail::now_ns(const Sink& sink) noexcept;
  friend void detail::record_span(Sink& sink, Span span,
                                  std::uint64_t start_ns) noexcept;

  mutable std::mutex mutex_;  ///< Guards buffers_ (registration + export).
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::uint64_t id_;  ///< Process-unique, for TLS cache invalidation.
  std::chrono::steady_clock::time_point epoch_;
  bool capture_events_;
};

/// Installs \p sink as the process-wide active sink for the scope's
/// lifetime and restores the previous sink on destruction.
class ScopedSink {
 public:
  explicit ScopedSink(Sink& sink) noexcept;
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Sink* previous_;
};

/// Names the calling thread in reports and traces (e.g. "pool-worker-3").
/// Applies to buffers the thread registers after the call.
void set_thread_label(std::string label);

/// Bumps \p counter by \p n on \p sink; no-op when \p sink is nullptr.
inline void count_on(Sink* sink, Counter counter, std::uint64_t n = 1) noexcept {
  if (sink == nullptr) return;
  detail::ThreadBuffer& buffer = detail::buffer_for(*sink);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.counters[static_cast<std::size_t>(counter)] += n;
}

/// Bumps \p counter on the active sink; a single relaxed atomic load and
/// a branch when observability is off.
inline void count(Counter counter, std::uint64_t n = 1) noexcept {
  count_on(detail::g_active.load(std::memory_order_relaxed), counter, n);
}

/// RAII scoped span: reads the clock on entry and exit and records the
/// duration into the sink captured at construction.  When that sink is
/// null (observability off) both ends are a null check.
class SpanScope {
 public:
  /// Records against the active sink (captured once, at entry).
  explicit SpanScope(Span span) noexcept
      : SpanScope(detail::g_active.load(std::memory_order_relaxed), span) {}

  /// Records against \p sink (e.g. RunContext::sink); null disables.
  SpanScope(Sink* sink, Span span) noexcept : sink_(sink), span_(span) {
    if (sink_ != nullptr) start_ns_ = detail::now_ns(*sink_);
  }

  ~SpanScope() {
    if (sink_ != nullptr) detail::record_span(*sink_, span_, start_ns_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Sink* sink_;
  Span span_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace feast::obs
