#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/table.hpp"

namespace feast::obs {

const char* to_string(Span span) noexcept {
  switch (span) {
    case Span::Generate: return "generate";
    case Span::Distribute: return "distribute";
    case Span::Validate: return "validate";
    case Span::Schedule: return "schedule";
    case Span::SchedPrepare: return "sched/prepare";
    case Span::SchedPlace: return "sched/place";
    case Span::Stats: return "stats";
    case Span::CellRun: return "cell-run";
    case Span::CacheLookup: return "cache/lookup";
    case Span::CacheStore: return "cache/store";
    case Span::PoolTask: return "pool/task";
    case Span::SuperviseAttempt: return "supervise/attempt";
    case Span::ServeRequest: return "serve/request";
    case Span::ServeDispatch: return "serve/dispatch";
    case Span::ExactSolve: return "exact/solve";
    case Span::SchedBatch: return "sched/batch";
    case Span::ServeLease: return "serve/lease";
  }
  return "?";
}

const char* to_string(Counter counter) noexcept {
  switch (counter) {
    case Counter::CacheHit: return "cache.hit";
    case Counter::CacheMiss: return "cache.miss";
    case Counter::CacheStore: return "cache.store";
    case Counter::CacheCorrupt: return "cache.corrupt";
    case Counter::ReadyPush: return "sched.ready_push";
    case Counter::BusGapProbe: return "sched.gap_probe";
    case Counter::BusReserve: return "sched.reserve";
    case Counter::PoolSteal: return "pool.steal";
    case Counter::PoolSleep: return "pool.sleep";
    case Counter::SuperviseSpawn: return "supervise.spawn";
    case Counter::SuperviseRetry: return "supervise.retry";
    case Counter::SuperviseKill: return "supervise.kill";
    case Counter::SuperviseQuarantine: return "supervise.quarantine";
    case Counter::ShardCorrupt: return "shard.corrupt";
    case Counter::ShardTruncated: return "shard.truncated";
    case Counter::ServeAccept: return "serve.accept";
    case Counter::ServeParseError: return "serve.parse_error";
    case Counter::ServeShed: return "serve.shed";
    case Counter::ServeDedup: return "serve.dedup";
    case Counter::ServeDispatch: return "serve.dispatch";
    case Counter::ServeReply: return "serve.reply";
    case Counter::ServeDisconnect: return "serve.disconnect";
    case Counter::ExactNode: return "exact.nodes";
    case Counter::ExactPruned: return "exact.pruned";
    case Counter::KernelScalarRun: return "kernel.scalar_runs";
    case Counter::KernelAvx2Run: return "kernel.avx2_runs";
    case Counter::ServeWorkerRegister: return "serve.worker.register";
    case Counter::ServeWorkerLease: return "serve.worker.lease";
    case Counter::ServeWorkerResult: return "serve.worker.result";
    case Counter::ServeWorkerLost: return "serve.worker.lost";
  }
  return "?";
}

namespace detail {

std::atomic<Sink*> g_active{nullptr};

namespace {

std::atomic<std::uint64_t> g_next_sink_id{1};
std::atomic<std::uint32_t> g_next_thread_id{1};

thread_local std::uint32_t tl_thread_id = 0;
thread_local std::string tl_thread_label;

/// One-entry (sink id → buffer) cache: every recording after the first
/// per (thread, sink) is lock-free.  Sink ids are process-unique and
/// never reused, so a stale entry can only miss, never alias.
struct TlsCache {
  std::uint64_t sink_id = 0;
  ThreadBuffer* buffer = nullptr;
};
thread_local TlsCache tl_cache;

std::uint32_t this_thread_id() noexcept {
  if (tl_thread_id == 0) {
    tl_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tl_thread_id;
}

}  // namespace

ThreadBuffer& buffer_for(Sink& sink) {
  if (tl_cache.sink_id == sink.id_) return *tl_cache.buffer;
  const std::uint32_t tid = this_thread_id();
  std::lock_guard<std::mutex> lock(sink.mutex_);
  for (const auto& existing : sink.buffers_) {
    if (existing->tid == tid) {
      tl_cache = {sink.id_, existing.get()};
      return *existing;
    }
  }
  sink.buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buffer = *sink.buffers_.back();
  buffer.tid = tid;
  buffer.label = tl_thread_label;
  tl_cache = {sink.id_, &buffer};
  return buffer;
}

std::uint64_t now_ns(const Sink& sink) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - sink.epoch_)
          .count());
}

void record_span(Sink& sink, Span span, std::uint64_t start_ns) noexcept {
  const std::uint64_t end_ns = now_ns(sink);
  const std::uint64_t dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  ThreadBuffer& buffer = buffer_for(sink);
  std::lock_guard<std::mutex> lock(buffer.mutex);
  const auto s = static_cast<std::size_t>(span);
  ++buffer.span_count[s];
  buffer.span_total_ns[s] += dur_ns;
  buffer.durations_ns[s].push_back(dur_ns);
  if (sink.capture_events_) {
    buffer.events.push_back({static_cast<std::uint8_t>(span), start_ns, dur_ns});
  }
}

}  // namespace detail

Sink::Sink(bool capture_events)
    : id_(detail::g_next_sink_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()),
      capture_events_(capture_events) {}

Sink::~Sink() {
  // Safety net for a sink destroyed while still installed; correct code
  // uninstalls first (ScopedSink) and quiesces recording threads.
  Sink* self = this;
  detail::g_active.compare_exchange_strong(self, nullptr,
                                           std::memory_order_acq_rel);
}

Report Sink::report() const {
  Report report;
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> merged;
  for (std::size_t s = 0; s < kSpanCount; ++s) {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    merged.clear();
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      count += buffer->span_count[s];
      total_ns += buffer->span_total_ns[s];
      merged.insert(merged.end(), buffer->durations_ns[s].begin(),
                    buffer->durations_ns[s].end());
    }
    if (count == 0) continue;
    Report::SpanRow row;
    row.span = static_cast<Span>(s);
    row.count = count;
    row.total_ms = static_cast<double>(total_ns) / 1e6;
    row.mean_us = static_cast<double>(total_ns) / 1e3 / static_cast<double>(count);
    // Nearest-rank p95 over the merged per-instance durations.
    const std::size_t rank = (merged.size() * 95 + 99) / 100;
    const std::size_t index = rank > 0 ? rank - 1 : 0;
    std::nth_element(merged.begin(),
                     merged.begin() + static_cast<std::ptrdiff_t>(index),
                     merged.end());
    row.p95_us = static_cast<double>(merged[index]) / 1e3;
    report.spans.push_back(row);
  }
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    std::uint64_t value = 0;
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      value += buffer->counters[c];
    }
    if (value == 0) continue;
    report.counters.push_back({static_cast<Counter>(c), value});
  }
  return report;
}

double Report::total_ms(std::initializer_list<Span> which) const noexcept {
  double total = 0.0;
  for (const Span span : which) {
    for (const SpanRow& row : spans) {
      if (row.span == span) total += row.total_ms;
    }
  }
  return total;
}

std::uint64_t Report::counter_value(Counter counter) const noexcept {
  for (const CounterRow& row : counters) {
    if (row.counter == counter) return row.value;
  }
  return 0;
}

namespace {

std::string fixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

/// Minimal string escaping for trace JSON (names are identifiers or
/// short user labels, but stay safe anyway).
std::string trace_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

}  // namespace

void Report::print(std::ostream& out) const {
  out << "per-phase timing (nested spans also count toward their parents)\n";
  TextTable table;
  table.set_header({"span", "count", "total ms", "mean us", "p95 us"});
  for (const SpanRow& row : spans) {
    table.add_row({to_string(row.span), std::to_string(row.count),
                   fixed(row.total_ms, 3), fixed(row.mean_us, 2),
                   fixed(row.p95_us, 2)});
  }
  table.render(out);
  if (counters.empty()) return;
  out << "\ncounters\n";
  TextTable counter_table;
  counter_table.set_header({"counter", "count"});
  for (const CounterRow& row : counters) {
    counter_table.add_row({to_string(row.counter), std::to_string(row.value)});
  }
  counter_table.render(out);
}

void Sink::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto comma = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    const std::string name =
        buffer->label.empty() ? "thread-" + std::to_string(buffer->tid)
                              : buffer->label;
    comma();
    out << " {\"ph\": \"M\", \"pid\": 1, \"tid\": " << buffer->tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
        << trace_escape(name) << "\"}}";
    for (const detail::ThreadBuffer::Event& event : buffer->events) {
      comma();
      // trace_event timestamps are microseconds.
      out << " {\"ph\": \"X\", \"pid\": 1, \"tid\": " << buffer->tid
          << ", \"name\": \"" << to_string(static_cast<Span>(event.span))
          << "\", \"ts\": " << fixed(static_cast<double>(event.start_ns) / 1e3, 3)
          << ", \"dur\": " << fixed(static_cast<double>(event.dur_ns) / 1e3, 3)
          << "}";
    }
  }
  out << "\n]}\n";
}

ScopedSink::ScopedSink(Sink& sink) noexcept
    : previous_(detail::g_active.exchange(&sink, std::memory_order_acq_rel)) {}

ScopedSink::~ScopedSink() {
  detail::g_active.store(previous_, std::memory_order_release);
}

void set_thread_label(std::string label) {
  detail::tl_thread_label = std::move(label);
}

}  // namespace feast::obs
