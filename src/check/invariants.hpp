/// \file invariants.hpp
/// \brief Mechanical invariant checkers for property-based tests.
///
/// Each checker phrases one correctness claim of the pipeline as a
/// GraphProperty-compatible result: std::nullopt when the invariant holds,
/// a human-readable violation message otherwise.  They compose with
/// forall_graphs so violations arrive as shrunk counterexamples instead of
/// 50-node random graphs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/annotation.hpp"
#include "core/distributor.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/machine.hpp"
#include "taskgraph/task_graph.hpp"
#include "util/stats.hpp"

namespace feast::check {

/// Distribution validity (§4.1): every node carries a window with d >= 0,
/// boundary conditions hold, every recorded sliced path is contiguous, and
/// d_1 + ... + d_n <= D along every input→output path.  Wraps
/// check_assignment_basic + check_path_deadline_sums.
std::optional<std::string> check_windows(const TaskGraph& graph,
                                         const DeadlineAssignment& assignment);

/// Precedence-consistent windows: along every arc u → χ → v the windows
/// are ordered — release(χ) >= release(u), release(v) >= release(χ), and
/// absolute deadlines are monotone the same way.
std::optional<std::string> check_precedence_windows(
    const TaskGraph& graph, const DeadlineAssignment& assignment);

/// Sliced-path coverage: no path hands out more than its window span, and
/// the first path — the unconstrained critical path — hands out *exactly*
/// its span.  On a zero-slack instance the latter is "the critical path
/// receives the full critical-path share".  Later iterations may hand out
/// less (zero-width slices on negligible-cost nodes, inverted residual
/// windows under overload).
std::optional<std::string> check_sliced_path_coverage(
    const TaskGraph& graph, const DeadlineAssignment& assignment);

/// Runs \p distributor and applies the three window checkers above.
std::optional<std::string> check_distribution(const TaskGraph& graph,
                                              Distributor& distributor);

/// Distributes, schedules on \p machine and validates the schedule with
/// sched/schedule_validate (both cores must accept their own output).
std::optional<std::string> check_scheduled(const TaskGraph& graph,
                                           Distributor& distributor,
                                           const Machine& machine,
                                           const SchedulerOptions& options,
                                           SchedulerCore core);

/// Stats aggregation oracle: RunningStats (Welford) over \p values must
/// match a naive two-pass mean/stddev/min/max within \p tolerance.
std::optional<std::string> check_stats_against_naive(
    const std::vector<double>& values, double tolerance = 1e-9);

/// Ground-truth optimality: the exact branch-and-bound oracle (src/exact)
/// never does worse than the heuristic pipeline.  Runs \p distributor,
/// list-schedules on \p machine, then solves the same instance exactly
/// (warm-started from the heuristic's own schedule) and fails when
/// `optimal > heuristic + tolerance`, where the tolerance is the certified
/// assigned-vs-effective deadline slack of the instance plus a fixed
/// epsilon (exact/gap.hpp).  \p node_budget bounds the search; a
/// budget-limited incumbent is still a valid upper bound on the optimum,
/// so the invariant is sound whether or not the solve proves optimality.
/// Only meaningful on instances within the oracle's size ceiling
/// (kMaxExactSubtasks / kMaxExactProcs); larger graphs report a violation
/// naming the size limit.
std::optional<std::string> check_exact_dominates(
    const TaskGraph& graph, Distributor& distributor, const Machine& machine,
    const SchedulerOptions& options, std::uint64_t node_budget = 250000);

}  // namespace feast::check
