#include "check/gen.hpp"

#include <cstdio>

namespace feast::check {

RandomGraphConfig gen_graph_config(Pcg32& rng) {
  RandomGraphConfig config;
  config.min_subtasks = rng.uniform_int(3, 12);
  config.max_subtasks = config.min_subtasks + rng.uniform_int(0, 12);
  config.min_depth = rng.uniform_int(2, 4);
  config.max_depth = config.min_depth + rng.uniform_int(0, 4);
  config.min_degree = 1;
  config.max_degree = rng.uniform_int(1, 3);
  config.level_width_alpha = rng.uniform_real(0.5, 4.0);
  config.strict_fanin_cap = rng.bernoulli(0.5);
  config.mean_exec_time = rng.uniform_real(5.0, 40.0);
  config.exec_spread = rng.uniform_real(0.0, 0.99);
  // OLR below 1 produces infeasibly tight deadlines on purpose now and then:
  // the distribution invariants must hold under pressure, not only on easy
  // instances.
  config.olr = rng.uniform_real(0.8, 3.0);
  config.olr_basis = rng.bernoulli(0.5) ? OlrBasis::TotalWorkload
                                        : OlrBasis::CriticalPath;
  config.ccr = rng.uniform_real(0.0, 2.0);
  config.message_spread = rng.uniform_real(0.0, 0.9);
  return config;
}

TaskGraph gen_graph(Pcg32& rng) {
  const RandomGraphConfig config = gen_graph_config(rng);
  return generate_random_graph(config, rng);
}

Machine gen_machine(Pcg32& rng) {
  Machine machine;
  machine.n_procs = rng.uniform_int(1, 8);
  machine.time_per_item = rng.uniform_real(0.0, 2.0);
  switch (rng.uniform_int(0, 2)) {
    case 0: machine.contention = CommContention::ContentionFree; break;
    case 1: machine.contention = CommContention::SharedBus; break;
    default: machine.contention = CommContention::PointToPointLinks; break;
  }
  return machine;
}

SchedulerOptions gen_scheduler_options(Pcg32& rng) {
  SchedulerOptions options;
  options.release_policy =
      rng.bernoulli(0.5) ? ReleasePolicy::TimeDriven : ReleasePolicy::Eager;
  switch (rng.uniform_int(0, 2)) {
    case 0: options.selection = SelectionPolicy::Edf; break;
    case 1: options.selection = SelectionPolicy::Fifo; break;
    default: options.selection = SelectionPolicy::StaticLaxity; break;
  }
  options.processor_policy =
      rng.bernoulli(0.5) ? ProcessorPolicy::GapSearch : ProcessorPolicy::QueueAtEnd;
  return options;
}

std::string gen_strategy_spec(Pcg32& rng) {
  const char* estimator = rng.bernoulli(0.5) ? "ccne" : "ccaa";
  switch (rng.uniform_int(0, 6)) {
    case 0: return std::string("pure:") + estimator;
    case 1: return std::string("norm:") + estimator;
    case 2: {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "thres:%d:%.2f", rng.uniform_int(0, 2),
                    rng.uniform_real(1.0, 1.5));
      return buffer;
    }
    case 3: {
      char buffer[64];
      std::snprintf(buffer, sizeof buffer, "adapt:%.2f", rng.uniform_real(1.0, 1.5));
      return buffer;
    }
    case 4: return "ud";
    case 5: return "ed";
    default: return "prop";
  }
}

CampaignSpec gen_campaign_spec(Pcg32& rng) {
  CampaignSpec spec;
  spec.name = "gen-" + std::to_string(rng.next_u32());
  spec.batch.samples = rng.uniform_int(2, 4);
  spec.batch.seed = rng.next_u64();
  spec.batch.pinned_fraction = rng.bernoulli(0.5) ? 0.0 : rng.uniform_real(0.0, 0.3);

  spec.workload = gen_graph_config(rng);
  // Clamp the workload well below gen_graph_config's ceiling: a campaign
  // runs samples × strategies × sizes full pipelines per cell.
  spec.workload.min_subtasks = rng.uniform_int(3, 6);
  spec.workload.max_subtasks = spec.workload.min_subtasks + rng.uniform_int(0, 4);

  const Machine machine = gen_machine(rng);
  spec.batch.time_per_item = machine.time_per_item;
  spec.batch.contention = machine.contention;
  spec.context.scheduler = gen_scheduler_options(rng);
  spec.context.core = rng.bernoulli(0.5) ? SchedulerCore::Fast : SchedulerCore::Reference;
  spec.context.validate = true;

  spec.strategies.clear();
  const int n_strategies = rng.uniform_int(1, 3);
  for (int i = 0; i < n_strategies; ++i) {
    const std::string s = gen_strategy_spec(rng);
    bool duplicate = false;
    for (const std::string& existing : spec.strategies) {
      if (parse_strategy_spec(existing).label == parse_strategy_spec(s).label) {
        duplicate = true;  // Cells are keyed by label; keep labels unique.
        break;
      }
    }
    if (!duplicate) spec.strategies.push_back(s);
  }

  spec.sizes.clear();
  spec.sizes.push_back(rng.uniform_int(1, 4));
  if (rng.bernoulli(0.5)) spec.sizes.push_back(spec.sizes.front() + rng.uniform_int(1, 4));
  return spec;
}

}  // namespace feast::check
