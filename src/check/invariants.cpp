#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/distribution_validate.hpp"
#include "exact/exact.hpp"
#include "exact/gap.hpp"
#include "sched/lateness.hpp"
#include "sched/schedule_validate.hpp"
#include "util/stats.hpp"

namespace feast::check {

namespace {

/// Comparison slack for window arithmetic: windows are sums of divided
/// doubles, so exact comparisons would fail on representation noise alone.
constexpr double kEps = 1e-7;

std::string node_label(const TaskGraph& graph, NodeId id) {
  const Node& node = graph.node(id);
  return node.name.empty() ? "node#" + std::to_string(id.index()) : node.name;
}

}  // namespace

std::optional<std::string> check_windows(const TaskGraph& graph,
                                         const DeadlineAssignment& assignment) {
  const AssignmentReport basic = check_assignment_basic(graph, assignment);
  if (!basic.ok()) return "assignment invalid: " + basic.to_string();
  const AssignmentReport sums = check_path_deadline_sums(graph, assignment);
  if (!sums.ok()) return "path deadline sums violate r+d <= D: " + sums.to_string();
  return std::nullopt;
}

std::optional<std::string> check_precedence_windows(
    const TaskGraph& graph, const DeadlineAssignment& assignment) {
  for (const NodeId id : graph.all_nodes()) {
    for (const NodeId succ : graph.succs(id)) {
      const NodeWindow& from = assignment.window(id);
      const NodeWindow& to = assignment.window(succ);
      if (!from.assigned() || !to.assigned()) {
        return "unassigned window on arc " + node_label(graph, id) + " -> " +
               node_label(graph, succ);
      }
      if (to.release + kEps < from.release) {
        std::ostringstream out;
        out << "window of " << node_label(graph, succ) << " releases at "
            << to.release << ", before its predecessor " << node_label(graph, id)
            << " at " << from.release;
        return out.str();
      }
      if (to.abs_deadline() + kEps < from.abs_deadline()) {
        std::ostringstream out;
        out << "window of " << node_label(graph, succ) << " ends at "
            << to.abs_deadline() << ", before its predecessor "
            << node_label(graph, id) << " at " << from.abs_deadline();
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_sliced_path_coverage(
    const TaskGraph& graph, const DeadlineAssignment& assignment) {
  (void)graph;
  for (const SlicedPath& path : assignment.paths()) {
    double handed_out = 0.0;
    for (const NodeId id : path.nodes) {
      handed_out += assignment.rel_deadline(id);
    }
    const double share = path.window_end - path.window_start;
    const double scale = std::max(1.0, std::abs(share));
    if (handed_out > share + kEps * scale) {
      std::ostringstream out;
      out << "sliced path (iteration " << path.iteration << ") hands out "
          << handed_out << ", more than its window share " << share;
      return out.str();
    }
    // Later iterations may legitimately hand out less: nodes of negligible
    // virtual cost get zero-width slices, and residual windows can invert
    // under heavy overload.  The *first* path is the unconstrained critical
    // path — it must receive its full share, slack or no slack.
    if (path.iteration == 0 && std::abs(handed_out - share) > kEps * scale) {
      std::ostringstream out;
      out << "critical path hands out " << handed_out
          << " of its full share " << share;
      return out.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_distribution(const TaskGraph& graph,
                                              Distributor& distributor) {
  const DeadlineAssignment assignment = distributor.distribute(graph);
  if (auto problem = check_windows(graph, assignment)) {
    return distributor.name() + ": " + *problem;
  }
  if (auto problem = check_precedence_windows(graph, assignment)) {
    return distributor.name() + ": " + *problem;
  }
  if (auto problem = check_sliced_path_coverage(graph, assignment)) {
    return distributor.name() + ": " + *problem;
  }
  return std::nullopt;
}

std::optional<std::string> check_scheduled(const TaskGraph& graph,
                                           Distributor& distributor,
                                           const Machine& machine,
                                           const SchedulerOptions& options,
                                           SchedulerCore core) {
  const DeadlineAssignment assignment = distributor.distribute(graph);
  const Schedule schedule =
      list_schedule_with(core, graph, assignment, machine, options);
  const ScheduleReport report =
      validate_schedule(graph, assignment, machine, schedule, options);
  if (!report.ok()) {
    return distributor.name() + " on " + to_string(core) +
           " core: " + report.to_string();
  }
  return std::nullopt;
}

std::optional<std::string> check_stats_against_naive(
    const std::vector<double>& values, double tolerance) {
  RunningStats running;
  for (const double v : values) running.add(v);
  const StatSummary summary = running.summary();

  if (summary.count != values.size()) {
    return "count mismatch: " + std::to_string(summary.count) + " vs " +
           std::to_string(values.size());
  }
  if (values.empty()) return std::nullopt;

  double sum = 0.0;
  double lo = values.front();
  double hi = values.front();
  for (const double v : values) {
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - mean) * (v - mean);
  const double stddev =
      values.size() > 1
          ? std::sqrt(sq / static_cast<double>(values.size() - 1))
          : 0.0;

  const double scale = std::max({1.0, std::abs(mean), std::abs(hi), std::abs(lo)});
  auto close = [&](double a, double b) { return std::abs(a - b) <= tolerance * scale; };
  std::ostringstream out;
  if (!close(summary.mean, mean)) {
    out << "mean " << summary.mean << " vs naive " << mean;
    return out.str();
  }
  if (!close(summary.stddev, stddev)) {
    out << "stddev " << summary.stddev << " vs naive " << stddev;
    return out.str();
  }
  if (summary.min != lo || summary.max != hi) {
    out << "min/max [" << summary.min << ", " << summary.max << "] vs naive ["
        << lo << ", " << hi << "]";
    return out.str();
  }
  return std::nullopt;
}

std::optional<std::string> check_exact_dominates(
    const TaskGraph& graph, Distributor& distributor, const Machine& machine,
    const SchedulerOptions& options, std::uint64_t node_budget) {
  const DeadlineAssignment assignment = distributor.distribute(graph);
  const Schedule schedule = list_schedule(graph, assignment, machine, options);
  const Time heuristic =
      computation_lateness(graph, assignment, schedule).max_lateness;

  exact::ExactOptions exact_options;
  exact_options.node_budget = node_budget;
  exact_options.seeds.push_back(exact::seed_from_schedule(graph, schedule));
  exact::ExactResult result;
  try {
    result = exact::solve_exact(graph, machine, exact_options);
  } catch (const std::invalid_argument& e) {
    return distributor.name() + ": instance outside the oracle's size limits: " +
           e.what();
  }

  // Certified tolerance, identical to the gap cells (exact/gap.hpp): the
  // heuristic is measured against assigned deadlines, the oracle against
  // effective deadlines, and the window checker admits 1e-7 of slack.
  const std::vector<Time> eds = exact::effective_deadlines(graph);
  Time slack = 0.0;
  for (NodeId id : graph.computation_nodes()) {
    if (!assignment.window(id).assigned()) continue;
    const Time s = assignment.abs_deadline(id) - eds[id.index()];
    if (s > slack) slack = s;
  }
  const Time tolerance = slack + exact::kGapCheckEps;

  if (result.optimal > heuristic + tolerance) {
    std::ostringstream out;
    out.precision(17);
    out << distributor.name() << ": exact optimal " << result.optimal
        << " exceeds heuristic " << heuristic << " beyond tolerance " << tolerance
        << " (" << result.nodes << " nodes, "
        << (result.proven ? "proven" : "budget-limited") << ")";
    return out.str();
  }
  return std::nullopt;
}

}  // namespace feast::check
